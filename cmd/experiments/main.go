// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic dataset analogues.
//
// Usage:
//
//	experiments [-preset quick|full] [-run all|fig4|linkpred|ablation|efficiency|sweep] [-dataset Digg|Yelp|Tmall|DBLP]
//
// With -run all (the default) the full suite runs in the paper's order:
// Figure 4, Tables III–VI, Table VII, Table VIII, Figure 5a–d.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ehna/internal/datagen"
	"ehna/internal/experiments"
)

func main() {
	preset := flag.String("preset", "full", "settings preset: quick or full")
	run := flag.String("run", "all", "which experiment: all, fig4, linkpred, ablation, efficiency, sweep, extensions")
	dataset := flag.String("dataset", "", "restrict fig4/linkpred to one dataset (Digg, Yelp, Tmall, DBLP)")
	flag.Parse()

	var s experiments.Settings
	switch *preset {
	case "quick":
		s = experiments.Quick()
	case "full":
		s = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	datasets := datagen.AllDatasets
	if *dataset != "" {
		datasets = []datagen.Dataset{datagen.Dataset(*dataset)}
	}

	start := time.Now()
	switch *run {
	case "all":
		runFig4(s, datasets)
		runLinkPred(s, datasets)
		runAblation(s, datasets)
		runEfficiency(s, datasets)
		runSweeps(s)
		runExtensions(s)
	case "fig4":
		runFig4(s, datasets)
	case "linkpred":
		runLinkPred(s, datasets)
	case "ablation":
		runAblation(s, datasets)
	case "efficiency":
		runEfficiency(s, datasets)
	case "sweep":
		runSweeps(s)
	case "extensions":
		runExtensions(s)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

func runFig4(s experiments.Settings, datasets []datagen.Dataset) {
	for _, d := range datasets {
		r, err := experiments.RunFig4(s, d)
		if err != nil {
			fatal(err)
		}
		experiments.PrintFig4(os.Stdout, r)
		fmt.Println()
	}
}

func runLinkPred(s experiments.Settings, datasets []datagen.Dataset) {
	for _, d := range datasets {
		r, err := experiments.RunLinkPred(s, d)
		if err != nil {
			fatal(err)
		}
		experiments.PrintLinkPred(os.Stdout, r)
		fmt.Println()
	}
}

func runAblation(s experiments.Settings, datasets []datagen.Dataset) {
	r, err := experiments.RunAblation(s, datasets)
	if err != nil {
		fatal(err)
	}
	experiments.PrintAblation(os.Stdout, r, datasets)
	fmt.Println()
}

func runEfficiency(s experiments.Settings, datasets []datagen.Dataset) {
	r, err := experiments.RunEfficiency(s, datasets)
	if err != nil {
		fatal(err)
	}
	experiments.PrintEfficiency(os.Stdout, r, datasets)
	fmt.Println()
}

func runExtensions(s experiments.Settings) {
	combo, err := experiments.RunOperatorCombo(s, datagen.Digg)
	if err != nil {
		fatal(err)
	}
	experiments.PrintCombo(os.Stdout, combo)
	fmt.Println()
	nc, err := experiments.RunNodeClassification(s)
	if err != nil {
		fatal(err)
	}
	experiments.PrintNodeClass(os.Stdout, nc)
	fmt.Println()
}

func runSweeps(s experiments.Settings) {
	for _, p := range []experiments.SweepParam{
		experiments.SweepMargin, experiments.SweepWalkLen,
		experiments.SweepP, experiments.SweepQ,
	} {
		r, err := experiments.RunParamSweep(s, datagen.Yelp, p)
		if err != nil {
			fatal(err)
		}
		experiments.PrintSweep(os.Stdout, r)
		fmt.Println()
	}
}
