// Command ehnad-router is the stateless front door of a partitioned
// ehnad deployment: it owns the shard map, scatter-gathers searches
// across every shard with per-shard deadlines, routes writes to the
// owning shard's leader, and degrades to partial results (degraded:true
// + shards_answered) instead of failing when a shard is dark. With
// -failover it also promotes the most-caught-up follower of a dead
// leader via /v1/admin/promote.
//
// Shard placement comes either from repeated -shard flags:
//
//	ehnad-router -shard a=http://h1:8080,http://h2:8080 -shard b=http://h3:8080
//
// or from a JSON map file (-map), the ParseShardMap format:
//
//	{"version": 1, "shards": [{"name": "a", "endpoints": ["http://h1:8080"]}]}
//
// The router holds no vectors and no log — kill it and start another;
// only the map matters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ehna/internal/cluster"
)

// shardFlags collects repeated -shard name=url[,url...] values in
// declaration order (the first endpoint of each shard is the presumed
// leader, matching ShardSpec semantics).
type shardFlags []cluster.ShardSpec

func (s *shardFlags) String() string { return fmt.Sprintf("%d shards", len(*s)) }

func (s *shardFlags) Set(v string) error {
	name, eps, ok := strings.Cut(v, "=")
	if !ok || name == "" || eps == "" {
		return fmt.Errorf("want name=url[,url...], got %q", v)
	}
	spec := cluster.ShardSpec{Name: name}
	for _, u := range strings.Split(eps, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return fmt.Errorf("shard %q has an empty endpoint", name)
		}
		spec.Endpoints = append(spec.Endpoints, u)
	}
	*s = append(*s, spec)
	return nil
}

func loadShardMap(mapPath string, shards shardFlags, version uint64) (*cluster.ShardMap, error) {
	switch {
	case mapPath != "" && len(shards) > 0:
		return nil, fmt.Errorf("-map and -shard are mutually exclusive")
	case mapPath != "":
		data, err := os.ReadFile(mapPath)
		if err != nil {
			return nil, err
		}
		return cluster.ParseShardMap(data)
	case len(shards) > 0:
		return cluster.NewShardMap(version, shards)
	default:
		return nil, fmt.Errorf("no shard placement: pass -map FILE or at least one -shard name=url")
	}
}

func main() {
	var shards shardFlags
	var (
		addr     = flag.String("listen", ":8090", "listen address")
		mapPath  = flag.String("map", "", "shard map JSON file ({version, shards:[{name, endpoints}]}); mutually exclusive with -shard")
		version  = flag.Uint64("map-version", 1, "with -shard: version stamped on the assembled shard map")
		deadline = flag.Duration("default-deadline", 2*time.Second, "per-request time budget when the client sends none (deadline_ms / X-Ehnad-Deadline-Ms override)")
		margin   = flag.Duration("merge-margin", 0, "budget reserved for the router's own merge work; each shard gets budget minus this (0 = 10% of budget, clamped to [2ms, 50ms])")
		interval = flag.Duration("health-interval", time.Second, "endpoint health/role probe period")
		failN    = flag.Int("fail-after", 3, "consecutive probe failures that mark an endpoint down")
		failover = flag.Bool("failover", false, "promote the most-caught-up healthy follower when a shard leader goes dark")
	)
	flag.Var(&shards, "shard", "shard placement, repeatable: name=url[,url...] (first endpoint is the boot-time leader)")
	flag.Parse()

	m, err := loadShardMap(*mapPath, shards, *version)
	if err != nil {
		log.Fatalf("ehnad-router: %v", err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Map:             m,
		DefaultDeadline: *deadline,
		MergeMargin:     *margin,
		HealthInterval:  *interval,
		FailAfter:       *failN,
		AutoFailover:    *failover,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("ehnad-router: %v", err)
	}

	ctx, stop := context.WithCancel(context.Background())
	go rt.Run(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ehnad-router: %v", err)
	}
	for _, s := range m.Shards {
		log.Printf("ehnad-router: shard %q: %s", s.Name, strings.Join(s.Endpoints, ", "))
	}
	log.Printf("ehnad-router: map v%d, %d shards; listening on %s (failover: %v)", m.Version, len(m.Shards), *addr, *failover)

	httpSrv := &http.Server{Handler: rt.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("ehnad-router: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
		stop() // health loop after the listener: probes keep running while requests drain
		close(done)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ehnad-router: %v", err)
	}
	<-done
	log.Print("ehnad-router: shutdown complete")
}
