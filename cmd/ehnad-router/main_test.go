package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestShardFlagParsing(t *testing.T) {
	var s shardFlags
	if err := s.Set("a=http://h1:8080,http://h2:8080/"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b=http://h3:8080"); err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Name != "a" || len(s[0].Endpoints) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	// Trailing slashes are stripped so endpoint URLs join cleanly.
	if s[0].Endpoints[1] != "http://h2:8080" {
		t.Fatalf("endpoint not normalized: %q", s[0].Endpoints[1])
	}
	for _, bad := range []string{"", "noequals", "=http://h", "a=", "a=http://h1,,http://h2"} {
		var f shardFlags
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestLoadShardMap(t *testing.T) {
	var s shardFlags
	if err := s.Set("a=http://h1:8080"); err != nil {
		t.Fatal(err)
	}
	m, err := loadShardMap("", s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 7 || len(m.Shards) != 1 {
		t.Fatalf("map %+v", m)
	}

	p := filepath.Join(t.TempDir(), "map.json")
	if err := os.WriteFile(p, []byte(`{"version":3,"shards":[{"name":"x","endpoints":["http://h:1"]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = loadShardMap(p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 || m.Shards[0].Name != "x" {
		t.Fatalf("map %+v", m)
	}

	if _, err := loadShardMap(p, s, 1); err == nil {
		t.Error("-map with -shard accepted")
	}
	if _, err := loadShardMap("", nil, 1); err == nil {
		t.Error("empty placement accepted")
	}
}
