// Command ehnad-loadgen drives an ehnad daemon with open-loop
// (fixed-arrival-rate) load and reports latency quantiles that are
// honest under saturation: every request's latency is measured from
// its scheduled arrival time, so server stalls surface as tail
// latency instead of silently slowing the generator down
// (coordinated omission). See loadgen.go for the mechanics.
//
// Typical use against a seeded daemon:
//
//	ehnad-loadgen -target http://localhost:8080 \
//	    -rate 2000 -duration 30s -read-frac 0.9 \
//	    -slo "p99<5ms,errors<1%" -json bench.json
//
// The exit code is the SLO verdict (0 pass, 1 fail, 2 run error), so
// the same invocation is a CI gate. -preload N seeds ids 0..N-1 with
// random vectors first, for load-testing an empty -wal daemon.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "ehnad base URL")
		rate        = flag.Float64("rate", 500, "intended arrival rate, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "length of the measured pass")
		workers     = flag.Int("workers", 64, "max in-flight requests (queueing beyond this is measured, not avoided)")
		readFrac    = flag.Float64("read-frac", 0.9, "fraction of requests that are /v1/neighbors reads (the rest are upserts)")
		k           = flag.Int("k", 10, "top-k per neighbor query")
		dim         = flag.Int("dim", 0, "vector dimensionality (0 = read from /healthz)")
		keys        = flag.Int("keys", 0, "key-space size for zipfian ids (0 = store size after preload)")
		zipfS       = flag.Float64("zipf-s", 1.1, "zipf skew exponent (>1; larger = hotter hot keys)")
		zipfV       = flag.Float64("zipf-v", 1, "zipf value offset (>=1)")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		preload     = flag.Int("preload", 0, "upsert this many random vectors (ids 0..n-1) before the pass")
		retries     = flag.Int("retries", 0, "extra attempts after a 429 shed, jittered exponential backoff between")
		retryBudget = flag.Duration("retry-budget", time.Second, "max time (from a request's intended start) its retries may consume")
		sloExpr     = flag.String("slo", "", `pass/fail gate, e.g. "p99<5ms,errors<1%,goodput>400" (sets the exit code)`)
		jsonPath    = flag.String("json", "", `write the JSON report here ("-" = stdout)`)
	)
	flag.Parse()

	checks, err := parseSLO(*sloExpr)
	if err != nil {
		log.Fatalf("ehnad-loadgen: %v", err)
	}
	if *zipfS <= 1 || *zipfV < 1 {
		log.Fatal("ehnad-loadgen: -zipf-s must be > 1 and -zipf-v >= 1")
	}
	if *readFrac < 0 || *readFrac > 1 {
		log.Fatal("ehnad-loadgen: -read-frac must be in [0,1]")
	}
	if *rate <= 0 || *workers < 1 {
		log.Fatal("ehnad-loadgen: -rate must be > 0 and -workers >= 1")
	}

	rep, err := runLoad(genConfig{
		target:      strings.TrimRight(*target, "/"),
		rate:        *rate,
		duration:    *duration,
		workers:     *workers,
		readFrac:    *readFrac,
		k:           *k,
		dim:         *dim,
		keys:        *keys,
		zipfS:       *zipfS,
		zipfV:       *zipfV,
		seed:        *seed,
		preload:     *preload,
		retries:     *retries,
		retryBudget: *retryBudget,
	})
	if err != nil {
		log.Printf("ehnad-loadgen: %v", err)
		os.Exit(2)
	}
	if len(checks) > 0 {
		rep.SLO = evalSLO(*sloExpr, checks, rep)
	}

	printHuman(rep)
	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("ehnad-loadgen: %v", err)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatalf("ehnad-loadgen: %v", err)
		}
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		os.Exit(1)
	}
}

// printHuman writes the terminal report.
func printHuman(rep *report) {
	fmt.Printf("ehnad-loadgen: %d ops in %.1fs (%.1f/s achieved, %.1f/s target) against %s\n",
		rep.Ops, rep.DurationS, rep.AchievedRate, rep.TargetRate, rep.Target)
	fmt.Printf("  mix: %.0f%% reads, zipf(s=%.2f) over %d keys\n",
		rep.ReadFraction*100, rep.ZipfS, rep.Keys)
	row := func(name string, l latencyReport) {
		if l.Count == 0 {
			return
		}
		fmt.Printf("  %-8s %8d  p50 %8.3fms  p90 %8.3fms  p99 %8.3fms  p999 %8.3fms  max %8.3fms\n",
			name, l.Count, l.P50ms, l.P90ms, l.P99ms, l.P999ms, l.MaxMs)
	}
	row("reads", rep.Read)
	row("writes", rep.Write)
	row("overall", rep.Overall)
	fmt.Printf("  goodput: %.1f/s  shed: %d (%.3f%%, %d retries)  errors: %d (%.3f%%)\n",
		rep.GoodputRate, rep.Shed, rep.ShedFraction*100, rep.Retries, rep.Errors, rep.ErrorFraction*100)
	if rep.SLO != nil {
		parts := make([]string, len(rep.SLO.Checks))
		for i, c := range rep.SLO.Checks {
			parts[i] = c.describe()
		}
		fmt.Printf("  slo: %s\n", strings.Join(parts, "  "))
	}
}
