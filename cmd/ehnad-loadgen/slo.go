// The SLO gate: -slo "p99<5ms,errors<1%" turns a load run into a
// pass/fail check a CI pipeline can trust — exit 0 when every clause
// holds against the overall latency distribution, exit 1 otherwise.
package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// sloCheck is one parsed clause: a metric name and its upper bound
// (seconds for latency metrics, a fraction for errors).
type sloCheck struct {
	expr   string
	metric string  // p50 | p90 | p99 | p999 | mean | max | errors
	limit  float64 // seconds, or error fraction
}

// parseSLO parses a comma-separated clause list. Every clause is
// METRIC<BOUND: latency bounds are Go durations ("5ms", "800us"),
// the errors bound is a percentage ("1%", "0.5%").
func parseSLO(s string) ([]sloCheck, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var checks []sloCheck
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		metric, bound, ok := strings.Cut(clause, "<")
		if !ok {
			return nil, fmt.Errorf("slo clause %q: want METRIC<BOUND", clause)
		}
		metric, bound = strings.TrimSpace(metric), strings.TrimSpace(bound)
		c := sloCheck{expr: clause, metric: metric}
		switch metric {
		case "errors":
			pct, found := strings.CutSuffix(bound, "%")
			if !found {
				return nil, fmt.Errorf("slo clause %q: errors bound must be a percentage like 1%%", clause)
			}
			v, err := strconv.ParseFloat(pct, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("slo clause %q: bad percentage %q", clause, pct)
			}
			c.limit = v / 100
		case "p50", "p90", "p99", "p999", "mean", "max":
			d, err := time.ParseDuration(bound)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo clause %q: bad duration %q", clause, bound)
			}
			c.limit = d.Seconds()
		default:
			return nil, fmt.Errorf("slo clause %q: unknown metric %q (want p50, p90, p99, p999, mean, max or errors)", clause, metric)
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// sloResult is one evaluated clause.
type sloResult struct {
	Expr  string  `json:"expr"`
	Value float64 `json:"value"` // seconds, or error fraction
	Pass  bool    `json:"pass"`
}

// sloReport is the evaluated gate, embedded in the run report.
type sloReport struct {
	Expr   string      `json:"expr"`
	Pass   bool        `json:"pass"`
	Checks []sloResult `json:"checks"`
}

// evalSLO evaluates every clause against the overall latency summary
// and the observed error fraction — the same numbers the report
// prints, so a FAIL is always explainable from the report alone.
func evalSLO(expr string, checks []sloCheck, overall latencyReport, errFrac float64) *sloReport {
	rep := &sloReport{Expr: expr, Pass: true}
	for _, c := range checks {
		var v float64
		switch c.metric {
		case "errors":
			v = errFrac
		case "p50":
			v = overall.P50ms / 1e3
		case "p90":
			v = overall.P90ms / 1e3
		case "p99":
			v = overall.P99ms / 1e3
		case "p999":
			v = overall.P999ms / 1e3
		case "mean":
			v = overall.MeanMs / 1e3
		case "max":
			v = overall.MaxMs / 1e3
		}
		res := sloResult{Expr: c.expr, Value: v, Pass: v < c.limit}
		if !res.Pass {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, res)
	}
	return rep
}

// describe renders one result for the human report.
func (r sloResult) describe() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	if strings.HasPrefix(r.Expr, "errors") {
		return fmt.Sprintf("%s %s (%.3f%%)", r.Expr, verdict, r.Value*100)
	}
	return fmt.Sprintf("%s %s (%.3fms)", r.Expr, verdict, r.Value*1e3)
}
