// The SLO gate: -slo "p99<5ms,errors<1%,goodput>400" turns a load run
// into a pass/fail check a CI pipeline can trust — exit 0 when every
// clause holds, exit 1 otherwise. Latency and error clauses are upper
// bounds (<); goodput is a lower bound (>), because under overload the
// honest question is not "how fast were the refusals" but "how much
// real work still completed per second".
package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// sloCheck is one parsed clause: a metric name, its bound, and the
// bound's direction (latency seconds / error fraction are upper
// bounds, goodput requests-per-second is a lower bound).
type sloCheck struct {
	expr   string
	metric string  // p50 | p90 | p99 | p999 | mean | max | errors | goodput
	limit  float64 // seconds, error fraction, or req/s for goodput
	lower  bool    // true: value must exceed limit (goodput)
}

// parseSLO parses a comma-separated clause list. Latency clauses are
// METRIC<DURATION ("p99<5ms"), the errors clause is a percentage
// ("errors<1%"), and goodput is a rate lower bound ("goodput>400",
// requests per second).
func parseSLO(s string) ([]sloCheck, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var checks []sloCheck
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if metric, bound, ok := strings.Cut(clause, ">"); ok {
			metric, bound = strings.TrimSpace(metric), strings.TrimSpace(bound)
			if metric != "goodput" {
				return nil, fmt.Errorf("slo clause %q: only goodput takes a lower bound (>)", clause)
			}
			v, err := strconv.ParseFloat(bound, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("slo clause %q: bad rate %q (want requests/second)", clause, bound)
			}
			checks = append(checks, sloCheck{expr: clause, metric: metric, limit: v, lower: true})
			continue
		}
		metric, bound, ok := strings.Cut(clause, "<")
		if !ok {
			return nil, fmt.Errorf("slo clause %q: want METRIC<BOUND or goodput>RATE", clause)
		}
		metric, bound = strings.TrimSpace(metric), strings.TrimSpace(bound)
		c := sloCheck{expr: clause, metric: metric}
		switch metric {
		case "errors":
			pct, found := strings.CutSuffix(bound, "%")
			if !found {
				return nil, fmt.Errorf("slo clause %q: errors bound must be a percentage like 1%%", clause)
			}
			v, err := strconv.ParseFloat(pct, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("slo clause %q: bad percentage %q", clause, pct)
			}
			c.limit = v / 100
		case "p50", "p90", "p99", "p999", "mean", "max":
			d, err := time.ParseDuration(bound)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo clause %q: bad duration %q", clause, bound)
			}
			c.limit = d.Seconds()
		case "goodput":
			return nil, fmt.Errorf("slo clause %q: goodput is a lower bound, write goodput>RATE", clause)
		default:
			return nil, fmt.Errorf("slo clause %q: unknown metric %q (want p50, p90, p99, p999, mean, max, errors or goodput)", clause, metric)
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// sloResult is one evaluated clause.
type sloResult struct {
	Expr  string  `json:"expr"`
	Value float64 `json:"value"` // seconds, error fraction, or req/s
	Pass  bool    `json:"pass"`
}

// sloReport is the evaluated gate, embedded in the run report.
type sloReport struct {
	Expr   string      `json:"expr"`
	Pass   bool        `json:"pass"`
	Checks []sloResult `json:"checks"`
}

// evalSLO evaluates every clause against the run report — the same
// numbers the report prints, so a FAIL is always explainable from the
// report alone. Latency clauses read the overall (accepted-request)
// distribution; goodput reads the completed-request rate.
func evalSLO(expr string, checks []sloCheck, rep *report) *sloReport {
	out := &sloReport{Expr: expr, Pass: true}
	for _, c := range checks {
		var v float64
		switch c.metric {
		case "errors":
			v = rep.ErrorFraction
		case "goodput":
			v = rep.GoodputRate
		case "p50":
			v = rep.Overall.P50ms / 1e3
		case "p90":
			v = rep.Overall.P90ms / 1e3
		case "p99":
			v = rep.Overall.P99ms / 1e3
		case "p999":
			v = rep.Overall.P999ms / 1e3
		case "mean":
			v = rep.Overall.MeanMs / 1e3
		case "max":
			v = rep.Overall.MaxMs / 1e3
		}
		res := sloResult{Expr: c.expr, Value: v}
		if c.lower {
			res.Pass = v > c.limit
		} else {
			res.Pass = v < c.limit
		}
		if !res.Pass {
			out.Pass = false
		}
		out.Checks = append(out.Checks, res)
	}
	return out
}

// describe renders one result for the human report.
func (r sloResult) describe() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	switch {
	case strings.HasPrefix(r.Expr, "errors"):
		return fmt.Sprintf("%s %s (%.3f%%)", r.Expr, verdict, r.Value*100)
	case strings.HasPrefix(r.Expr, "goodput"):
		return fmt.Sprintf("%s %s (%.1f/s)", r.Expr, verdict, r.Value)
	default:
		return fmt.Sprintf("%s %s (%.3fms)", r.Expr, verdict, r.Value*1e3)
	}
}
