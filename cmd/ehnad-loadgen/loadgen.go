// The load core: an open-loop (fixed-arrival-rate) generator.
//
// Closed-loop load tools wait for each response before sending the
// next request, so a slow server quietly throttles its own load and
// the measured tail is a lie (coordinated omission). This generator
// schedules every request's *intended* start time up front at the
// target rate and measures latency from that intended start, not from
// when a worker got around to sending it: if the server stalls, the
// queue delay lands in the recorded latency exactly as a real user
// would feel it.
//
// Key skew is zipfian (a few hot keys take most traffic — the shape
// embedding serving sees in production), the read/write mix is a
// coin flip per request, and latencies land in the same log-bucketed
// obs histograms the daemon itself uses, merged for the overall
// report via HistSnapshot.Merge.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"ehna/internal/obs"
)

type genConfig struct {
	target      string  // daemon base URL, no trailing slash
	rate        float64 // intended arrivals per second
	duration    time.Duration
	workers     int
	readFrac    float64 // fraction of requests that are /v1/neighbors
	k           int
	dim         int // vector dimensionality; 0 = read from /healthz
	keys        int // key-space size; 0 = max(store nodes, preload)
	zipfS       float64
	zipfV       float64
	seed        int64
	preload     int           // vectors to upsert before the run (ids 0..preload-1)
	retries     int           // extra attempts after a 429, jittered backoff between
	retryBudget time.Duration // total time (from intended start) retries may consume
	client      *http.Client
}

// latencyReport is one op class's quantile summary, in milliseconds
// (the unit humans and SLOs speak at serving scale).
type latencyReport struct {
	Count  uint64  `json:"count"`
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func summarize(s *obs.HistSnapshot) latencyReport {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return latencyReport{
		Count:  s.Count,
		P50ms:  ms(s.Quantile(0.50)),
		P90ms:  ms(s.Quantile(0.90)),
		P99ms:  ms(s.Quantile(0.99)),
		P999ms: ms(s.Quantile(0.999)),
		MaxMs:  ms(s.Max),
		MeanMs: s.Mean() / 1e6,
	}
}

// report is the full run summary; the JSON encoding is the BENCH
// artifact format.
type report struct {
	Target        string  `json:"target"`
	TargetRate    float64 `json:"target_rate"`
	AchievedRate  float64 `json:"achieved_rate"`
	DurationS     float64 `json:"duration_s"`
	ReadFraction  float64 `json:"read_fraction"`
	ZipfS         float64 `json:"zipf_s"`
	Keys          int     `json:"keys"`
	Ops           uint64  `json:"ops"`
	Errors        uint64  `json:"errors"`
	ErrorFraction float64 `json:"error_fraction"`

	// Overload accounting. A 429 is the daemon keeping its latency
	// promise by refusing work — counted as shed, never as an error.
	// Goodput is the rate of requests that actually completed 2xx;
	// under overload it is the number that matters, since throughput
	// alone can be padded with cheap refusals.
	Shed         uint64  `json:"shed"`
	ShedFraction float64 `json:"shed_fraction"`
	Retries      uint64  `json:"retries"`
	GoodputRate  float64 `json:"goodput_rate"`

	Read    latencyReport `json:"read"`
	Write   latencyReport `json:"write"`
	Overall latencyReport `json:"overall"`

	SLO *sloReport `json:"slo,omitempty"`
}

// health mirrors the /healthz fields the generator needs.
type health struct {
	Dim   int `json:"dim"`
	Nodes int `json:"nodes"`
}

func fetchHealth(client *http.Client, target string) (health, error) {
	var h health
	resp, err := client.Get(target + "/healthz")
	if err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// post sends one JSON body and drains the response. It returns the
// HTTP status (0 on a transport error) so the caller can tell a shed
// (429 — retryable by design) from a genuine failure.
func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// randVec fills vec with a random unit-ish vector.
func randVec(rng *rand.Rand, vec []float64) {
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
}

// preloadStore seeds ids 0..n-1 with random vectors in batches, so a
// fresh daemon has a key space for zipfian reads to hit.
func preloadStore(cfg genConfig, n int) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	vec := make([]float64, cfg.dim)
	const batch = 512
	type update struct {
		ID     int       `json:"id"`
		Vector []float64 `json:"vector"`
	}
	for lo := 0; lo < n; lo += batch {
		hi := min(lo+batch, n)
		updates := make([]update, 0, hi-lo)
		for id := lo; id < hi; id++ {
			randVec(rng, vec)
			updates = append(updates, update{ID: id, Vector: append([]float64(nil), vec...)})
		}
		body, err := json.Marshal(map[string]any{"updates": updates})
		if err != nil {
			return err
		}
		if _, err := post(cfg.client, cfg.target+"/v1/upsert", body); err != nil {
			return fmt.Errorf("preload [%d,%d): %w", lo, hi, err)
		}
	}
	return nil
}

// runLoad executes the configured pass and returns its report.
func runLoad(cfg genConfig) (*report, error) {
	if cfg.client == nil {
		cfg.client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.workers,
				MaxIdleConnsPerHost: cfg.workers,
			},
		}
	}
	h, err := fetchHealth(cfg.client, cfg.target)
	if err != nil {
		return nil, err
	}
	if cfg.dim == 0 {
		cfg.dim = h.Dim
	}
	if cfg.dim < 1 {
		return nil, fmt.Errorf("store reports dim %d; pass -dim", h.Dim)
	}
	if cfg.preload > 0 {
		if err := preloadStore(cfg, cfg.preload); err != nil {
			return nil, err
		}
		if h.Nodes < cfg.preload {
			h.Nodes = cfg.preload
		}
	}
	if cfg.keys == 0 {
		cfg.keys = h.Nodes
	}
	if cfg.keys == 0 && (cfg.readFrac > 0 || cfg.preload == 0) {
		return nil, fmt.Errorf("empty store and no key space: pass -preload or -keys")
	}

	reg := obs.NewRegistry()
	readHist := reg.Histogram("loadgen_latency_seconds",
		"Intended-start-to-response latency.", obs.L("op", "read"))
	writeHist := reg.Histogram("loadgen_latency_seconds",
		"Intended-start-to-response latency.", obs.L("op", "write"))
	errs := reg.Counter("loadgen_errors_total", "Transport errors and non-2xx, non-429 responses.")
	shed := reg.Counter("loadgen_shed_total", "Requests whose final attempt was refused with 429.")
	retried := reg.Counter("loadgen_retries_total", "Extra attempts made after a 429.")

	n := int(cfg.rate * cfg.duration.Seconds())
	if n < 1 {
		n = 1
	}
	// The schedule channel holds every intended arrival, so the
	// dispatcher never blocks on slow workers: arrivals stay on the
	// open-loop clock and backlog shows up as measured latency.
	sched := make(chan time.Time, n)
	interval := time.Duration(float64(time.Second) / cfg.rate)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919 + 1))
			var zipf *rand.Zipf
			if cfg.keys > 0 {
				zipf = rand.NewZipf(rng, cfg.zipfS, cfg.zipfV, uint64(cfg.keys-1))
			}
			vec := make([]float64, cfg.dim)
			var buf bytes.Buffer
			for t := range sched {
				buf.Reset()
				enc := json.NewEncoder(&buf)
				read := rng.Float64() < cfg.readFrac
				var url string
				if read {
					url = cfg.target + "/v1/neighbors"
					if zipf != nil {
						_ = enc.Encode(map[string]any{"id": zipf.Uint64(), "k": cfg.k})
					} else {
						randVec(rng, vec)
						_ = enc.Encode(map[string]any{"vector": vec, "k": cfg.k})
					}
				} else {
					url = cfg.target + "/v1/upsert"
					id := uint64(rng.Intn(cfg.keys + 1))
					if zipf != nil {
						id = zipf.Uint64()
					}
					randVec(rng, vec)
					_ = enc.Encode(map[string]any{"id": id, "vector": vec})
				}
				// First attempt plus up to cfg.retries more on a 429,
				// jittered-exponential backoff between, the whole affair
				// capped by the retry budget measured from the intended
				// start — a retried request that finally lands still has
				// its full queue+retry delay in the recorded latency.
				status, err := post(cfg.client, url, buf.Bytes())
				backoff := 2 * time.Millisecond
				for attempt := 0; status == http.StatusTooManyRequests &&
					attempt < cfg.retries &&
					time.Since(t)+backoff < cfg.retryBudget; attempt++ {
					time.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff))))
					backoff *= 2
					retried.Inc()
					status, err = post(cfg.client, url, buf.Bytes())
				}
				lat := time.Since(t) // from intended start: queue delay counts
				switch {
				case status == http.StatusTooManyRequests:
					shed.Inc() // refused to the end; not goodput, not an error
				case err != nil:
					errs.Inc()
				default:
					// Only completed requests feed the latency quantiles:
					// the report's p99 is the accepted-request p99, not a
					// blend of real work and cheap refusals.
					if read {
						readHist.Observe(int64(lat))
					} else {
						writeHist.Observe(int64(lat))
					}
				}
			}
		}(w)
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(i) * interval)
		if d := time.Until(t); d > 0 {
			time.Sleep(d)
		}
		sched <- t
	}
	close(sched)
	wg.Wait()
	elapsed := time.Since(start)

	var rs, ws obs.HistSnapshot
	readHist.Snapshot(&rs)
	writeHist.Snapshot(&ws)
	all := rs
	all.Merge(&ws)

	rep := &report{
		Target:       cfg.target,
		TargetRate:   cfg.rate,
		AchievedRate: float64(n) / elapsed.Seconds(),
		DurationS:    elapsed.Seconds(),
		ReadFraction: cfg.readFrac,
		ZipfS:        cfg.zipfS,
		Keys:         cfg.keys,
		Ops:          uint64(n),
		Errors:       errs.Load(),
		Shed:         shed.Load(),
		Retries:      retried.Load(),
		GoodputRate:  float64(all.Count) / elapsed.Seconds(),
		Read:         summarize(&rs),
		Write:        summarize(&ws),
		Overall:      summarize(&all),
	}
	if rep.Ops > 0 {
		rep.ErrorFraction = float64(rep.Errors) / float64(rep.Ops)
		rep.ShedFraction = float64(rep.Shed) / float64(rep.Ops)
	}
	return rep, nil
}
