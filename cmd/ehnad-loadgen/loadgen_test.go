package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	checks, err := parseSLO(" p99<5ms, errors<1% ,p50<800us")
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 3 {
		t.Fatalf("got %d checks, want 3", len(checks))
	}
	if checks[0].metric != "p99" || checks[0].limit != 0.005 {
		t.Errorf("p99 clause parsed as %+v", checks[0])
	}
	if checks[1].metric != "errors" || checks[1].limit != 0.01 {
		t.Errorf("errors clause parsed as %+v", checks[1])
	}
	if checks[2].metric != "p50" || checks[2].limit != 0.0008 {
		t.Errorf("p50 clause parsed as %+v", checks[2])
	}

	goodput, err := parseSLO("goodput>400")
	if err != nil {
		t.Fatal(err)
	}
	if len(goodput) != 1 || goodput[0].metric != "goodput" || goodput[0].limit != 400 || !goodput[0].lower {
		t.Errorf("goodput clause parsed as %+v", goodput)
	}

	if got, err := parseSLO(""); err != nil || got != nil {
		t.Errorf("empty slo: got %v, %v", got, err)
	}
	for _, bad := range []string{"p99", "p98<5ms", "p99<banana", "errors<1", "p99<-3ms", "errors<nope%",
		"goodput<400", "goodput>banana", "goodput>-5", "p99>5ms"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
}

func TestEvalSLOGate(t *testing.T) {
	rep := &report{
		Overall:       latencyReport{Count: 1000, P50ms: 1, P99ms: 4, P999ms: 8, MaxMs: 12, MeanMs: 1.5},
		ErrorFraction: 0.002,
		GoodputRate:   450,
	}

	pass, _ := parseSLO("p99<5ms,errors<1%,goodput>400")
	if out := evalSLO("x", pass, rep); !out.Pass {
		t.Errorf("gate should pass: %+v", out.Checks)
	}
	fail, _ := parseSLO("p99<3ms")
	if out := evalSLO("x", fail, rep); out.Pass {
		t.Error("gate should fail below measured p99")
	}
	failErr, _ := parseSLO("p99<5ms,errors<0.1%")
	out := evalSLO("x", failErr, rep)
	if out.Pass {
		t.Error("gate should fail on the errors clause")
	}
	if !out.Checks[0].Pass || out.Checks[1].Pass {
		t.Errorf("per-clause verdicts wrong: %+v", out.Checks)
	}
	failGood, _ := parseSLO("goodput>500")
	if out := evalSLO("x", failGood, rep); out.Pass {
		t.Error("gate should fail on goodput below the lower bound")
	}
}

// stubDaemon fakes the three endpoints the generator touches, with a
// controllable per-request delay and failure set.
func stubDaemon(t *testing.T, delay time.Duration, failEvery int) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var reads, writes atomic.Int64
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "dim": 4, "nodes": 100})
	})
	handle := func(count *atomic.Int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			count.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			if failEvery > 0 && calls.Add(1)%int64(failEvery) == 0 {
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			}
			json.NewEncoder(w).Encode(map[string]any{"ok": true})
		}
	}
	mux.HandleFunc("/v1/neighbors", handle(&reads))
	mux.HandleFunc("/v1/upsert", handle(&writes))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &reads, &writes
}

func TestRunLoadOpenLoop(t *testing.T) {
	srv, reads, writes := stubDaemon(t, 0, 0)
	rep, err := runLoad(genConfig{
		target:   srv.URL,
		rate:     400,
		duration: 500 * time.Millisecond,
		workers:  16,
		readFrac: 0.75,
		k:        5,
		zipfS:    1.1,
		zipfV:    1,
		seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := uint64(200)
	if rep.Ops != wantOps {
		t.Errorf("ops = %d, want %d", rep.Ops, wantOps)
	}
	if got := uint64(reads.Load() + writes.Load()); got != wantOps {
		t.Errorf("server saw %d requests, want %d", got, wantOps)
	}
	if rep.Read.Count+rep.Write.Count != rep.Ops {
		t.Errorf("read %d + write %d != ops %d", rep.Read.Count, rep.Write.Count, rep.Ops)
	}
	// 75/25 mix over 200 coin flips: allow a generous band.
	frac := float64(rep.Read.Count) / float64(rep.Ops)
	if frac < 0.55 || frac > 0.95 {
		t.Errorf("read fraction %.2f far from configured 0.75", frac)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if rep.Keys != 100 {
		t.Errorf("keys = %d, want 100 (from healthz nodes)", rep.Keys)
	}
	if rep.Overall.P50ms <= 0 || rep.Overall.P999ms < rep.Overall.P50ms {
		t.Errorf("quantiles implausible: %+v", rep.Overall)
	}
}

// TestRunLoadCoordinatedOmission pins the property that distinguishes
// an open-loop harness: with one worker and a server stalling 50ms per
// request at a 1ms arrival interval, queueing delay must show up in
// the tail (closed-loop tools would report ~50ms for every request).
func TestRunLoadCoordinatedOmission(t *testing.T) {
	const delay = 50 * time.Millisecond
	srv, _, _ := stubDaemon(t, delay, 0)
	rep, err := runLoad(genConfig{
		target:   srv.URL,
		rate:     1000,
		duration: 20 * time.Millisecond, // 20 arrivals, served serially
		workers:  1,
		readFrac: 1,
		k:        5,
		zipfS:    1.1,
		zipfV:    1,
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last of 20 queued arrivals waits ~19 service times: its
	// intended-start latency is far above one service time.
	if rep.Overall.MaxMs < 5*float64(delay.Milliseconds()) {
		t.Errorf("max latency %.1fms does not reflect queueing (service time %.0fms): coordinated omission",
			rep.Overall.MaxMs, float64(delay.Milliseconds()))
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	srv, _, _ := stubDaemon(t, 0, 4) // every 4th request 500s
	rep, err := runLoad(genConfig{
		target:   srv.URL,
		rate:     400,
		duration: 250 * time.Millisecond,
		workers:  8,
		readFrac: 1,
		k:        5,
		zipfS:    1.1,
		zipfV:    1,
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("injected failures not counted")
	}
	want := float64(rep.Errors) / float64(rep.Ops)
	if rep.ErrorFraction != want {
		t.Errorf("error fraction %f, want %f", rep.ErrorFraction, want)
	}
	if rep.ErrorFraction < 0.15 || rep.ErrorFraction > 0.35 {
		t.Errorf("error fraction %.2f far from injected 0.25", rep.ErrorFraction)
	}
}

// TestRunLoadCountsShedAndRetries pins the overload accounting: a
// daemon refusing every request with 429 produces shed + retries, not
// errors, zero goodput, and an empty accepted-latency distribution.
func TestRunLoadCountsShedAndRetries(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "dim": 4, "nodes": 100})
	})
	mux.HandleFunc("/v1/neighbors", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := runLoad(genConfig{
		target:      srv.URL,
		rate:        200,
		duration:    250 * time.Millisecond,
		workers:     8,
		readFrac:    1,
		k:           5,
		zipfS:       1.1,
		zipfV:       1,
		seed:        1,
		retries:     2,
		retryBudget: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != rep.Ops {
		t.Errorf("shed = %d, want every op (%d)", rep.Shed, rep.Ops)
	}
	if rep.ShedFraction != 1 {
		t.Errorf("shed fraction = %f, want 1", rep.ShedFraction)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d; a 429 must not count as an error", rep.Errors)
	}
	if rep.Retries != 2*rep.Ops {
		t.Errorf("retries = %d, want 2 per op (%d)", rep.Retries, 2*rep.Ops)
	}
	if rep.GoodputRate != 0 {
		t.Errorf("goodput = %f, want 0 when everything sheds", rep.GoodputRate)
	}
	if rep.Overall.Count != 0 {
		t.Errorf("accepted-latency count = %d; shed requests must not enter the quantiles", rep.Overall.Count)
	}
}

func TestRunLoadPreloads(t *testing.T) {
	var preloaded atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "dim": 3, "nodes": 0})
	})
	mux.HandleFunc("/v1/upsert", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID      *int `json:"id"`
			Updates []struct {
				ID     int       `json:"id"`
				Vector []float64 `json:"vector"`
			} `json:"updates"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, u := range req.Updates {
			if len(u.Vector) != 3 {
				http.Error(w, "bad dim", http.StatusBadRequest)
				return
			}
			preloaded.Add(1)
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": true})
	})
	mux.HandleFunc("/v1/neighbors", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := runLoad(genConfig{
		target:   srv.URL,
		rate:     200,
		duration: 100 * time.Millisecond,
		workers:  4,
		readFrac: 0.5,
		k:        5,
		zipfS:    1.1,
		zipfV:    1,
		seed:     1,
		preload:  700, // crosses the 512 batch boundary
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := preloaded.Load(); got != 700 {
		t.Errorf("preloaded %d vectors, want 700", got)
	}
	if rep.Keys != 700 {
		t.Errorf("keys = %d, want preload count 700", rep.Keys)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
}
