// Command benchjson converts `go test -bench` text output into JSON and
// merges it under a label into a trajectory file, so benchmark runs
// before and after a change land in one machine-readable document:
//
//	go test -run=NONE -bench=. -benchmem . > bench.txt
//	benchjson -label before -out BENCH_PR2.json bench.txt
//	... apply the change ...
//	benchjson -label after -out BENCH_PR2.json bench2.txt
//
// scripts/bench.sh orchestrates exactly this flow for the repo's key
// benchmarks. With no input files, stdin is read.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op plus any
	// custom b.ReportMetric units (e.g. recall@10, EHNA_s).
	Metrics map[string]float64 `json:"metrics"`
}

// Run is the set of benchmarks captured under one label.
type Run struct {
	GOOS   string      `json:"goos,omitempty"`
	GOARCH string      `json:"goarch,omitempty"`
	CPU    string      `json:"cpu,omitempty"`
	Bench  []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "label to store this run under (e.g. before, after)")
	out := flag.String("out", "BENCH_PR2.json", "JSON file to merge the run into")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	var readers []io.Reader
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		readers = append(readers, f)
	}

	run := &Run{}
	for _, r := range readers {
		if err := parseInto(run, r); err != nil {
			fatal(err)
		}
	}
	if len(run.Bench) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	doc := map[string]*Run{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fatal(fmt.Errorf("%s: %v", *out, err))
		}
	}
	doc[*label] = run
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks under %q to %s\n", len(run.Bench), *label, *out)
}

// parseInto scans go-test benchmark output, appending results to run.
func parseInto(run *Run, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		run.Bench = append(run.Bench, b)
	}
	return sc.Err()
}

// parseLine parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the trailing -GOMAXPROCS suffix from the name.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
