package main

// In-process leader/follower integration tests for the WAL-shipping
// replication plane: bootstrap from /v1/export, stream convergence,
// follower write refusal, promotion, and resume-after-restart. The
// multi-process failover drill (router + SIGKILL) lives in
// cluster_test.go; these pin the daemon-level mechanics fast enough
// for every test run.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ehna/internal/cluster"
	"ehna/internal/embstore"
)

// waitConverged polls until the follower's applied watermark reaches
// want and its store matches the leader's.
func waitConverged(t *testing.T, follower, leader *server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if follower.dur.applied() == want && follower.store.Equal(leader.store) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: applied %d, want %d (stores equal: %v)",
				follower.dur.applied(), want, follower.store.Equal(leader.store))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchReplStatus(t *testing.T, base string) cluster.ReplStatus {
	t.Helper()
	st, err := cluster.FetchReplStatus(t.Context(), http.DefaultClient, base)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReplicationFollowerConvergesAndPromotes runs the whole follower
// lifecycle in-process: bootstrap mid-history from the leader's
// watermark-stamped export, tail the stream to convergence, refuse
// writes while following, and — after promotion — own the write path
// at exactly the applied watermark.
func TestReplicationFollowerConvergesAndPromotes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	leader, err := buildServer(crashTestConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.close()
	tsL := httptest.NewServer(leader.handler())
	defer tsL.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	// History the follower must receive via bootstrap, not streaming.
	for i := 0; i < 60; i++ {
		if err := randomCrashOp(rng).post(client, tsL.URL); err != nil {
			t.Fatalf("leader write %d: %v", i, err)
		}
	}
	bootstrapSeq := leader.dur.applied()

	fcfg := crashTestConfig(t.TempDir())
	fcfg.follow = tsL.URL
	follower, err := buildServer(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.close()
	tsF := httptest.NewServer(follower.handler())
	defer tsF.Close()

	// The bootstrap export was stamped at the leader's watermark, so the
	// follower starts there — no stream replay of old history.
	if got := follower.dur.watermark.Load(); got != bootstrapSeq {
		t.Fatalf("bootstrap snapshot watermark %d, want the leader's export seq %d", got, bootstrapSeq)
	}

	// New writes arrive via the stream with leader numbering preserved.
	for i := 0; i < 40; i++ {
		if err := randomCrashOp(rng).post(client, tsL.URL); err != nil {
			t.Fatalf("leader write %d: %v", i, err)
		}
	}
	waitConverged(t, follower, leader, leader.dur.applied())

	// Roles and watermarks over the status endpoint.
	if st := fetchReplStatus(t, tsL.URL); st.Role != "leader" {
		t.Fatalf("leader /v1/repl/status role = %q", st.Role)
	}
	st := fetchReplStatus(t, tsF.URL)
	if st.Role != "follower" || st.Leader != tsL.URL {
		t.Fatalf("follower /v1/repl/status = %+v", st)
	}
	if st.Applied != leader.dur.applied() {
		t.Fatalf("follower applied %d, leader at %d", st.Applied, leader.dur.applied())
	}

	// Writes to a follower are refused with the overload contract.
	vec := make([]float64, crashDim)
	status, _ := postJSON(t, tsF.URL+"/v1/upsert", map[string]any{"id": 1, "vector": vec}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted a write with %d, want 503", status)
	}
	// Searches keep serving on the follower.
	var nresp neighborsResponse
	if status, body := postJSON(t, tsF.URL+"/v1/neighbors", map[string]any{"id": int(leader.store.IDs()[0]), "k": 3}, &nresp); status != http.StatusOK {
		t.Fatalf("follower search got %d (%s), want 200", status, body)
	}

	// Promote: the applied watermark is the acked-write survival line.
	wantApplied := leader.dur.applied()
	var promoted struct {
		Applied uint64 `json:"applied"`
	}
	if status, body := postJSON(t, tsF.URL+"/v1/admin/promote", nil, &promoted); status != http.StatusOK {
		t.Fatalf("promote got %d (%s)", status, body)
	}
	if promoted.Applied != wantApplied {
		t.Fatalf("promoted at applied %d, want %d", promoted.Applied, wantApplied)
	}
	if st := fetchReplStatus(t, tsF.URL); st.Role != "leader" {
		t.Fatalf("post-promotion role = %q, want leader", st.Role)
	}
	// The new leader owns writes, continuing the same sequence space.
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	if status, body := postJSON(t, tsF.URL+"/v1/upsert", map[string]any{"id": 1, "vector": vec}, &ack); status != http.StatusOK {
		t.Fatalf("post-promotion write got %d (%s)", status, body)
	}
	if ack.Seq != wantApplied+1 {
		t.Fatalf("post-promotion write acked seq %d, want %d (contiguous with replicated history)", ack.Seq, wantApplied+1)
	}
}

// TestReplicationFollowerResumesAfterRestart reboots a follower from
// its own WAL directory and checks it resumes streaming from its local
// watermark — the FirstSeq plumbing that keeps a bootstrapped log's
// numbering straight across restarts.
func TestReplicationFollowerResumesAfterRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	leader, err := buildServer(crashTestConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.close()
	tsL := httptest.NewServer(leader.handler())
	defer tsL.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	for i := 0; i < 30; i++ {
		if err := randomCrashOp(rng).post(client, tsL.URL); err != nil {
			t.Fatal(err)
		}
	}

	fDir := t.TempDir()
	fcfg := crashTestConfig(fDir)
	fcfg.follow = tsL.URL
	follower, err := buildServer(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := randomCrashOp(rng).post(client, tsL.URL); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, follower, leader, leader.dur.applied())
	follower.close() // clean stop; state is in snapshot + wal suffix

	// More history lands while the follower is down.
	for i := 0; i < 20; i++ {
		if err := randomCrashOp(rng).post(client, tsL.URL); err != nil {
			t.Fatal(err)
		}
	}

	follower2, err := buildServer(fcfg)
	if err != nil {
		t.Fatalf("follower reboot: %v", err)
	}
	defer follower2.close()
	waitConverged(t, follower2, leader, leader.dur.applied())

	// And the exported images agree end to end.
	resp, err := client.Get(tsL.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	exported, _, err := embstore.LoadSnapshotAt(resp.Body, 4, embstore.F64)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !exported.Equal(follower2.store) {
		t.Fatal("leader export and rebooted follower store diverge")
	}
}
