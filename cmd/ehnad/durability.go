// The durability layer: what turns the daemon from a cache into a
// system of record.
//
// Write path (the applier): every mutation takes d.mu, appends to the
// WAL buffer, applies to the store+index through the Swapper, releases
// d.mu, and only acknowledges after wal.Commit makes the records
// durable per -fsync (concurrent requests group-commit behind one
// fsync). Because append and apply happen under one lock, "everything
// the log holds up to seq S has been applied" is true whenever the
// lock is free — the invariant snapshot watermarking leans on.
//
// Snapshot rotation: under d.mu (writes stall, searches don't), Rotate
// seals the WAL segment and yields the watermark W; the store snapshot
// (stamped with W) and the HNSW graph snapshot are then written
// tmp+rename as a consistent pair. After the lock drops, sealed WAL
// segments ≤ W are deleted. A crash at any point leaves either the old
// pair + full WAL or the new pair + WAL suffix — both recover exactly.
//
// Boot: load the snapshot pair (graph invalid/stale → rebuild), then
// replay the WAL suffix (seq > W) through the index. Records that bled
// into the snapshot past W replay harmlessly (last-writer-wins).
//
// Compaction: when the HNSW tombstone ratio passes -compact-at, the
// maintenance loop rebuilds the graph from the store in the background
// and atomically swaps it in (see ann.Swapper), then rotates a
// snapshot so the on-disk graph is fresh too.
//
// Read-only degraded mode: the first append or fsync failure poisons
// the log (wal's sticky syncErr), so instead of acknowledging writes
// it cannot persist the daemon flips readOnly and refuses mutations at
// the front door with errReadOnly (503 at the HTTP layer, with
// Retry-After). Searches keep serving throughout. A background heal
// loop periodically reopens the log directory (repairing any torn tail
// the failure left), probes it with a real fsync, and — only after a
// successful reconciliation snapshot of the in-memory state — resumes
// writes. The gate sitting in front of append keeps the ambiguity
// window minimal: only operations already in flight when the fault hit
// can end up applied-but-unacknowledged.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/faultfs"
	"ehna/internal/graph"
	"ehna/internal/obs"
	"ehna/internal/wal"
)

// compactCheckEvery is how often the maintenance loop samples the
// tombstone ratio. Cheap (two ints under RLock), so frequent.
const compactCheckEvery = 5 * time.Second

// healCheckEvery is how often the maintenance loop retries a WAL heal
// while the daemon is read-only.
const healCheckEvery = time.Second

// errReadOnly is returned to mutations while the daemon is in
// read-only degraded mode. The HTTP layer maps it to 503.
var errReadOnly = errors.New("read-only mode: WAL persistence failed; writes disabled until the log heals")

type durable struct {
	mu   sync.Mutex // the applier lock; see the package comment
	logp atomic.Pointer[wal.Log]

	sw    *ann.Swapper
	store *embstore.Store

	walDir    string
	walOpts   wal.Options
	fsys      faultfs.FS
	snapPath  string // the rotating flat v3 snapshot (store.snap)
	gobPath   string // legacy gob snapshot; removed once a v3 pair is durable
	graphPath string // "" unless the index is hnsw
	hnswCfg   ann.HNSWConfig
	isHNSW    bool
	compactAt float64
	interval  time.Duration

	stop chan struct{}
	done chan struct{}

	reg *obs.Registry // set by registerMetrics; heal() re-binds WAL gauges

	replayed        int // records recovered at boot
	replayTorn      bool
	snapshots       atomic.Int64
	lastSnapshot    atomic.Int64 // unix seconds
	watermark       atomic.Uint64
	compactRunning  atomic.Bool
	compactions     atomic.Int64
	lastCompaction  atomic.Int64 // unix seconds
	snapshotErrs    atomic.Int64
	lastSnapshotErr atomic.Value // string

	readOnly      atomic.Bool
	readOnlyCause atomic.Value // string
	readOnlySince atomic.Int64 // unix seconds
	healAttempts  atomic.Int64
	heals         atomic.Int64
}

// wal returns the live log. An atomic pointer because heal() swaps in
// a fresh log while metrics closures and late Commit calls may still
// hold the old one.
func (d *durable) wal() *wal.Log { return d.logp.Load() }

// newDurable recovers state (WAL replay over the already-loaded
// snapshot), opens the log for appending (repairing any torn tail),
// and starts the maintenance loop.
func newDurable(cfg serverConfig, store *embstore.Store, sw *ann.Swapper, watermark uint64) (*durable, error) {
	d := &durable{
		sw:        sw,
		store:     store,
		walDir:    cfg.walDir,
		snapPath:  walSnapshotV3Path(cfg.walDir),
		gobPath:   walSnapshotPath(cfg.walDir),
		hnswCfg:   hnswConfigOf(cfg.index),
		isHNSW:    cfg.index.kind == "hnsw",
		compactAt: cfg.compactAt,
		interval:  cfg.snapshotInterval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if d.isHNSW {
		d.graphPath = cfg.index.graphPath
	}
	d.watermark.Store(watermark)

	fsys := cfg.fs
	if fsys == nil {
		fsys = faultfs.OS()
	}
	d.fsys = fsys
	// Recovery: replay the log suffix through the index (graph + store).
	info, err := wal.ReplayFS(fsys, cfg.walDir, watermark, func(r wal.Record) error {
		switch r.Op {
		case wal.OpUpsert:
			return sw.Add(r.ID, r.Vec)
		case wal.OpDelete:
			sw.Remove(r.ID)
			return nil
		default:
			return fmt.Errorf("wal record %d has unknown op %d", r.Seq, r.Op)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("wal replay: %w", err)
	}
	d.replayed, d.replayTorn = info.Records, info.Torn
	if info.Torn {
		log.Printf("ehnad: wal %s has a torn tail at %s+%d (crash mid-append); truncating and continuing",
			cfg.walDir, info.TornPath, info.TornOffset)
	}
	log.Printf("ehnad: wal recovery: %d records replayed past watermark %d (last seq %d)",
		info.Records, watermark, info.LastSeq)

	policy, ivl, err := wal.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return nil, err
	}
	// FirstSeq matters only when the directory has no segments yet: a
	// follower bootstrapped from a leader snapshot at watermark W must
	// open its empty log at W+1 so replicated records keep the leader's
	// numbering and Replay(W) finds no gap. (A leader whose log was
	// rotated always has a live segment, so FirstSeq is ignored there.)
	d.walOpts = wal.Options{Sync: policy, Interval: ivl, FS: cfg.fs, FirstSeq: watermark + 1}
	l, err := wal.Open(cfg.walDir, d.walOpts)
	if err != nil {
		return nil, fmt.Errorf("wal open: %w", err)
	}
	d.logp.Store(l)
	go d.run()
	return d, nil
}

// enterReadOnly flips the daemon into read-only degraded mode on the
// first persistence failure. Idempotent; later failures keep the
// original cause.
func (d *durable) enterReadOnly(cause error) {
	if !d.readOnly.CompareAndSwap(false, true) {
		return
	}
	d.readOnlyCause.Store(cause.Error())
	d.readOnlySince.Store(time.Now().Unix())
	log.Printf("ehnad: entering read-only mode: %v (searches keep serving; writes refuse with 503 until the WAL heals)", cause)
}

// isReadOnly reports whether mutations are currently refused.
func (d *durable) isReadOnly() bool { return d.readOnly.Load() }

// heal tries to exit read-only mode: close the poisoned log, reopen
// the directory (wal.Open truncates any torn tail the failed writes
// left), probe the fresh log with a real fsync, and rotate a
// reconciliation snapshot of the in-memory state before accepting
// writes again. The snapshot matters: operations that were applied in
// memory but torn out of the failed log would otherwise be silently
// missing from a later recovery. Any step failing leaves the daemon
// read-only for the next tick to retry.
func (d *durable) heal() {
	d.healAttempts.Add(1)
	d.mu.Lock()
	old := d.wal()
	_ = old.Close() // flush what it still can; errors are expected here
	fresh, err := wal.Open(d.walDir, d.walOpts)
	if err != nil {
		d.mu.Unlock()
		log.Printf("ehnad: wal heal: reopen: %v (still read-only)", err)
		return
	}
	if err := fresh.Sync(); err != nil {
		fresh.Close()
		d.mu.Unlock()
		log.Printf("ehnad: wal heal: fsync probe: %v (still read-only)", err)
		return
	}
	d.logp.Store(fresh)
	d.mu.Unlock()

	if d.reg != nil {
		fresh.RegisterMetrics(d.reg) // GaugeFunc re-registration re-binds to the live log
	}
	if _, err := d.snapshot(); err != nil {
		log.Printf("ehnad: wal heal: reconciliation snapshot: %v (still read-only)", err)
		return
	}
	d.heals.Add(1)
	d.readOnly.Store(false)
	log.Printf("ehnad: wal healed after %d attempts; leaving read-only mode", d.healAttempts.Load())
}

// upsert logs then applies a batch of updates, acknowledging only
// once the records are durable. The WAL write happening before the
// apply is the whole point: a crash after the append replays the
// mutation, a crash before it means the client never got an ack.
// Append+apply run under d.mu (preserving the watermark invariant);
// the durability wait happens after the lock drops, so concurrent
// requests group-commit behind one fsync instead of each paying a
// serialized sync. The read-only gate sits in front of the append so
// a poisoned log refuses work before mutating anything.
// It returns the last WAL sequence the batch was logged at — the ack
// token a client (or the shard router) can compare against a new
// leader's promotion watermark after a failover.
func (d *durable) upsert(updates []upsertUpdate) (uint64, error) {
	if d.readOnly.Load() {
		return 0, errReadOnly
	}
	recs := make([]wal.Record, len(updates))
	for i, u := range updates {
		recs[i] = wal.Record{Op: wal.OpUpsert, ID: *u.ID, Vec: u.Vector}
	}
	d.mu.Lock()
	lg := d.wal()
	last, err := lg.AppendBuffered(recs)
	if err == nil {
		for _, u := range updates {
			if err = d.sw.Add(*u.ID, u.Vector); err != nil {
				break
			}
		}
	}
	d.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("wal append: %w", err)
		d.enterReadOnly(err)
		return 0, err
	}
	if err := lg.Commit(last); err != nil {
		err = fmt.Errorf("wal commit: %w", err)
		d.enterReadOnly(err)
		return 0, err
	}
	return last, nil
}

// delete logs then applies removals, reporting how many were present.
// Same locking shape as upsert: append+apply inside d.mu, durability
// wait (group-committed) outside it.
func (d *durable) delete(ids []graph.NodeID) (int, uint64, error) {
	if d.readOnly.Load() {
		return 0, 0, errReadOnly
	}
	recs := make([]wal.Record, len(ids))
	for i, id := range ids {
		recs[i] = wal.Record{Op: wal.OpDelete, ID: id}
	}
	d.mu.Lock()
	lg := d.wal()
	last, err := lg.AppendBuffered(recs)
	n := 0
	if err == nil {
		for _, id := range ids {
			if d.sw.Remove(id) {
				n++
			}
		}
	}
	d.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("wal append: %w", err)
		d.enterReadOnly(err)
		return 0, 0, err
	}
	if err := lg.Commit(last); err != nil {
		err = fmt.Errorf("wal commit: %w", err)
		d.enterReadOnly(err)
		return n, 0, err
	}
	return n, last, nil
}

// replicate is the follower apply path: one contiguous batch from the
// leader's replication stream, appended at the leader's sequence
// numbers (AppendAt refuses divergence before writing) and applied to
// the store+index — the same append+apply-under-d.mu shape as upsert
// and delete, so the applier-lock watermark invariant holds for
// replicated records exactly as for local ones.
func (d *durable) replicate(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if d.readOnly.Load() {
		return errReadOnly
	}
	d.mu.Lock()
	lg := d.wal()
	last, err := lg.AppendAt(recs)
	if err == nil {
		for _, r := range recs {
			switch r.Op {
			case wal.OpUpsert:
				err = d.sw.Add(r.ID, r.Vec)
			case wal.OpDelete:
				d.sw.Remove(r.ID)
			default:
				err = fmt.Errorf("replicated record %d has unknown op %d", r.Seq, r.Op)
			}
			if err != nil {
				break
			}
		}
	}
	d.mu.Unlock()
	if err != nil {
		if errors.Is(err, wal.ErrDiverged) {
			// Protocol disagreement, not a persistence failure: nothing was
			// written, so the log stays healthy and writable.
			return err
		}
		err = fmt.Errorf("replicated apply: %w", err)
		d.enterReadOnly(err)
		return err
	}
	if err := lg.Commit(last); err != nil {
		err = fmt.Errorf("wal commit: %w", err)
		d.enterReadOnly(err)
		return err
	}
	return nil
}

// applied reports the watermark through which the local state reflects
// the log — LastSeq, by the applier-lock invariant.
func (d *durable) applied() uint64 { return d.wal().LastSeq() }

// exportTo streams a store snapshot stamped with the current WAL
// watermark. Holding d.mu freezes the write path for the duration (a
// consistent pair of store image + watermark is the point: a follower
// bootstrapping from it resumes streaming at exactly this sequence);
// searches keep serving throughout.
func (d *durable) exportTo(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.SaveSnapshot(w, d.wal().LastSeq())
}

// snapshot rotates the WAL and writes the store (+ graph) snapshot
// pair, then truncates sealed segments the pair covers. Holding d.mu
// across the writes stalls mutations — not searches — for the
// duration; the price of an exactly-consistent pair.
//
// The store image is the flat v3 format. When the store serves from a
// mapped base, the fresh image is remapped in as the new base before
// the lock drops — folding the overlay back to zero heap — and a
// legacy gob snapshot, if one is still lying around from before the
// format switch, is deleted now that a v3 pair covers it.
func (d *durable) snapshot() (uint64, error) {
	start := time.Now()
	wm, err := func() (uint64, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		wm, err := d.wal().Rotate()
		if err != nil {
			return 0, fmt.Errorf("wal rotate: %w", err)
		}
		if err := writeStoreSnapshotV3(d.fsys, d.snapPath, d.store, wm); err != nil {
			return 0, fmt.Errorf("store snapshot: %w", err)
		}
		if d.graphPath != "" {
			if h, ok := d.sw.Current().(*ann.HNSW); ok {
				if err := writeFileAtomicFS(d.fsys, d.graphPath, func(f faultfs.File) error {
					return h.SaveGraph(f)
				}); err != nil {
					return 0, fmt.Errorf("graph snapshot: %w", err)
				}
			}
		}
		if d.store.Cold() {
			// Writers are stalled under d.mu (the applier lock), which is
			// exactly the quiescence Remap's contract asks for. A failed
			// fold is survivable: the old base keeps serving and the
			// overlay simply persists until the next rotation.
			if err := d.store.Remap(d.snapPath); err != nil {
				log.Printf("ehnad: overlay fold: remap %s: %v (serving continues on the previous base)", d.snapPath, err)
			}
		}
		if err := d.fsys.Remove(d.gobPath); err == nil {
			log.Printf("ehnad: legacy snapshot %s removed (superseded by %s)", d.gobPath, d.snapPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Printf("ehnad: legacy snapshot %s not removed: %v", d.gobPath, err)
		}
		return wm, nil
	}()
	if err != nil {
		d.snapshotErrs.Add(1)
		d.lastSnapshotErr.Store(err.Error())
		return 0, err
	}
	d.watermark.Store(wm)
	d.snapshots.Add(1)
	d.lastSnapshot.Store(time.Now().Unix())
	snapshotHist.ObserveSince(start)
	if err := d.wal().TruncateThrough(wm); err != nil {
		// The snapshot is good; stale segments just linger until the
		// next rotation. Worth a log line, not a failed snapshot.
		log.Printf("ehnad: wal truncate through %d: %v", wm, err)
	}
	return wm, nil
}

// tombstoneRatio samples the live graph (0 when the index is not hnsw).
func (d *durable) tombstoneRatio() float64 {
	if h, ok := d.sw.Current().(*ann.HNSW); ok {
		return h.TombstoneRatio()
	}
	return 0
}

// compact rebuilds the HNSW graph in the background of live traffic
// and swaps it in, then rotates a snapshot so the on-disk graph
// reflects the rebuilt one. force skips the -compact-at threshold.
func (d *durable) compact(force bool) (bool, error) {
	if !d.isHNSW {
		return false, fmt.Errorf("compaction requires -index hnsw (running %T)", d.sw.Current())
	}
	if !force && (d.compactAt <= 0 || d.tombstoneRatio() < d.compactAt) {
		return false, nil
	}
	if !d.compactRunning.CompareAndSwap(false, true) {
		return false, ann.ErrRebuildInProgress
	}
	defer d.compactRunning.Store(false)
	start := time.Now()
	h, err := d.sw.CompactHNSW(d.store, d.hnswCfg)
	if err != nil {
		return false, err
	}
	alive, tombs, _ := h.Stats()
	d.compactions.Add(1)
	d.lastCompaction.Store(time.Now().Unix())
	compactionHist.ObserveSince(start)
	log.Printf("ehnad: hnsw compaction: %d nodes, %d tombstones after rebuild in %v",
		alive, tombs, time.Since(start).Round(time.Millisecond))
	if d.readOnly.Load() {
		return true, nil // the heal's reconciliation snapshot will cover it
	}
	if _, err := d.snapshot(); err != nil {
		log.Printf("ehnad: post-compaction snapshot: %v", err)
	}
	return true, nil
}

// run is the maintenance loop: periodic snapshot rotation, tombstone-
// triggered compaction, and — while read-only — WAL heal retries.
func (d *durable) run() {
	defer close(d.done)
	var snapC <-chan time.Time
	if d.interval > 0 {
		t := time.NewTicker(d.interval)
		defer t.Stop()
		snapC = t.C
	}
	var compactC <-chan time.Time
	if d.isHNSW && d.compactAt > 0 {
		t := time.NewTicker(compactCheckEvery)
		defer t.Stop()
		compactC = t.C
	}
	healT := time.NewTicker(healCheckEvery)
	defer healT.Stop()
	for {
		select {
		case <-snapC:
			if d.readOnly.Load() {
				continue // rotation needs a working log; heal goes first
			}
			if _, err := d.snapshot(); err != nil {
				log.Printf("ehnad: background snapshot: %v", err)
			}
		case <-compactC:
			if _, err := d.compact(false); err != nil && err != ann.ErrRebuildInProgress {
				log.Printf("ehnad: background compaction: %v", err)
			}
		case <-healT.C:
			if d.readOnly.Load() {
				d.heal()
			}
		case <-d.stop:
			return
		}
	}
}

// close stops the maintenance loop and closes the log (flushing and
// fsyncing whatever the policy had not yet synced). The fast path: no
// final snapshot, so the next boot replays the WAL suffix.
func (d *durable) close() {
	close(d.stop)
	<-d.done
	if err := d.wal().Close(); err != nil {
		log.Printf("ehnad: wal close: %v", err)
	}
}

// shutdown is the graceful exit: stop the maintenance loop, rotate a
// final snapshot pair (so the next boot replays zero records), and
// close the log. Skips the snapshot while read-only — a poisoned log
// cannot rotate, and the WAL suffix already on disk is the recovery.
func (d *durable) shutdown() {
	close(d.stop)
	<-d.done
	if !d.readOnly.Load() {
		if _, err := d.snapshot(); err != nil {
			log.Printf("ehnad: final snapshot: %v (boot will replay the wal instead)", err)
		}
	}
	if err := d.wal().Close(); err != nil {
		log.Printf("ehnad: wal close: %v", err)
	}
}

// healthz returns the durability block of the health report, reading
// every number through the gauges registerMetrics installed (see
// metrics.go) so /healthz and /metrics render one set of values.
func (d *durable) healthz(m *serverMetrics) map[string]any {
	g := m.gauge
	out := map[string]any{
		"wal": map[string]any{
			"last_seq":    uint64(g("ehnad_wal_last_seq")),
			"durable_seq": uint64(g("ehnad_wal_durable_seq")),
			"segments":    int(g("ehnad_wal_segments")),
			"size_bytes":  int64(g("ehnad_wal_size_bytes")),
		},
		"snapshot": map[string]any{
			"watermark":  uint64(g("ehnad_snapshot_watermark")),
			"count":      int64(g("ehnad_snapshot_count")),
			"last_unix":  int64(g("ehnad_snapshot_last_unix")),
			"interval_s": g("ehnad_snapshot_interval_seconds"),
			"errors":     int64(g("ehnad_snapshot_error_count")),
		},
		"replayed_records": int(g("ehnad_replayed_records")),
		"replay_torn_tail": g("ehnad_replay_torn_tail") != 0,
	}
	ro := map[string]any{
		"read_only":     g("ehnad_read_only") != 0,
		"heal_attempts": int64(g("ehnad_wal_heal_attempts")),
		"heals":         int64(g("ehnad_wal_heals")),
	}
	if d.readOnly.Load() {
		ro["since_unix"] = int64(g("ehnad_read_only_since_unix"))
		if msg, ok := d.readOnlyCause.Load().(string); ok {
			ro["cause"] = msg
		}
	}
	out["write_path"] = ro
	if d.isHNSW {
		out["compaction"] = map[string]any{
			"running":         g("ehnad_compaction_running") != 0,
			"count":           int64(g("ehnad_compaction_count")),
			"last_unix":       int64(g("ehnad_compaction_last_unix")),
			"compact_at":      g("ehnad_compaction_threshold"),
			"tombstone_ratio": g("ehnad_graph_tombstone_ratio"),
		}
	}
	if msg, ok := d.lastSnapshotErr.Load().(string); ok {
		out["last_snapshot_error"] = msg
	}
	return out
}
