package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// testIndexOptions is the flag-default option set used by the tests.
func testIndexOptions(kind string) indexOptions {
	return indexOptions{
		kind: kind, metric: ann.Cosine, seed: 1,
		tables: 16, bits: 8, probes: -1,
		m: 16, efConstruction: 200, efSearch: 64,
	}
}

// newTestServer stands up the full daemon handler over the given store.
func newTestServer(t *testing.T, store *embstore.Store, indexKind string) (*server, *httptest.Server) {
	t.Helper()
	index, err := buildIndex(store, testIndexOptions(indexKind))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, index, indexKind, 64, time.Millisecond, serveOpts{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() { ts.Close(); srv.close() })
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

type neighborsResponse struct {
	Results []ann.Result   `json:"results"`
	Batches [][]ann.Result `json:"batches"`
}

var trained struct {
	once sync.Once
	emb  *tensor.Matrix
	g    *graph.Temporal
	err  error
}

// trainedStore trains an EHNA model on a small datagen graph end-to-end
// and loads the attention-aggregated embeddings into a store — the full
// train → infer → serve pipeline the daemon fronts. Training runs once;
// each test gets a fresh store over the shared embeddings.
func trainedStore(t *testing.T) (*embstore.Store, *graph.Temporal) {
	t.Helper()
	trained.once.Do(func() {
		g, err := datagen.Generate(datagen.Digg, 0.05, 7)
		if err != nil {
			trained.err = err
			return
		}
		cfg := ehna.DefaultConfig()
		cfg.Dim = 8
		cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 2, WalkLen: 3}
		cfg.BatchSize = 16
		cfg.FallbackSamples = 4
		m, err := ehna.NewModel(g, cfg)
		if err != nil {
			trained.err = err
			return
		}
		m.TrainEpoch()
		trained.emb, trained.g = m.InferAll(), g
	})
	if trained.err != nil {
		t.Fatal(trained.err)
	}
	store, err := embstore.FromMatrix(trained.emb, 4)
	if err != nil {
		t.Fatal(err)
	}
	return store, trained.g
}

func TestNeighborsEndToEndOnTrainedGraph(t *testing.T) {
	store, g := trainedStore(t)
	for _, kind := range []string{"exact", "lsh", "hnsw"} {
		_, ts := newTestServer(t, store, kind)
		var resp neighborsResponse
		status, raw := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"id": 0, "k": 5}, &resp)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", kind, status, raw)
		}
		if len(resp.Results) != 5 {
			t.Fatalf("%s: got %d results, want 5: %s", kind, len(resp.Results), raw)
		}
		for i, r := range resp.Results {
			if r.ID == 0 {
				t.Fatalf("%s: query node returned as its own neighbor", kind)
			}
			if int(r.ID) >= g.NumNodes() {
				t.Fatalf("%s: result %d id %d outside graph", kind, i, r.ID)
			}
			if i > 0 && resp.Results[i-1].Score < r.Score {
				t.Fatalf("%s: results not sorted: %v", kind, resp.Results)
			}
		}
	}
}

func TestNeighborsByVectorAndBatch(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "exact")

	vec, _ := store.Get(3)
	var single neighborsResponse
	status, raw := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"vector": vec, "k": 3}, &single)
	if status != http.StatusOK || len(single.Results) != 3 {
		t.Fatalf("vector query: status %d: %s", status, raw)
	}
	// Query by own vector includes the node itself at rank 1.
	if single.Results[0].ID != 3 {
		t.Fatalf("self not top hit for own vector: %v", single.Results)
	}

	var batch neighborsResponse
	status, raw = postJSON(t, ts.URL+"/v1/neighbors", map[string]any{
		"k":       4,
		"queries": []map[string]any{{"id": 0}, {"id": 1, "k": 2}, {"vector": vec}},
	}, &batch)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, raw)
	}
	if len(batch.Batches) != 3 {
		t.Fatalf("batch: %d result sets, want 3", len(batch.Batches))
	}
	if len(batch.Batches[0]) != 4 || len(batch.Batches[1]) != 2 || len(batch.Batches[2]) != 4 {
		t.Fatalf("batch k handling wrong: %d/%d/%d", len(batch.Batches[0]), len(batch.Batches[1]), len(batch.Batches[2]))
	}
}

func TestNeighborsErrors(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "exact")
	for name, body := range map[string]any{
		"no id or vector":  map[string]any{"k": 5},
		"unknown id":       map[string]any{"id": 1 << 30},
		"both":             map[string]any{"id": 1, "vector": []float64{1}},
		"wrong-dim vector": map[string]any{"vector": []float64{1, 2}},
	} {
		status, _ := postJSON(t, ts.URL+"/v1/neighbors", body, nil)
		if status == http.StatusOK {
			t.Fatalf("%s: accepted", name)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/neighbors: %d", resp.StatusCode)
	}
}

func TestScoreMatchesDotProduct(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "exact")
	var out struct {
		Op    string  `json:"op"`
		Score float64 `json:"score"`
	}
	status, raw := postJSON(t, ts.URL+"/v1/score", map[string]any{"u": 0, "v": 1}, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	eu, _ := store.Get(0)
	ev, _ := store.Get(1)
	want := tensor.DotVec(eu, ev)
	if out.Op != "Hadamard" {
		t.Fatalf("default op %q", out.Op)
	}
	if diff := out.Score - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("hadamard-sum score %g != dot product %g", out.Score, want)
	}
	for _, op := range []string{"mean", "l1", "l2", "hadamard"} {
		status, raw := postJSON(t, ts.URL+"/v1/score", map[string]any{"u": 0, "v": 1, "op": op}, nil)
		if status != http.StatusOK {
			t.Fatalf("op %s: status %d: %s", op, status, raw)
		}
	}
	if status, _ := postJSON(t, ts.URL+"/v1/score", map[string]any{"u": 0, "v": 1, "op": "nope"}, nil); status == http.StatusOK {
		t.Fatal("bad operator accepted")
	}
	if status, _ := postJSON(t, ts.URL+"/v1/score", map[string]any{"u": 0, "v": 1 << 30}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown node scored: %d", status)
	}
}

func TestUpsertThenQuery(t *testing.T) {
	store, _ := trainedStore(t)
	for _, kind := range []string{"exact", "lsh", "hnsw"} {
		_, ts := newTestServer(t, store, kind)
		id := uint32(200000)
		vec := make([]float64, store.Dim())
		vec[0] = 3
		status, raw := postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": id, "vector": vec}, nil)
		if status != http.StatusOK {
			t.Fatalf("%s: upsert status %d: %s", kind, status, raw)
		}
		var resp neighborsResponse
		status, raw = postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"vector": vec, "k": 1}, &resp)
		if status != http.StatusOK || len(resp.Results) != 1 {
			t.Fatalf("%s: query after upsert: %d %s", kind, status, raw)
		}
		if resp.Results[0].ID != graph.NodeID(id) {
			t.Fatalf("%s: upserted vector not its own nearest neighbor: %v", kind, resp.Results)
		}
		// Batch upsert.
		status, raw = postJSON(t, ts.URL+"/v1/upsert", map[string]any{
			"updates": []map[string]any{
				{"id": id + 1, "vector": vec},
				{"id": id + 2, "vector": vec},
			},
		}, nil)
		if status != http.StatusOK {
			t.Fatalf("%s: batch upsert: %d %s", kind, status, raw)
		}
		// Dimension mismatch rejected.
		if status, _ := postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": id, "vector": []float64{1}}, nil); status == http.StatusOK {
			t.Fatalf("%s: wrong-dim upsert accepted", kind)
		}
		store.Delete(graph.NodeID(id))
		store.Delete(graph.NodeID(id + 1))
		store.Delete(graph.NodeID(id + 2))
	}
}

func TestHealthz(t *testing.T) {
	store, g := trainedStore(t)
	_, ts := newTestServer(t, store, "lsh")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Dim    int    `json:"dim"`
		Index  string `json:"index"`
		Metric string `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Nodes != g.NumNodes() || out.Index != "lsh" || out.Metric != "cosine" {
		t.Fatalf("healthz = %+v", out)
	}
}

// TestConcurrentNeighborsThroughBatcher hammers the single-query path so
// the micro-batcher actually coalesces, and checks every reply matches
// the unbatched answer.
func TestConcurrentNeighborsThroughBatcher(t *testing.T) {
	store, _ := trainedStore(t)
	srv, ts := newTestServer(t, store, "exact")
	want, err := srv.index.Search(mustGet(t, store, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp neighborsResponse
			status, raw := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"vector": mustGet(t, store, 5), "k": 4}, &resp)
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", status, raw)
				return
			}
			if len(resp.Results) != 4 || resp.Results[0].ID != want[0].ID {
				errs <- fmt.Errorf("batched result %v != %v", resp.Results, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatcherShutdownUnblocksCallers closes the batcher while requests
// are in flight and checks no do() caller hangs.
func TestBatcherShutdownUnblocksCallers(t *testing.T) {
	store, _ := trainedStore(t)
	index := ann.NewExact(store, ann.Cosine)
	b := newBatcher(index, 64, 50*time.Millisecond, 0, nil)
	q := mustGet(t, store, 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Either a real result (flushed before close) or errShutdown —
			// never a hang.
			_, buf, _, _ := b.do(context.Background(), q, 3)
			buf.release()
		}()
	}
	b.close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("do() callers still blocked after batcher close")
	}
}

func mustGet(t *testing.T, s *embstore.Store, id graph.NodeID) []float64 {
	t.Helper()
	v, ok := s.Get(id)
	if !ok {
		t.Fatalf("node %d missing", id)
	}
	return v
}

// TestLoadStoreFromModelSnapshot exercises the -model loading path the
// daemon boots from.
func TestLoadStoreFromModelSnapshot(t *testing.T) {
	g, err := datagen.Generate(datagen.Digg, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ehna.DefaultConfig()
	cfg.Dim = 8
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 2, WalkLen: 3}
	m, err := ehna.NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	store, err := loadStore(path, "", 4, embstore.F64)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != g.NumNodes() || store.Dim() != cfg.Dim {
		t.Fatalf("store %d×%d from model snapshot", store.Len(), store.Dim())
	}
	if _, err := loadStore("", "", 4, embstore.F64); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadStore(path, path, 4, embstore.F64); err == nil {
		t.Fatal("two sources accepted")
	}
}

// TestPprofMount checks /debug/pprof/ is served only when -pprof is set.
func TestPprofMount(t *testing.T) {
	store, _ := trainedStore(t)
	srv, ts := newTestServer(t, store, "exact")
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}

	srv.pprof = true
	ts2 := httptest.NewServer(srv.handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -pprof: status %d", resp.StatusCode)
	}
}

// TestHNSWGraphSnapshotBoot builds an HNSW index with -hnsw-graph set
// (writing the snapshot), boots a second index from the saved graph,
// and checks the loaded index answers queries identically — the
// restart-without-rebuild path.
func TestHNSWGraphSnapshotBoot(t *testing.T) {
	store, _ := trainedStore(t)
	opts := testIndexOptions("hnsw")
	opts.graphPath = filepath.Join(t.TempDir(), "graph.gob")
	built, err := buildIndex(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(opts.graphPath); err != nil {
		t.Fatalf("graph snapshot not written: %v", err)
	}
	loaded, err := buildIndex(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.(*ann.HNSW); !ok {
		t.Fatalf("loaded index is %T, want *ann.HNSW", loaded)
	}
	for qi := graph.NodeID(0); qi < 10; qi++ {
		q := mustGet(t, store, qi)
		want, err := built.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestDeleteEndpoint covers /v1/delete in the cache (no WAL) mode for
// every index kind.
func TestDeleteEndpoint(t *testing.T) {
	store, _ := trainedStore(t)
	for _, kind := range []string{"exact", "lsh", "hnsw"} {
		_, ts := newTestServer(t, store, kind)
		id := uint32(300000)
		vec := make([]float64, store.Dim())
		vec[0] = 7
		if status, raw := postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": id, "vector": vec}, nil); status != http.StatusOK {
			t.Fatalf("%s: upsert: %d %s", kind, status, raw)
		}
		var out struct {
			Deleted int `json:"deleted"`
			Nodes   int `json:"nodes"`
		}
		status, raw := postJSON(t, ts.URL+"/v1/delete", map[string]any{"id": id}, &out)
		if status != http.StatusOK || out.Deleted != 1 {
			t.Fatalf("%s: delete: %d %s", kind, status, raw)
		}
		if _, ok := store.Get(graph.NodeID(id)); ok {
			t.Fatalf("%s: vector survived delete", kind)
		}
		// Deleting it again is a clean no-op.
		status, _ = postJSON(t, ts.URL+"/v1/delete", map[string]any{"ids": []uint32{id}}, &out)
		if status != http.StatusOK || out.Deleted != 0 {
			t.Fatalf("%s: double delete reported %d", kind, out.Deleted)
		}
		// Missing id/ids is a 400.
		if status, _ := postJSON(t, ts.URL+"/v1/delete", map[string]any{}, nil); status != http.StatusBadRequest {
			t.Fatalf("%s: empty delete accepted (%d)", kind, status)
		}
	}
}

// TestExportEndpoint: the exported stream is a loadable embstore
// snapshot equal to the live store.
func TestExportEndpoint(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "exact")
	resp, err := http.Get(ts.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	loaded, err := embstore.Load(resp.Body, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(store) {
		t.Fatal("export stream differs from live store")
	}
}

// TestAdminEndpointsRequireWAL: snapshot/compact are durability
// operations; without -wal they must refuse, not pretend.
func TestAdminEndpointsRequireWAL(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "hnsw")
	for _, ep := range []string{"/v1/admin/snapshot", "/v1/admin/compact"} {
		if status, _ := postJSON(t, ts.URL+ep, map[string]any{}, nil); status != http.StatusBadRequest {
			t.Fatalf("%s without -wal: status %d, want 400", ep, status)
		}
	}
}

// TestWALModeBootFromSeedSnapshot: first boot of a WAL directory seeds
// from -snapshot, writes are WAL-logged, and a reboot replays them on
// top of the seed.
func TestWALModeBootFromSeedSnapshot(t *testing.T) {
	store, _ := trainedStore(t)
	dir := t.TempDir()
	seedPath := filepath.Join(dir, "seed.gob")
	f, err := os.Create(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	walDir := t.TempDir()
	cfg := serverConfig{
		snapshot: seedPath,
		shards:   4,
		index:    testIndexOptions("lsh"),
		maxBatch: 16,
		window:   time.Millisecond,
		walDir:   walDir,
		fsync:    "never", // this test is about replay, not fsync
	}
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.store.Len() != store.Len() {
		t.Fatalf("seeded %d nodes, want %d", srv.store.Len(), store.Len())
	}
	vec := make([]float64, store.Dim())
	vec[0] = 9
	id := graph.NodeID(777777)
	if _, err := srv.dur.upsert([]upsertUpdate{{ID: &id, Vector: vec}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.dur.delete([]graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	srv.close()

	srv2, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.close()
	if srv2.dur.replayed != 2 {
		t.Fatalf("replayed %d records, want 2", srv2.dur.replayed)
	}
	if !srv2.store.Equal(srv.store) {
		t.Fatal("rebooted store differs from pre-shutdown store")
	}
	if _, ok := srv2.store.Get(0); ok {
		t.Fatal("deleted seed node resurrected")
	}
	if got, ok := srv2.store.Get(id); !ok || got[0] != 9 {
		t.Fatalf("wal-logged upsert lost across reboot: %v %v", got, ok)
	}
}
