package main

// The crash-recovery half of the durability test harness: a real
// daemon process (this test binary re-exec'd into helper mode) serving
// the real HTTP stack over a WAL, SIGKILLed mid-write-stream, then
// recovered and compared against a reference store fed exactly the
// acknowledged operations. fsync=always means every 200 the client saw
// must survive the kill; the one in-flight request at kill time is the
// only permitted ambiguity (logged-but-unacknowledged).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/graph"
)

const (
	crashDim    = 8
	crashIDSpan = 100
)

// crashTestConfig is the daemon configuration shared by the helper
// process and the in-process recovery: empty store bootstrapped by
// -dim, HNSW index, crash-safe fsync, snapshots only on demand.
func crashTestConfig(walDir string) serverConfig {
	return serverConfig{
		dim:              crashDim,
		shards:           4,
		index:            testIndexOptions("hnsw"),
		maxBatch:         16,
		window:           0,
		walDir:           walDir,
		fsync:            "always",
		snapshotInterval: 0,
		compactAt:        0,
	}
}

// TestCrashDaemonHelper is the child-process entry point, not a test:
// re-exec'd by the crash tests with EHNAD_CRASH_HELPER=1, it boots the
// full daemon stack over the WAL directory in EHNAD_WAL, prints the
// listen address, and runs the production serve loop — so a SIGKILL
// exercises the no-shutdown path and a SIGTERM exercises the real
// graceful drain (batcher close, WAL fsync, final snapshot pair).
func TestCrashDaemonHelper(t *testing.T) {
	if os.Getenv("EHNAD_CRASH_HELPER") != "1" {
		t.Skip("helper-process entry point; driven by TestCrashRecoveryE2E and TestGracefulSIGTERM")
	}
	cfg := crashTestConfig(os.Getenv("EHNAD_WAL"))
	// The cluster failover e2e reuses this helper to spawn replication
	// followers: EHNAD_FOLLOW carries the leader base URL through.
	cfg.follow = os.Getenv("EHNAD_FOLLOW")
	// The cold-store crash drill runs the same harness in mmap mode.
	cfg.storeMode = os.Getenv("EHNAD_STORE")
	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("HELPER_ADDR=%s\n", ln.Addr())
	if err := runDaemon(srv, ln); err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	os.Exit(0) // clean drain; don't fall through to the test runner's exit
}

// crashOp is one client-side mutation, mirrored into the reference
// store when (and only when) the daemon acknowledged it.
type crashOp struct {
	del bool
	id  graph.NodeID
	vec []float64
}

func randomCrashOp(rng *rand.Rand) crashOp {
	op := crashOp{id: graph.NodeID(rng.Intn(crashIDSpan))}
	if rng.Float64() < 0.3 {
		op.del = true
		return op
	}
	op.vec = make([]float64, crashDim)
	for j := range op.vec {
		op.vec[j] = rng.NormFloat64()
	}
	return op
}

// post sends op to the daemon, returning nil only on a 200 (an ack).
func (op crashOp) post(client *http.Client, base string) error {
	var path string
	var body any
	if op.del {
		path, body = base+"/v1/delete", map[string]any{"id": op.id}
	} else {
		path, body = base+"/v1/upsert", map[string]any{"id": op.id, "vector": op.vec}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func (op crashOp) applyTo(t *testing.T, s *embstore.Store) {
	t.Helper()
	if op.del {
		s.Delete(op.id)
		return
	}
	if err := s.Upsert(op.id, op.vec); err != nil {
		t.Fatal(err)
	}
}

// startCrashHelper re-execs this test binary into helper mode over
// walDir and waits for its listen address. The caller owns the
// process's fate (SIGKILL or SIGTERM + Wait). extraEnv entries
// ("K=V") let the cluster e2e spawn followers (EHNAD_FOLLOW).
func startCrashHelper(t *testing.T, walDir string, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashDaemonHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "EHNAD_CRASH_HELPER=1", "EHNAD_WAL="+walDir)
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "HELPER_ADDR=") {
				addrC <- strings.TrimPrefix(line, "HELPER_ADDR=")
			}
			if strings.HasPrefix(line, "HELPER_ERR=") {
				t.Errorf("helper: %s", line)
				addrC <- ""
			}
		}
	}()
	select {
	case addr := <-addrC:
		if addr == "" {
			t.Fatal("helper failed to boot")
		}
		return cmd, "http://" + addr
	case <-time.After(60 * time.Second):
		t.Fatal("helper never reported its address")
	}
	panic("unreachable")
}

func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process and fsyncs every write; skipped under -short")
	}
	walDir := t.TempDir()

	// ---- Phase 1: live daemon process, randomized write stream, SIGKILL.
	cmd, base := startCrashHelper(t, walDir)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	reference, err := embstore.New(crashDim, 4)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Kill lands mid-stream, while a request may be on the wire — the
	// adversarial moment: logged (fsynced) but never acknowledged.
	killDelay := time.Duration(200+rng.Intn(200)) * time.Millisecond
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(killDelay)
		_ = cmd.Process.Kill() // SIGKILL: no shutdown path runs
	}()

	var acked int
	var inflight *crashOp
	for i := 0; i < 100000; i++ {
		op := randomCrashOp(rng)
		if err := op.post(client, base); err != nil {
			inflight = &op // fate unknown: maybe logged, never acked
			break
		}
		op.applyTo(t, reference)
		acked++
	}
	<-killed
	_ = cmd.Wait()
	if inflight == nil {
		t.Fatal("write stream outlived the kill; nothing was interrupted")
	}
	if acked == 0 {
		t.Skip("daemon was killed before any write was acknowledged; nothing to verify")
	}
	t.Logf("acked %d ops before SIGKILL", acked)

	// ---- Phase 1b: simulate a torn final write on top of the crash.
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments after crash: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising 64 bytes of payload that never arrived.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// ---- Phase 2: recover in-process and compare against the reference.
	srv, err := buildServer(crashTestConfig(walDir))
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	if !srv.dur.replayTorn {
		t.Error("recovery did not report the torn tail")
	}
	if !srv.store.Equal(reference) {
		// The only legitimate divergence: the in-flight op hit the log
		// before the kill. Apply it to the reference and re-compare.
		inflight.applyTo(t, reference)
		if !srv.store.Equal(reference) {
			srv.close()
			t.Fatalf("recovered store (%d nodes) matches neither the acked prefix nor prefix+inflight (%d nodes)",
				srv.store.Len(), reference.Len())
		}
		t.Log("in-flight op was logged before the kill (allowed)")
	}

	// Index state must match the store: every recovered vector indexed,
	// searchable, and its own nearest neighbor.
	h, ok := srv.liveIndex().(*ann.HNSW)
	if !ok {
		t.Fatalf("recovered index is %T, want *ann.HNSW", srv.liveIndex())
	}
	alive, _, _ := h.Stats()
	if alive != srv.store.Len() {
		t.Fatalf("recovered graph indexes %d nodes, store holds %d", alive, srv.store.Len())
	}
	for _, id := range srv.store.IDs() {
		q, _ := srv.store.Get(id)
		top, err := srv.index.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 1 || top[0].ID != id {
			t.Fatalf("recovered node %d is not its own nearest neighbor: %v", id, top)
		}
	}

	// ---- Phase 3: the recovered daemon is fully operational — serve
	// HTTP, churn, compact to zero tombstones while queries answer,
	// export, snapshot (truncating the WAL), and survive one more boot.
	ts := httptest.NewServer(srv.handler())
	for i := 0; i < 20; i++ {
		op := randomCrashOp(rng)
		if err := op.post(client, ts.URL); err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
		op.applyTo(t, reference)
	}

	resp, err := client.Post(ts.URL+"/v1/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var compactOut struct {
		Compacted bool    `json:"compacted"`
		After     float64 `json:"tombstone_ratio_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&compactOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !compactOut.Compacted || compactOut.After != 0 {
		t.Fatalf("admin compact: status %d, %+v", resp.StatusCode, compactOut)
	}
	var nresp neighborsResponse
	someID := srv.store.IDs()[0]
	status, raw := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"id": someID, "k": 3}, &nresp)
	if status != http.StatusOK {
		t.Fatalf("query after compaction: %d %s", status, raw)
	}

	resp, err = client.Get(ts.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	exported, err := embstore.Load(resp.Body, 4)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("export did not round-trip: %v", err)
	}
	if !exported.Equal(srv.store) {
		t.Fatal("exported snapshot differs from the live store")
	}

	resp, err = client.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snapOut struct {
		Watermark uint64 `json:"watermark"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snapOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || snapOut.Watermark == 0 {
		t.Fatalf("admin snapshot: status %d, watermark %d", resp.StatusCode, snapOut.Watermark)
	}
	ts.Close()
	srv.close()

	// ---- Phase 4: boot once more. Everything is in the snapshot pair,
	// so replay must be empty, and state must still match the reference.
	srv2, err := buildServer(crashTestConfig(walDir))
	if err != nil {
		t.Fatalf("post-snapshot boot: %v", err)
	}
	defer srv2.close()
	if srv2.dur.replayed != 0 {
		t.Errorf("replayed %d records after a clean snapshot, want 0", srv2.dur.replayed)
	}
	if !srv2.store.Equal(reference) {
		t.Fatal("state diverged across snapshot + reboot")
	}
	if h2, ok := srv2.liveIndex().(*ann.HNSW); !ok {
		t.Fatalf("rebooted index is %T", srv2.liveIndex())
	} else if _, tombs, _ := h2.Stats(); tombs != 0 {
		t.Errorf("rebooted graph carries %d tombstones despite fresh compacted snapshot", tombs)
	}
}

// TestGracefulSIGTERM is the clean-exit counterpart of the SIGKILL
// drill: after an acknowledged write stream, SIGTERM must drain the
// daemon through the production shutdown path — exit status 0 and a
// final snapshot pair covering every acked op, so the next boot
// replays zero WAL records and serves the exact acked state.
func TestGracefulSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process and fsyncs every write; skipped under -short")
	}
	walDir := t.TempDir()
	cmd, base := startCrashHelper(t, walDir)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	reference, err := embstore.New(crashDim, 4)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 50; i++ {
		op := randomCrashOp(rng)
		if err := op.post(client, base); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		op.applyTo(t, reference)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitC := make(chan error, 1)
	go func() { waitC <- cmd.Wait() }()
	select {
	case err := <-waitC:
		if err != nil {
			t.Fatalf("helper did not exit 0 after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper did not exit within 30s of SIGTERM")
	}

	srv, err := buildServer(crashTestConfig(walDir))
	if err != nil {
		t.Fatalf("post-SIGTERM boot: %v", err)
	}
	defer srv.close()
	if srv.dur.replayed != 0 {
		t.Errorf("replayed %d WAL records after graceful shutdown, want 0", srv.dur.replayed)
	}
	if !srv.store.Equal(reference) {
		t.Fatal("recovered store diverges from the acked write stream")
	}
}
