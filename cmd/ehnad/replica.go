// Replication: the daemon's half of the cluster's WAL-shipping plane.
//
// A leader (any daemon with -wal) exposes:
//
//	GET  /v1/repl/stream?after=SEQ  — framed WAL records after SEQ, bounded
//	                                  to the durable watermark (never ship
//	                                  what a crash could take back); 410 +
//	                                  the snapshot watermark when SEQ was
//	                                  truncated away
//	GET  /v1/repl/status            — role + log watermarks
//	POST /v1/admin/promote          — leave follower mode; the applied
//	                                  watermark in the response is the
//	                                  acked-write survival line
//
// A follower (-follow URL, requires -wal) bootstraps from the leader's
// /v1/export when its directory is empty, then tails the stream through
// cluster.ReplClient, applying every batch through durable.replicate —
// the same store+index path boot replay uses, under the same applier
// lock, preserving the leader's sequence numbers. Promotion just stops
// the tail and flips the role: the log already is a leader log.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/cluster"
	"ehna/internal/graph"
	"ehna/internal/obs"
	"ehna/internal/wal"
)

// replStreamPollWait is how long /v1/repl/stream holds a caught-up
// request open waiting for new records before answering empty — a
// brief long-poll that keeps follower lag near zero without a tight
// reconnect loop.
const replStreamPollWait = 900 * time.Millisecond

// replica is a daemon's follower-mode state: the upstream leader, the
// stream client, and the role flip promotion performs.
type replica struct {
	leader   string
	dur      *durable
	follower atomic.Bool
	client   *cluster.ReplClient

	mu     sync.Mutex // serializes start/stop/promote
	cancel context.CancelFunc
	done   chan struct{}
}

func newReplica(leader string, d *durable) *replica {
	rp := &replica{leader: leader, dur: d}
	rp.follower.Store(true)
	rp.client = &cluster.ReplClient{
		Leader:  leader,
		Apply:   d.replicate,
		Applied: d.applied,
		OnGap: func(wm uint64) error {
			// Streaming can never catch up once the leader truncated past
			// our watermark. Re-bootstrapping would mean discarding local
			// state — an operator decision, so surface it loudly and keep
			// retrying (the error path backs off) rather than self-wipe.
			return fmt.Errorf("leader snapshot watermark %d is past this log: wipe the WAL dir and restart to re-bootstrap from %s/v1/export", wm, leader)
		},
		Logf: log.Printf,
	}
	return rp
}

// start begins tailing the leader.
func (rp *replica) start() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	rp.cancel = cancel
	done := make(chan struct{})
	rp.done = done
	go func() {
		rp.client.Run(ctx)
		close(done)
	}()
	log.Printf("ehnad: following %s (replication stream)", rp.leader)
}

// stop halts the stream client and waits for its last apply to finish.
// Idempotent.
func (rp *replica) stop() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.cancel == nil {
		return
	}
	rp.cancel()
	<-rp.done
	rp.cancel, rp.done = nil, nil
}

// promote leaves follower mode and returns the applied watermark the
// daemon starts accepting writes from: every acked write with seq ≤ it
// survived the failover; anything later on the dead leader was never
// replicated here and must be re-driven. Idempotent.
func (rp *replica) promote() uint64 {
	rp.stop()
	if rp.follower.Swap(false) {
		log.Printf("ehnad: promoted to leader at applied seq %d (was following %s)", rp.dur.applied(), rp.leader)
	}
	return rp.dur.applied()
}

// registerMetrics adds the follower-side replication gauges to the
// server registry (the router keeps its own cluster-wide view; these
// are the daemon's ground truth).
func (rp *replica) registerMetrics(r *obs.Registry) {
	r.GaugeFunc("ehnad_is_follower", "1 while this daemon is tailing a leader instead of owning writes.",
		func() float64 {
			if rp.follower.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("ehnad_repl_applied_seq", "Highest leader sequence applied locally.",
		func() float64 { return float64(rp.dur.applied()) })
	r.GaugeFunc("ehnad_repl_leader_seq", "Leader durable watermark as of the last stream round.",
		func() float64 { return float64(rp.client.LeaderSeq()) })
	r.GaugeFunc("ehnad_repl_lag_records", "Records the leader has durably logged that this follower has not applied.",
		func() float64 {
			leader, applied := rp.client.LeaderSeq(), rp.dur.applied()
			if leader <= applied {
				return 0
			}
			return float64(leader - applied)
		})
}

// isFollower reports whether the daemon currently refuses writes in
// favor of its upstream leader.
func (s *server) isFollower() bool {
	return s.repl != nil && s.repl.follower.Load()
}

// refuseIfFollower answers mutations with the overload contract's 503 +
// Retry-After while in follower mode — the shard router reacts by
// re-probing and redirecting to the actual leader.
func (s *server) refuseIfFollower(w http.ResponseWriter) bool {
	if !s.isFollower() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "follower of %s: writes go to the shard leader", s.repl.leader)
	return true
}

// bootstrapFollower seeds an empty follower WAL directory from the
// leader's /v1/export — a store snapshot stamped with the leader's
// watermark, so the normal boot path loads it and the stream resumes
// at exactly that sequence. A directory that already has a snapshot or
// log segments resumes from local state instead (cheaper, and the
// stream's gap check catches a stale resume).
func bootstrapFollower(cfg serverConfig) error {
	// Either snapshot generation counts as local state: a rotated v3
	// base or a legacy (or freshly bootstrapped) gob image.
	if _, err := os.Stat(walSnapshotV3Path(cfg.walDir)); err == nil {
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}
	snapPath := walSnapshotPath(cfg.walDir)
	if _, err := os.Stat(snapPath); err == nil {
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}
	oldest, err := wal.OldestSeq(cfg.walDir)
	if err != nil {
		return err
	}
	if oldest > 0 {
		return nil
	}
	resp, err := http.Get(cfg.follow + "/v1/export")
	if err != nil {
		return fmt.Errorf("bootstrap from %s: %w", cfg.follow, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bootstrap from %s: status %s", cfg.follow, resp.Status)
	}
	if err := writeFileAtomic(snapPath, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	}); err != nil {
		return fmt.Errorf("bootstrap snapshot: %w", err)
	}
	log.Printf("ehnad: bootstrapped follower snapshot from %s/v1/export", cfg.follow)
	return nil
}

// durableThrough reports the watermark the stream may ship up to,
// syncing first when the log holds buffered records — replication
// implies durability: a record a crash could take back must never
// reach a follower.
func durableThrough(lg *wal.Log) uint64 {
	if lg.DurableSeq() < lg.LastSeq() {
		if err := lg.Sync(); err != nil {
			return lg.DurableSeq()
		}
	}
	return lg.DurableSeq()
}

// handleReplStream serves the leader side of WAL shipping: framed
// records after ?after, bounded to the durable watermark, re-encoded
// through the same codec the on-disk segments use (replay re-validates
// every CRC on the way out).
func (s *server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.dur == nil {
		writeError(w, http.StatusBadRequest, "replication requires -wal")
		return
	}
	after := uint64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid after %q: %v", q, err)
			return
		}
		after = v
	}
	upTo := durableThrough(s.dur.wal())
	// Caught up: hold the request briefly so a write lands mid-poll
	// instead of on the next reconnect.
	deadline := time.Now().Add(replStreamPollWait)
	for upTo <= after && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
		upTo = durableThrough(s.dur.wal())
	}
	oldest, err := wal.OldestSeq(s.dur.walDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "repl stream: %v", err)
		return
	}
	w.Header().Set(cluster.LastSeqHeader, strconv.FormatUint(upTo, 10))
	if oldest > after+1 {
		// Records (after, oldest) were truncated by snapshot rotation: the
		// follower can never stream its way up from here.
		writeJSON(w, http.StatusGone, map[string]any{
			"watermark": s.dur.watermark.Load(),
			"error":     fmt.Sprintf("records after seq %d truncated; oldest surviving seq is %d", after, oldest),
		})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if upTo <= after {
		w.WriteHeader(http.StatusOK)
		return
	}
	enc := wal.NewEncoder(w)
	if _, err := wal.ReplayRange(s.dur.walDir, after, upTo, enc.Encode); err != nil {
		// Headers are sent; the follower sees a torn stream, applies the
		// contiguous prefix it got, and resumes from its new watermark.
		log.Printf("ehnad: repl stream (%d, %d]: %v", after, upTo, err)
	}
}

// handleReplStatus reports role + watermarks — what the router's health
// loop probes to elect leaders and measure lag. Always 200: a daemon
// without -wal is a zero-watermark leader.
func (s *server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	st := cluster.ReplStatus{Role: "leader"}
	if s.isFollower() {
		st.Role = "follower"
		st.Leader = s.repl.leader
	}
	if s.dur != nil {
		lg := s.dur.wal()
		st.LastSeq = lg.LastSeq()
		st.DurableSeq = lg.DurableSeq()
		st.Applied = s.dur.applied()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleAdminPromote flips a follower into the shard's write owner,
// returning the applied watermark writes resume from. Idempotent —
// promoting a leader (or a daemon that never followed) reports its
// current watermark and changes nothing.
func (s *server) handleAdminPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var applied uint64
	switch {
	case s.repl != nil:
		applied = s.repl.promote()
	case s.dur != nil:
		applied = s.dur.applied()
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied, "role": "leader"})
}

// handleVector resolves one stored id to its vector — the router uses
// it to turn an id-query into a vector it can scatter to non-owning
// shards.
func (s *server) handleVector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid id %q", q)
		return
	}
	vec, ok := s.store.Get(graph.NodeID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "node %d not in store", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "vector": vec})
}
