// Command ehnad is the online embedding-serving daemon: it loads a
// trained embedding table into a sharded in-memory store, builds an ANN
// index over it, and answers HTTP/JSON queries.
//
// Endpoints:
//
//	POST /v1/neighbors  top-k similar nodes, by stored id or raw vector;
//	                    single queries are micro-batched server-side,
//	                    "queries":[...] batches explicitly
//	POST /v1/score      pairwise link-prediction score under a Table II
//	                    edge operator (hadamard sum = dot product)
//	POST /v1/upsert     insert/replace vectors (store + index)
//	GET  /healthz       liveness + store/index stats
//	GET  /debug/pprof/  (with -pprof) live CPU/heap/mutex profiling
//
// The embedding source is either -model (an ehna model snapshot written
// by Model.Save — serves the raw embedding table) or -snapshot (an
// embstore snapshot written by Store.Save — e.g. the attention-
// aggregated InferAll embeddings exported by examples/serving).
//
// Index selection: -index exact (ground truth, linear scan), lsh
// (multi-probe hashing) or hnsw (graph search — the sublinear choice at
// 100k+ nodes). With -index hnsw, -hnsw-graph names a gob snapshot of
// the graph structure: loaded when present so the daemon boots without
// rebuilding, written after a fresh build otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		model     = flag.String("model", "", "path to an ehna model snapshot (Model.Save)")
		snapshot  = flag.String("snapshot", "", "path to an embstore snapshot (Store.Save)")
		shards    = flag.Int("shards", embstore.DefaultShards, "store shard count")
		indexKind = flag.String("index", "lsh", "ann index: exact, lsh or hnsw")
		tables    = flag.Int("tables", 16, "lsh: number of hash tables")
		bits      = flag.Int("bits", 8, "lsh: signature bits per table")
		probes    = flag.Int("probes", -1, "lsh: Hamming-1 probes per table (-1 = bits)")
		m         = flag.Int("m", 16, "hnsw: graph degree M (layer 0 allows 2M links)")
		efCons    = flag.Int("ef-construction", 200, "hnsw: build-time beam width")
		efSearch  = flag.Int("ef-search", 64, "hnsw: query-time beam width (recall/latency dial)")
		hnswGraph = flag.String("hnsw-graph", "", "hnsw: graph snapshot path — loaded if present (boot without rebuild), written after a fresh build otherwise")
		seed      = flag.Int64("seed", 1, "lsh hyperplane / hnsw level-draw seed")
		metric    = flag.String("metric", "cosine", "similarity metric: cosine or dot")
		maxBatch  = flag.Int("max-batch", 64, "micro-batcher: max coalesced queries")
		window    = flag.Duration("batch-window", 2*time.Millisecond, "micro-batcher: gather window (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
	)
	flag.Parse()

	store, err := loadStore(*model, *snapshot, *shards)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	mt, err := ann.ParseMetric(*metric)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	index, err := buildIndex(store, indexOptions{
		kind:           *indexKind,
		metric:         mt,
		seed:           *seed,
		tables:         *tables,
		bits:           *bits,
		probes:         *probes,
		m:              *m,
		efConstruction: *efCons,
		efSearch:       *efSearch,
		graphPath:      *hnswGraph,
	})
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	log.Printf("ehnad: store loaded: %d nodes × %d dims across %d shards, %s index (%s metric)",
		store.Len(), store.Dim(), store.NumShards(), *indexKind, mt)

	srv := newServer(store, index, *indexKind, *maxBatch, *window)
	srv.pprof = *pprofOn
	defer srv.close()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("ehnad: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		close(done)
	}()

	if *pprofOn {
		log.Printf("ehnad: pprof mounted at %s/debug/pprof/", *addr)
	}
	log.Printf("ehnad: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ehnad: %v", err)
	}
	<-done
}

// loadStore builds the store from exactly one of the two sources.
func loadStore(model, snapshot string, shards int) (*embstore.Store, error) {
	switch {
	case model != "" && snapshot != "":
		return nil, fmt.Errorf("pass -model or -snapshot, not both")
	case model == "" && snapshot == "":
		return nil, fmt.Errorf("pass -model (ehna snapshot) or -snapshot (embstore snapshot)")
	case model != "":
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return embstore.FromModelSnapshot(f, shards)
	default:
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return embstore.Load(f, shards)
	}
}

// indexOptions carries every index-selection flag; only the fields for
// the chosen kind are consulted.
type indexOptions struct {
	kind   string
	metric ann.Metric
	seed   int64
	// lsh
	tables, bits, probes int
	// hnsw
	m, efConstruction, efSearch int
	graphPath                   string
}

func buildIndex(store *embstore.Store, o indexOptions) (ann.Index, error) {
	switch o.kind {
	case "exact":
		return ann.NewExact(store, o.metric), nil
	case "lsh":
		cfg := ann.LSHConfig{Tables: o.tables, Bits: o.bits, Probes: o.probes, Seed: o.seed, Metric: o.metric}
		return ann.NewLSH(store, cfg)
	case "hnsw":
		return buildHNSW(store, o)
	default:
		return nil, fmt.Errorf("unknown index %q (want exact, lsh or hnsw)", o.kind)
	}
}

// buildHNSW loads the graph snapshot when one exists (boot without
// rebuild) and builds+saves it otherwise.
func buildHNSW(store *embstore.Store, o indexOptions) (ann.Index, error) {
	cfg := ann.HNSWConfig{M: o.m, EfConstruction: o.efConstruction, EfSearch: o.efSearch, Seed: o.seed, Metric: o.metric}
	if o.graphPath != "" {
		if f, err := os.Open(o.graphPath); err == nil {
			defer f.Close()
			h, err := ann.LoadHNSWGraph(f, store)
			if err != nil {
				return nil, fmt.Errorf("load hnsw graph %s: %w", o.graphPath, err)
			}
			// The snapshot fixes the build-time parameters (metric, M,
			// ef-construction); only -ef-search applies at load. A metric
			// mismatch would silently rank by the wrong similarity, so
			// refuse it rather than ignore the flag.
			loaded := h.Config()
			if loaded.Metric != o.metric {
				return nil, fmt.Errorf("hnsw graph %s was built with metric %s, conflicting with -metric %s (rebuild, or match the flag)",
					o.graphPath, loaded.Metric, o.metric)
			}
			h.SetEfSearch(o.efSearch)
			alive, tombs, maxLevel := h.Stats()
			log.Printf("ehnad: hnsw graph loaded from %s: %d nodes (%d tombstones), %d layers, m=%d ef-construction=%d (snapshot values)",
				o.graphPath, alive, tombs, maxLevel+1, loaded.M, loaded.EfConstruction)
			return h, nil
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	start := time.Now()
	h, err := ann.BuildHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	alive, _, maxLevel := h.Stats()
	log.Printf("ehnad: hnsw graph built: %d nodes, %d layers in %v", alive, maxLevel+1, time.Since(start).Round(time.Millisecond))
	if o.graphPath != "" {
		// Write-then-rename so a crash mid-save cannot leave a truncated
		// snapshot that bricks every subsequent boot.
		tmp := o.graphPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return nil, err
		}
		if err := h.SaveGraph(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return nil, err
		}
		if err := os.Rename(tmp, o.graphPath); err != nil {
			os.Remove(tmp)
			return nil, err
		}
		log.Printf("ehnad: hnsw graph saved to %s", o.graphPath)
	}
	return h, nil
}
