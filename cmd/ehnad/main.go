// Command ehnad is the online embedding-serving daemon: it loads a
// trained embedding table into a sharded in-memory store, builds an ANN
// index over it, and answers HTTP/JSON queries.
//
// Endpoints:
//
//	POST /v1/neighbors  top-k similar nodes, by stored id or raw vector;
//	                    single queries are micro-batched server-side,
//	                    "queries":[...] batches explicitly
//	POST /v1/score      pairwise link-prediction score under a Table II
//	                    edge operator (hadamard sum = dot product)
//	POST /v1/upsert     insert/replace vectors (store + index)
//	GET  /healthz       liveness + store/index stats
//
// The embedding source is either -model (an ehna model snapshot written
// by Model.Save — serves the raw embedding table) or -snapshot (an
// embstore snapshot written by Store.Save — e.g. the attention-
// aggregated InferAll embeddings exported by examples/serving).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		model     = flag.String("model", "", "path to an ehna model snapshot (Model.Save)")
		snapshot  = flag.String("snapshot", "", "path to an embstore snapshot (Store.Save)")
		shards    = flag.Int("shards", embstore.DefaultShards, "store shard count")
		indexKind = flag.String("index", "lsh", "ann index: lsh or exact")
		tables    = flag.Int("tables", 16, "lsh: number of hash tables")
		bits      = flag.Int("bits", 8, "lsh: signature bits per table")
		probes    = flag.Int("probes", -1, "lsh: Hamming-1 probes per table (-1 = bits)")
		seed      = flag.Int64("seed", 1, "lsh: hyperplane seed")
		metric    = flag.String("metric", "cosine", "similarity metric: cosine or dot")
		maxBatch  = flag.Int("max-batch", 64, "micro-batcher: max coalesced queries")
		window    = flag.Duration("batch-window", 2*time.Millisecond, "micro-batcher: gather window (0 disables)")
	)
	flag.Parse()

	store, err := loadStore(*model, *snapshot, *shards)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	m, err := ann.ParseMetric(*metric)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	index, err := buildIndex(store, *indexKind, m, *tables, *bits, *probes, *seed)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	log.Printf("ehnad: store loaded: %d nodes × %d dims across %d shards, %s index (%s metric)",
		store.Len(), store.Dim(), store.NumShards(), *indexKind, m)

	srv := newServer(store, index, *indexKind, *maxBatch, *window)
	defer srv.close()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("ehnad: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		close(done)
	}()

	log.Printf("ehnad: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ehnad: %v", err)
	}
	<-done
}

// loadStore builds the store from exactly one of the two sources.
func loadStore(model, snapshot string, shards int) (*embstore.Store, error) {
	switch {
	case model != "" && snapshot != "":
		return nil, fmt.Errorf("pass -model or -snapshot, not both")
	case model == "" && snapshot == "":
		return nil, fmt.Errorf("pass -model (ehna snapshot) or -snapshot (embstore snapshot)")
	case model != "":
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return embstore.FromModelSnapshot(f, shards)
	default:
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return embstore.Load(f, shards)
	}
}

func buildIndex(store *embstore.Store, kind string, metric ann.Metric, tables, bits, probes int, seed int64) (ann.Index, error) {
	switch kind {
	case "exact":
		return ann.NewExact(store, metric), nil
	case "lsh":
		cfg := ann.LSHConfig{Tables: tables, Bits: bits, Probes: probes, Seed: seed, Metric: metric}
		return ann.NewLSH(store, cfg)
	default:
		return nil, fmt.Errorf("unknown index %q (want lsh or exact)", kind)
	}
}
