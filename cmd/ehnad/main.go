// Command ehnad is the online embedding-serving daemon: it loads a
// trained embedding table into a sharded in-memory store, builds an ANN
// index over it, and answers HTTP/JSON queries.
//
// Endpoints:
//
//	POST /v1/neighbors       top-k similar nodes, by stored id or raw vector;
//	                         single queries are micro-batched server-side,
//	                         "queries":[...] batches explicitly
//	POST /v1/score           pairwise link-prediction score under a Table II
//	                         edge operator (hadamard sum = dot product)
//	POST /v1/upsert          insert/replace vectors (WAL-logged, then store + index;
//	                         acks carry the WAL seq)
//	POST /v1/delete          remove vectors (WAL-logged, then store + index)
//	GET  /v1/vector          resolve one stored id to its vector (router id-queries)
//	GET  /v1/export          stream an embstore snapshot of the live store
//	                         (watermark-stamped with -wal; follower bootstrap source)
//	GET  /v1/repl/stream     (with -wal) ship framed WAL records to a follower
//	GET  /v1/repl/status     role + replication watermarks
//	POST /v1/admin/promote   leave follower mode; returns the applied watermark
//	POST /v1/admin/snapshot  (with -wal) rotate a snapshot now
//	POST /v1/admin/compact   (with -wal) rebuild the HNSW graph now, swapping
//	                         it in under live traffic
//	GET  /healthz            liveness + store/index/durability stats
//	GET  /debug/pprof/       (with -pprof) live CPU/heap/mutex profiling
//
// The embedding source is either -model (an ehna model snapshot written
// by Model.Save — serves the raw embedding table) or -snapshot (an
// embstore snapshot written by Store.Save — e.g. the attention-
// aggregated InferAll embeddings exported by examples/serving).
//
// Durability: with -wal DIR the daemon is a system of record, not a
// cache. Every mutation is appended to a write-ahead log (fsynced per
// -fsync) before it touches the store, snapshots of store + HNSW graph
// rotate in the background every -snapshot-interval (tmp+rename, WAL
// truncated to the snapshot watermark), and the maintenance loop
// rebuilds the HNSW graph in the background once its tombstone ratio
// passes -compact-at, atomically swapping the fresh graph in while
// searches keep answering. On boot the daemon loads the newest
// snapshot pair and replays the WAL suffix; -model/-snapshot then only
// seed the very first boot, and -dim allows starting empty. See
// cmd/ehnad/durability.go for the recovery invariants.
//
// Index selection: -index exact (ground truth, linear scan), lsh
// (multi-probe hashing) or hnsw (graph search — the sublinear choice at
// 100k+ nodes). With -index hnsw, -hnsw-graph names a gob snapshot of
// the graph structure: loaded when present so the daemon boots without
// rebuilding, written after a fresh build otherwise (with -wal it
// defaults to DIR/graph.gob).
//
// Precision: -precision f64|f32|sq8 selects the vector slab layout —
// full float64, float32 (half the memory), or int8 scalar quantization
// (~8x less vector memory; searches score quantized rows against the
// full-precision query with a widened beam, recall@10 ≥ 0.95 gated in
// CI). The precision applies per boot: snapshots of any precision
// convert to the requested layout on load, so pass the same value on
// every restart to keep the layout. WAL records always carry
// full-precision vectors, so durability semantics are unchanged.
// /healthz reports precision and bytes_per_vector (and, with -index
// hnsw, the graph slab's mirror cost under graph.slab_bytes_per_vector).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/faultfs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		model     = flag.String("model", "", "path to an ehna model snapshot (Model.Save)")
		snapshot  = flag.String("snapshot", "", "path to an embstore snapshot (Store.Save)")
		dim       = flag.Int("dim", 0, "with -wal: boot an empty store of this dimensionality when no snapshot or seed exists yet")
		precision = flag.String("precision", "f64", "vector slab precision: f64 (full), f32 (half the memory), or sq8 (int8 scalar quantization, ~8x less memory; recall gated >= 0.95). Applies per boot: snapshots of any precision convert to this layout on load, so pass the same value on every restart to keep the layout. WAL records stay full-precision")
		storeMode = flag.String("store", "ram", "store residency: ram (heap slabs, fastest) or mmap (serve the vector slabs straight from a mapped v3 snapshot; boot is O(1) in dataset size and the OS pages vectors in on demand, so the set can exceed RAM)")
		shards    = flag.Int("shards", embstore.DefaultShards, "store shard count")
		indexKind = flag.String("index", "lsh", "ann index: exact, lsh or hnsw")
		tables    = flag.Int("tables", 16, "lsh: number of hash tables")
		bits      = flag.Int("bits", 8, "lsh: signature bits per table")
		probes    = flag.Int("probes", -1, "lsh: Hamming-1 probes per table (-1 = bits)")
		m         = flag.Int("m", 16, "hnsw: graph degree M (layer 0 allows 2M links)")
		efCons    = flag.Int("ef-construction", 200, "hnsw: build-time beam width")
		efSearch  = flag.Int("ef-search", 64, "hnsw: query-time beam width (recall/latency dial)")
		hnswGraph = flag.String("hnsw-graph", "", "hnsw: graph snapshot path — loaded if present (boot without rebuild), written after a fresh build otherwise")
		seed      = flag.Int64("seed", 1, "lsh hyperplane / hnsw level-draw seed")
		metric    = flag.String("metric", "cosine", "similarity metric: cosine or dot")
		maxBatch  = flag.Int("max-batch", 64, "micro-batcher: max coalesced queries")
		window    = flag.Duration("batch-window", 2*time.Millisecond, "micro-batcher: gather window (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
		walDir    = flag.String("wal", "", "write-ahead-log directory: makes writes durable and enables snapshot rotation + background compaction")
		fsync     = flag.String("fsync", "always", "wal fsync policy: always (group commit, crash-safe), never, or a flush interval like 100ms")
		snapEvery = flag.Duration("snapshot-interval", 5*time.Minute, "wal: background snapshot rotation period (0 disables; snapshots can still be forced via /v1/admin/snapshot)")
		compactAt = flag.Float64("compact-at", 0.2, "hnsw+wal: tombstone ratio that triggers a background compaction rebuild (<=0 disables)")
		deadline  = flag.Duration("default-deadline", 2*time.Second, "per-request time budget when the client sends none (deadline_ms field or X-Ehnad-Deadline-Ms header override; 0 disables)")
		inflight  = flag.Int("max-inflight", 256, "max concurrently served /v1/neighbors requests; excess sheds with 429 (0 = unlimited)")
		queueCap  = flag.Int("queue-depth", 0, "micro-batcher admission queue capacity; a full queue sheds with 429 (0 = 4×max-batch)")
		efFloor   = flag.Int("ef-floor", 16, "hnsw: lowest ef-search the overload degrader may shrink the beam to under sustained queue pressure (0 disables adaptation)")
		faultSpec = flag.String("fault", "", `wal fault-injection spec for chaos drills, e.g. "sync:after=100,count=3;write:enospc,p=0.01,seed=7" (see internal/faultfs)`)
		follow    = flag.String("follow", "", "run as a replication follower of this leader base URL (requires -wal): bootstrap from its /v1/export if the WAL dir is empty, tail its /v1/repl/stream, refuse writes until promoted via /v1/admin/promote")
	)
	flag.Parse()

	var fsys faultfs.FS
	if *faultSpec != "" {
		inj, err := faultfs.Parse(*faultSpec, faultfs.OS())
		if err != nil {
			log.Fatalf("ehnad: -fault: %v", err)
		}
		fsys = inj
		log.Printf("ehnad: WAL fault injection armed: %s", *faultSpec)
	}

	mt, err := ann.ParseMetric(*metric)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	prec, err := embstore.ParsePrecision(*precision)
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	if *storeMode != "ram" && *storeMode != "mmap" {
		log.Fatalf("ehnad: -store=%s: want ram or mmap", *storeMode)
	}
	srv, err := buildServer(serverConfig{
		model:     *model,
		snapshot:  *snapshot,
		dim:       *dim,
		precision: prec,
		storeMode: *storeMode,
		shards:    *shards,
		index: indexOptions{
			kind:           *indexKind,
			metric:         mt,
			seed:           *seed,
			tables:         *tables,
			bits:           *bits,
			probes:         *probes,
			m:              *m,
			efConstruction: *efCons,
			efSearch:       *efSearch,
			graphPath:      *hnswGraph,
		},
		maxBatch:         *maxBatch,
		window:           *window,
		pprof:            *pprofOn,
		walDir:           *walDir,
		fsync:            *fsync,
		snapshotInterval: *snapEvery,
		compactAt:        *compactAt,
		defaultDeadline:  *deadline,
		maxInflight:      *inflight,
		queueDepth:       *queueCap,
		efFloor:          *efFloor,
		fs:               fsys,
		follow:           *follow,
	})
	if err != nil {
		log.Fatalf("ehnad: %v", err)
	}
	log.Printf("ehnad: store loaded: %d nodes × %d dims across %d shards at %s (%d bytes/vector), %s index (%s metric)",
		srv.store.Len(), srv.store.Dim(), srv.store.NumShards(),
		srv.store.Precision(), srv.store.Precision().BytesPerVector(srv.store.Dim()), *indexKind, mt)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.close()
		log.Fatalf("ehnad: %v", err)
	}
	if *pprofOn {
		log.Printf("ehnad: pprof mounted at %s/debug/pprof/", *addr)
	}
	log.Printf("ehnad: listening on %s", *addr)
	if err := runDaemon(srv, ln); err != nil {
		srv.close()
		log.Fatalf("ehnad: %v", err)
	}
}

// runDaemon serves srv on ln until SIGTERM/SIGINT, then exits
// gracefully: stop accepting and drain in-flight HTTP (readiness flips
// not-ready first, so balancers stop routing), drain the micro-batcher,
// fsync the WAL, and rotate a final snapshot pair — a clean exit
// replays zero records on the next boot. Shared with the crash-test
// helper process so the signal path under test is the production one.
func runDaemon(srv *server, ln net.Listener) error {
	httpSrv := &http.Server{Handler: srv.handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("ehnad: shutting down: draining requests, flushing WAL, rotating final snapshot")
		srv.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		srv.shutdown()
		close(done)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	<-done
	log.Print("ehnad: shutdown complete")
	return nil
}

// serverConfig is everything buildServer needs: the flag set, parsed.
// Factored out of main so the crash-recovery tests can boot the exact
// daemon stack in-process and as a helper process.
type serverConfig struct {
	model     string
	snapshot  string
	dim       int
	precision embstore.Precision
	storeMode string // "" or "ram" (heap slabs) | "mmap" (mapped v3 base + overlay)
	shards    int
	index     indexOptions
	maxBatch  int
	window    time.Duration
	pprof     bool

	walDir           string
	fsync            string
	snapshotInterval time.Duration
	compactAt        float64

	// Overload-control plane (zero values = permissive defaults that
	// keep existing tests and embedders behaving as before).
	defaultDeadline time.Duration
	maxInflight     int
	queueDepth      int
	efFloor         int
	fs              faultfs.FS // nil = the real filesystem

	// follow makes the daemon a replication follower of this leader URL
	// (requires walDir; see cmd/ehnad/replica.go).
	follow string
}

// buildServer assembles store, index and (with a WAL dir) the
// durability layer: snapshot + WAL-replay recovery on the way up, the
// write-ahead applier and the maintenance loop once running.
func buildServer(cfg serverConfig) (*server, error) {
	var (
		store     *embstore.Store
		watermark uint64
		err       error
	)
	bootStart := time.Now()
	if cfg.storeMode == "" {
		cfg.storeMode = "ram"
	}
	if cfg.storeMode != "ram" && cfg.storeMode != "mmap" {
		return nil, fmt.Errorf("-store=%s: want ram or mmap", cfg.storeMode)
	}
	if cfg.follow != "" && cfg.walDir == "" {
		return nil, fmt.Errorf("-follow requires -wal: a follower preserves the leader's log")
	}
	fsys := cfg.fs
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if cfg.walDir != "" {
		// The snapshot pair and the graph land in the log directory,
		// possibly before wal.Open creates it — make it exist first.
		if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
			return nil, err
		}
		// A brand-new follower seeds its snapshot from the leader before
		// the normal load below.
		if cfg.follow != "" {
			if err := bootstrapFollower(cfg); err != nil {
				return nil, err
			}
		}
		// In WAL mode the rotating snapshot pair lives in the log
		// directory and takes precedence over any seed artifact.
		if cfg.index.kind == "hnsw" && cfg.index.graphPath == "" {
			cfg.index.graphPath = filepath.Join(cfg.walDir, "graph.gob")
		}
		cfg.index.rebuildOnLoadError = true // a stale graph is survivable, not fatal
		store, watermark, err = loadWALStore(cfg, fsys)
		if err != nil {
			return nil, err
		}
	} else if cfg.storeMode == "mmap" {
		// Without a WAL there is no rotation to write a v3 base, so the
		// seed artifact itself must already be one.
		if cfg.snapshot == "" {
			return nil, fmt.Errorf("-store=mmap without -wal requires -snapshot pointing at a v3 snapshot (SaveSnapshotV3 output)")
		}
		if !embstore.IsV3Snapshot(cfg.snapshot) {
			return nil, fmt.Errorf("-store=mmap: %s is not a v3 snapshot (gob snapshots must be converted first, e.g. by booting once with -wal)", cfg.snapshot)
		}
		store, _, err = embstore.OpenMmap(cfg.snapshot)
		if err != nil {
			return nil, fmt.Errorf("mmap snapshot %s: %w", cfg.snapshot, err)
		}
		if store.Precision() != cfg.precision {
			// A mapped base serves at the precision it was written in; the
			// flag cannot re-encode a read-only file.
			log.Printf("ehnad: -store=mmap serves %s at its native precision %s (-precision %s has no effect without -wal)",
				cfg.snapshot, store.Precision(), cfg.precision)
		}
	} else {
		store, err = loadStore(cfg.model, cfg.snapshot, cfg.shards, cfg.precision)
		if err != nil {
			return nil, err
		}
	}
	storeLoaded := time.Now()

	index, err := buildIndex(store, cfg.index)
	if err != nil {
		return nil, err
	}
	indexBuilt := time.Now()
	sw := ann.NewSwapper(index)
	srv := newServer(store, sw, cfg.index.kind, cfg.maxBatch, cfg.window, serveOpts{
		defaultDeadline: cfg.defaultDeadline,
		maxInflight:     cfg.maxInflight,
		queueDepth:      cfg.queueDepth,
		efFloor:         cfg.efFloor,
	})
	srv.pprof = cfg.pprof
	if cfg.pprof {
		// Sampled mutex/block profiles so /debug/pprof/mutex and /block
		// carry data. 1-in-100 contention events and blocking events
		// over ~1ms keep the overhead invisible next to a search.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Millisecond))
	}
	if cfg.walDir != "" {
		srv.dur, err = newDurable(cfg, store, sw, watermark)
		if err != nil {
			srv.close()
			return nil, err
		}
		srv.dur.registerMetrics(srv.metrics.reg)
		if cfg.follow != "" {
			srv.repl = newReplica(cfg.follow, srv.dur)
			srv.repl.registerMetrics(srv.metrics.reg)
			srv.repl.start()
		}
	}
	boot := time.Since(bootStart)
	srv.metrics.reg.Gauge("ehnad_boot_seconds",
		"Wall time from process start to ready: store load + index build + WAL recovery.").Set(boot.Seconds())
	log.Printf("ehnad: boot %v (store %v [%s], index %v, recovery %v)",
		boot.Round(time.Millisecond), storeLoaded.Sub(bootStart).Round(time.Millisecond), cfg.storeMode,
		indexBuilt.Sub(storeLoaded).Round(time.Millisecond), time.Since(indexBuilt).Round(time.Millisecond))
	return srv, nil
}

// walSnapshotPath is where the legacy gob store snapshot lives in WAL
// mode — read at boot for directories written before the v3 format,
// never written anymore (rotation removes it once a v3 base exists).
func walSnapshotPath(walDir string) string { return filepath.Join(walDir, "store.gob") }

// walSnapshotV3Path is where the rotating flat v3 snapshot lives in WAL
// mode: the file the mmap store serves straight out of.
func walSnapshotV3Path(walDir string) string { return filepath.Join(walDir, "store.snap") }

// loadWALStore loads the store for a WAL directory, preferring the flat
// v3 snapshot over the legacy gob one and falling back to the seed
// artifacts. The matrix by mode:
//
//	v3 exists:  ram → copy it into heap slabs at -precision;
//	            mmap → map it (precision mismatch: materialize at the
//	            requested precision, rewrite the base, map the rewrite).
//	gob only:   load + convert (the pre-v3 upgrade path); mmap
//	            additionally writes a v3 base now and maps it, so the
//	            cold tier exists from the first boot after the upgrade.
//	neither:    seed from -model/-snapshot/-dim; mmap writes + maps a
//	            v3 base exactly as in the gob case.
//
// Rotation keeps the v3 base fresh from then on and deletes the legacy
// gob file once a v3 pair is durable.
func loadWALStore(cfg serverConfig, fsys faultfs.FS) (*embstore.Store, uint64, error) {
	v3Path := walSnapshotV3Path(cfg.walDir)
	mmapMode := cfg.storeMode == "mmap"
	if _, serr := os.Stat(v3Path); serr == nil {
		if !mmapMode {
			store, watermark, err := embstore.LoadSnapshotV3At(v3Path, cfg.shards, cfg.precision)
			if err != nil {
				return nil, 0, fmt.Errorf("load wal snapshot %s: %w", v3Path, err)
			}
			log.Printf("ehnad: wal snapshot %s loaded: %d nodes at %s, watermark %d",
				v3Path, store.Len(), store.Precision(), watermark)
			return store, watermark, nil
		}
		store, watermark, err := embstore.OpenMmap(v3Path)
		if err != nil {
			return nil, 0, fmt.Errorf("load wal snapshot %s: %w", v3Path, err)
		}
		if store.Precision() != cfg.precision {
			// A precision switch cannot re-encode the read-only mapping in
			// place: materialize at the target precision, publish the
			// re-encoded base, and map that instead.
			store.Close()
			conv, wm, err := embstore.LoadSnapshotV3At(v3Path, cfg.shards, cfg.precision)
			if err != nil {
				return nil, 0, fmt.Errorf("load wal snapshot %s: %w", v3Path, err)
			}
			if err := writeStoreSnapshotV3(fsys, v3Path, conv, wm); err != nil {
				return nil, 0, fmt.Errorf("rewrite wal snapshot at %s: %w", conv.Precision(), err)
			}
			store, watermark, err = embstore.OpenMmap(v3Path)
			if err != nil {
				return nil, 0, fmt.Errorf("load wal snapshot %s: %w", v3Path, err)
			}
			log.Printf("ehnad: wal snapshot %s re-encoded at %s and remapped", v3Path, store.Precision())
		}
		log.Printf("ehnad: wal snapshot %s mapped: %d nodes at %s, %d bytes resident of %d mapped, watermark %d",
			v3Path, store.Len(), store.Precision(), store.MappedResidentBytes(), store.MappedBytes(), watermark)
		return store, watermark, nil
	} else if !os.IsNotExist(serr) {
		return nil, 0, serr
	}

	var (
		store     *embstore.Store
		watermark uint64
	)
	gobPath := walSnapshotPath(cfg.walDir)
	if f, ferr := os.Open(gobPath); ferr == nil {
		// Load at the requested precision whatever precision the snapshot
		// was written in: a daemon switching to -precision sq8 upconverts
		// its old f64 image on this boot and writes sq8 images from the
		// next rotation on.
		var err error
		store, watermark, err = embstore.LoadSnapshotAt(f, cfg.shards, cfg.precision)
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("load wal snapshot %s: %w", gobPath, err)
		}
		log.Printf("ehnad: legacy wal snapshot %s loaded: %d nodes at %s, watermark %d (v3 from the next rotation)",
			gobPath, store.Len(), store.Precision(), watermark)
	} else if !os.IsNotExist(ferr) {
		return nil, 0, ferr
	} else {
		var err error
		store, err = seedStore(cfg)
		if err != nil {
			return nil, 0, err
		}
	}
	if mmapMode {
		// mmap mode needs an on-disk v3 base to serve from; write one from
		// the materialized store and reopen it cold. The WAL suffix past
		// the (unchanged) watermark replays into the overlay as usual.
		if err := writeStoreSnapshotV3(fsys, v3Path, store, watermark); err != nil {
			return nil, 0, fmt.Errorf("write v3 base %s: %w", v3Path, err)
		}
		cold, wm, err := embstore.OpenMmap(v3Path)
		if err != nil {
			return nil, 0, fmt.Errorf("load wal snapshot %s: %w", v3Path, err)
		}
		store, watermark = cold, wm
		log.Printf("ehnad: v3 base %s written and mapped: %d nodes at %s, watermark %d",
			v3Path, store.Len(), store.Precision(), watermark)
	}
	return store, watermark, nil
}

// writeStoreSnapshotV3 publishes a flat v3 snapshot of store via the
// injectable filesystem (tmp+rename, fsynced).
func writeStoreSnapshotV3(fsys faultfs.FS, path string, store *embstore.Store, watermark uint64) error {
	return writeFileAtomicFS(fsys, path, func(f faultfs.File) error {
		return store.SaveSnapshotV3(f, watermark)
	})
}

// seedStore builds the initial store for a WAL directory that has no
// snapshot yet: a seed artifact if one was given, an empty store under
// -dim otherwise.
func seedStore(cfg serverConfig) (*embstore.Store, error) {
	if cfg.model != "" || cfg.snapshot != "" {
		return loadStore(cfg.model, cfg.snapshot, cfg.shards, cfg.precision)
	}
	if cfg.dim < 1 {
		return nil, fmt.Errorf("wal dir %s has no snapshot: pass -model, -snapshot, or -dim to boot empty", cfg.walDir)
	}
	return embstore.NewPrecision(cfg.dim, cfg.shards, cfg.precision)
}

// loadStore builds the store from exactly one of the two sources, at
// the requested slab precision (seed artifacts are full-precision;
// embstore snapshots convert from whatever they were written in).
func loadStore(model, snapshot string, shards int, prec embstore.Precision) (*embstore.Store, error) {
	switch {
	case model != "" && snapshot != "":
		return nil, fmt.Errorf("pass -model or -snapshot, not both")
	case model == "" && snapshot == "":
		return nil, fmt.Errorf("pass -model (ehna snapshot) or -snapshot (embstore snapshot)")
	case model != "":
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return embstore.FromModelSnapshotPrecision(f, shards, prec)
	default:
		if embstore.IsV3Snapshot(snapshot) {
			s, _, err := embstore.LoadSnapshotV3At(snapshot, shards, prec)
			return s, err
		}
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, _, err := embstore.LoadSnapshotAt(f, shards, prec)
		return s, err
	}
}

// indexOptions carries every index-selection flag; only the fields for
// the chosen kind are consulted.
type indexOptions struct {
	kind   string
	metric ann.Metric
	seed   int64
	// lsh
	tables, bits, probes int
	// hnsw
	m, efConstruction, efSearch int
	graphPath                   string
	// rebuildOnLoadError downgrades a corrupt/stale graph snapshot from
	// fatal to a logged rebuild. Set in WAL mode, where a crash between
	// the store and graph renames legitimately leaves the pair skewed.
	rebuildOnLoadError bool
}

func buildIndex(store *embstore.Store, o indexOptions) (ann.Index, error) {
	switch o.kind {
	case "exact":
		return ann.NewExact(store, o.metric), nil
	case "lsh":
		cfg := ann.LSHConfig{Tables: o.tables, Bits: o.bits, Probes: o.probes, Seed: o.seed, Metric: o.metric}
		return ann.NewLSH(store, cfg)
	case "hnsw":
		return buildHNSW(store, o)
	default:
		return nil, fmt.Errorf("unknown index %q (want exact, lsh or hnsw)", o.kind)
	}
}

// hnswConfigOf maps the hnsw flag subset onto an ann.HNSWConfig — also
// the parameter set background compaction rebuilds with.
func hnswConfigOf(o indexOptions) ann.HNSWConfig {
	return ann.HNSWConfig{M: o.m, EfConstruction: o.efConstruction, EfSearch: o.efSearch, Seed: o.seed, Metric: o.metric}
}

// buildHNSW loads the graph snapshot when one exists (boot without
// rebuild) and builds+saves it otherwise.
func buildHNSW(store *embstore.Store, o indexOptions) (ann.Index, error) {
	cfg := hnswConfigOf(o)
	if o.graphPath != "" {
		if f, err := os.Open(o.graphPath); err == nil {
			h, err := loadHNSWGraph(f, store, o)
			f.Close()
			if err == nil {
				return h, nil
			}
			if !o.rebuildOnLoadError {
				return nil, err
			}
			log.Printf("ehnad: %v; rebuilding graph from the store", err)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	start := time.Now()
	h, err := ann.BuildHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	alive, _, maxLevel := h.Stats()
	log.Printf("ehnad: hnsw graph built: %d nodes, %d layers in %v", alive, maxLevel+1, time.Since(start).Round(time.Millisecond))
	if o.graphPath != "" {
		// Write-then-rename so a crash mid-save cannot leave a truncated
		// snapshot that bricks every subsequent boot.
		if err := writeFileAtomic(o.graphPath, h.SaveGraph); err != nil {
			return nil, err
		}
		log.Printf("ehnad: hnsw graph saved to %s", o.graphPath)
	}
	return h, nil
}

// loadHNSWGraph loads and validates a graph snapshot against the store.
func loadHNSWGraph(f *os.File, store *embstore.Store, o indexOptions) (*ann.HNSW, error) {
	h, err := ann.LoadHNSWGraph(f, store)
	if err != nil {
		return nil, fmt.Errorf("load hnsw graph %s: %w", f.Name(), err)
	}
	// The snapshot fixes the build-time parameters (metric, M,
	// ef-construction); only -ef-search applies at load. A metric
	// mismatch would silently rank by the wrong similarity, so
	// refuse it rather than ignore the flag.
	loaded := h.Config()
	if loaded.Metric != o.metric {
		return nil, fmt.Errorf("hnsw graph %s was built with metric %s, conflicting with -metric %s (rebuild, or match the flag)",
			f.Name(), loaded.Metric, o.metric)
	}
	h.SetEfSearch(o.efSearch)
	alive, tombs, maxLevel := h.Stats()
	log.Printf("ehnad: hnsw graph loaded from %s: %d nodes (%d tombstones), %d layers, m=%d ef-construction=%d (snapshot values)",
		f.Name(), alive, tombs, maxLevel+1, loaded.M, loaded.EfConstruction)
	return h, nil
}

// writeFileAtomic writes via a sibling temp file and renames it into
// place, so readers only ever see a complete file.
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	return writeFileAtomicFS(faultfs.OS(), path, func(f faultfs.File) error {
		return write(f)
	})
}

// writeFileAtomicFS is writeFileAtomic through the injectable
// filesystem, so chaos drills can break the snapshot publish path
// (write, fsync, the rename itself) the same way they break the WAL.
// The write callback gets the full faultfs.File — the v3 snapshot
// writer seeks back to stamp its header.
func writeFileAtomicFS(fsys faultfs.FS, path string, write func(f faultfs.File) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// Fsync the directory: until the rename itself is durable, nothing
	// may rely on the new file surviving power loss (the snapshot loop
	// deletes WAL segments on the strength of this rename).
	d, err := fsys.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
