package main

// Tests for the overload-control plane: admission shedding (queue
// full, predicted deadline miss, inflight cap), deadline expiry in the
// batcher queue, graceful degradation of the ef-search beam, readiness
// semantics, and the fault-injected read-only mode end to end.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/faultfs"
	"ehna/internal/graph"
)

// jsonDecode decodes and closes one response body.
func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// blockingIndex gates SearchInto so a test can hold a flush mid-search
// deterministically: each call announces itself on entered, then waits
// for the gate (or its context).
type blockingIndex struct {
	ann.Index
	entered chan struct{}
	gate    chan struct{}
}

func newBlockingIndex(inner ann.Index) *blockingIndex {
	return &blockingIndex{Index: inner, entered: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (bi *blockingIndex) SearchInto(ctx context.Context, dst []ann.Result, q []float64, k int) ([]ann.Result, error) {
	bi.entered <- struct{}{}
	select {
	case <-bi.gate:
	case <-ctx.Done():
		return dst, ctx.Err()
	}
	return bi.Index.SearchInto(ctx, dst, q, k)
}

// TestBatcherNeverSearchesExpiredRequest queues a request whose
// deadline lapses before the gather window closes: the caller gets its
// context error promptly, and the flush accounts the request as
// expired-in-queue instead of searching it.
func TestBatcherNeverSearchesExpiredRequest(t *testing.T) {
	store, _ := trainedStore(t)
	index := ann.NewExact(store, ann.Cosine)
	before := expiredInQueue.Load()
	b := newBatcher(index, 4, 80*time.Millisecond, 0, nil)
	defer b.close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, buf, _, err := b.do(ctx, mustGet(t, store, 0), 3)
	buf.release()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("do() = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 60*time.Millisecond {
		t.Errorf("do() held the caller %v; must return at its own deadline, not the flush", waited)
	}
	// The flush (at the 80ms window) must skip the corpse.
	deadline := time.Now().Add(2 * time.Second)
	for expiredInQueue.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("expired request was never accounted by the flush")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatcherShedsOnFullQueue fills the admission queue behind a
// search held open by the gate and checks the next arrival is refused
// immediately with errOverloaded.
func TestBatcherShedsOnFullQueue(t *testing.T) {
	store, _ := trainedStore(t)
	bi := newBlockingIndex(ann.NewExact(store, ann.Cosine))
	before := shedQueueFull.Load()
	b := newBatcher(bi, 1, 0, 1, nil) // one searching, one queued, rest shed
	defer b.close()
	q := mustGet(t, store, 0)

	done := make(chan error, 2)
	submit := func() {
		_, buf, _, err := b.do(context.Background(), q, 3)
		buf.release()
		done <- err
	}
	go submit()
	<-bi.entered // first request is mid-search; queue is empty again

	go submit() // parks in the queue (capacity 1)
	waitUntil := time.Now().Add(2 * time.Second)
	for len(b.in) != 1 {
		if time.Now().After(waitUntil) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	_, buf, _, err := b.do(context.Background(), q, 3)
	buf.release()
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("third request got %v, want errOverloaded", err)
	}
	if got := shedQueueFull.Load(); got != before+1 {
		t.Errorf("shed counter moved %d, want 1", got-before)
	}

	close(bi.gate) // release; both held requests must complete
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("held request %d failed: %v", i, err)
			}
		case <-bi.entered:
			i-- // second flush entering the index, not a completion
		case <-time.After(5 * time.Second):
			t.Fatal("held requests never completed after the gate opened")
		}
	}
}

// TestBatcherShedsOnPredictedDeadlineMiss seeds the flush-cost EWMA so
// the predicted queue wait dwarfs the request's budget: with work
// already queued, admission must refuse up front rather than queue
// doomed work — but an empty queue always admits a probe, so a stale
// (storm-inflated) EWMA cannot shed forever: the probe's flush
// re-measures the real cost.
func TestBatcherShedsOnPredictedDeadlineMiss(t *testing.T) {
	store, _ := trainedStore(t)
	bi := newBlockingIndex(ann.NewExact(store, ann.Cosine))
	b := newBatcher(bi, 4, 0, 0, nil)
	defer b.close()
	b.flushNs.Store(int64(500 * time.Millisecond)) // pretend flushes are slow
	q := mustGet(t, store, 0)

	done := make(chan error, 3)
	submit := func() {
		_, buf, _, err := b.do(context.Background(), q, 3)
		buf.release()
		done <- err
	}
	go submit()
	<-bi.entered // first request mid-search; the queue is empty again
	go submit()  // parks in the queue, so predictive shed is armed
	waitUntil := time.Now().Add(2 * time.Second)
	for len(b.in) != 1 {
		if time.Now().After(waitUntil) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	before := shedDeadline.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, buf, _, err := b.do(ctx, q, 3)
	buf.release()
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("do() = %v, want errOverloaded", err)
	}
	if got := shedDeadline.Load(); got != before+1 {
		t.Errorf("deadline-shed counter moved %d, want 1", got-before)
	}

	// Without a deadline the same request must be admitted even with
	// the queue occupied.
	go submit()
	waitUntil = time.Now().Add(2 * time.Second)
	for len(b.in) != 2 {
		if time.Now().After(waitUntil) {
			t.Fatal("unbounded request never admitted to the queue")
		}
		time.Sleep(time.Millisecond)
	}

	close(bi.gate)
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("held request %d failed: %v", i, err)
			}
		case <-bi.entered:
			i-- // a later flush entering the index, not a completion
		case <-time.After(5 * time.Second):
			t.Fatal("held requests never completed after the gate opened")
		}
	}

	// Probe rule: the queue is empty now, so a deadline the stale EWMA
	// says is unmeetable must still be admitted — and its (fast) flush
	// must drag the EWMA back toward reality.
	ewmaBefore := b.flushNs.Load()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, buf, _, err := b.do(ctx2, q, 3); err != nil {
		t.Fatalf("empty-queue probe refused: %v", err)
	} else {
		buf.release()
	}
	recoverBy := time.Now().Add(2 * time.Second)
	for b.flushNs.Load() >= ewmaBefore {
		if time.Now().After(recoverBy) {
			t.Fatalf("EWMA %v never decayed from %v after the probe flush",
				time.Duration(b.flushNs.Load()), time.Duration(ewmaBefore))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDegraderShrinksAndRestores walks the controller through
// sustained pressure and recovery: halve to the floor, flag degraded,
// double back to full, clear the flag — with the beam re-asserted on
// the live graph at every step.
func TestDegraderShrinksAndRestores(t *testing.T) {
	store, _ := trainedStore(t)
	h, err := ann.BuildHNSW(store, ann.HNSWConfig{M: 8, EfConstruction: 64, EfSearch: 64, Seed: 1, Metric: ann.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	d := newDegrader(func() *ann.HNSW { return h }, 64, 16, 16) // high=12, low=4

	if d.degradedNow() || d.efNow() != 64 {
		t.Fatalf("fresh degrader: degraded=%v ef=%d", d.degradedNow(), d.efNow())
	}
	hot := func(n int) {
		for i := 0; i < n; i++ {
			d.sample(12)
		}
	}
	cool := func(n int) {
		for i := 0; i < n; i++ {
			d.sample(0)
		}
	}

	hot(degradeSustain - 1)
	if d.degradedNow() {
		t.Fatal("degraded before the sustain threshold")
	}
	hot(1)
	if !d.degradedNow() || d.efNow() != 32 {
		t.Fatalf("after sustained pressure: degraded=%v ef=%d, want true/32", d.degradedNow(), d.efNow())
	}
	if got := h.Config().EfSearch; got != 32 {
		t.Fatalf("live graph ef-search %d, want 32", got)
	}
	hot(3 * degradeSustain)
	if d.efNow() != 16 {
		t.Fatalf("ef %d after heavy pressure, want the floor 16", d.efNow())
	}

	cool(degradeSustain)
	if d.efNow() != 32 || !d.degradedNow() {
		t.Fatalf("after first recovery step: ef=%d degraded=%v, want 32/true", d.efNow(), d.degradedNow())
	}
	cool(degradeSustain)
	if d.efNow() != 64 || d.degradedNow() {
		t.Fatalf("after full recovery: ef=%d degraded=%v, want 64/false", d.efNow(), d.degradedNow())
	}
	if got := h.Config().EfSearch; got != 64 {
		t.Fatalf("live graph ef-search %d after recovery, want 64", got)
	}

	// A mid-pressure bounce (neither watermark) resets both streaks.
	hot(degradeSustain - 1)
	d.sample(8) // between low and high
	hot(degradeSustain - 1)
	if d.degradedNow() {
		t.Fatal("non-consecutive pressure samples should not degrade")
	}

	// Degenerate configurations disable the controller.
	if newDegrader(func() *ann.HNSW { return h }, 64, 0, 16) != nil {
		t.Error("floor 0 should disable the degrader")
	}
	if newDegrader(func() *ann.HNSW { return h }, 64, 64, 16) != nil {
		t.Error("floor >= full should disable the degrader")
	}
}

// TestInflightLimitSheds holds one request mid-search and checks the
// next is refused at the concurrency cap with 429 + Retry-After.
func TestInflightLimitSheds(t *testing.T) {
	store, _ := trainedStore(t)
	bi := newBlockingIndex(ann.NewExact(store, ann.Cosine))
	srv := newServer(store, bi, "exact", 4, 0, serveOpts{maxInflight: 1})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() { ts.Close(); srv.close() })

	id := graph.NodeID(store.IDs()[0])
	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"id": id, "k": 3}, nil)
		first <- status
	}()
	<-bi.entered // first request holds the only inflight slot

	// Seed the flush-cost EWMA so the shed's Retry-After must reflect
	// the batcher's predicted wait (3s × 1 flush ahead), pinning that
	// the inflight path shares the backoff arithmetic with every other
	// shed path instead of hardcoding one second.
	srv.batch.flushNs.Store(int64(3 * time.Second))

	resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json",
		strings.NewReader(`{"id":0,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Retry-After"), strconv.Itoa(retrySeconds(srv.batch.predictedWait())); got != want {
		t.Errorf("429 Retry-After = %q, want the predicted wait %q", got, want)
	}
	srv.batch.flushNs.Store(0) // don't let the seeded EWMA shed the held request's successors

	close(bi.gate)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("held request finished %d, want 200", status)
	}
}

// TestNeighborsDeadline exercises the client-facing deadline override:
// a request whose budget lapses mid-search comes back 503 promptly,
// via both the JSON field and the header.
func TestNeighborsDeadline(t *testing.T) {
	store, _ := trainedStore(t)
	bi := newBlockingIndex(ann.NewExact(store, ann.Cosine))
	srv := newServer(store, bi, "exact", 4, 0, serveOpts{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() { ts.Close(); srv.close() })
	defer close(bi.gate) // unwedge any search still parked at exit

	drainEntered := func() {
		for {
			select {
			case <-bi.entered:
			default:
				return
			}
		}
	}

	status, body := postJSON(t, ts.URL+"/v1/neighbors",
		map[string]any{"id": 0, "k": 3, "deadline_ms": 30}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("deadline_ms request got %d (%s), want 503", status, body)
	}
	drainEntered()
	// The stalled flush above seeded the flush-cost EWMA; zero it so the
	// header request exercises the accepted-then-expired 503 path rather
	// than being predictively shed at admission (a legitimate 429).
	srv.batch.flushNs.Store(0)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/neighbors",
		strings.NewReader(`{"id":0,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "30")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("header-deadline request got %d, want 503", resp.StatusCode)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline response took %v; must track the 30ms budget, not the search", took)
	}
}

// TestDeadlineValidation pins the strict override contract: a
// malformed or non-positive deadline — header or body field — is a
// 400, never silently the server default (a client that asked for a
// budget and got unbounded work would discover the typo as an outage).
func TestDeadlineValidation(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "exact")

	for _, h := range []string{"abc", "-5", "0", "1.5"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/neighbors",
			strings.NewReader(`{"id":0,"k":3}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(deadlineHeader, h)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("header %q got %d, want 400", h, resp.StatusCode)
		}
	}

	if status, body := postJSON(t, ts.URL+"/v1/neighbors",
		map[string]any{"id": 0, "k": 3, "deadline_ms": -10}, nil); status != http.StatusBadRequest {
		t.Errorf("deadline_ms -10 got %d (%s), want 400", status, body)
	}

	// Valid overrides keep working through both channels.
	if status, body := postJSON(t, ts.URL+"/v1/neighbors",
		map[string]any{"id": 0, "k": 3, "deadline_ms": 2000}, nil); status != http.StatusOK {
		t.Errorf("valid deadline_ms got %d (%s), want 200", status, body)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/neighbors",
		strings.NewReader(`{"id":0,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "2000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid header deadline got %d, want 200", resp.StatusCode)
	}
}

// TestReadyzDraining checks the readiness split: a fresh server is
// ready; a draining one reports 503 with the reason while /healthz
// stays 200 (alive, just not routable).
func TestReadyzDraining(t *testing.T) {
	store, _ := trainedStore(t)
	srv, ts := newTestServer(t, store, "exact")

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", resp.StatusCode)
	}

	srv.draining.Store(true)
	var out struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || out.Ready {
		t.Fatalf("draining /readyz = %d ready=%v, want 503/false", resp.StatusCode, out.Ready)
	}
	if len(out.Reasons) == 0 || !strings.Contains(out.Reasons[0], "draining") {
		t.Errorf("reasons = %v, want a draining reason", out.Reasons)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz = %d; liveness must stay 200", resp.StatusCode)
	}
}

// TestReadOnlyModeE2E is the fault drill in miniature: a WAL whose
// fsyncs start failing flips the daemon into read-only degraded mode —
// writes 503 with Retry-After, searches and /healthz keep answering,
// /readyz goes not-ready — and once the (count-limited) fault clears,
// the heal loop restores the write path without a restart.
func TestReadOnlyModeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("waits on the 1s heal ticker; skipped under -short")
	}
	walDir := t.TempDir()
	cfg := crashTestConfig(walDir)
	inj, err := faultfs.Parse("sync:after=4,count=3", faultfs.OS())
	if err != nil {
		t.Fatal(err)
	}
	cfg.fs = inj
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	upsert := func(id int) (int, string) {
		vec := make([]float64, crashDim)
		vec[0] = float64(id + 1)
		return postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": id, "vector": vec}, nil)
	}

	// Write until the injected fsync failures poison the WAL.
	var broke bool
	var acked int
	for i := 0; i < 32; i++ {
		status, _ := upsert(i)
		if status == http.StatusServiceUnavailable {
			broke = true
			break
		}
		if status != http.StatusOK {
			t.Fatalf("upsert %d: unexpected status %d", i, status)
		}
		acked++
	}
	if !broke {
		t.Fatal("injected fsync failures never surfaced as 503")
	}
	if !srv.dur.isReadOnly() {
		t.Fatal("daemon not in read-only mode after WAL failure")
	}

	// The contract while degraded: writes 503 (with Retry-After),
	// searches answer, /readyz not-ready, /healthz reports the state.
	if status, _ := upsert(acked); status != http.StatusServiceUnavailable {
		t.Errorf("write in read-only mode got %d, want 503", status)
	}
	var nresp neighborsResponse
	if status, body := postJSON(t, ts.URL+"/v1/neighbors",
		map[string]any{"id": 0, "k": 3}, &nresp); status != http.StatusOK {
		t.Errorf("search in read-only mode got %d (%s), want 200", status, body)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz in read-only mode = %d, want 503", resp.StatusCode)
	}
	var hz struct {
		Durability struct {
			WritePath struct {
				ReadOnly bool   `json:"read_only"`
				Cause    string `json:"cause"`
			} `json:"write_path"`
		} `json:"durability"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !hz.Durability.WritePath.ReadOnly {
		t.Errorf("/healthz = %d read_only=%v, want 200/true", resp.StatusCode, hz.Durability.WritePath.ReadOnly)
	}

	// The fault is count-limited, so the 1s heal loop must eventually
	// reopen the log, probe it clean, and resume accepting writes.
	healedBy := time.Now().Add(15 * time.Second)
	for {
		if status, _ := upsert(acked); status == http.StatusOK {
			break
		}
		if time.Now().After(healedBy) {
			t.Fatal("write path never recovered after the fault cleared")
		}
		time.Sleep(200 * time.Millisecond)
	}
	if srv.dur.isReadOnly() {
		t.Error("daemon still flagged read-only after a successful write")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after heal = %d, want 200", resp.StatusCode)
	}
	if srv.dur.heals.Load() == 0 {
		t.Error("heal counter never moved")
	}
}
