//go:build linux || darwin

package main

// Daemon-level tests for beyond-RAM serving: booting the store from a
// mapped v3 snapshot, folding the write overlay back into the base at
// rotation, upconverting legacy gob directories, and staying correct
// across the crash states a rotation can be interrupted in.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"ehna/internal/embstore"
	"ehna/internal/faultfs"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// mmapConfigAt is walConfigAt in mmap store mode.
func mmapConfigAt(walDir string, prec embstore.Precision, dim int) serverConfig {
	cfg := walConfigAt(walDir, prec, dim)
	cfg.storeMode = "mmap"
	return cfg
}

// seedDaemon upserts n seeded random vectors through the durability
// layer and mirrors them into a reference store.
func seedDaemon(t *testing.T, srv *server, n, dim int, seed int64) *embstore.Store {
	t.Helper()
	emb := tensor.Randn(n, dim, 1, rand.New(rand.NewSource(seed)))
	ref, err := embstore.New(dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	var updates []upsertUpdate
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		updates = append(updates, upsertUpdate{ID: &id, Vector: emb.Row(i)})
		if err := ref.Upsert(id, emb.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.dur.upsert(updates); err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestMmapBootRotateFold walks the cold store through its whole WAL
// lifecycle: first boot seeds and maps a v3 base, writes accumulate in
// the overlay, rotation folds them into a fresh base, and a reboot maps
// that base back with zero WAL replay.
func TestMmapBootRotateFold(t *testing.T) {
	const dim, n = 16, 300
	walDir := t.TempDir()

	srv, err := buildServer(mmapConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	if !srv.store.Cold() {
		t.Fatal("mmap-mode store is not cold")
	}
	if srv.store.MappedPath() != walSnapshotV3Path(walDir) {
		t.Fatalf("mapped %s, want %s", srv.store.MappedPath(), walSnapshotV3Path(walDir))
	}
	ref := seedDaemon(t, srv, n, dim, 61)

	// Everything so far landed in the overlay: the mapped base was empty.
	if v, _, _ := srv.store.OverlayStats(); v != n {
		t.Fatalf("overlay holds %d vectors, want %d", v, n)
	}
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	// The rotation folded the overlay into the remapped base.
	if v, b, m := srv.store.OverlayStats(); v != 0 || b != 0 || m != 0 {
		t.Fatalf("overlay (%d vectors, %d bytes, %d masked) after fold, want empty", v, b, m)
	}
	if srv.store.Len() != n {
		t.Fatalf("store holds %d after fold, want %d", srv.store.Len(), n)
	}

	// Post-fold mutations overlay the new base and keep serving truth.
	id := graph.NodeID(7)
	vec := make([]float64, dim)
	vec[3] = 2
	if _, err := srv.dur.upsert([]upsertUpdate{{ID: &id, Vector: vec}}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Upsert(id, vec); err != nil {
		t.Fatal(err)
	}
	if _, _, masked := srv.store.OverlayStats(); masked != 1 {
		t.Fatalf("overwriting a base row masked %d rows, want 1", masked)
	}
	del := graph.NodeID(9)
	if _, _, err := srv.dur.delete([]graph.NodeID{del}); err != nil {
		t.Fatal(err)
	}
	ref.Delete(del)

	// Searches answer out of the cold store (beam from the graph slab,
	// re-rank and id reads from the mapping + overlay).
	ts := httptest.NewServer(srv.handler())
	var nresp neighborsResponse
	status, raw := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"id": 7, "k": 3}, &nresp)
	if status != http.StatusOK {
		t.Fatalf("neighbors over cold store: %d %s", status, raw)
	}
	// /healthz reports the cold tier.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		StoreMode string `json:"store_mode"`
		Cold      struct {
			Snapshot       string `json:"snapshot"`
			MappedBytes    int64  `json:"mapped_bytes"`
			OverlayVectors int    `json:"overlay_vectors"`
			BaseMasked     int    `json:"base_masked"`
		} `json:"cold_store"`
		Process map[string]int64 `json:"process"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.StoreMode != "mmap" {
		t.Fatalf("healthz store_mode %q, want mmap", hz.StoreMode)
	}
	if hz.Cold.Snapshot != walSnapshotV3Path(walDir) || hz.Cold.MappedBytes <= 0 {
		t.Fatalf("healthz cold_store block %+v", hz.Cold)
	}
	if hz.Cold.OverlayVectors != 1 || hz.Cold.BaseMasked != 2 {
		t.Fatalf("healthz overlay_vectors %d (want 1), base_masked %d (want 2)",
			hz.Cold.OverlayVectors, hz.Cold.BaseMasked)
	}
	if hz.Process["resident_bytes"] <= 0 {
		t.Fatalf("healthz process block missing resident_bytes: %+v", hz.Process)
	}
	ts.Close()
	srv.close()

	// Reboot: the final shutdown-free close leaves a WAL suffix (the
	// post-fold upsert + delete); the boot maps the base and replays it
	// into the overlay.
	srv2, err := buildServer(mmapConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.close()
	if !srv2.store.Cold() {
		t.Fatal("rebooted store is not cold")
	}
	refSQ8 := mustConvert(t, ref, embstore.SQ8)
	if !srv2.store.Equal(refSQ8) {
		t.Fatalf("rebooted cold store (%d nodes) diverges from reference (%d nodes)",
			srv2.store.Len(), refSQ8.Len())
	}
}

// mustConvert re-encodes every vector of src into a fresh store at the
// given precision — the expected image of a daemon serving at prec.
func mustConvert(t *testing.T, src *embstore.Store, prec embstore.Precision) *embstore.Store {
	t.Helper()
	out, err := embstore.NewPrecision(src.Dim(), src.NumShards(), prec)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range src.IDs() {
		vec, _ := src.Get(id)
		if err := out.Upsert(id, vec); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestGobUpconvertOnRotation: a WAL directory from before the v3 format
// (legacy gob snapshot) boots, serves, and converts itself — the first
// rotation writes the v3 base and deletes the gob image; the next boot
// can then map it.
func TestGobUpconvertOnRotation(t *testing.T) {
	const dim, n = 12, 200
	walDir := t.TempDir()

	// Generation 0 writes its snapshot, then we rewrite it as legacy gob
	// to simulate a directory inherited from an older daemon.
	srv, err := buildServer(walConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatal(err)
	}
	ref := seedDaemon(t, srv, n, dim, 62)
	wm, err := srv.dur.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(walSnapshotPath(walDir), func(w io.Writer) error {
		return srv.store.SaveSnapshot(w, wm)
	}); err != nil {
		t.Fatal(err)
	}
	srv.close()
	if err := os.Remove(walSnapshotV3Path(walDir)); err != nil {
		t.Fatal(err)
	}

	// Generation 1 (ram mode) boots from the gob image...
	srv1, err := buildServer(walConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatalf("legacy gob boot: %v", err)
	}
	if !srv1.store.Equal(ref) {
		t.Fatal("legacy gob boot diverges from reference")
	}
	// ...and its first rotation upconverts: v3 written, gob gone.
	if _, err := srv1.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.close()
	if !embstore.IsV3Snapshot(walSnapshotV3Path(walDir)) {
		t.Fatal("rotation did not write a v3 snapshot")
	}
	if _, err := os.Stat(walSnapshotPath(walDir)); !os.IsNotExist(err) {
		t.Fatalf("legacy gob snapshot still present after v3 rotation (err=%v)", err)
	}

	// Generation 2 maps the upconverted base.
	srv2, err := buildServer(mmapConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatalf("mmap boot after upconvert: %v", err)
	}
	defer srv2.close()
	if !srv2.store.Cold() || !srv2.store.Equal(ref) {
		t.Fatalf("mapped store cold=%v, equal=%v", srv2.store.Cold(), srv2.store.Equal(ref))
	}
	if srv2.dur.replayed != 0 {
		t.Errorf("replayed %d records after clean upconvert, want 0", srv2.dur.replayed)
	}
}

// TestGobSeedBootsMmap: -store=mmap over a WAL directory that has a
// legacy gob snapshot (no v3) writes the v3 base immediately at boot
// and serves cold from the first generation.
func TestGobSeedBootsMmap(t *testing.T) {
	const dim, n = 12, 150
	walDir := t.TempDir()
	srv, err := buildServer(walConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatal(err)
	}
	ref := seedDaemon(t, srv, n, dim, 63)
	wm, err := srv.dur.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(walSnapshotPath(walDir), func(w io.Writer) error {
		return srv.store.SaveSnapshot(w, wm)
	}); err != nil {
		t.Fatal(err)
	}
	srv.close()
	if err := os.Remove(walSnapshotV3Path(walDir)); err != nil {
		t.Fatal(err)
	}

	srv1, err := buildServer(mmapConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatalf("mmap boot over gob-only dir: %v", err)
	}
	defer srv1.close()
	if !srv1.store.Cold() || !srv1.store.Equal(ref) {
		t.Fatalf("cold=%v equal=%v after gob-seeded mmap boot", srv1.store.Cold(), srv1.store.Equal(ref))
	}
}

// TestMmapRotationFaultKeepsOldBase: the v3 publish rename fails
// mid-rotation (injected). The rotation reports the error, the daemon
// keeps serving from the old mapped base with its overlay intact, and
// once the fault clears the next rotation folds normally.
func TestMmapRotationFaultKeepsOldBase(t *testing.T) {
	const dim, n = 16, 100
	walDir := t.TempDir()

	inj := faultfs.New(nil)
	cfg := mmapConfigAt(walDir, embstore.SQ8, dim)
	cfg.fs = inj
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	seedDaemon(t, srv, n, dim, 64)
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(walSnapshotV3Path(walDir))
	if err != nil {
		t.Fatal(err)
	}

	id := graph.NodeID(3)
	vec := make([]float64, dim)
	vec[0] = 5
	if _, err := srv.dur.upsert([]upsertUpdate{{ID: &id, Vector: vec}}); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultfs.Rule{Op: faultfs.OpRename, Path: "store.snap", Err: syscall.EIO})
	if _, err := srv.dur.snapshot(); err == nil {
		t.Fatal("rotation succeeded through a failing rename")
	}
	// Old base untouched, overlay still carrying the write, reads fine.
	after, err := os.ReadFile(walSnapshotV3Path(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed rotation modified the published v3 base")
	}
	if v, _, _ := srv.store.OverlayStats(); v != 1 {
		t.Fatalf("overlay holds %d vectors after failed rotation, want 1", v)
	}
	if got, ok := srv.store.Get(id); !ok || got[0] < 4 {
		t.Fatalf("overlay read after failed rotation: ok=%v vec=%v", ok, got)
	}

	inj.Clear()
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatalf("rotation after fault cleared: %v", err)
	}
	if v, _, _ := srv.store.OverlayStats(); v != 0 {
		t.Fatalf("overlay holds %d vectors after healed rotation, want 0", v)
	}
}

// TestCrashStatesMidRotation: deterministic reconstructions of the two
// places a crash can interrupt a v3 rotation, both of which must boot.
//
//  1. Power loss mid-write: a half-written store.snap.tmp next to the
//     intact previous base — the torn temp is garbage to be ignored,
//     never parsed.
//  2. Crash after publish but before legacy cleanup: both store.snap
//     and store.gob present — v3 wins, the stale gob is removed by the
//     next rotation.
func TestCrashStatesMidRotation(t *testing.T) {
	const dim, n = 16, 120
	walDir := t.TempDir()
	srv, err := buildServer(mmapConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	ref := seedDaemon(t, srv, n, dim, 65)
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	srv.close()
	refSQ8 := mustConvert(t, ref, embstore.SQ8)

	// State 1: torn temp beside the good base.
	good, err := os.ReadFile(walSnapshotV3Path(walDir))
	if err != nil {
		t.Fatal(err)
	}
	tmp := walSnapshotV3Path(walDir) + ".tmp"
	if err := os.WriteFile(tmp, good[:len(good)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	srv1, err := buildServer(mmapConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatalf("boot beside torn snapshot temp: %v", err)
	}
	if !srv1.store.Equal(refSQ8) {
		t.Fatal("boot beside torn temp diverges")
	}
	// The next rotation overwrites the stray temp on its way through.
	if _, err := srv1.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("rotation left the temp file behind (err=%v)", err)
	}

	// State 2: v3 and a stale legacy gob side by side.
	stale, err := embstore.New(dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(walSnapshotPath(walDir), func(w io.Writer) error {
		return stale.SaveSnapshot(w, 0)
	}); err != nil {
		t.Fatal(err)
	}
	srv2, err := buildServer(mmapConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	if !srv2.store.Equal(refSQ8) {
		t.Fatal("boot preferred the stale gob over the v3 base")
	}
	if _, err := srv2.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walSnapshotPath(walDir)); !os.IsNotExist(err) {
		t.Fatalf("rotation kept the stale legacy gob (err=%v)", err)
	}
	srv2.close()
}

// TestCrashMmapMidRotationE2E SIGKILLs a real mmap-mode daemon process
// while a snapshot rotation is racing, then recovers in-process: the
// boot must land on either the old or the new base — never a torn one —
// and serve exactly the acknowledged writes.
func TestCrashMmapMidRotationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process and fsyncs every write; skipped under -short")
	}
	walDir := t.TempDir()
	cmd, base := startCrashHelper(t, walDir, "EHNAD_STORE=mmap")

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	reference, err := embstore.New(crashDim, 4)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 40; i++ {
		op := randomCrashOp(rng)
		if err := op.post(client, base); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		op.applyTo(t, reference)
	}
	// Fire a rotation and kill somewhere inside (or right around) it.
	go func() {
		resp, err := client.Post(base+"/v1/admin/snapshot", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	_ = cmd.Process.Kill()
	_ = cmd.Wait()

	cfg := crashTestConfig(walDir)
	cfg.storeMode = "mmap"
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatalf("recovery boot after mid-rotation kill: %v", err)
	}
	defer srv.close()
	if !srv.store.Cold() {
		t.Fatal("recovered store is not cold")
	}
	if !srv.store.Equal(reference) {
		t.Fatalf("recovered store (%d nodes) diverges from acked reference (%d nodes)",
			srv.store.Len(), reference.Len())
	}
}
