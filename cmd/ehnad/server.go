package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/obs"
	"ehna/internal/vecmath"
)

// serveOpts is the overload-control knob set: deadline budget,
// concurrency cap, admission queue bound, and the degradation floor.
// The zero value disables all four (the permissive test default).
type serveOpts struct {
	defaultDeadline time.Duration // per-request budget when the client sends none (0 = none)
	maxInflight     int           // concurrent /v1/neighbors cap (0 = unlimited)
	queueDepth      int           // batcher admission queue capacity (0 = 4×maxBatch)
	efFloor         int           // lowest ef-search the degrader may shrink to (0 = off)
}

// server wires the embedding store, the ANN index and the micro-batcher
// behind the HTTP/JSON API.
type server struct {
	store     *embstore.Store
	index     ann.Index
	batch     *batcher
	indexName string
	started   time.Time
	pprof     bool           // mount net/http/pprof on the mux (-pprof)
	dur       *durable       // nil without -wal; owns the write path when set
	repl      *replica       // nil unless -follow; see replica.go
	metrics   *serverMetrics // per-server gauges + HTTP series; see metrics.go

	defaultDeadline time.Duration
	inflight        chan struct{} // nil = unlimited; else a semaphore
	draining        atomic.Bool   // set when shutdown starts; /readyz flips not-ready
	closeOnce       sync.Once
}

func newServer(store *embstore.Store, index ann.Index, indexName string, maxBatch int, window time.Duration, opts serveOpts) *server {
	s := &server{
		store:           store,
		index:           index,
		indexName:       indexName,
		started:         time.Now(),
		defaultDeadline: opts.defaultDeadline,
	}
	if opts.maxInflight > 0 {
		s.inflight = make(chan struct{}, opts.maxInflight)
	}
	queueDepth := opts.queueDepth
	if queueDepth <= 0 {
		queueDepth = 4 * maxBatch
	}
	var deg *degrader
	if opts.efFloor > 0 {
		if h, ok := s.liveIndex().(*ann.HNSW); ok {
			full := h.Config().EfSearch
			deg = newDegrader(func() *ann.HNSW {
				h, _ := s.liveIndex().(*ann.HNSW)
				return h
			}, full, opts.efFloor, queueDepth)
		}
	}
	s.batch = newBatcher(index, maxBatch, window, queueDepth, deg)
	s.metrics = newServerMetrics(s)
	return s
}

// close tears the server down without a final snapshot (the next boot
// replays the WAL suffix). Idempotent, and shared with shutdown.
func (s *server) close() {
	s.closeOnce.Do(func() {
		if s.repl != nil {
			s.repl.stop() // stop applying before the WAL goes away
		}
		s.batch.close()
		if s.dur != nil {
			s.dur.close()
		}
	})
}

// shutdown is the graceful path: mark not-ready, drain the batcher,
// and rotate a final snapshot pair so the next boot replays nothing.
// Safe to race with close (whichever runs first wins the Once).
func (s *server) shutdown() {
	s.draining.Store(true)
	s.closeOnce.Do(func() {
		if s.repl != nil {
			s.repl.stop()
		}
		s.batch.close()
		if s.dur != nil {
			s.dur.shutdown()
		}
	})
}

// liveIndex unwraps the Swapper (the index is always wrapped in one,
// so a background compaction can replace it under live traffic).
func (s *server) liveIndex() ann.Index {
	if sw, ok := s.index.(*ann.Swapper); ok {
		return sw.Current()
	}
	return s.index
}

// handler builds the route table. With -pprof the net/http/pprof
// handlers ride the same admin mux, so a live daemon can be profiled
// (go tool pprof http://host/debug/pprof/profile) while serving.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	route := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(path, s.metrics.instrument(path, h))
	}
	route("/v1/neighbors", s.handleNeighbors)
	route("/v1/score", s.handleScore)
	route("/v1/upsert", s.handleUpsert)
	route("/v1/delete", s.handleDelete)
	route("/v1/vector", s.handleVector)
	route("/v1/export", s.handleExport)
	route("/v1/admin/snapshot", s.handleAdminSnapshot)
	route("/v1/admin/compact", s.handleAdminCompact)
	// Replication endpoints stay off the instrumented table: the stream
	// long-polls by design, and its held-open seconds would drown the
	// request-latency histograms.
	mux.HandleFunc("/v1/repl/stream", s.handleReplStream)
	mux.HandleFunc("/v1/repl/status", s.handleReplStatus)
	mux.HandleFunc("/v1/admin/promote", s.handleAdminPromote)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Server gauges first, then the process-wide registry (ann/wal
	// histograms, runtime stats) — names are disjoint by construction.
	mux.Handle("/metrics", s.metrics.reg.Handler(obs.Default()))
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// neighborQuery is one top-k query: either a stored node ID or a raw
// vector. K defaults to 10.
type neighborQuery struct {
	ID     *graph.NodeID `json:"id,omitempty"`
	Vector []float64     `json:"vector,omitempty"`
	K      int           `json:"k,omitempty"`
}

// neighborsRequest is the /v1/neighbors body: a single query inline, or
// several under "queries" (K is the per-query default then).
// DeadlineMS overrides the server's -default-deadline for this request
// (as does the X-Ehnad-Deadline-Ms header; the body field wins).
type neighborsRequest struct {
	neighborQuery
	Queries    []neighborQuery `json:"queries,omitempty"`
	DeadlineMS int             `json:"deadline_ms,omitempty"`
}

const defaultK = 10

// deadlineHeader is the client's per-request budget override in
// milliseconds; the JSON deadline_ms field takes precedence over it.
const deadlineHeader = "X-Ehnad-Deadline-Ms"

// requestCtx derives the search context: the client's HTTP context
// (cancel propagates when the client disconnects) bounded by the
// request's deadline budget — deadline_ms in the body, then the
// header, then -default-deadline. A budget of 0 means unbounded.
// Invalid overrides (malformed or non-positive) are an error, not the
// default: a client that asked for a budget and got silently unbounded
// work would discover the typo as an outage.
func (s *server) requestCtx(r *http.Request, deadlineMS int) (context.Context, context.CancelFunc, error) {
	d := s.defaultDeadline
	if h := r.Header.Get(deadlineHeader); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v <= 0 {
			return nil, nil, fmt.Errorf("invalid %s header %q: want a positive integer of milliseconds", deadlineHeader, h)
		}
		d = time.Duration(v) * time.Millisecond
	}
	if deadlineMS != 0 {
		if deadlineMS < 0 {
			return nil, nil, fmt.Errorf("invalid deadline_ms %d: want a positive number of milliseconds", deadlineMS)
		}
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// acquire claims an inflight slot, shedding with 429 when the server
// is at -max-inflight. Returns false when the response is written.
func (s *server) acquire(w http.ResponseWriter) bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		shedInflight.Inc()
		// Same backoff hint as every other shed path: the batcher's
		// predicted queue wait, not a hardcoded constant — under a real
		// overload one second is exactly long enough to rejoin the
		// stampede that caused the shed.
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.batch.predictedWait())))
		writeError(w, http.StatusTooManyRequests, "server at -max-inflight capacity")
		return false
	}
}

func (s *server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// retrySeconds converts the batcher's predicted queue wait into a
// Retry-After value: at least 1s (the header's resolution), rounded up.
func retrySeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeSearchError maps a failed search onto the overload contract:
// 429 for work refused cheaply at admission (retry after backoff),
// 503 for work accepted but not finished (deadline, shutdown), 500
// for genuine faults.
func (s *server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.batch.predictedWait())))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded before the search completed")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status code is for the access log.
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "search: %v", err)
	}
}

// resolve turns a query into (vector, k, excludeSelf) form. Queries by
// ID exclude the query node itself from the results — "who is nearest
// to me" never usefully answers "you".
func (s *server) resolve(q neighborQuery, defK int) (vec []float64, k int, self *graph.NodeID, err error) {
	k = q.K
	if k <= 0 {
		k = defK
	}
	switch {
	case q.Vector != nil && q.ID != nil:
		return nil, 0, nil, fmt.Errorf("query has both id and vector")
	case q.Vector != nil:
		// Reject wrong-dim vectors here (a 400) rather than inside the
		// batched search, where one bad query would fail — with a 500 —
		// every request coalesced into the same batch.
		if len(q.Vector) != s.store.Dim() {
			return nil, 0, nil, fmt.Errorf("vector has %d dims, store has %d", len(q.Vector), s.store.Dim())
		}
		return q.Vector, k, nil, nil
	case q.ID != nil:
		v, ok := s.store.Get(*q.ID)
		if !ok {
			return nil, 0, nil, fmt.Errorf("node %d not in store", *q.ID)
		}
		return v, k, q.ID, nil
	default:
		return nil, 0, nil, fmt.Errorf("query needs id or vector")
	}
}

// trimSelf drops the query node from its own result list and trims to k.
func trimSelf(results []ann.Result, self *graph.NodeID, k int) []ann.Result {
	if self != nil {
		out := results[:0]
		for _, r := range results {
			if r.ID != *self {
				out = append(out, r)
			}
		}
		results = out
	}
	if len(results) > k {
		results = results[:k]
	}
	return results
}

func (s *server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	var req neighborsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ctx, cancel, err := s.requestCtx(r, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	if len(req.Queries) > 0 {
		s.handleNeighborsBatch(ctx, w, req)
		return
	}
	vec, k, self, err := s.resolve(req.neighborQuery, defaultK)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Ask for one extra when excluding self, so k survives the trim.
	ask := k
	if self != nil {
		ask++
	}
	results, buf, degraded, err := s.batch.do(ctx, vec, ask)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	out := map[string]any{"results": trimSelf(results, self, k)}
	if degraded {
		out["degraded"] = true
	}
	writeJSON(w, http.StatusOK, out)
	buf.release() // results must not be touched past this point
}

// handleNeighborsBatch answers an explicit client-side batch in one
// SearchBatch pass, bypassing the micro-batcher (the client already
// batched).
func (s *server) handleNeighborsBatch(ctx context.Context, w http.ResponseWriter, req neighborsRequest) {
	defK := req.K
	if defK <= 0 {
		defK = defaultK
	}
	qs := make([][]float64, len(req.Queries))
	ks := make([]int, len(req.Queries))
	selves := make([]*graph.NodeID, len(req.Queries))
	maxK := 1
	for i, q := range req.Queries {
		vec, k, self, err := s.resolve(q, defK)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs[i], ks[i], selves[i] = vec, k, self
		if self != nil {
			k++
		}
		if k > maxK {
			maxK = k
		}
	}
	results, err := s.index.SearchBatch(ctx, qs, maxK)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	batches := make([][]ann.Result, len(results))
	for i, res := range results {
		batches[i] = trimSelf(res, selves[i], ks[i])
	}
	out := map[string]any{"batches": batches}
	if s.batch.deg.degradedNow() {
		out["degraded"] = true
	}
	writeJSON(w, http.StatusOK, out)
}

// scoreRequest asks for a pairwise link-prediction score between two
// stored nodes under one of the paper's edge operators (Table II).
type scoreRequest struct {
	U  *graph.NodeID `json:"u"`
	V  *graph.NodeID `json:"v"`
	Op string        `json:"op,omitempty"`
}

// parseOperator maps the JSON operator names onto eval.Operator.
func parseOperator(name string) (eval.Operator, error) {
	switch strings.ToLower(name) {
	case "", "hadamard":
		return eval.Hadamard, nil
	case "mean":
		return eval.Mean, nil
	case "l1", "weighted-l1":
		return eval.WeightedL1, nil
	case "l2", "weighted-l2":
		return eval.WeightedL2, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want mean, hadamard, l1 or l2)", name)
	}
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.U == nil || req.V == nil {
		writeError(w, http.StatusBadRequest, "score needs u and v")
		return
	}
	op, err := parseOperator(req.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eu, ok := s.store.Get(*req.U)
	if !ok {
		writeError(w, http.StatusNotFound, "node %d not in store", *req.U)
		return
	}
	ev, ok := s.store.Get(*req.V)
	if !ok {
		writeError(w, http.StatusNotFound, "node %d not in store", *req.V)
		return
	}
	// The scalar score is the sum over the operator's edge feature; for
	// Hadamard that is exactly the dot product the reconstruction
	// experiment (Figure 4) ranks by.
	feat := make([]float64, len(eu))
	op.Apply(feat, eu, ev)
	var score float64
	for _, f := range feat {
		score += f
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"u": *req.U, "v": *req.V, "op": op.String(), "score": score,
	})
}

// upsertRequest inserts or replaces vectors: one inline update, or many
// under "updates".
type upsertUpdate struct {
	ID     *graph.NodeID `json:"id"`
	Vector []float64     `json:"vector"`
}

type upsertRequest struct {
	upsertUpdate
	Updates []upsertUpdate `json:"updates,omitempty"`
}

func (s *server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.refuseIfFollower(w) {
		return
	}
	var req upsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	updates := req.Updates
	if len(updates) == 0 {
		updates = []upsertUpdate{req.upsertUpdate}
	}
	// Validate the whole batch before applying any of it, so a 400 means
	// nothing was committed.
	for i, u := range updates {
		switch {
		case u.ID == nil:
			writeError(w, http.StatusBadRequest, "update %d: missing id", i)
			return
		case len(u.Vector) == 0:
			writeError(w, http.StatusBadRequest, "update %d: missing vector", i)
			return
		case len(u.Vector) != s.store.Dim():
			writeError(w, http.StatusBadRequest, "update %d: vector has %d dims, store has %d", i, len(u.Vector), s.store.Dim())
			return
		}
	}
	// With -wal the durability layer logs the batch before applying it;
	// otherwise apply straight to the index. Dimension errors were
	// pre-validated, so any error past this point is ours: 503 when the
	// WAL is (or just became) unavailable — the op was not acknowledged
	// and retrying after the heal is correct — 500 otherwise.
	out := map[string]any{"upserted": len(updates)}
	if s.dur != nil {
		seq, err := s.dur.upsert(updates)
		if err != nil {
			s.writeDurabilityError(w, err)
			return
		}
		// The ack token: after a failover, writes with seq ≤ the new
		// leader's promotion watermark provably survived.
		out["seq"] = seq
	} else {
		for i, u := range updates {
			if err := s.index.Add(*u.ID, u.Vector); err != nil {
				writeError(w, http.StatusInternalServerError, "update %d: %v", i, err)
				return
			}
		}
	}
	out["nodes"] = s.store.Len()
	writeJSON(w, http.StatusOK, out)
}

// deleteRequest removes vectors: one id inline, or many under "ids".
type deleteRequest struct {
	ID  *graph.NodeID  `json:"id,omitempty"`
	IDs []graph.NodeID `json:"ids,omitempty"`
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.refuseIfFollower(w) {
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids := req.IDs
	if req.ID != nil {
		ids = append(ids, *req.ID)
	}
	if len(ids) == 0 {
		writeError(w, http.StatusBadRequest, "delete needs id or ids")
		return
	}
	var deleted int
	out := map[string]any{}
	if s.dur != nil {
		n, seq, err := s.dur.delete(ids)
		if err != nil {
			s.writeDurabilityError(w, err)
			return
		}
		deleted = n
		out["seq"] = seq
	} else {
		for _, id := range ids {
			if s.index.Remove(id) {
				deleted++
			}
		}
	}
	out["deleted"] = deleted
	out["nodes"] = s.store.Len()
	writeJSON(w, http.StatusOK, out)
}

// writeDurabilityError maps a failed mutation onto the overload
// contract: 503 + Retry-After whenever the daemon is in (or just
// entered) read-only mode — the write was refused or unacknowledged
// and will succeed after the WAL heals — 500 for anything else.
func (s *server) writeDurabilityError(w http.ResponseWriter, err error) {
	if errors.Is(err, errReadOnly) || s.dur.isReadOnly() {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(healCheckEvery)))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// handleExport streams an embstore snapshot of the live store — the
// same format -snapshot accepts, so an export can seed another daemon
// (or a test comparing recovered state against a reference).
func (s *server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// With a WAL the export is watermark-stamped under the applier lock,
	// so a follower bootstrapping from it resumes the replication stream
	// at exactly the exported sequence. Without one there is no sequence
	// space; the plain store image (watermark 0) is all there is.
	var err error
	if s.dur != nil {
		err = s.dur.exportTo(w)
	} else {
		err = s.store.Save(w)
	}
	if err != nil {
		// Headers are gone; all we can do is cut the stream short and
		// leave the evidence in the daemon log.
		log.Printf("ehnad: export: %v", err)
	}
}

func (s *server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.dur == nil {
		writeError(w, http.StatusBadRequest, "snapshot rotation requires -wal")
		return
	}
	wm, err := s.dur.snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"watermark": wm, "nodes": s.store.Len()})
}

func (s *server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.dur == nil {
		writeError(w, http.StatusBadRequest, "compaction requires -wal")
		return
	}
	before := s.dur.tombstoneRatio()
	ran, err := s.dur.compact(true)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"compacted":              ran,
		"tombstone_ratio_before": before,
		"tombstone_ratio_after":  s.dur.tombstoneRatio(),
		"rebuilds":               s.dur.compactions.Load(),
	})
}

// handleHealthz renders the liveness report from the same gauges
// /metrics scrapes (see metrics.go): every number below is a
// GaugeValue read, so the two endpoints cannot disagree. Only the
// identity strings (precision, index, metric) are read directly —
// they have no numeric series.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.metrics.gauge
	out := map[string]any{
		"status": "ok",
		"nodes":  int(g("ehnad_store_nodes")),
		"dim":    int(g("ehnad_store_dim")),
		"shards": int(g("ehnad_store_shards")),
		// The compressed-plane dials: slab precision and the resulting
		// per-vector store footprint (payload + sidecars). With -index
		// hnsw the graph mirrors the slab, adding the
		// graph.slab_bytes_per_vector reported below per indexed vector.
		"precision":        s.store.Precision().String(),
		"bytes_per_vector": int(g("ehnad_store_bytes_per_vector")),
		"index":            s.indexName,
		"metric":           s.index.Metric().String(),
		// The kernel backend the distance computations run on ("avx2",
		// "neon" or "scalar") — mirrors the ehnad_kernel_backend gauge's
		// label, the quick way to confirm a deployment is on the fast
		// path.
		"kernel_backend": vecmath.Backend(),
		"uptime_s":       g("ehnad_uptime_seconds"),
		"boot_s":         g("ehnad_boot_seconds"),
	}
	// The store residency mode, and — serving cold — the mapped base's
	// shape: how big it is, how much of it the page cache holds, and
	// how much write overlay has accumulated since the last fold.
	if s.store.Cold() {
		out["store_mode"] = "mmap"
		out["cold_store"] = map[string]any{
			"snapshot":              s.store.MappedPath(),
			"mapped_bytes":          int64(g("ehnad_store_mapped_bytes")),
			"mapped_payload_bytes":  int64(g("ehnad_store_mapped_payload_bytes")),
			"mapped_resident_bytes": int64(g("ehnad_store_mapped_resident_bytes")),
			"overlay_vectors":       int(g("ehnad_store_overlay_vectors")),
			"overlay_bytes":         int64(g("ehnad_store_overlay_bytes")),
			"base_masked":           int(g("ehnad_store_base_masked")),
		}
	} else {
		out["store_mode"] = "ram"
	}
	// Kernel's view of this process (linux; the gauges are absent
	// elsewhere): RSS, the file-backed share of it (where the mapped
	// base shows up), and cumulative major faults — each one a disk
	// read the cold tier took.
	if rss, ok := obs.Default().GaugeValue("process_resident_bytes"); ok {
		shared, _ := obs.Default().GaugeValue("process_shared_resident_bytes")
		majflt, _ := obs.Default().GaugeValue("process_major_faults_total")
		out["process"] = map[string]any{
			"resident_bytes":        int64(rss),
			"shared_resident_bytes": int64(shared),
			"major_faults":          int64(majflt),
		}
	}
	if _, ok := s.liveIndex().(*ann.HNSW); ok {
		// Tombstones accumulate under delete/replace churn and are
		// reclaimed by a compaction rebuild (automatic with -wal once
		// the ratio passes -compact-at, or forced via
		// /v1/admin/compact).
		out["graph"] = map[string]any{
			"nodes":           int(g("ehnad_graph_nodes")),
			"tombstones":      int(g("ehnad_graph_tombstones")),
			"layers":          int(g("ehnad_graph_layers")),
			"tombstone_ratio": g("ehnad_graph_tombstone_ratio"),
			// The graph keeps its own slot-indexed vector slab (the price
			// of lock-free beam scoring), so total vector memory is
			// nodes×bytes_per_vector + (nodes+tombstones)×this.
			"slab_bytes_per_vector": int(g("ehnad_store_bytes_per_vector")),
		}
	}
	if s.batch.deg != nil {
		out["degraded"] = s.batch.deg.degradedNow()
		out["ef_search_current"] = s.batch.deg.efNow()
	}
	if s.dur != nil {
		out["durability"] = s.dur.healthz(s.metrics)
	}
	if s.repl != nil {
		role := "leader"
		if s.isFollower() {
			role = "follower"
		}
		out["replication"] = map[string]any{
			"role":        role,
			"leader":      s.repl.leader,
			"applied_seq": s.dur.applied(),
			"leader_seq":  s.repl.client.LeaderSeq(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReadyz is the readiness probe, distinct from /healthz
// liveness: a 503 here means "alive but don't route new traffic to
// me" — draining for shutdown, mid compaction promote, or read-only
// because the WAL is unavailable. Load balancers should poll this;
// orchestrators should restart on /healthz, not on /readyz.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining: shutdown in progress")
	}
	if sw, ok := s.index.(*ann.Swapper); ok && sw.Promoting() {
		reasons = append(reasons, "compaction promote in progress")
	}
	if s.dur != nil && s.dur.isReadOnly() {
		reasons = append(reasons, "read-only: WAL unavailable")
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}
