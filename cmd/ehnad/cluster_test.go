package main

// Multi-process cluster failover e2e, in the crash-harness style: real
// daemon processes (re-exec'd via TestCrashDaemonHelper), a real
// SIGKILL of a shard leader mid-stream, and an in-process router with
// auto-failover. The invariant under test is the cluster's durability
// contract: every write acked with seq ≤ the promotion watermark
// survives failover byte-for-byte; acked writes past the watermark are
// the client's to re-drive (the router surfaces per-shard seqs exactly
// so clients can).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/cluster"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
)

// clusterAck is the router's per-shard write acknowledgment: the seq
// is the shard leader's WAL position for the op — the token the
// acked-prefix invariant is stated in.
type clusterAck struct {
	Shards map[string]struct {
		Count int    `json:"count"`
		Seq   uint64 `json:"seq"`
		Error string `json:"error"`
	} `json:"shards"`
}

// postRouterOp drives one mutation through the router and returns the
// per-shard acks. Non-200 is an error (nothing was acked to keep).
func postRouterOp(client *http.Client, base string, op crashOp) (clusterAck, error) {
	path, body := "/v1/upsert", map[string]any{"id": op.id, "vector": op.vec}
	if op.del {
		path, body = "/v1/delete", map[string]any{"id": op.id}
	}
	b, _ := json.Marshal(body)
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return clusterAck{}, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return clusterAck{}, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var ack clusterAck
	if err := json.Unmarshal(raw, &ack); err != nil {
		return clusterAck{}, err
	}
	return ack, nil
}

// exportShard pulls a daemon's /v1/export and decodes the store image.
func exportShard(t *testing.T, client *http.Client, base string) *embstore.Store {
	t.Helper()
	resp, err := client.Get(base + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	s, _, err := embstore.LoadSnapshotAt(resp.Body, 4, embstore.F64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClusterFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns three daemon processes and fsyncs every write; skipped under -short")
	}
	client := &http.Client{Timeout: 15 * time.Second}

	// Topology: shard a = leader + follower, shard b = lone leader.
	cmdA, urlA := startCrashHelper(t, t.TempDir())
	cmdB, urlB := startCrashHelper(t, t.TempDir())
	_, urlF := startCrashHelper(t, t.TempDir(), "EHNAD_FOLLOW="+urlA)

	m, err := cluster.NewShardMap(1, []cluster.ShardSpec{
		{Name: "a", Endpoints: []string{urlA, urlF}},
		{Name: "b", Endpoints: []string{urlB}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Map:             m,
		DefaultDeadline: 10 * time.Second,
		HealthInterval:  50 * time.Millisecond,
		FailAfter:       2,
		AutoFailover:    true,
		Logf:            log.Printf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx)
	tsR := httptest.NewServer(rt.Handler())
	defer tsR.Close()

	// Per-shard references mirror acked ops only, in ack order — the
	// state the durability contract promises to preserve.
	refs := map[string]*embstore.Store{}
	for _, name := range []string{"a", "b"} {
		ref, err := embstore.New(crashDim, 4)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	shardName := func(op crashOp) string { return m.Shards[m.Owner(op.id)].Name }

	type ackedOp struct {
		op  crashOp
		seq uint64
	}
	var ackedA []ackedOp

	drive := func(op crashOp, patient bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			ack, err := postRouterOp(client, tsR.URL, op)
			if err == nil {
				name := shardName(op)
				op.applyTo(t, refs[name])
				if name == "a" {
					ackedA = append(ackedA, ackedOp{op, ack.Shards["a"].Seq})
				}
				return
			}
			if !patient || time.Now().After(deadline) {
				t.Fatalf("router write never acked: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// ---- Phase 1: write stream through the router, both shards live.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 120; i++ {
		drive(randomCrashOp(rng), false)
	}
	if len(ackedA) == 0 || len(ackedA) == 120 {
		t.Fatalf("degenerate placement: %d/120 ops on shard a", len(ackedA))
	}

	// ---- Phase 2: SIGKILL shard a's leader mid-stream; the router's
	// health loop promotes the follower.
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmdA.Wait()

	var promoteSeq uint64
	waitUntil := time.Now().Add(20 * time.Second)
	for {
		st, err := cluster.FetchReplStatus(context.Background(), client, urlF)
		if err == nil && st.Role == "leader" {
			promoteSeq = st.Applied
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("follower never promoted (last status: %+v, err %v)", st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Acked-prefix equality: the promoted node's state must be exactly
	// the acked shard-a ops with seq ≤ the promotion watermark.
	prefixRef, err := embstore.New(crashDim, 4)
	if err != nil {
		t.Fatal(err)
	}
	var lost []crashOp
	for _, a := range ackedA {
		if a.seq <= promoteSeq {
			a.op.applyTo(t, prefixRef)
		} else {
			lost = append(lost, a.op)
		}
	}
	if got := exportShard(t, client, urlF); !got.Equal(prefixRef) {
		t.Fatalf("promoted follower diverges from the acked prefix (watermark %d, %d acked ops, %d past watermark)",
			promoteSeq, len(ackedA), len(lost))
	}
	t.Logf("promoted at seq %d; %d/%d shard-a acks past the watermark to re-drive", promoteSeq, len(lost), len(ackedA))

	// Re-drive the acked-but-unreplicated suffix in original order —
	// what a seq-tracking client does after a failover notification.
	for _, op := range lost {
		drive(op, true)
	}

	// ---- Phase 3: the promoted follower owns shard-a writes now.
	for i := 0; i < 30; i++ {
		drive(randomCrashOp(rng), true)
	}

	// Per-shard durable images match the references end to end.
	if got := exportShard(t, client, urlF); !got.Equal(refs["a"]) {
		t.Fatal("shard a (promoted follower) diverges from acked reference")
	}
	if got := exportShard(t, client, urlB); !got.Equal(refs["b"]) {
		t.Fatal("shard b diverges from acked reference")
	}

	// ---- Phase 4: scatter-gather quality. Recall@10 of router answers
	// vs an exact scan over the union reference.
	union, err := embstore.New(crashDim, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		for _, id := range ref.IDs() {
			vec, ok := ref.Get(id)
			if !ok {
				t.Fatalf("id %d vanished from a shard reference", id)
			}
			if err := union.Upsert(id, vec); err != nil {
				t.Fatal(err)
			}
		}
	}
	exact := ann.NewExact(union, ann.Cosine)
	ids := union.IDs()
	if len(ids) < 12 {
		t.Fatalf("too few survivors for a recall check: %d", len(ids))
	}
	const k = 10
	var recallSum float64
	queries := 0
	for _, qid := range ids {
		if queries == 20 {
			break
		}
		vec, ok := union.Get(qid)
		if !ok {
			t.Fatalf("id %d vanished from the union reference", qid)
		}
		exactRes, err := exact.Search(vec, k+1)
		if err != nil {
			t.Fatal(err)
		}
		var want []graph.NodeID
		for _, rres := range exactRes {
			if rres.ID != qid && len(want) < k {
				want = append(want, rres.ID)
			}
		}
		var nresp struct {
			Results []ann.Result `json:"results"`
		}
		status, body := postJSON(t, tsR.URL+"/v1/neighbors", map[string]any{"id": int(qid), "k": k}, &nresp)
		if status != http.StatusOK {
			t.Fatalf("router search got %d (%s)", status, body)
		}
		got := make([]graph.NodeID, 0, len(nresp.Results))
		for _, rres := range nresp.Results {
			got = append(got, rres.ID)
		}
		rec, err := eval.RecallAtK(got, want)
		if err != nil {
			t.Fatal(err)
		}
		recallSum += rec
		queries++
	}
	if mean := recallSum / float64(queries); mean < 0.95 {
		t.Fatalf("recall@10 through the router = %.3f over %d queries, want >= 0.95", mean, queries)
	}

	// ---- Phase 5: partial-result degradation. Shard b has no replica,
	// so killing it must turn searches partial (degraded:true), never
	// dark: vector queries keep answering from shard a alone.
	if err := cmdB.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmdB.Wait()
	probe := make([]float64, crashDim)
	probe[0] = 1
	waitUntil = time.Now().Add(20 * time.Second)
	for {
		var dresp struct {
			Results        []ann.Result `json:"results"`
			Degraded       bool         `json:"degraded"`
			ShardsAnswered int          `json:"shards_answered"`
			ShardsTotal    int          `json:"shards_total"`
		}
		status, body := postJSON(t, tsR.URL+"/v1/neighbors", map[string]any{"vector": probe, "k": 3}, &dresp)
		if status != http.StatusOK {
			t.Fatalf("search with a dark shard got %d (%s), want a degraded 200", status, body)
		}
		if dresp.Degraded {
			if dresp.ShardsAnswered != 1 || dresp.ShardsTotal != 2 {
				t.Fatalf("degraded response counts = %d/%d, want 1/2", dresp.ShardsAnswered, dresp.ShardsTotal)
			}
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("searches never reported degraded after shard b died")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
