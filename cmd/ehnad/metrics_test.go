package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ehna/internal/graph"
)

// scrapeMetrics fetches /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds the sample line for the exact series name (with
// rendered labels, if any) and returns its value.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint boots an HNSW server, drives traffic through
// every instrumented layer, and checks the full catalog shows up on
// /metrics with sane values.
func TestMetricsEndpoint(t *testing.T) {
	store, g := trainedStore(t)
	_, ts := newTestServer(t, store, "hnsw")

	// One good query, one client error, one write: the status-class
	// counters should split them.
	var nbr neighborsResponse
	if code, _ := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"id": 3, "k": 4}, &nbr); code != http.StatusOK {
		t.Fatalf("neighbors status %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/neighbors", map[string]any{"k": 4}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad neighbors status %d", code)
	}
	id := graph.NodeID(g.NumNodes() + 5)
	vec := mustGet(t, store, 0)
	if code, _ := postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": id, "vector": vec}, nil); code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}

	body := scrapeMetrics(t, ts.URL)

	if v := metricValue(t, body, `ehnad_http_requests_total{code="2xx",path="/v1/neighbors"}`); v < 1 {
		t.Errorf("2xx neighbors count = %v, want >= 1", v)
	}
	if v := metricValue(t, body, `ehnad_http_requests_total{code="4xx",path="/v1/neighbors"}`); v < 1 {
		t.Errorf("4xx neighbors count = %v, want >= 1", v)
	}
	if v := metricValue(t, body, `ehnad_http_requests_total{code="2xx",path="/v1/upsert"}`); v < 1 {
		t.Errorf("2xx upsert count = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "ehnad_store_nodes"); int(v) != store.Len() {
		t.Errorf("ehnad_store_nodes = %v, store has %d", v, store.Len())
	}
	if v := metricValue(t, body, "ehnad_graph_nodes"); int(v) != store.Len() {
		t.Errorf("ehnad_graph_nodes = %v, want %d", v, store.Len())
	}
	if v := metricValue(t, body, "ehnad_batch_queue_depth"); v != 0 {
		t.Errorf("idle queue depth = %v, want 0", v)
	}
	// Library metrics ride the default registry: the query above must
	// have bumped the hnsw counter and both stage histograms.
	for _, series := range []string{
		`ehnad_ann_queries_total{index="hnsw"}`,
		`ehnad_ann_stage_seconds_count{index="hnsw",stage="candidates"}`,
		`ehnad_ann_stage_seconds_count{index="hnsw",stage="rerank"}`,
		"ehnad_batch_size_count",
		"ehnad_batch_flush_seconds_count",
	} {
		if v := metricValue(t, body, series); v < 1 {
			t.Errorf("%s = %v, want >= 1", series, v)
		}
	}
	// Runtime + build info (RegisterRuntime).
	if v := metricValue(t, body, "go_goroutines"); v < 1 {
		t.Errorf("go_goroutines = %v", v)
	}
	if !strings.Contains(body, "ehnad_build_info{") {
		t.Error("ehnad_build_info missing")
	}
	// Latency histogram exposition is cumulative and ends at +Inf.
	if !strings.Contains(body, `ehnad_http_request_seconds_bucket{path="/v1/neighbors",le="+Inf"}`) {
		t.Error("http latency histogram missing +Inf bucket")
	}
}

// TestHealthzMatchesMetrics pins the one-source-of-truth property:
// the numbers /healthz reports are GaugeValue reads of the same
// instruments /metrics renders.
func TestHealthzMatchesMetrics(t *testing.T) {
	store, _ := trainedStore(t)
	_, ts := newTestServer(t, store, "hnsw")

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Nodes  int `json:"nodes"`
		Dim    int `json:"dim"`
		Shards int `json:"shards"`
		Graph  struct {
			Nodes  int `json:"nodes"`
			Layers int `json:"layers"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, ts.URL)
	for series, want := range map[string]int{
		"ehnad_store_nodes":  hz.Nodes,
		"ehnad_store_dim":    hz.Dim,
		"ehnad_store_shards": hz.Shards,
		"ehnad_graph_nodes":  hz.Graph.Nodes,
		"ehnad_graph_layers": hz.Graph.Layers,
	} {
		if v := metricValue(t, body, series); int(v) != want {
			t.Errorf("%s = %v, healthz says %d", series, v, want)
		}
	}
}

// TestMetricsWithWAL boots the full durable stack and checks the WAL,
// snapshot and compaction gauges are registered and move.
func TestMetricsWithWAL(t *testing.T) {
	srv, err := buildServer(crashTestConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() { ts.Close(); srv.close() })

	vec := make([]float64, crashDim)
	vec[0] = 1
	if code, _ := postJSON(t, ts.URL+"/v1/upsert", map[string]any{"id": 1, "vector": vec}, nil); code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/admin/snapshot", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}

	body := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, body, "ehnad_wal_last_seq"); v < 1 {
		t.Errorf("ehnad_wal_last_seq = %v, want >= 1 after an upsert", v)
	}
	if v := metricValue(t, body, "ehnad_wal_durable_seq"); v < 1 {
		t.Errorf("ehnad_wal_durable_seq = %v, want >= 1 under -fsync always", v)
	}
	if v := metricValue(t, body, "ehnad_snapshot_count"); v != 1 {
		t.Errorf("ehnad_snapshot_count = %v, want 1", v)
	}
	if v := metricValue(t, body, "ehnad_snapshot_watermark"); v < 1 {
		t.Errorf("ehnad_snapshot_watermark = %v, want >= 1", v)
	}
	// The duration histogram lives on the process-wide registry, so it
	// accumulates across every server this test binary booted: only a
	// lower bound is stable.
	if v := metricValue(t, body, "ehnad_snapshot_seconds_count"); v < 1 {
		t.Errorf("ehnad_snapshot_seconds_count = %v, want >= 1", v)
	}
	for _, series := range []string{
		"ehnad_wal_segments", "ehnad_wal_size_bytes",
		"ehnad_wal_append_seconds_count", "ehnad_wal_fsync_seconds_count",
		"ehnad_compaction_running", "ehnad_compaction_count",
	} {
		metricValue(t, body, series) // fatal if the series is absent
	}

	// The durability healthz block must agree with the gauges.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Durability struct {
			Wal struct {
				LastSeq    uint64 `json:"last_seq"`
				DurableSeq uint64 `json:"durable_seq"`
			} `json:"wal"`
			Snapshot struct {
				Count     int64  `json:"count"`
				Watermark uint64 `json:"watermark"`
			} `json:"snapshot"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Durability.Wal.LastSeq < 1 || hz.Durability.Snapshot.Count != 1 {
		t.Errorf("healthz durability block = %+v", hz.Durability)
	}
	if got := uint64(metricValue(t, body, "ehnad_snapshot_watermark")); got != hz.Durability.Snapshot.Watermark {
		t.Errorf("watermark: metrics %d, healthz %d", got, hz.Durability.Snapshot.Watermark)
	}
}
