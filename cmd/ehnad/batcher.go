package main

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/ann"
)

// errShutdown is returned to queries caught in a daemon shutdown.
var errShutdown = errors.New("server shutting down")

// nnRequest is one neighbor query waiting for a batch slot.
type nnRequest struct {
	vec []float64
	k   int
	out chan nnResponse
}

type nnResponse struct {
	results []ann.Result
	buf     *resultBuf // release() when done with results; may be nil
	err     error
}

// resultBuf is one coalesced batch's pooled result storage: a slice of
// per-request []Result buffers whose capacity survives across batches,
// so the steady-state query path performs no result allocations. It is
// handed out to every handler served from the batch and returned to the
// pool when the last one releases it.
type resultBuf struct {
	pool *sync.Pool
	refs atomic.Int32
	bufs [][]ann.Result
}

// release returns the buffer to its pool once every consumer is done.
// Safe on nil (error/shutdown responses carry no buffer).
func (rb *resultBuf) release() {
	if rb != nil && rb.refs.Add(-1) == 0 {
		rb.pool.Put(rb)
	}
}

// batcher coalesces concurrent single-query /v1/neighbors requests into
// one index pass: the first arrival opens a window, everything landing
// within it (up to maxBatch) rides the same flush. Under load this
// amortizes per-query overhead; an idle daemon pays at most the window
// in extra latency. Each flush answers its queries through SearchInto
// on pooled buffers — the allocating Search veneer never runs, keeping
// the daemon's steady-state query path allocation-free end to end.
type batcher struct {
	index    ann.Index
	in       chan nnRequest
	maxBatch int
	window   time.Duration
	stop     chan struct{}
	bufPool  sync.Pool
	errs     []error // flush scratch; only the run() goroutine touches it
}

func newBatcher(index ann.Index, maxBatch int, window time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		index:    index,
		in:       make(chan nnRequest, maxBatch),
		maxBatch: maxBatch,
		window:   window,
		stop:     make(chan struct{}),
	}
	b.bufPool.New = func() any { return &resultBuf{pool: &b.bufPool} }
	go b.run()
	return b
}

// do submits one query and blocks for its result. The caller must
// release() the returned buffer after it is done reading (and mutating
// — trimSelf filters in place) the results. A closed batcher fails fast
// instead of blocking forever (req.out is buffered, so a flush racing
// the shutdown reply is dropped harmlessly).
func (b *batcher) do(vec []float64, k int) ([]ann.Result, *resultBuf, error) {
	req := nnRequest{vec: vec, k: k, out: make(chan nnResponse, 1)}
	select {
	case b.in <- req:
	case <-b.stop:
		return nil, nil, errShutdown
	}
	select {
	case resp := <-req.out:
		return resp.results, resp.buf, resp.err
	case <-b.stop:
		return nil, nil, errShutdown
	}
}

func (b *batcher) close() { close(b.stop) }

func (b *batcher) run() {
	for {
		var first nnRequest
		select {
		case first = <-b.in:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []nnRequest{first}
		if b.window > 0 {
			deadline := time.NewTimer(b.window)
		gather:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				case <-deadline.C:
					break gather
				case <-b.stop:
					deadline.Stop()
					b.flush(batch)
					b.drain()
					return
				}
			}
			deadline.Stop()
		} else {
			// No window: still drain whatever is already queued.
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		b.flush(batch)
	}
}

// drain rejects whatever was buffered in b.in at shutdown so no do()
// caller is left waiting (out channels are buffered; sends never block).
func (b *batcher) drain() {
	for {
		select {
		case req := <-b.in:
			req.out <- nnResponse{err: errShutdown}
		default:
			return
		}
	}
}

// flush executes a gathered batch through SearchInto on this batch's
// pooled buffers, each query at its own k, and fans the results back
// out. Lone queries (the idle-daemon common case) run inline;
// ann.ParallelFor spreads larger batches across GOMAXPROCS workers.
func (b *batcher) flush(batch []nnRequest) {
	start := time.Now()
	batchSizeHist.Observe(int64(len(batch)))
	rb := b.bufPool.Get().(*resultBuf)
	for len(rb.bufs) < len(batch) {
		rb.bufs = append(rb.bufs, nil)
	}
	rb.refs.Store(int32(len(batch)))

	for len(b.errs) < len(batch) {
		b.errs = append(b.errs, nil)
	}
	errs := b.errs[:len(batch)]
	ann.ParallelFor(len(batch), func(i int) {
		out, err := b.index.SearchInto(rb.bufs[i][:0], batch[i].vec, batch[i].k)
		if err == nil {
			rb.bufs[i] = out // keep the (possibly grown) buffer for reuse
		}
		errs[i] = err
	})
	batchFlushHist.ObserveSince(start)

	for i, req := range batch {
		if errs[i] != nil {
			rb.release() // this request carries no buffer reference
			req.out <- nnResponse{err: errs[i]}
			continue
		}
		req.out <- nnResponse{results: rb.bufs[i], buf: rb}
	}
}
