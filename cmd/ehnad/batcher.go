package main

import (
	"context"
	"errors"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/ann"
)

// errShutdown is returned to queries caught in a daemon shutdown.
var errShutdown = errors.New("server shutting down")

// errOverloaded is returned to queries shed at admission: the queue is
// full, or the predicted queue wait already exceeds the request's
// deadline. The HTTP layer maps it to 429 + Retry-After — the request
// was refused cheaply and retrying later is expected to succeed.
var errOverloaded = errors.New("server overloaded")

// nnRequest is one neighbor query waiting for a batch slot.
type nnRequest struct {
	ctx      context.Context
	vec      []float64
	k        int
	enqueued time.Time
	out      chan nnResponse
}

type nnResponse struct {
	results  []ann.Result
	buf      *resultBuf // release() when done with results; may be nil
	degraded bool       // served at a shrunken ef-search under pressure
	err      error
}

// resultBuf is one coalesced batch's pooled result storage: a slice of
// per-request []Result buffers whose capacity survives across batches,
// so the steady-state query path performs no result allocations. It is
// handed out to every handler served from the batch and returned to the
// pool when the last one releases it.
type resultBuf struct {
	pool *sync.Pool
	refs atomic.Int32
	bufs [][]ann.Result
}

// release returns the buffer to its pool once every consumer is done.
// Safe on nil (error/shutdown responses carry no buffer).
func (rb *resultBuf) release() {
	if rb != nil && rb.refs.Add(-1) == 0 {
		rb.pool.Put(rb)
	}
}

// degradeSustain is how many consecutive flushes must observe queue
// depth past a watermark before the degrader moves ef-search — the
// hysteresis that keeps one bursty flush from thrashing the dial.
const degradeSustain = 4

// degrader is the graceful-degradation controller: under sustained
// queue pressure it halves the HNSW ef-search beam (cheaper, slightly
// lower recall) down to a floor, and restores it by doubling once the
// queue drains. Responses served below the configured beam are flagged
// degraded, so clients know recall was traded for survival. Only the
// batcher's run() goroutine mutates it; readers go through atomics.
type degrader struct {
	live        func() *ann.HNSW // resolves the serving graph (nil = not hnsw)
	full, floor int              // configured ef-search and the shrink limit
	high, low   int              // queue-depth watermarks
	hot, cool   int              // consecutive samples past a watermark
	cur         atomic.Int64     // ef-search currently applied
	isDegraded  atomic.Bool
	shrinks     atomic.Int64
}

func newDegrader(live func() *ann.HNSW, full, floor, queueCap int) *degrader {
	if floor <= 0 || floor >= full {
		return nil
	}
	d := &degrader{
		live:  live,
		full:  full,
		floor: floor,
		high:  queueCap * 3 / 4,
		low:   queueCap / 4,
	}
	d.cur.Store(int64(full))
	return d
}

// sample feeds one flush's queue-depth observation into the controller
// and re-asserts the current beam width on the live graph (so a
// compaction swap, which promotes a graph built at the full beam,
// inherits the degraded setting instead of silently undoing it).
func (d *degrader) sample(depth int) {
	if d == nil {
		return
	}
	h := d.live()
	if h == nil {
		return
	}
	cur := int(d.cur.Load())
	switch {
	case depth >= d.high:
		d.cool = 0
		if d.hot++; d.hot >= degradeSustain && cur > d.floor {
			d.hot = 0
			if cur /= 2; cur < d.floor {
				cur = d.floor
			}
			d.cur.Store(int64(cur))
			d.shrinks.Add(1)
			d.isDegraded.Store(true)
			log.Printf("ehnad: queue depth %d >= %d sustained; degrading ef-search to %d (floor %d)",
				depth, d.high, cur, d.floor)
		}
	case depth <= d.low:
		d.hot = 0
		if d.cool++; d.cool >= degradeSustain && cur < d.full {
			d.cool = 0
			if cur *= 2; cur > d.full {
				cur = d.full
			}
			d.cur.Store(int64(cur))
			d.isDegraded.Store(cur < d.full)
			log.Printf("ehnad: queue pressure cleared; restoring ef-search to %d (full %d)", cur, d.full)
		}
	default:
		d.hot, d.cool = 0, 0
	}
	h.SetEfSearch(cur)
}

// degradedNow reports whether searches are currently served below the
// configured beam width. Safe on nil and from any goroutine.
func (d *degrader) degradedNow() bool { return d != nil && d.isDegraded.Load() }

// efNow reports the beam width currently applied (0 when inactive).
func (d *degrader) efNow() int {
	if d == nil {
		return 0
	}
	return int(d.cur.Load())
}

// batcher coalesces concurrent single-query /v1/neighbors requests into
// one index pass: the first arrival opens a window, everything landing
// within it (up to maxBatch) rides the same flush. Under load this
// amortizes per-query overhead; an idle daemon pays at most the window
// in extra latency. Each flush answers its queries through SearchInto
// on pooled buffers — the allocating Search veneer never runs, keeping
// the daemon's steady-state query path allocation-free end to end.
//
// Admission is bounded: the queue holds at most queueDepth requests and
// do() never blocks on a full queue — it sheds with errOverloaded, as
// it does when the predicted queue wait (an EWMA of flush latency,
// scaled by the backlog) already exceeds the request's deadline.
// Requests whose deadline expires while queued are answered with their
// context error at flush time without ever being searched.
type batcher struct {
	index    ann.Index
	in       chan nnRequest
	maxBatch int
	window   time.Duration
	stop     chan struct{}
	bufPool  sync.Pool
	errs     []error // flush scratch; only the run() goroutine touches it
	deg      *degrader
	flushNs  atomic.Int64 // EWMA of one flush's wall time, for predicted wait
}

func newBatcher(index ann.Index, maxBatch int, window time.Duration, queueDepth int, deg *degrader) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < maxBatch {
		queueDepth = 4 * maxBatch
	}
	b := &batcher{
		index:    index,
		in:       make(chan nnRequest, queueDepth),
		maxBatch: maxBatch,
		window:   window,
		stop:     make(chan struct{}),
		deg:      deg,
	}
	b.bufPool.New = func() any { return &resultBuf{pool: &b.bufPool} }
	go b.run()
	return b
}

// predictedWait estimates how long a request arriving now would sit in
// the queue: the number of flushes ahead of it times the smoothed cost
// of one flush. Zero until the first flush has been measured.
func (b *batcher) predictedWait() time.Duration {
	ewma := b.flushNs.Load()
	if ewma == 0 {
		return 0
	}
	flushesAhead := int64(len(b.in)/b.maxBatch + 1)
	return time.Duration(flushesAhead * ewma)
}

// do submits one query and blocks for its result. The caller must
// release() the returned buffer after it is done reading (and mutating
// — trimSelf filters in place) the results. Admission can refuse: a
// full queue or a deadline the predicted wait would blow sheds with
// errOverloaded instead of queueing doomed work, and a closed batcher
// fails fast instead of blocking forever (req.out is buffered, so a
// flush racing the shutdown reply is dropped harmlessly).
func (b *batcher) do(ctx context.Context, vec []float64, k int) ([]ann.Result, *resultBuf, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	// Predictive shed never fires on an empty queue: the EWMA only
	// updates when a flush runs, so if every request were refused on a
	// stale (storm-inflated) estimate, no flush would ever re-measure
	// it and the batcher would shed forever. An empty queue always
	// admits a probe; its flush refreshes the EWMA within a few rounds.
	if dl, ok := ctx.Deadline(); ok && len(b.in) > 0 {
		if wait := b.predictedWait(); wait > time.Until(dl) {
			shedDeadline.Inc()
			return nil, nil, false, errOverloaded
		}
	}
	req := nnRequest{ctx: ctx, vec: vec, k: k, enqueued: time.Now(), out: make(chan nnResponse, 1)}
	select {
	case b.in <- req:
	case <-b.stop:
		return nil, nil, false, errShutdown
	default:
		shedQueueFull.Inc()
		return nil, nil, false, errOverloaded
	}
	select {
	case resp := <-req.out:
		return resp.results, resp.buf, resp.degraded, resp.err
	case <-b.stop:
		return nil, nil, false, errShutdown
	case <-ctx.Done():
		// The flush will notice the expired context (before or during the
		// search) and answer into the buffered channel; returning now just
		// keeps the caller's latency bounded by its own deadline.
		return nil, nil, false, ctx.Err()
	}
}

func (b *batcher) close() { close(b.stop) }

func (b *batcher) run() {
	for {
		var first nnRequest
		select {
		case first = <-b.in:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []nnRequest{first}
		if b.window > 0 {
			deadline := time.NewTimer(b.window)
		gather:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				case <-deadline.C:
					break gather
				case <-b.stop:
					deadline.Stop()
					b.flush(batch)
					b.drain()
					return
				}
			}
			deadline.Stop()
		} else {
			// No window: still drain whatever is already queued.
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		b.flush(batch)
	}
}

// drain rejects whatever was buffered in b.in at shutdown so no do()
// caller is left waiting (out channels are buffered; sends never block).
func (b *batcher) drain() {
	for {
		select {
		case req := <-b.in:
			req.out <- nnResponse{err: errShutdown}
		default:
			return
		}
	}
}

// flush executes a gathered batch through SearchInto on this batch's
// pooled buffers, each query at its own k and under its own context,
// and fans the results back out. Requests whose deadline lapsed while
// queued are answered with their context error without being searched
// — work for a caller who stopped waiting is pure waste. Lone queries
// (the idle-daemon common case) run inline; ann.ParallelFor spreads
// larger batches across GOMAXPROCS workers.
func (b *batcher) flush(batch []nnRequest) {
	start := time.Now()
	b.deg.sample(len(b.in))
	degraded := b.deg.degradedNow()

	live := 0
	for _, req := range batch {
		queueWaitHist.Observe(int64(start.Sub(req.enqueued)))
		if err := req.ctx.Err(); err != nil {
			expiredInQueue.Inc()
			req.out <- nnResponse{err: err}
			continue
		}
		batch[live] = req
		live++
	}
	batch = batch[:live]
	if live == 0 {
		return
	}
	acceptedTotal.Add(uint64(live))
	batchSizeHist.Observe(int64(live))

	rb := b.bufPool.Get().(*resultBuf)
	for len(rb.bufs) < len(batch) {
		rb.bufs = append(rb.bufs, nil)
	}
	rb.refs.Store(int32(len(batch)))

	for len(b.errs) < len(batch) {
		b.errs = append(b.errs, nil)
	}
	errs := b.errs[:len(batch)]
	ann.ParallelFor(len(batch), func(i int) {
		out, err := b.index.SearchInto(batch[i].ctx, rb.bufs[i][:0], batch[i].vec, batch[i].k)
		if err == nil {
			rb.bufs[i] = out // keep the (possibly grown) buffer for reuse
		}
		errs[i] = err
	})
	flushDur := time.Since(start)
	batchFlushHist.Observe(int64(flushDur))
	// EWMA (α = ¼) of flush cost feeds predictedWait: smooth enough to
	// ignore one outlier, fresh enough to track a load shift.
	if old := b.flushNs.Load(); old == 0 {
		b.flushNs.Store(int64(flushDur))
	} else {
		b.flushNs.Store(old + (int64(flushDur)-old)/4)
	}

	for i, req := range batch {
		if errs[i] != nil {
			rb.release() // this request carries no buffer reference
			req.out <- nnResponse{err: errs[i]}
			continue
		}
		req.out <- nnResponse{results: rb.bufs[i], buf: rb, degraded: degraded}
	}
}
