package main

import (
	"errors"
	"time"

	"ehna/internal/ann"
)

// errShutdown is returned to queries caught in a daemon shutdown.
var errShutdown = errors.New("server shutting down")

// nnRequest is one neighbor query waiting for a batch slot.
type nnRequest struct {
	vec []float64
	k   int
	out chan nnResponse
}

type nnResponse struct {
	results []ann.Result
	err     error
}

// batcher coalesces concurrent single-query /v1/neighbors requests into
// one SearchBatch call: the first arrival opens a window, everything
// landing within it (up to maxBatch) rides the same index pass. Under
// load this amortizes per-query overhead and keeps the worker pool warm;
// an idle daemon pays at most the window in extra latency.
type batcher struct {
	index    ann.Index
	in       chan nnRequest
	maxBatch int
	window   time.Duration
	stop     chan struct{}
}

func newBatcher(index ann.Index, maxBatch int, window time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		index:    index,
		in:       make(chan nnRequest, maxBatch),
		maxBatch: maxBatch,
		window:   window,
		stop:     make(chan struct{}),
	}
	go b.run()
	return b
}

// do submits one query and blocks for its result. A closed batcher
// fails fast instead of blocking forever (req.out is buffered, so a
// flush racing the shutdown reply is dropped harmlessly).
func (b *batcher) do(vec []float64, k int) ([]ann.Result, error) {
	req := nnRequest{vec: vec, k: k, out: make(chan nnResponse, 1)}
	select {
	case b.in <- req:
	case <-b.stop:
		return nil, errShutdown
	}
	select {
	case resp := <-req.out:
		return resp.results, resp.err
	case <-b.stop:
		return nil, errShutdown
	}
}

func (b *batcher) close() { close(b.stop) }

func (b *batcher) run() {
	for {
		var first nnRequest
		select {
		case first = <-b.in:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []nnRequest{first}
		if b.window > 0 {
			deadline := time.NewTimer(b.window)
		gather:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				case <-deadline.C:
					break gather
				case <-b.stop:
					deadline.Stop()
					b.flush(batch)
					b.drain()
					return
				}
			}
			deadline.Stop()
		} else {
			// No window: still drain whatever is already queued.
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		b.flush(batch)
	}
}

// drain rejects whatever was buffered in b.in at shutdown so no do()
// caller is left waiting (out channels are buffered; sends never block).
func (b *batcher) drain() {
	for {
		select {
		case req := <-b.in:
			req.out <- nnResponse{err: errShutdown}
		default:
			return
		}
	}
}

// flush executes a gathered batch and fans results back out. Requests
// may ask for different k; the batch runs at the max and each reply is
// trimmed to its own k.
func (b *batcher) flush(batch []nnRequest) {
	qs := make([][]float64, len(batch))
	maxK := 1
	for i, req := range batch {
		qs[i] = req.vec
		if req.k > maxK {
			maxK = req.k
		}
	}
	results, err := b.index.SearchBatch(qs, maxK)
	for i, req := range batch {
		if err != nil {
			req.out <- nnResponse{err: err}
			continue
		}
		r := results[i]
		if len(r) > req.k {
			r = r[:req.k]
		}
		req.out <- nnResponse{results: r}
	}
}
