// Metrics wiring for the daemon. Two registries feed /metrics:
//
//   - obs.Default() carries process-wide series owned by the library
//     packages (ann query/stage metrics, wal append/fsync latency, Go
//     runtime stats) plus the daemon-level histograms below — all
//     cumulative, so several servers in one test process can share
//     them harmlessly.
//   - Each server owns a private registry of instance gauges (store
//     shape, graph shape, WAL/snapshot/compaction state, batcher queue
//     depth) and its per-endpoint HTTP series. Gauges describe *this*
//     server, so they cannot live on a process-wide registry without
//     two test servers clobbering each other.
//
// /healthz reads the same gauges through Registry.GaugeValue — the
// registry is the one source of truth, the JSON report just a second
// rendering of it.
package main

import (
	"net/http"
	"strconv"
	"time"

	"ehna/internal/ann"
	"ehna/internal/obs"
	"ehna/internal/vecmath"
)

// Daemon-level histograms and counters on the process-wide registry.
var (
	batchSizeHist = obs.Default().SizeHistogram("ehnad_batch_size",
		"Queries coalesced per micro-batcher flush.")
	batchFlushHist = obs.Default().Histogram("ehnad_batch_flush_seconds",
		"Latency of one micro-batcher flush (batched SearchInto pass).")
	snapshotHist = obs.Default().Histogram("ehnad_snapshot_seconds",
		"Duration of one snapshot rotation (WAL rotate + store/graph save).")
	compactionHist = obs.Default().Histogram("ehnad_compaction_seconds",
		"Duration of one HNSW compaction rebuild (excludes the follow-up snapshot).")

	// The overload-control plane: admission decisions and queue waits.
	queueWaitHist = obs.Default().Histogram("ehnad_queue_wait_seconds",
		"Time a neighbor query waited for a micro-batch slot before its search began.")
	acceptedTotal = obs.Default().Counter("ehnad_requests_accepted_total",
		"Neighbor queries admitted to a search batch.")
	shedHelp      = "Requests refused at admission, by reason."
	shedQueueFull = obs.Default().Counter("ehnad_requests_shed_total", shedHelp,
		obs.L("reason", "queue_full"))
	shedDeadline = obs.Default().Counter("ehnad_requests_shed_total", shedHelp,
		obs.L("reason", "deadline"))
	shedInflight = obs.Default().Counter("ehnad_requests_shed_total", shedHelp,
		obs.L("reason", "inflight"))
	expiredInQueue = obs.Default().Counter("ehnad_requests_expired_total",
		"Requests whose deadline passed while queued; answered without searching.")
)

// serverMetrics is one server instance's registry plus the helpers the
// handlers use against it.
type serverMetrics struct {
	reg *obs.Registry
}

// gauge reads a registered gauge by name, 0 when absent.
func (m *serverMetrics) gauge(name string) float64 {
	v, _ := m.reg.GaugeValue(name)
	return v
}

// newServerMetrics builds the per-server registry and registers the
// store/index/batcher gauges. Durability gauges join later, once the
// WAL layer exists (buildServer calls durable.registerMetrics).
func newServerMetrics(s *server) *serverMetrics {
	obs.RegisterRuntime() // idempotent; runtime + build info on the default registry
	obs.RegisterProcess() // idempotent; /proc/self memory + major-fault gauges (linux)
	m := &serverMetrics{reg: obs.NewRegistry()}
	r := m.reg
	r.GaugeFunc("ehnad_store_nodes", "Vectors in the store.",
		func() float64 { return float64(s.store.Len()) })
	r.GaugeFunc("ehnad_store_dim", "Vector dimensionality.",
		func() float64 { return float64(s.store.Dim()) })
	r.GaugeFunc("ehnad_store_shards", "Store shard count.",
		func() float64 { return float64(s.store.NumShards()) })
	r.GaugeFunc("ehnad_store_bytes_per_vector", "Slab bytes per stored vector (payload + sidecars).",
		func() float64 { return float64(s.store.Precision().BytesPerVector(s.store.Dim())) })
	// Store residency mode as an info gauge, plus — in mmap mode — the
	// cold tier's shape: how much of the mapped base the page cache
	// actually holds right now, and how much heap the write overlay has
	// accumulated since the last rotation folded it.
	mode := "ram"
	if s.store.Cold() {
		mode = "mmap"
	}
	r.Gauge("ehnad_store_mode", "Store residency mode (identity in the mode label): ram or mmap.",
		obs.L("mode", mode)).Set(1)
	if s.store.Cold() {
		r.GaugeFunc("ehnad_store_mapped_bytes", "Bytes of the v3 snapshot currently mmap'd as the cold base.",
			func() float64 { return float64(s.store.MappedBytes()) })
		r.GaugeFunc("ehnad_store_mapped_payload_bytes", "Vector-slab bytes inside the mapping (excludes ids, norms, padding).",
			func() float64 { return float64(s.store.MappedPayloadBytes()) })
		r.GaugeFunc("ehnad_store_mapped_resident_bytes", "Mapped bytes resident in the page cache right now (mincore; -1 = unknown).",
			func() float64 { return float64(s.store.MappedResidentBytes()) })
		r.GaugeFunc("ehnad_store_overlay_vectors", "Vectors in the heap overlay awaiting the next rotation fold.",
			func() float64 { v, _, _ := s.store.OverlayStats(); return float64(v) })
		r.GaugeFunc("ehnad_store_overlay_bytes", "Heap bytes the overlay slabs hold.",
			func() float64 { _, b, _ := s.store.OverlayStats(); return float64(b) })
		r.GaugeFunc("ehnad_store_base_masked", "Base rows shadowed by an overlay write or delete.",
			func() float64 { _, _, m := s.store.OverlayStats(); return float64(m) })
	}
	r.GaugeFunc("ehnad_uptime_seconds", "Seconds since this server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	// Info gauge (constant 1, identity in the label): which vecmath
	// kernel backend the distance computations run on — "avx2", "neon"
	// or "scalar". A deployment alerting on this catches a daemon that
	// silently booted on the slow path (wrong build tag, EHNA_NOSIMD
	// left set, unexpected hardware).
	r.Gauge("ehnad_kernel_backend", "Active vecmath kernel backend (identity in the backend label).",
		obs.L("backend", vecmath.Backend())).Set(1)
	r.GaugeFunc("ehnad_batch_queue_depth", "Neighbor queries waiting for a micro-batch slot.",
		func() float64 { return float64(len(s.batch.in)) })
	r.GaugeFunc("ehnad_batch_queue_capacity", "Micro-batcher admission queue capacity (a full queue sheds).",
		func() float64 { return float64(cap(s.batch.in)) })
	r.GaugeFunc("ehnad_ef_search_current", "ef-search the degrader currently applies (0 = degrader inactive).",
		func() float64 { return float64(s.batch.deg.efNow()) })
	r.GaugeFunc("ehnad_degraded", "1 while searches run below the configured ef-search beam.",
		func() float64 {
			if s.batch.deg.degradedNow() {
				return 1
			}
			return 0
		})

	// Graph gauges read through liveIndex at scrape time, so they track
	// the current graph across compaction swaps, and report zero when
	// the index is not HNSW.
	graphStat := func(pick func(alive, tombstones, maxLevel int) float64) func() float64 {
		return func() float64 {
			h, ok := s.liveIndex().(*ann.HNSW)
			if !ok {
				return 0
			}
			return pick(h.Stats())
		}
	}
	r.GaugeFunc("ehnad_graph_nodes", "Live (non-tombstoned) HNSW graph nodes.",
		graphStat(func(alive, _, _ int) float64 { return float64(alive) }))
	r.GaugeFunc("ehnad_graph_tombstones", "Tombstoned HNSW graph slots awaiting compaction.",
		graphStat(func(_, tombstones, _ int) float64 { return float64(tombstones) }))
	r.GaugeFunc("ehnad_graph_layers", "HNSW graph layers.",
		graphStat(func(_, _, maxLevel int) float64 { return float64(maxLevel + 1) }))
	r.GaugeFunc("ehnad_graph_tombstone_ratio", "Tombstoned fraction of HNSW graph slots.",
		func() float64 {
			if h, ok := s.liveIndex().(*ann.HNSW); ok {
				return h.TombstoneRatio()
			}
			return 0
		})
	return m
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route with a latency histogram and per-status-
// class counters, all labeled by path. Instruments are resolved once
// at mux-build time, so a request pays two atomic adds and one
// statusWriter allocation — noise next to its JSON decode.
func (m *serverMetrics) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := m.reg.Histogram("ehnad_http_request_seconds",
		"HTTP request latency by endpoint.", obs.L("path", path))
	const helpReq = "HTTP requests by endpoint and status class."
	codes := [6]*obs.Counter{}
	for i := 1; i <= 5; i++ {
		codes[i] = m.reg.Counter("ehnad_http_requests_total", helpReq,
			obs.L("path", path), obs.L("code", strconv.Itoa(i)+"xx"))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.ObserveSince(start)
		if class := sw.status / 100; class >= 1 && class <= 5 {
			codes[class].Inc()
		}
	}
}

// registerMetrics exposes the durability layer's state as gauges on
// the server registry: the WAL instance gauges plus snapshot,
// compaction and replay state. Called once the layer exists.
func (d *durable) registerMetrics(r *obs.Registry) {
	d.reg = r // heal() re-registers the WAL gauges against the fresh log
	d.wal().RegisterMetrics(r)
	r.GaugeFunc("ehnad_read_only", "1 while the daemon is in read-only degraded mode (WAL unavailable).",
		func() float64 {
			if d.readOnly.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("ehnad_read_only_since_unix", "Unix time read-only mode was entered (0 = writable).",
		func() float64 {
			if !d.readOnly.Load() {
				return 0
			}
			return float64(d.readOnlySince.Load())
		})
	r.GaugeFunc("ehnad_wal_heal_attempts", "WAL reopen-and-probe attempts made while read-only.",
		func() float64 { return float64(d.healAttempts.Load()) })
	r.GaugeFunc("ehnad_wal_heals", "Successful WAL heals (read-only mode exits) since boot.",
		func() float64 { return float64(d.heals.Load()) })
	r.GaugeFunc("ehnad_snapshot_watermark", "WAL sequence the newest snapshot pair covers.",
		func() float64 { return float64(d.watermark.Load()) })
	r.GaugeFunc("ehnad_snapshot_count", "Snapshot rotations completed since boot.",
		func() float64 { return float64(d.snapshots.Load()) })
	r.GaugeFunc("ehnad_snapshot_last_unix", "Unix time of the last snapshot rotation (0 = never).",
		func() float64 { return float64(d.lastSnapshot.Load()) })
	r.GaugeFunc("ehnad_snapshot_error_count", "Failed snapshot rotations since boot.",
		func() float64 { return float64(d.snapshotErrs.Load()) })
	r.GaugeFunc("ehnad_snapshot_interval_seconds", "Background snapshot rotation period (0 = disabled).",
		func() float64 { return d.interval.Seconds() })
	r.GaugeFunc("ehnad_replayed_records", "WAL records replayed at boot.",
		func() float64 { return float64(d.replayed) })
	r.GaugeFunc("ehnad_replay_torn_tail", "1 when boot replay truncated a torn WAL tail.",
		func() float64 {
			if d.replayTorn {
				return 1
			}
			return 0
		})
	if d.isHNSW {
		r.GaugeFunc("ehnad_compaction_running", "1 while a compaction rebuild is in flight.",
			func() float64 {
				if d.compactRunning.Load() {
					return 1
				}
				return 0
			})
		r.GaugeFunc("ehnad_compaction_count", "Compaction rebuilds completed since boot.",
			func() float64 { return float64(d.compactions.Load()) })
		r.GaugeFunc("ehnad_compaction_last_unix", "Unix time of the last compaction (0 = never).",
			func() float64 { return float64(d.lastCompaction.Load()) })
		r.GaugeFunc("ehnad_compaction_threshold", "Tombstone ratio that triggers compaction (<=0 disabled).",
			func() float64 { return d.compactAt })
	}
}
