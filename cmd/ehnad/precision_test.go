package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// walConfigAt is the WAL-mode server config the precision tests boot.
func walConfigAt(walDir string, prec embstore.Precision, dim int) serverConfig {
	return serverConfig{
		dim:       dim,
		precision: prec,
		shards:    4,
		index:     testIndexOptions("hnsw"),
		maxBatch:  16,
		window:    time.Millisecond,
		walDir:    walDir,
		fsync:     "never", // these tests are about precision, not fsync
	}
}

// TestCrossPrecisionBoot: a daemon that wrote f64 snapshots restarts
// with -precision sq8 — the old snapshot upconverts on boot, the WAL
// suffix (always full-precision records) replays through the quantized
// store, and the serving path holds the recall gate against a
// full-precision reference of the same final state.
func TestCrossPrecisionBoot(t *testing.T) {
	const dim, n = 16, 500
	rng := rand.New(rand.NewSource(41))
	emb := tensor.Randn(n, dim, 1, rng)

	walDir := t.TempDir()

	// Generation 1: f64 daemon. Seed via upserts, rotate a snapshot
	// (f64 image on disk), then land more writes past the watermark so
	// the next boot must replay a WAL suffix.
	srv, err := buildServer(walConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatal(err)
	}
	var updates []upsertUpdate
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		updates = append(updates, upsertUpdate{ID: &id, Vector: emb.Row(i)})
	}
	if _, err := srv.dur.upsert(updates); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-watermark churn: replace one vector, delete another, add a
	// fresh one.
	replaced := make([]float64, dim)
	replaced[3] = 2.5
	idR, idDel, idNew := graph.NodeID(7), graph.NodeID(8), graph.NodeID(n+100)
	fresh := make([]float64, dim)
	fresh[0] = 1.25
	if _, err := srv.dur.upsert([]upsertUpdate{{ID: &idR, Vector: replaced}, {ID: &idNew, Vector: fresh}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.dur.delete([]graph.NodeID{idDel}); err != nil {
		t.Fatal(err)
	}
	srv.close()

	// Generation 2: same WAL dir, -precision sq8.
	srv2, err := buildServer(walConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	srv2Closed := false
	closeSrv2 := func() {
		if !srv2Closed {
			srv2Closed = true
			srv2.close()
		}
	}
	defer closeSrv2()
	if got := srv2.store.Precision(); got != embstore.SQ8 {
		t.Fatalf("rebooted precision %v, want sq8", got)
	}
	if srv2.dur.replayed != 3 {
		t.Fatalf("replayed %d records, want 3", srv2.dur.replayed)
	}
	if srv2.store.Len() != n {
		t.Fatalf("store holds %d vectors, want %d", srv2.store.Len(), n)
	}
	if _, ok := srv2.store.Get(idDel); ok {
		t.Fatal("post-watermark delete lost in cross-precision replay")
	}
	if got, ok := srv2.store.Get(idNew); !ok || got[0] < 1.2 || got[0] > 1.3 {
		t.Fatalf("post-watermark upsert lost: %v %v", got, ok)
	}

	// Recall gate: the quantized daemon's index vs an exact f64
	// reference over the identical final state.
	ref, err := embstore.New(dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		vec := emb.Row(i)
		switch graph.NodeID(i) {
		case idDel:
			continue
		case idR:
			vec = replaced
		}
		if err := ref.Upsert(graph.NodeID(i), vec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Upsert(idNew, fresh); err != nil {
		t.Fatal(err)
	}
	truth := ann.NewExact(ref, ann.Cosine)
	const k = 10
	var approx, exact [][]graph.NodeID
	for qi := 0; qi < 25; qi++ {
		q := emb.Row(qi * 17 % n)
		tr, err := truth.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := srv2.index.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact = append(exact, ids(tr))
		approx = append(approx, ids(ar))
	}
	recall, err := eval.MeanRecallAtK(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sq8 daemon recall@10 vs f64 reference = %.3f", recall)
	if recall < 0.95 {
		t.Errorf("cross-precision boot recall@10 = %.3f, want ≥ 0.95", recall)
	}

	// /healthz reports the compressed plane.
	ts := httptest.NewServer(srv2.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Precision      string `json:"precision"`
		BytesPerVector int    `json:"bytes_per_vector"`
	}
	decodeJSONBody(t, resp, &hz)
	if hz.Precision != "sq8" || hz.BytesPerVector != embstore.SQ8.BytesPerVector(dim) {
		t.Fatalf("healthz precision block: %+v", hz)
	}

	// The next rotation writes an sq8 image; booting f64 from it
	// upconverts back.
	if _, err := srv2.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	closeSrv2()
	srv3, err := buildServer(walConfigAt(walDir, embstore.F64, dim))
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.close()
	if got := srv3.store.Precision(); got != embstore.F64 {
		t.Fatalf("third-generation precision %v, want f64", got)
	}
	if srv3.store.Len() != n {
		t.Fatalf("third generation holds %d vectors, want %d", srv3.store.Len(), n)
	}
}

func ids(rs []ann.Result) []graph.NodeID {
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func decodeJSONBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotFailsBoot: a truncated store snapshot must refuse
// to boot — a daemon serving garbage vectors is worse than one that
// won't start.
func TestCorruptSnapshotFailsBoot(t *testing.T) {
	const dim = 8
	walDir := t.TempDir()
	srv, err := buildServer(walConfigAt(walDir, embstore.SQ8, dim))
	if err != nil {
		t.Fatal(err)
	}
	id := graph.NodeID(1)
	vec := make([]float64, dim)
	vec[0] = 1
	if _, err := srv.dur.upsert([]upsertUpdate{{ID: &id, Vector: vec}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.dur.snapshot(); err != nil {
		t.Fatal(err)
	}
	srv.close()

	snap := walSnapshotV3Path(walDir)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// The (valid) graph snapshot must not rescue a corrupt store image.
	if _, err := os.Stat(filepath.Join(walDir, "graph.gob")); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(walConfigAt(walDir, embstore.SQ8, dim)); err == nil ||
		!strings.Contains(err.Error(), "load wal snapshot") {
		t.Fatalf("truncated snapshot booted: err = %v", err)
	}
}
