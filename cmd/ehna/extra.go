package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ehna/internal/baselines/ctdne"
	"ehna/internal/baselines/htne"
	"ehna/internal/baselines/line"
	"ehna/internal/baselines/node2vec"
	"ehna/internal/graph"
	"ehna/internal/pca"
	"ehna/internal/skipgram"
	"ehna/internal/tensor"
)

// cmdStats prints structural and temporal statistics of an edge list.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input temporal edge list (TSV)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("stats: -graph is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	st := g.ComputeStats()
	fmt.Printf("nodes:               %d\n", st.Nodes)
	fmt.Printf("temporal edges:      %d\n", st.Edges)
	fmt.Printf("time span:           [%g, %g]\n", st.MinTime, st.MaxTime)
	fmt.Printf("mean degree:         %.2f\n", st.MeanDegree)
	fmt.Printf("max degree:          %d\n", st.MaxDegree)
	fmt.Printf("connected components:%d\n", g.NumComponents())
	fmt.Printf("degree Gini:         %.3f\n", g.GiniDegree())
	if ts, ok := g.ComputeTemporalStats(); ok {
		fmt.Printf("mean inter-event:    %.4f\n", ts.MeanInterEvent)
		fmt.Printf("median inter-event:  %.4f\n", ts.MedianInterEvent)
		fmt.Printf("burst ratio:         %.3f\n", ts.BurstRatio)
		fmt.Printf("repeat-edge fraction:%.3f\n", ts.RepeatEdgeFraction)
	}
	return nil
}

// cmdEmbed trains any of the five methods on an edge list.
func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input temporal edge list (TSV)")
	method := fs.String("method", "node2vec", "node2vec, ctdne, line, or htne")
	dim := fs.Int("dim", 32, "embedding dimensionality (even for line)")
	epochs := fs.Int("epochs", 2, "training epochs (sgns/htne)")
	out := fs.String("out", "", "output embedding TSV path (default stdout)")
	seed := fs.Int64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("embed: -graph is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	sgns := skipgram.Config{Dim: *dim, Window: 5, Negatives: 5, LR: 0.05, Epochs: *epochs, Workers: 4}
	var emb *tensor.Matrix
	switch *method {
	case "node2vec":
		emb, err = node2vec.Embed(g, node2vec.Config{P: 1, Q: 1, NumWalks: 10, WalkLen: 40, SGNS: sgns}, *seed)
	case "ctdne":
		emb, err = ctdne.Embed(g, ctdne.Config{WalksPerEdgeFactor: 5, WalkLen: 40, SGNS: sgns}, *seed)
	case "line":
		cfg := line.DefaultConfig()
		cfg.Dim = *dim
		cfg.Samples = 100_000 * *epochs
		emb, err = line.Embed(g, cfg, *seed)
	case "htne":
		cfg := htne.DefaultConfig()
		cfg.Dim = *dim
		cfg.Epochs = *epochs * 5
		emb, err = htne.Embed(g, cfg, *seed)
	default:
		return fmt.Errorf("embed: unknown method %q (use ehna train for EHNA)", *method)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeEmbeddings(w, emb)
}

// cmdVisualize renders a PCA projection of embeddings as ASCII.
func cmdVisualize(args []string) error {
	fs := flag.NewFlagSet("visualize", flag.ExitOnError)
	embPath := fs.String("emb", "", "embedding TSV (from ehna train/embed)")
	graphPath := fs.String("graph", "", "optional edge list; labels nodes by connected component")
	width := fs.Int("width", 72, "plot width")
	height := fs.Int("height", 24, "plot height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *embPath == "" {
		return fmt.Errorf("visualize: -emb is required")
	}
	emb, err := readEmbeddings(*embPath)
	if err != nil {
		return err
	}
	labels := make([]byte, emb.Rows)
	for i := range labels {
		labels[i] = '*'
	}
	if *graphPath != "" {
		g, err := loadGraph(*graphPath)
		if err != nil {
			return err
		}
		if g.NumNodes() == emb.Rows {
			comp := g.ConnectedComponents()
			for i := range labels {
				labels[i] = byte('0' + comp[i]%10)
			}
		}
	}
	res, err := pca.Fit(emb, pca.DefaultConfig())
	if err != nil {
		return err
	}
	plot, err := pca.ScatterASCII(res.Transform(emb), labels, *width, *height)
	if err != nil {
		return err
	}
	fmt.Print(plot)
	fmt.Printf("explained variance: PC1 %.3f PC2 %.3f\n", res.Explained[0], res.Explained[1])
	return nil
}

// sampleNodesFor is a shared helper for node sampling across subcommands.
func sampleNodesFor(g *graph.Temporal, n int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	var candidates []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) > 0 {
			candidates = append(candidates, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n]
}
