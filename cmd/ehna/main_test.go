package main

import (
	"os"
	"path/filepath"
	"testing"

	"ehna/internal/tensor"
)

func TestWriteReadEmbeddingsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "emb.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	emb := tensor.FromRows([][]float64{{0.5, -1.25}, {3, 4}})
	if err := writeEmbeddings(f, emb); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readEmbeddings(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, emb, 0) {
		t.Fatalf("roundtrip mismatch: %v vs %v", got.Data, emb.Data)
	}
}

func TestReadEmbeddingsErrors(t *testing.T) {
	if _, err := readEmbeddings("/nonexistent/path.tsv"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.tsv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEmbeddings(empty); err == nil {
		t.Fatal("empty file accepted")
	}
	bad := filepath.Join(dir, "bad.tsv")
	if err := os.WriteFile(bad, []byte("0\tnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEmbeddings(bad); err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("/nonexistent/graph.tsv"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.tsv")
	if err := os.WriteFile(bad, []byte("x y z\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGraph(bad); err == nil {
		t.Fatal("malformed graph accepted")
	}
}

func TestLoadGraphNormalizesTimes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0 1 2005\n1 2 2015\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := g.TimeSpan()
	if lo != 0 || hi != 1 {
		t.Fatalf("times not normalized: %g..%g", lo, hi)
	}
}

func TestSampleNodesFor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0 1 1\n1 2 2\n3 4 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sampleNodesFor(g, 100, 1)
	if len(nodes) != 5 {
		t.Fatalf("%d nodes (want all 5 non-isolated)", len(nodes))
	}
	nodes = sampleNodesFor(g, 2, 1)
	if len(nodes) != 2 {
		t.Fatalf("%d nodes want 2", len(nodes))
	}
}
