// Command ehna is the library's command-line front end.
//
// Subcommands:
//
//	ehna datagen  -dataset Digg -scale 0.1 -out graph.tsv
//	    Generate a synthetic temporal network and write it as TSV.
//
//	ehna train    -graph graph.tsv -out emb.tsv [-dim 32] [-epochs 1] ...
//	    Train EHNA embeddings on a temporal edge list.
//
//	ehna reconstruct -graph graph.tsv -emb emb.tsv [-sample 400]
//	    Evaluate network reconstruction precision@P with the embeddings.
//
//	ehna linkpred -graph graph.tsv [-dim 32] ...
//	    Run the full link-prediction protocol (temporal split, EHNA
//	    training, logistic-regression probe over all four operators).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ehna/internal/classify"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "reconstruct":
		err = cmdReconstruct(os.Args[2:])
	case "linkpred":
		err = cmdLinkPred(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "embed":
		err = cmdEmbed(os.Args[2:])
	case "visualize":
		err = cmdVisualize(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ehna: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ehna <datagen|train|embed|reconstruct|linkpred|stats|visualize> [flags]")
	os.Exit(2)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	dataset := fs.String("dataset", "Digg", "dataset analogue: Digg, Yelp, Tmall, DBLP")
	scale := fs.Float64("scale", 0.1, "size multiplier vs the built-in defaults")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output TSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := datagen.Generate(datagen.Dataset(*dataset), datagen.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	st := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %s: %d nodes, %d temporal edges, mean degree %.1f\n",
		*dataset, st.Nodes, st.Edges, st.MeanDegree)
	return g.WriteTSV(w)
}

func loadGraph(path string) (*graph.Temporal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadTSV(f)
	if err != nil {
		return nil, err
	}
	g.NormalizeTimes()
	return g, nil
}

func ehnaFlags(fs *flag.FlagSet) func() ehna.Config {
	dim := fs.Int("dim", 32, "embedding dimensionality")
	epochs := fs.Int("epochs", 1, "training epochs")
	walks := fs.Int("walks", 10, "temporal random walks per target (k)")
	walkLen := fs.Int("walklen", 10, "walk length (ℓ)")
	p := fs.Float64("p", 1, "return parameter p")
	q := fs.Float64("q", 1, "in-out parameter q")
	margin := fs.Float64("margin", 5, "hinge safety margin m")
	seed := fs.Int64("seed", 1, "training seed")
	return func() ehna.Config {
		cfg := ehna.DefaultConfig()
		cfg.Dim = *dim
		cfg.Epochs = *epochs
		cfg.Walk = walk.TemporalConfig{P: *p, Q: *q, NumWalks: *walks, WalkLen: *walkLen}
		cfg.Margin = *margin
		cfg.Seed = *seed
		cfg.Bidirectional = true
		return cfg
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input temporal edge list (TSV)")
	out := fs.String("out", "", "output embedding TSV path (default stdout)")
	mkCfg := ehnaFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("train: -graph is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	model, err := ehna.NewModel(g, mkCfg())
	if err != nil {
		return err
	}
	for i, loss := range model.Train() {
		fmt.Fprintf(os.Stderr, "epoch %d: loss %.4f\n", i+1, loss)
	}
	emb := model.InferAll()
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeEmbeddings(w, emb)
}

func writeEmbeddings(w *os.File, emb *tensor.Matrix) error {
	return emb.WriteTSV(w)
}

func readEmbeddings(path string) (*tensor.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tensor.ReadTSV(f)
}

func cmdReconstruct(args []string) error {
	fs := flag.NewFlagSet("reconstruct", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input temporal edge list (TSV)")
	embPath := fs.String("emb", "", "embedding TSV (from ehna train)")
	sampleN := fs.Int("sample", 400, "nodes sampled for reconstruction ranking")
	seed := fs.Int64("seed", 1, "sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *embPath == "" {
		return fmt.Errorf("reconstruct: -graph and -emb are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	emb, err := readEmbeddings(*embPath)
	if err != nil {
		return err
	}
	if emb.Rows != g.NumNodes() {
		return fmt.Errorf("embedding rows %d != graph nodes %d", emb.Rows, g.NumNodes())
	}
	nodes := sampleNodesFor(g, *sampleN, *seed)
	maxPairs := len(nodes) * (len(nodes) - 1) / 2
	var ps []int
	for _, p := range []int{100, 300, 1000, 3000, 10000, 30000} {
		if p <= maxPairs {
			ps = append(ps, p)
		}
	}
	prec, err := eval.PrecisionAtP(g, emb, nodes, ps)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s%12s\n", "P", "Precision")
	for i, p := range ps {
		fmt.Printf("%-10d%12.4f\n", p, prec[i])
	}
	return nil
}

func cmdLinkPred(args []string) error {
	fs := flag.NewFlagSet("linkpred", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input temporal edge list (TSV)")
	repeats := fs.Int("repeats", 10, "probe evaluation repeats")
	mkCfg := ehnaFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("linkpred: -graph is required")
	}
	full, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		return err
	}
	cfg := mkCfg()
	model, err := ehna.NewModel(train, cfg)
	if err != nil {
		return err
	}
	for i, loss := range model.Train() {
		fmt.Fprintf(os.Stderr, "epoch %d: loss %.4f\n", i+1, loss)
	}
	emb := model.InferAll()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s%10s%10s%10s%10s\n", "Operator", "AUC", "F1", "Prec", "Recall")
	for _, op := range eval.Operators {
		var auc, f1, prec, rec float64
		for r := 0; r < *repeats; r++ {
			rr := rand.New(rand.NewSource(cfg.Seed + int64(r)))
			trainD, testD, err := data.Split(0.5, rr)
			if err != nil {
				return err
			}
			Xtr := eval.EdgeFeatures(emb, trainD.Pairs, op)
			Xte := eval.EdgeFeatures(emb, testD.Pairs, op)
			ccfg := classify.DefaultConfig()
			ccfg.Seed = cfg.Seed + int64(r)
			clf, err := classify.Train(Xtr, trainD.Labels, ccfg)
			if err != nil {
				return err
			}
			a, err := eval.AUC(clf.PredictProba(Xte), testD.Labels)
			if err != nil {
				return err
			}
			conf, err := eval.Confuse(clf.Predict(Xte), testD.Labels)
			if err != nil {
				return err
			}
			auc += a
			f1 += conf.F1()
			prec += conf.Precision()
			rec += conf.Recall()
		}
		inv := 1 / float64(*repeats)
		fmt.Printf("%-14s%10.4f%10.4f%10.4f%10.4f\n", op, auc*inv, f1*inv, prec*inv, rec*inv)
	}
	return nil
}
