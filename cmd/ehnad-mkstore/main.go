// Command ehnad-mkstore builds serving artifacts for the beyond-RAM
// path without going through a daemon: a flat v3 store snapshot
// (embstore.SaveSnapshotV3 — the file ehnad -store=mmap serves straight
// out of), optionally the matching HNSW graph snapshot (so the daemon
// boots without a rebuild), and a ground-truth file of exact top-k
// answers for a held-out query sample.
//
// Generate:
//
//	ehnad-mkstore -out DIR -n 1000000 -dim 64 -precision sq8 -hnsw
//
// writes DIR/store.snap, DIR/graph.gob (with -hnsw) and DIR/truth.json.
// Vectors are seeded-random; the exact top-k truth is computed in the
// same streaming pass at full precision, so no second full-precision
// store is ever materialized — memory stays at the target-precision
// store (plus the graph when -hnsw).
//
// Check: point it at a live daemon serving those artifacts and gate its
// recall against the truth file:
//
//	ehnad-mkstore -check DIR -target http://127.0.0.1:8080 -min-recall 0.95
//
// posts every truth query to /v1/neighbors and exits non-zero when mean
// recall@k falls below the threshold — the CI gate that quantized,
// mmap-served search still answers correctly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ehna/internal/ann"
	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

// truthFile is the ground-truth artifact: the query sample and each
// query's exact full-precision cosine top-k over the generated set.
type truthFile struct {
	Dim     int          `json:"dim"`
	N       int          `json:"n"`
	K       int          `json:"k"`
	Seed    int64        `json:"seed"`
	Queries []truthEntry `json:"queries"`
}

type truthEntry struct {
	Vector []float64      `json:"vector"`
	IDs    []graph.NodeID `json:"ids"`
}

func main() {
	var (
		out       = flag.String("out", "", "output directory for store.snap / graph.gob / truth.json")
		n         = flag.Int("n", 100_000, "vectors to generate")
		dim       = flag.Int("dim", 64, "vector dimensionality")
		precision = flag.String("precision", "sq8", "slab precision of the snapshot: f64, f32 or sq8")
		shards    = flag.Int("shards", embstore.DefaultShards, "store shard count")
		seed      = flag.Int64("seed", 1, "dataset RNG seed")
		queries   = flag.Int("queries", 100, "held-out queries to compute exact truth for (0 disables truth.json)")
		k         = flag.Int("k", 10, "truth depth per query")
		hnsw      = flag.Bool("hnsw", false, "also build and save the HNSW graph snapshot (boot without rebuild)")
		m         = flag.Int("m", 0, "hnsw: graph degree (0 = library default)")
		efCons    = flag.Int("ef-construction", 0, "hnsw: build-time beam width (0 = library default)")
		check     = flag.String("check", "", "check mode: directory holding truth.json; queries a live daemon instead of generating")
		target    = flag.String("target", "http://127.0.0.1:8080", "check mode: daemon base URL")
		minRecall = flag.Float64("min-recall", 0.95, "check mode: fail below this mean recall@k")
	)
	flag.Parse()

	if *check != "" {
		if err := runCheck(*check, *target, *minRecall); err != nil {
			log.Fatalf("ehnad-mkstore: %v", err)
		}
		return
	}
	if *out == "" {
		log.Fatal("ehnad-mkstore: pass -out DIR (generate) or -check DIR (verify)")
	}
	prec, err := embstore.ParsePrecision(*precision)
	if err != nil {
		log.Fatalf("ehnad-mkstore: %v", err)
	}
	hcfg := ann.DefaultHNSWConfig()
	if *m > 0 {
		hcfg.M = *m
	}
	if *efCons > 0 {
		hcfg.EfConstruction = *efCons
	}
	if err := generate(*out, *n, *dim, *shards, prec, *seed, *queries, *k, *hnsw, hcfg); err != nil {
		log.Fatalf("ehnad-mkstore: %v", err)
	}
}

// generate streams n seeded vectors into a store at the target
// precision, scoring each against the query sample as it goes (exact
// full-precision cosine truth in the same pass), then writes the
// artifacts.
func generate(out string, n, dim, shards int, prec embstore.Precision, seed int64, nq, k int, buildGraph bool, hcfg ann.HNSWConfig) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	store, err := embstore.NewPrecision(dim, shards, prec)
	if err != nil {
		return err
	}

	// The query sample comes from its own RNG stream so it is held out
	// of the dataset but reproducible from the same seed.
	qrng := rand.New(rand.NewSource(seed + 1))
	truth := truthFile{Dim: dim, N: n, K: k, Seed: seed, Queries: make([]truthEntry, nq)}
	qnorm := make([]float64, nq)
	type cand struct {
		id    graph.NodeID
		score float64
	}
	top := make([][]cand, nq)
	for qi := range truth.Queries {
		v := make([]float64, dim)
		for j := range v {
			v[j] = qrng.NormFloat64()
		}
		truth.Queries[qi].Vector = v
		qnorm[qi] = vecmath.Norm(v)
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	vec := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		id := graph.NodeID(i)
		if err := store.Upsert(id, vec); err != nil {
			return err
		}
		if nq == 0 {
			continue
		}
		norm := vecmath.Norm(vec)
		for qi := range truth.Queries {
			score := vecmath.Dot(truth.Queries[qi].Vector, vec) / (qnorm[qi]*norm + 1e-12)
			t := top[qi]
			if len(t) == k && score <= t[k-1].score {
				continue
			}
			if len(t) < k {
				t = append(t, cand{id, score})
			} else {
				t[k-1] = cand{id, score}
			}
			sort.Slice(t, func(a, b int) bool { return t[a].score > t[b].score })
			top[qi] = t
		}
	}
	for qi := range truth.Queries {
		ids := make([]graph.NodeID, len(top[qi]))
		for i, c := range top[qi] {
			ids[i] = c.id
		}
		truth.Queries[qi].IDs = ids
	}
	log.Printf("generated %d × dim-%d at %s in %v", n, dim, prec, time.Since(start).Round(time.Millisecond))

	snapPath := filepath.Join(out, "store.snap")
	if err := writeAtomic(snapPath, func(f *os.File) error {
		return store.SaveSnapshotV3(f, 0)
	}); err != nil {
		return fmt.Errorf("store snapshot: %w", err)
	}
	st, _ := os.Stat(snapPath)
	log.Printf("wrote %s (%d bytes)", snapPath, st.Size())

	if buildGraph {
		gstart := time.Now()
		h, err := ann.BuildHNSW(store, hcfg)
		if err != nil {
			return fmt.Errorf("hnsw build: %w", err)
		}
		graphPath := filepath.Join(out, "graph.gob")
		if err := writeAtomic(graphPath, func(f *os.File) error { return h.SaveGraph(f) }); err != nil {
			return fmt.Errorf("graph snapshot: %w", err)
		}
		log.Printf("wrote %s (built in %v)", graphPath, time.Since(gstart).Round(time.Millisecond))
	}

	if nq > 0 {
		truthPath := filepath.Join(out, "truth.json")
		if err := writeAtomic(truthPath, func(f *os.File) error {
			return json.NewEncoder(f).Encode(&truth)
		}); err != nil {
			return fmt.Errorf("truth file: %w", err)
		}
		log.Printf("wrote %s (%d queries × top-%d exact)", truthPath, nq, k)
	}
	return nil
}

// runCheck replays the truth queries against a live daemon and gates
// mean recall@k.
func runCheck(dir, target string, minRecall float64) error {
	b, err := os.ReadFile(filepath.Join(dir, "truth.json"))
	if err != nil {
		return err
	}
	var truth truthFile
	if err := json.Unmarshal(b, &truth); err != nil {
		return fmt.Errorf("truth.json: %w", err)
	}
	if len(truth.Queries) == 0 {
		return fmt.Errorf("truth.json holds no queries")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var sum float64
	for qi, q := range truth.Queries {
		body, err := json.Marshal(map[string]any{"vector": q.Vector, "k": truth.K})
		if err != nil {
			return err
		}
		resp, err := client.Post(target+"/v1/neighbors", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
		var out struct {
			Results []ann.Result `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("query %d: decode: %w", qi, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query %d: status %d", qi, resp.StatusCode)
		}
		want := make(map[graph.NodeID]bool, len(q.IDs))
		for _, id := range q.IDs {
			want[id] = true
		}
		hits := 0
		for _, r := range out.Results {
			if want[r.ID] {
				hits++
			}
		}
		sum += float64(hits) / float64(len(q.IDs))
	}
	recall := sum / float64(len(truth.Queries))
	fmt.Printf("recall@%d = %.4f over %d queries (gate %.2f)\n", truth.K, recall, len(truth.Queries), minRecall)
	if recall < minRecall {
		return fmt.Errorf("recall@%d %.4f below gate %.2f", truth.K, recall, minRecall)
	}
	return nil
}

// writeAtomic is tmp+rename with fsync: artifacts appear complete or
// not at all.
func writeAtomic(path string, write func(f *os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
