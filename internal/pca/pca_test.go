package pca

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ehna/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Components: 0, MaxIter: 1, Tol: 1e-9},
		{Components: 1, MaxIter: 0, Tol: 1e-9},
		{Components: 1, MaxIter: 1, Tol: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(tensor.New(1, 3), DefaultConfig()); err == nil {
		t.Fatal("single row accepted")
	}
	cfg := DefaultConfig()
	cfg.Components = 5
	if _, err := Fit(tensor.New(10, 3), cfg); err == nil {
		t.Fatal("components > features accepted")
	}
	if _, err := Fit(tensor.New(10, 3), Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// anisotropic generates data stretched along a known direction.
func anisotropic(n int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	X := tensor.New(n, 3)
	// Dominant axis (1, 2, 0)/√5, minor noise elsewhere.
	for i := 0; i < n; i++ {
		s := rng.NormFloat64() * 10
		X.Set(i, 0, s*1/math.Sqrt(5)+rng.NormFloat64()*0.1)
		X.Set(i, 1, s*2/math.Sqrt(5)+rng.NormFloat64()*0.1)
		X.Set(i, 2, rng.NormFloat64()*0.1)
	}
	return X
}

func TestFitRecoversDominantAxis(t *testing.T) {
	X := anisotropic(500, 1)
	r, err := Fit(X, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := r.Components.Row(0)
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5), 0}
	dot := math.Abs(tensor.DotVec(v, want)) // sign is arbitrary
	if dot < 0.999 {
		t.Fatalf("dominant axis misaligned: |cos| = %g (axis %v)", dot, v)
	}
	if r.Explained[0] < 10*r.Explained[1] {
		t.Fatalf("variance not concentrated: %v", r.Explained)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	X := anisotropic(300, 2)
	cfg := DefaultConfig()
	cfg.Components = 3
	r, err := Fit(X, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(tensor.L2NormVec(r.Components.Row(i))-1) > 1e-6 {
			t.Fatalf("component %d not unit norm", i)
		}
		for j := i + 1; j < 3; j++ {
			if d := math.Abs(tensor.DotVec(r.Components.Row(i), r.Components.Row(j))); d > 1e-4 {
				t.Fatalf("components %d,%d not orthogonal: %g", i, j, d)
			}
		}
	}
}

func TestTransformShapeAndCentering(t *testing.T) {
	X := anisotropic(100, 3)
	r, err := Fit(X, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	Y := r.Transform(X)
	if Y.Rows != 100 || Y.Cols != 2 {
		t.Fatalf("shape %dx%d", Y.Rows, Y.Cols)
	}
	// Projections of centered data have ~zero mean.
	m := tensor.MeanRows(Y)
	for _, v := range m.Data {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("projection mean %v not centered", m.Data)
		}
	}
}

func TestTransformVarianceMatchesExplained(t *testing.T) {
	X := anisotropic(400, 4)
	r, err := Fit(X, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	Y := r.Transform(X)
	var variance float64
	for i := 0; i < Y.Rows; i++ {
		v := Y.At(i, 0)
		variance += v * v
	}
	variance /= float64(Y.Rows - 1)
	if math.Abs(variance-r.Explained[0])/r.Explained[0] > 0.01 {
		t.Fatalf("explained %g vs projected variance %g", r.Explained[0], variance)
	}
}

func TestScatterASCII(t *testing.T) {
	pts := tensor.FromRows([][]float64{{0, 0}, {1, 1}, {0.5, 0.5}})
	s, err := ScatterASCII(pts, []byte{'a', 'b', 'c'}, 11, 5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") || !strings.Contains(s, "c") {
		t.Fatalf("labels missing:\n%s", s)
	}
	// a at bottom-left, b at top-right.
	if lines[4][0] != 'a' {
		t.Fatalf("a misplaced:\n%s", s)
	}
	if lines[0][10] != 'b' {
		t.Fatalf("b misplaced:\n%s", s)
	}
}

func TestScatterASCIIErrors(t *testing.T) {
	pts := tensor.New(2, 3)
	if _, err := ScatterASCII(pts, []byte{'a', 'b'}, 10, 10); err == nil {
		t.Fatal("3-D points accepted")
	}
	pts2 := tensor.New(2, 2)
	if _, err := ScatterASCII(pts2, []byte{'a'}, 10, 10); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := ScatterASCII(pts2, []byte{'a', 'b'}, 1, 10); err == nil {
		t.Fatal("tiny grid accepted")
	}
	// Degenerate identical points must not divide by zero.
	if _, err := ScatterASCII(tensor.New(2, 2), []byte{'a', 'b'}, 10, 10); err != nil {
		t.Fatal(err)
	}
}
