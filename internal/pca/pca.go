// Package pca implements principal component analysis via power iteration
// with deflation. The paper lists visualization as a primary application
// of node embeddings (Section I); PCA to 2-D is the stdlib-only stand-in
// for the usual t-SNE projection.
package pca

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/tensor"
)

// Config parameterizes the decomposition.
type Config struct {
	Components int     // number of principal components (≥ 1)
	MaxIter    int     // power-iteration cap per component
	Tol        float64 // convergence tolerance on the eigenvector delta
	Seed       int64
}

// DefaultConfig returns settings adequate for embedding matrices.
func DefaultConfig() Config {
	return Config{Components: 2, MaxIter: 300, Tol: 1e-9, Seed: 1}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.Components < 1 {
		return fmt.Errorf("pca: Components %d < 1", c.Components)
	}
	if c.MaxIter < 1 {
		return fmt.Errorf("pca: MaxIter %d < 1", c.MaxIter)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("pca: Tol %g must be positive", c.Tol)
	}
	return nil
}

// Result holds the decomposition outputs.
type Result struct {
	// Components is k×d: one unit-norm principal axis per row.
	Components *tensor.Matrix
	// Explained holds the variance along each component.
	Explained []float64
	// Mean is the 1×d column mean removed before projection.
	Mean *tensor.Matrix
}

// Fit computes the top-k principal components of X (n×d).
func Fit(X *tensor.Matrix, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if X.Rows < 2 {
		return nil, fmt.Errorf("pca: need ≥ 2 rows, got %d", X.Rows)
	}
	if cfg.Components > X.Cols {
		return nil, fmt.Errorf("pca: %d components exceed %d features", cfg.Components, X.Cols)
	}
	n, d := X.Rows, X.Cols
	mean := tensor.MeanRows(X)
	centered := tensor.New(n, d)
	for i := 0; i < n; i++ {
		row := X.Row(i)
		crow := centered.Row(i)
		for j := range row {
			crow[j] = row[j] - mean.Data[j]
		}
	}
	// Covariance C = centeredᵀ·centered / (n−1), computed once (d is small
	// for embeddings).
	cov := tensor.MatMulATransposed(centered, centered)
	tensor.ScaleInPlace(cov, 1/float64(n-1))

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{
		Components: tensor.New(cfg.Components, d),
		Explained:  make([]float64, cfg.Components),
		Mean:       mean,
	}
	for k := 0; k < cfg.Components; k++ {
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		normalize(v)
		var lambda float64
		for it := 0; it < cfg.MaxIter; it++ {
			w := matVec(cov, v)
			lambda = tensor.DotVec(v, w)
			normalize(w)
			delta := 0.0
			for i := range w {
				dv := w[i] - v[i]
				delta += dv * dv
			}
			copy(v, w)
			if delta < cfg.Tol {
				break
			}
		}
		res.Components.SetRow(k, v)
		res.Explained[k] = lambda
		// Deflate: C ← C − λ·v·vᵀ.
		for i := 0; i < d; i++ {
			ci := cov.Row(i)
			for j := 0; j < d; j++ {
				ci[j] -= lambda * v[i] * v[j]
			}
		}
	}
	return res, nil
}

// Transform projects X (n×d) onto the fitted components, returning n×k.
func (r *Result) Transform(X *tensor.Matrix) *tensor.Matrix {
	k := r.Components.Rows
	out := tensor.New(X.Rows, k)
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		centered := make([]float64, len(row))
		for j := range row {
			centered[j] = row[j] - r.Mean.Data[j]
		}
		for c := 0; c < k; c++ {
			out.Set(i, c, tensor.DotVec(centered, r.Components.Row(c)))
		}
	}
	return out
}

func normalize(v []float64) {
	n := tensor.L2NormVec(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func matVec(m *tensor.Matrix, v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = tensor.DotVec(m.Row(i), v)
	}
	return out
}

// ScatterASCII renders a 2-D point cloud as an ASCII grid with per-point
// labels (e.g. community ids as digits). Points beyond the plot are
// clamped to the border. Intended for terminal-friendly visualization of
// embedding projections.
func ScatterASCII(points *tensor.Matrix, labels []byte, width, height int) (string, error) {
	if points.Cols != 2 {
		return "", fmt.Errorf("pca: ScatterASCII needs 2-D points, got %d-D", points.Cols)
	}
	if len(labels) != points.Rows {
		return "", fmt.Errorf("pca: %d labels for %d points", len(labels), points.Rows)
	}
	if width < 2 || height < 2 {
		return "", fmt.Errorf("pca: grid %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < points.Rows; i++ {
		x, y := points.At(i, 0), points.At(i, 1)
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for i := 0; i < points.Rows; i++ {
		x := int((points.At(i, 0) - minX) / (maxX - minX) * float64(width-1))
		y := int((points.At(i, 1) - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-y][x] = labels[i]
	}
	out := make([]byte, 0, height*(width+1))
	for _, row := range grid {
		out = append(out, row...)
		out = append(out, '\n')
	}
	return string(out), nil
}
