// Package testutil provides deterministic graph fixtures shared by the
// test suites of the baselines, evaluation and experiment packages.
package testutil

import (
	"math/rand"

	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// TwoCommunities returns a temporal graph of 2·half nodes forming two dense
// communities (each an Erdős–Rényi block with probability p) joined by a
// single bridge edge. Timestamps are uniform in [0, 1]. The membership of
// node v is v < half.
func TwoCommunities(half int, p float64, seed int64) *graph.Temporal {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewTemporal(2 * half)
	block := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				if rng.Float64() < p {
					mustAdd(g, graph.NodeID(i), graph.NodeID(j), rng.Float64())
				}
			}
		}
	}
	block(0, half)
	block(half, 2*half)
	mustAdd(g, graph.NodeID(half-1), graph.NodeID(half), 0.5)
	g.Build()
	return g
}

// RandomTemporal returns an Erdős–Rényi style temporal graph with m edge
// attempts over n nodes and uniform timestamps in [0, 1].
func RandomTemporal(n, m int, seed int64) *graph.Temporal {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewTemporal(n)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		mustAdd(g, u, v, rng.Float64())
	}
	g.Build()
	return g
}

func mustAdd(g *graph.Temporal, u, v graph.NodeID, t float64) {
	if err := g.AddEdge(u, v, 1, t); err != nil {
		panic(err)
	}
}

// CommunitySeparation returns (intraMean, interMean) squared Euclidean
// distances of emb rows under the TwoCommunities labeling with the given
// half size.
func CommunitySeparation(emb *tensor.Matrix, half int) (intra, inter float64) {
	var nIntra, nInter int
	n := 2 * half
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := tensor.SqDistVec(emb.Row(i), emb.Row(j))
			if (i < half) == (j < half) {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	return intra / float64(nIntra), inter / float64(nInter)
}

// CommunityScoreSeparation is CommunitySeparation but with dot-product
// scores (higher = more similar), returning (intraMean, interMean).
func CommunityScoreSeparation(emb *tensor.Matrix, half int) (intra, inter float64) {
	var nIntra, nInter int
	n := 2 * half
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := tensor.DotVec(emb.Row(i), emb.Row(j))
			if (i < half) == (j < half) {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	return intra / float64(nIntra), inter / float64(nInter)
}
