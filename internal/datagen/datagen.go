// Package datagen generates synthetic temporal networks standing in for
// the paper's four datasets (Table I), which are not redistributable here.
// Each generator reproduces the structural family and — crucially — the
// temporal signal EHNA exploits: new edges form preferentially inside
// recent historical neighborhoods (recency-biased triadic closure, repeat
// interactions), so relevant nodes in a target's history genuinely predict
// its future edges.
//
//	Social   — Digg-like friendship graph: preferential attachment +
//	           recency-biased triadic closure.
//	Review   — Yelp-like user↔business bipartite graph with Zipf business
//	           popularity and repeat visits guided by recent co-reviewers.
//	Purchase — Tmall-like user↔item bipartite graph whose event density
//	           bursts near the end of the window ("Double 11").
//	Coauthor — DBLP-like collaboration graph: papers are team cliques drawn
//	           from communities with strong repeat-collaborator preference.
//
// All timestamps are in [0, 1] and the returned graphs are built.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/graph"
)

// SocialConfig parameterizes the Digg-like generator.
type SocialConfig struct {
	Nodes   int
	Edges   int
	Closure float64 // probability a new edge closes a triangle through a recent neighbor
	Seed    int64
}

// DefaultSocialConfig returns a laptop-scale Digg analogue.
func DefaultSocialConfig() SocialConfig {
	return SocialConfig{Nodes: 2000, Edges: 12000, Closure: 0.5, Seed: 11}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c SocialConfig) Validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("datagen: Social needs ≥ 3 nodes, got %d", c.Nodes)
	}
	if c.Edges < c.Nodes {
		return fmt.Errorf("datagen: Social needs Edges ≥ Nodes (%d < %d)", c.Edges, c.Nodes)
	}
	if c.Closure < 0 || c.Closure > 1 {
		return fmt.Errorf("datagen: Closure %g outside [0,1]", c.Closure)
	}
	return nil
}

// Social generates the Digg-like friendship network.
func Social(cfg SocialConfig) (*graph.Temporal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewTemporal(cfg.Nodes)
	// Recent adjacency memory: last few neighbors per node, newest last.
	recent := make([][]graph.NodeID, cfg.Nodes)
	degree := make([]int, cfg.Nodes)
	// Repeated-degree list for preferential attachment draws.
	var prefPool []graph.NodeID
	// Friendship edges are unique; track pairs locally since the graph is
	// queryable only after Build.
	seen := make(map[uint64]bool, cfg.Edges)
	pairKey := func(u, v graph.NodeID) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}

	connect := func(u, v graph.NodeID, t float64) {
		if u == v || int(u) >= cfg.Nodes || int(v) >= cfg.Nodes {
			return
		}
		if seen[pairKey(u, v)] {
			return
		}
		if err := g.AddEdge(u, v, 1, t); err != nil {
			return
		}
		seen[pairKey(u, v)] = true
		degree[u]++
		degree[v]++
		prefPool = append(prefPool, u, v)
		const memory = 8
		recent[u] = append(recent[u], v)
		if len(recent[u]) > memory {
			recent[u] = recent[u][1:]
		}
		recent[v] = append(recent[v], u)
		if len(recent[v]) > memory {
			recent[v] = recent[v][1:]
		}
	}

	// Seed ring so every node joins a connected backbone as it "arrives".
	added := 0
	for i := 0; i < cfg.Nodes && added < cfg.Edges; i++ {
		t := float64(added) / float64(cfg.Edges)
		j := (i + 1) % cfg.Nodes
		connect(graph.NodeID(i), graph.NodeID(j), t)
		added++
	}
	for added < cfg.Edges {
		t := float64(added) / float64(cfg.Edges)
		// Active node: bias toward recently active ids (later arrivals are
		// drawn uniformly; activity recency comes from the closure step).
		u := graph.NodeID(rng.Intn(cfg.Nodes))
		var v graph.NodeID
		if rng.Float64() < cfg.Closure && len(recent[u]) > 0 {
			// Triadic closure through a RECENT neighbor's RECENT neighbor:
			// the temporal signal EHNA's walks should pick up.
			w := recent[u][len(recent[u])-1-rng.Intn(min(3, len(recent[u])))]
			if len(recent[w]) > 0 {
				v = recent[w][len(recent[w])-1-rng.Intn(min(3, len(recent[w])))]
			} else {
				v = w
			}
		} else if len(prefPool) > 0 {
			v = prefPool[rng.Intn(len(prefPool))]
		} else {
			v = graph.NodeID(rng.Intn(cfg.Nodes))
		}
		if u == v || seen[pairKey(u, v)] {
			// Densification attempt failed; fall back to a random pair so
			// the generator always terminates.
			v = graph.NodeID(rng.Intn(cfg.Nodes))
			if u == v {
				continue
			}
		}
		connect(u, v, t)
		added++
	}
	g.Build()
	g.NormalizeTimes()
	return g, nil
}

// BipartiteConfig parameterizes the Yelp-like and Tmall-like generators.
type BipartiteConfig struct {
	Users  int
	Items  int // businesses (Yelp) or items (Tmall)
	Events int
	// Burst concentrates this fraction of events into the last tenth of
	// the time window (Tmall's "Double 11"); 0 spreads events uniformly.
	Burst float64
	// Repeat is the probability a user interacts again within the
	// 2-hop neighborhood of their recent history (temporal signal).
	Repeat float64
	Seed   int64
}

// DefaultReviewConfig returns a laptop-scale Yelp analogue.
func DefaultReviewConfig() BipartiteConfig {
	return BipartiteConfig{Users: 1500, Items: 500, Events: 12000, Burst: 0, Repeat: 0.4, Seed: 13}
}

// DefaultPurchaseConfig returns a laptop-scale Tmall analogue.
func DefaultPurchaseConfig() BipartiteConfig {
	return BipartiteConfig{Users: 1500, Items: 700, Events: 14000, Burst: 0.5, Repeat: 0.35, Seed: 17}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c BipartiteConfig) Validate() error {
	if c.Users < 2 || c.Items < 2 {
		return fmt.Errorf("datagen: bipartite needs ≥ 2 users and items (got %d, %d)", c.Users, c.Items)
	}
	if c.Events < 1 {
		return fmt.Errorf("datagen: Events %d < 1", c.Events)
	}
	if c.Burst < 0 || c.Burst > 1 {
		return fmt.Errorf("datagen: Burst %g outside [0,1]", c.Burst)
	}
	if c.Repeat < 0 || c.Repeat > 1 {
		return fmt.Errorf("datagen: Repeat %g outside [0,1]", c.Repeat)
	}
	return nil
}

// Bipartite generates a user↔item interaction network. Users occupy ids
// [0, Users); items occupy [Users, Users+Items).
func Bipartite(cfg BipartiteConfig) (*graph.Temporal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Users + cfg.Items
	g := graph.NewTemporal(n)
	// Zipf item popularity.
	itemWeights := make([]float64, cfg.Items)
	for i := range itemWeights {
		itemWeights[i] = 1 / math.Pow(float64(i+1), 1.1)
	}
	itemCum := cumulative(itemWeights)
	// Recent items per user and recent users per item (for 2-hop repeats).
	recentItems := make([][]graph.NodeID, cfg.Users)
	recentUsers := make([][]graph.NodeID, cfg.Items)

	for ev := 0; ev < cfg.Events; ev++ {
		var t float64
		if rng.Float64() < cfg.Burst {
			t = 0.9 + 0.1*rng.Float64() // the burst window
		} else {
			t = rng.Float64() * 0.9
		}
		u := rng.Intn(cfg.Users)
		var item int
		if rng.Float64() < cfg.Repeat && len(recentItems[u]) > 0 {
			// Revisit an item reachable through recent history: either a
			// recently visited item, or an item recently visited by a user
			// who shares a recent item with u (2-hop).
			base := recentItems[u][len(recentItems[u])-1-rng.Intn(min(3, len(recentItems[u])))]
			peers := recentUsers[int(base)-cfg.Users]
			if len(peers) > 0 && rng.Intn(2) == 0 {
				peer := peers[len(peers)-1-rng.Intn(min(3, len(peers)))]
				if pi := recentItems[peer]; len(pi) > 0 {
					base = pi[len(pi)-1-rng.Intn(min(3, len(pi)))]
				}
			}
			item = int(base) - cfg.Users
		} else {
			item = searchCum(itemCum, rng.Float64()*itemCum[len(itemCum)-1])
		}
		uid := graph.NodeID(u)
		iid := graph.NodeID(cfg.Users + item)
		if err := g.AddEdge(uid, iid, 1, t); err != nil {
			continue
		}
		const memory = 6
		recentItems[u] = append(recentItems[u], iid)
		if len(recentItems[u]) > memory {
			recentItems[u] = recentItems[u][1:]
		}
		recentUsers[item] = append(recentUsers[item], uid)
		if len(recentUsers[item]) > memory {
			recentUsers[item] = recentUsers[item][1:]
		}
	}
	g.Build()
	g.NormalizeTimes()
	return g, nil
}

// CoauthorConfig parameterizes the DBLP-like generator.
type CoauthorConfig struct {
	Authors     int
	Papers      int
	Communities int
	TeamMin     int
	TeamMax     int
	// RepeatCollab is the probability each teammate is drawn from the
	// lead author's previous collaborators rather than their community.
	RepeatCollab float64
	// Mixing is the probability a teammate comes from a foreign community.
	Mixing float64
	Seed   int64
}

// DefaultCoauthorConfig returns a laptop-scale DBLP analogue.
func DefaultCoauthorConfig() CoauthorConfig {
	return CoauthorConfig{
		Authors: 1500, Papers: 4000, Communities: 20,
		TeamMin: 2, TeamMax: 4, RepeatCollab: 0.45, Mixing: 0.05, Seed: 19,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c CoauthorConfig) Validate() error {
	if c.Authors < 4 {
		return fmt.Errorf("datagen: Coauthor needs ≥ 4 authors, got %d", c.Authors)
	}
	if c.Papers < 1 {
		return fmt.Errorf("datagen: Papers %d < 1", c.Papers)
	}
	if c.Communities < 1 || c.Communities > c.Authors {
		return fmt.Errorf("datagen: Communities %d outside [1, Authors]", c.Communities)
	}
	if c.TeamMin < 2 || c.TeamMax < c.TeamMin {
		return fmt.Errorf("datagen: team size range [%d, %d] invalid", c.TeamMin, c.TeamMax)
	}
	if c.RepeatCollab < 0 || c.RepeatCollab > 1 || c.Mixing < 0 || c.Mixing > 1 {
		return fmt.Errorf("datagen: probabilities outside [0,1]")
	}
	return nil
}

// Coauthor generates the DBLP-like collaboration network: each paper adds
// a clique among its team at the paper's timestamp.
func Coauthor(cfg CoauthorConfig) (*graph.Temporal, error) {
	g, _, err := CoauthorLabeled(cfg)
	return g, err
}

// CoauthorLabeled is Coauthor but also returns each author's community id
// (ground-truth labels for the node-classification application the paper's
// introduction motivates).
func CoauthorLabeled(cfg CoauthorConfig) (*graph.Temporal, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewTemporal(cfg.Authors)
	community := make([]int, cfg.Authors)
	members := make([][]graph.NodeID, cfg.Communities)
	for a := 0; a < cfg.Authors; a++ {
		c := rng.Intn(cfg.Communities)
		community[a] = c
		members[c] = append(members[c], graph.NodeID(a))
	}
	collaborators := make([][]graph.NodeID, cfg.Authors)

	for p := 0; p < cfg.Papers; p++ {
		t := float64(p) / float64(cfg.Papers) // papers in chronological order
		lead := graph.NodeID(rng.Intn(cfg.Authors))
		size := cfg.TeamMin + rng.Intn(cfg.TeamMax-cfg.TeamMin+1)
		team := []graph.NodeID{lead}
		for len(team) < size {
			var cand graph.NodeID
			switch {
			case rng.Float64() < cfg.RepeatCollab && len(collaborators[lead]) > 0:
				cs := collaborators[lead]
				cand = cs[len(cs)-1-rng.Intn(min(5, len(cs)))] // recent collaborators preferred
			case rng.Float64() < cfg.Mixing:
				cand = graph.NodeID(rng.Intn(cfg.Authors))
			default:
				home := members[community[lead]]
				if len(home) < 2 {
					cand = graph.NodeID(rng.Intn(cfg.Authors))
				} else {
					cand = home[rng.Intn(len(home))]
				}
			}
			dup := false
			for _, m := range team {
				if m == cand {
					dup = true
					break
				}
			}
			if !dup {
				team = append(team, cand)
			}
		}
		for i := 0; i < len(team); i++ {
			for j := i + 1; j < len(team); j++ {
				if err := g.AddEdge(team[i], team[j], 1, t); err != nil {
					continue
				}
				collaborators[team[i]] = append(collaborators[team[i]], team[j])
				collaborators[team[j]] = append(collaborators[team[j]], team[i])
			}
		}
	}
	g.Build()
	g.NormalizeTimes()
	return g, community, nil
}

// Dataset names the four paper datasets for harness lookups.
type Dataset string

// The four dataset analogues of Table I.
const (
	Digg  Dataset = "Digg"
	Yelp  Dataset = "Yelp"
	Tmall Dataset = "Tmall"
	DBLP  Dataset = "DBLP"
)

// AllDatasets lists the analogues in the paper's presentation order.
var AllDatasets = []Dataset{Digg, Yelp, Tmall, DBLP}

// Scale shrinks or grows the default generator sizes by factor f (node and
// event counts multiplied by f, minimums enforced).
type Scale float64

// Generate builds the analogue of the named dataset at the given scale
// with the given seed (0 keeps each generator's default seed).
func Generate(d Dataset, scale Scale, seed int64) (*graph.Temporal, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: scale %g must be positive", float64(scale))
	}
	s := float64(scale)
	mul := func(base, minimum int) int {
		v := int(float64(base) * s)
		if v < minimum {
			v = minimum
		}
		return v
	}
	switch d {
	case Digg:
		cfg := DefaultSocialConfig()
		cfg.Nodes = mul(cfg.Nodes, 10)
		cfg.Edges = mul(cfg.Edges, 20)
		if seed != 0 {
			cfg.Seed = seed
		}
		return Social(cfg)
	case Yelp:
		cfg := DefaultReviewConfig()
		cfg.Users = mul(cfg.Users, 10)
		cfg.Items = mul(cfg.Items, 5)
		cfg.Events = mul(cfg.Events, 30)
		if seed != 0 {
			cfg.Seed = seed
		}
		return Bipartite(cfg)
	case Tmall:
		cfg := DefaultPurchaseConfig()
		cfg.Users = mul(cfg.Users, 10)
		cfg.Items = mul(cfg.Items, 5)
		cfg.Events = mul(cfg.Events, 30)
		if seed != 0 {
			cfg.Seed = seed
		}
		return Bipartite(cfg)
	case DBLP:
		cfg := DefaultCoauthorConfig()
		cfg.Authors = mul(cfg.Authors, 10)
		cfg.Papers = mul(cfg.Papers, 10)
		if seed != 0 {
			cfg.Seed = seed
		}
		return Coauthor(cfg)
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", string(d))
	}
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var s float64
	for i, v := range w {
		s += v
		out[i] = s
	}
	return out
}

func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
