package datagen

import (
	"testing"

	"ehna/internal/graph"
)

func TestSocialConfigValidate(t *testing.T) {
	if err := DefaultSocialConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SocialConfig{
		{Nodes: 2, Edges: 10, Closure: 0.5},
		{Nodes: 10, Edges: 5, Closure: 0.5},
		{Nodes: 10, Edges: 20, Closure: -0.1},
		{Nodes: 10, Edges: 20, Closure: 1.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSocialGeneration(t *testing.T) {
	cfg := SocialConfig{Nodes: 100, Edges: 600, Closure: 0.5, Seed: 1}
	g, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatal("node count")
	}
	if g.NumEdges() < 500 {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
	lo, hi, ok := g.TimeSpan()
	if !ok || lo != 0 || hi != 1 {
		t.Fatalf("time span %g..%g", lo, hi)
	}
	// No isolated nodes: the backbone ring touches everyone.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) == 0 {
			t.Fatalf("node %d isolated", v)
		}
	}
}

func TestSocialDeterministic(t *testing.T) {
	cfg := SocialConfig{Nodes: 50, Edges: 200, Closure: 0.4, Seed: 7}
	a, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for i, e := range a.Edges() {
		if e != b.Edges()[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestSocialHasTriangles(t *testing.T) {
	// Closure must actually create triangles well above the random rate.
	g, err := Social(SocialConfig{Nodes: 200, Edges: 1500, Closure: 0.6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	triangles := 0
	for v := 0; v < g.NumNodes(); v++ {
		adj := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if adj[i].To != adj[j].To && g.HasEdge(adj[i].To, adj[j].To) {
					triangles++
				}
			}
		}
	}
	if triangles < 100 {
		t.Fatalf("only %d triangle paths; closure not working", triangles)
	}
}

func TestBipartiteConfigValidate(t *testing.T) {
	if err := DefaultReviewConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultPurchaseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BipartiteConfig{
		{Users: 1, Items: 5, Events: 10},
		{Users: 5, Items: 1, Events: 10},
		{Users: 5, Items: 5, Events: 0},
		{Users: 5, Items: 5, Events: 10, Burst: 2},
		{Users: 5, Items: 5, Events: 10, Repeat: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestBipartiteStructure(t *testing.T) {
	cfg := BipartiteConfig{Users: 60, Items: 20, Events: 500, Repeat: 0.4, Seed: 3}
	g, err := Bipartite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 80 {
		t.Fatal("node count")
	}
	// Strict bipartiteness: every edge connects a user to an item.
	for _, e := range g.Edges() {
		uIsUser := int(e.U) < cfg.Users
		vIsUser := int(e.V) < cfg.Users
		if uIsUser == vIsUser {
			t.Fatalf("edge (%d,%d) violates bipartiteness", e.U, e.V)
		}
	}
}

func TestBipartiteBurstConcentratesEvents(t *testing.T) {
	noBurst, err := Bipartite(BipartiteConfig{Users: 100, Items: 30, Events: 2000, Burst: 0, Repeat: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Bipartite(BipartiteConfig{Users: 100, Items: 30, Events: 2000, Burst: 0.6, Repeat: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lateFrac := func(g *graph.Temporal) float64 {
		late := 0
		for _, e := range g.Edges() {
			if e.Time > 0.85 {
				late++
			}
		}
		return float64(late) / float64(g.NumEdges())
	}
	if lateFrac(burst) < 2*lateFrac(noBurst) {
		t.Fatalf("burst %.3f vs uniform %.3f: burst not concentrated", lateFrac(burst), lateFrac(noBurst))
	}
}

func TestBipartiteZipfPopularity(t *testing.T) {
	g, err := Bipartite(BipartiteConfig{Users: 200, Items: 50, Events: 3000, Repeat: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Item 0 (most popular) must exceed the last item's degree clearly.
	first := g.Degree(graph.NodeID(200))
	last := g.Degree(graph.NodeID(249))
	if first <= 2*last {
		t.Fatalf("popularity not skewed: first %d last %d", first, last)
	}
}

func TestCoauthorConfigValidate(t *testing.T) {
	if err := DefaultCoauthorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CoauthorConfig{
		{Authors: 2, Papers: 5, Communities: 1, TeamMin: 2, TeamMax: 3},
		{Authors: 10, Papers: 0, Communities: 1, TeamMin: 2, TeamMax: 3},
		{Authors: 10, Papers: 5, Communities: 0, TeamMin: 2, TeamMax: 3},
		{Authors: 10, Papers: 5, Communities: 2, TeamMin: 1, TeamMax: 3},
		{Authors: 10, Papers: 5, Communities: 2, TeamMin: 3, TeamMax: 2},
		{Authors: 10, Papers: 5, Communities: 2, TeamMin: 2, TeamMax: 3, RepeatCollab: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestCoauthorGeneration(t *testing.T) {
	cfg := CoauthorConfig{
		Authors: 100, Papers: 300, Communities: 5,
		TeamMin: 2, TeamMax: 4, RepeatCollab: 0.4, Mixing: 0.05, Seed: 6,
	}
	g, err := Coauthor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatal("node count")
	}
	if g.NumEdges() < 300 {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
	// Papers are chronological: edge list sorted by construction.
	es := g.Edges()
	for i := 1; i < len(es); i++ {
		if es[i].Time < es[i-1].Time {
			t.Fatal("paper timestamps out of order")
		}
	}
}

func TestCoauthorRepeatCollaborations(t *testing.T) {
	// With strong repeat preference, parallel edges (repeat co-authorships)
	// must appear.
	g, err := Coauthor(CoauthorConfig{
		Authors: 60, Papers: 400, Communities: 4,
		TeamMin: 2, TeamMax: 3, RepeatCollab: 0.7, Mixing: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ a, b graph.NodeID }
	counts := map[pair]int{}
	repeats := 0
	for _, e := range g.Edges() {
		p := pair{e.U, e.V}
		if e.U > e.V {
			p = pair{e.V, e.U}
		}
		counts[p]++
		if counts[p] == 2 {
			repeats++
		}
	}
	if repeats < 10 {
		t.Fatalf("only %d repeated collaborations", repeats)
	}
}

func TestGenerateAllDatasets(t *testing.T) {
	for _, d := range AllDatasets {
		g, err := Generate(d, 0.05, 99)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d)
		}
		lo, hi, ok := g.TimeSpan()
		if !ok || lo < 0 || hi > 1 {
			t.Fatalf("%s: time span %g..%g", d, lo, hi)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Digg, 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Generate(Dataset("Nope"), 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCoauthorLabeled(t *testing.T) {
	cfg := CoauthorConfig{
		Authors: 80, Papers: 200, Communities: 4,
		TeamMin: 2, TeamMax: 3, RepeatCollab: 0.3, Mixing: 0.05, Seed: 8,
	}
	g, labels, err := CoauthorLabeled(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 80 {
		t.Fatalf("%d labels", len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
	// Labels must be consistent with the generator: intra-community edges
	// dominate (mixing is 5%).
	intra, total := 0, 0
	for _, e := range g.Edges() {
		total++
		if labels[e.U] == labels[e.V] {
			intra++
		}
	}
	if float64(intra)/float64(total) < 0.6 {
		t.Fatalf("only %d/%d intra-community edges; labels inconsistent", intra, total)
	}
	// Coauthor (unlabeled) must generate the identical graph.
	g2, err := Coauthor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("labeled and unlabeled generators diverged")
	}
}
