package ann

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"ehna/internal/embstore"
	"ehna/internal/tensor"
)

// buildStore loads n random dim-dimensional vectors into an F64 store.
func buildStore(t testing.TB, n, dim int) *embstore.Store {
	t.Helper()
	return buildStoreAt(t, n, dim, embstore.F64)
}

// buildStoreAt loads n random dim-dimensional vectors into a store of
// the given slab precision.
func buildStoreAt(t testing.TB, n, dim int, prec embstore.Precision) *embstore.Store {
	t.Helper()
	emb := tensor.Randn(n, dim, 1, rand.New(rand.NewSource(7)))
	s, err := embstore.FromMatrixPrecision(emb, embstore.DefaultShards, prec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// coldStoreOf snapshots src into a flat v3 file and reopens it as an
// mmap-backed cold store, so the alloc tests can assert the re-rank
// path stays allocation-free when vectors come from the mapping.
func coldStoreOf(t *testing.T, src *embstore.Store) *embstore.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveSnapshotV3(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cold, _, err := embstore.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cold.Close() })
	return cold
}

// TestSearchIntoZeroAlloc asserts the single-query path of every index
// type is allocation-free in steady state at every slab precision —
// over heap slabs and (where mmap exists) over a mapped cold base, so
// the asymmetric re-rank reading vectors straight from the mapping is
// covered too. Scratch (including the narrowed/quantized query
// context) comes from the pool, results land in the caller's buffer.
// GOMAXPROCS is pinned to 1 so Exact takes its sequential path (the
// parallel fan-out necessarily allocates goroutine closures), and GC
// is paused so the scratch pool cannot be emptied mid-measurement.
func TestSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	q := make([]float64, 32)
	for i := range q {
		q[i] = float64(i%5) - 2
	}
	const k = 10

	// A cancelable context (not Background) so the cooperative
	// cancellation polls run with a live Done channel — the guarantee
	// must hold for real request contexts, not just the nil-channel
	// short circuit. Done() is materialized once, outside the loop.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx.Done()

	for _, prec := range []embstore.Precision{embstore.F64, embstore.F32, embstore.SQ8} {
		ram := buildStoreAt(t, 2000, 32, prec)
		backings := []struct {
			name  string
			store *embstore.Store
		}{{"ram", ram}}
		if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
			backings = append(backings, struct {
				name  string
				store *embstore.Store
			}{"mmap", coldStoreOf(t, ram)})
		}
		for _, b := range backings {
			store := b.store
			exact := NewExact(store, Cosine)
			lsh, err := NewLSH(store, DefaultLSHConfig())
			if err != nil {
				t.Fatal(err)
			}
			hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
			if err != nil {
				t.Fatal(err)
			}
			for name, idx := range map[string]Index{"exact": exact, "lsh": lsh, "hnsw": hnsw} {
				dst := make([]Result, 0, k)
				// Warm the scratch pool and result buffers.
				for i := 0; i < 3; i++ {
					if dst, err = idx.SearchInto(ctx, dst, q, k); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(100, func() {
					var err error
					dst, err = idx.SearchInto(ctx, dst, q, k)
					if err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s/%s/%s SearchInto allocated %v times per query", name, prec, b.name, allocs)
				}
				if len(dst) != k {
					t.Errorf("%s/%s/%s SearchInto returned %d results, want %d", name, prec, b.name, len(dst), k)
				}
			}
		}
	}
}

// TestSearchIntoMatchesSearch checks the buffered path returns exactly
// what the allocating path returns, for every index type at every slab
// precision.
func TestSearchIntoMatchesSearch(t *testing.T) {
	for _, prec := range []embstore.Precision{embstore.F64, embstore.F32, embstore.SQ8} {
		store := buildStoreAt(t, 500, 16, prec)
		lsh, err := NewLSH(store, DefaultLSHConfig())
		if err != nil {
			t.Fatal(err)
		}
		hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
		if err != nil {
			t.Fatal(err)
		}
		for name, idx := range map[string]Index{
			"exact": NewExact(store, Cosine),
			"lsh":   lsh,
			"hnsw":  hnsw,
		} {
			for qi := 0; qi < 10; qi++ {
				q := make([]float64, 16)
				rng := rand.New(rand.NewSource(int64(qi)))
				for i := range q {
					q[i] = rng.NormFloat64()
				}
				want, err := idx.Search(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				got, err := idx.SearchInto(context.Background(), make([]Result, 3), q, 7)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s q%d: %d results vs %d", name, prec, qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s q%d result %d: %+v vs %+v", name, prec, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}
