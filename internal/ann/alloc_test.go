package ann

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"ehna/internal/embstore"
	"ehna/internal/tensor"
)

// buildStore loads n random dim-dimensional vectors into a store.
func buildStore(t testing.TB, n, dim int) *embstore.Store {
	t.Helper()
	emb := tensor.Randn(n, dim, 1, rand.New(rand.NewSource(7)))
	s, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSearchIntoZeroAlloc asserts the single-query path of both index
// types is allocation-free in steady state: scratch comes from the
// pool, results land in the caller's buffer. GOMAXPROCS is pinned to 1
// so Exact takes its sequential path (the parallel fan-out necessarily
// allocates goroutine closures), and GC is paused so the scratch pool
// cannot be emptied mid-measurement.
func TestSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	store := buildStore(t, 2000, 32)
	q := make([]float64, 32)
	for i := range q {
		q[i] = float64(i%5) - 2
	}
	const k = 10

	exact := NewExact(store, Cosine)
	lsh, err := NewLSH(store, DefaultLSHConfig())
	if err != nil {
		t.Fatal(err)
	}
	hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string]Index{"exact": exact, "lsh": lsh, "hnsw": hnsw} {
		dst := make([]Result, 0, k)
		// Warm the scratch pool and result buffers.
		for i := 0; i < 3; i++ {
			if dst, err = idx.SearchInto(dst, q, k); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			var err error
			dst, err = idx.SearchInto(dst, q, k)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s SearchInto allocated %v times per query", name, allocs)
		}
		if len(dst) != k {
			t.Errorf("%s SearchInto returned %d results, want %d", name, len(dst), k)
		}
	}
}

// TestSearchIntoMatchesSearch checks the buffered path returns exactly
// what the allocating path returns, for every index type.
func TestSearchIntoMatchesSearch(t *testing.T) {
	store := buildStore(t, 500, 16)
	lsh, err := NewLSH(store, DefaultLSHConfig())
	if err != nil {
		t.Fatal(err)
	}
	hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string]Index{
		"exact": NewExact(store, Cosine),
		"lsh":   lsh,
		"hnsw":  hnsw,
	} {
		for qi := 0; qi < 10; qi++ {
			q := make([]float64, 16)
			rng := rand.New(rand.NewSource(int64(qi)))
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			want, err := idx.Search(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, err := idx.SearchInto(make([]Result, 3), q, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s q%d: %d results vs %d", name, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s q%d result %d: %+v vs %+v", name, qi, i, got[i], want[i])
				}
			}
		}
	}
}
