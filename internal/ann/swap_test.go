package ann

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ehna/internal/graph"
)

// TestSwapperDelegates: the wrapper is a faithful Index — same
// results, same metric, mutations visible.
func TestSwapperDelegates(t *testing.T) {
	store := buildStore(t, 300, 8)
	h, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(h)
	if sw.Metric() != h.Metric() {
		t.Fatal("metric not delegated")
	}
	q, _ := store.Get(5)
	want, err := h.Search(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw.Search(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	vec := make([]float64, 8)
	vec[0] = 42
	if err := sw.Add(9000, vec); err != nil {
		t.Fatal(err)
	}
	top, err := sw.Search(vec, 1)
	if err != nil || len(top) != 1 || top[0].ID != 9000 {
		t.Fatalf("added vector not found: %v %v", top, err)
	}
	if !sw.Remove(9000) {
		t.Fatal("remove of present id reported false")
	}
	batches, err := sw.SearchBatch(context.Background(), [][]float64{q, vec}, 3)
	if err != nil || len(batches) != 2 {
		t.Fatalf("batch: %v %v", batches, err)
	}
}

// TestCompactReclaimsAllTombstones: churn a graph until it is mostly
// tombstones, compact, and check the new graph has zero tombstones,
// indexes exactly the store, and still answers correctly.
func TestCompactReclaimsAllTombstones(t *testing.T) {
	store := buildStore(t, 500, 8)
	h, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(h)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		id := graph.NodeID(rng.Intn(500))
		if rng.Float64() < 0.5 {
			sw.Remove(id)
		} else {
			vec := make([]float64, 8)
			for j := range vec {
				vec[j] = rng.NormFloat64()
			}
			if err := sw.Add(id, vec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, tombs, _ := h.Stats(); tombs == 0 {
		t.Fatal("churn produced no tombstones; test is vacuous")
	}
	if h.TombstoneRatio() <= 0 {
		t.Fatal("tombstone ratio not positive after churn")
	}

	next, err := sw.CompactHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sw.Current().(*HNSW); !ok || got != next {
		t.Fatal("compacted index not promoted")
	}
	alive, tombs, _ := next.Stats()
	if tombs != 0 {
		t.Fatalf("%d tombstones after compaction, want 0", tombs)
	}
	if alive != store.Len() {
		t.Fatalf("compacted graph indexes %d nodes, store holds %d", alive, store.Len())
	}
	if sw.Rebuilds() != 1 {
		t.Fatalf("rebuild count %d, want 1", sw.Rebuilds())
	}
	// Every stored vector must be findable as its own nearest neighbor.
	for _, id := range store.IDs()[:50] {
		q, _ := store.Get(id)
		top, err := sw.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 1 || top[0].ID != id {
			t.Fatalf("node %d not its own nearest neighbor after compaction: %v", id, top)
		}
	}
}

// TestCompactRefusesConcurrentRebuild: the second compaction must fail
// fast, not corrupt the first.
func TestCompactRefusesConcurrentRebuild(t *testing.T) {
	store := buildStore(t, 200, 8)
	h, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(h)
	sw.mu.Lock()
	sw.rebuilding = true
	sw.mu.Unlock()
	if _, err := sw.CompactHNSW(store, DefaultHNSWConfig()); err != ErrRebuildInProgress {
		t.Fatalf("concurrent rebuild error = %v, want ErrRebuildInProgress", err)
	}
	sw.mu.Lock()
	sw.rebuilding = false
	sw.mu.Unlock()
	if _, err := sw.CompactHNSW(store, DefaultHNSWConfig()); err != nil {
		t.Fatalf("rebuild after release: %v", err)
	}
}

// churnIDBase keeps churned ids disjoint from the stable set whose
// ground truth the soak test pins at start: searchers filter churn ids
// out of a widened result list before comparing against the pinned
// truth, so churn vectors can live in-distribution (like real
// embedding updates) without invalidating it.
const churnIDBase = 1 << 20

// TestChurnSoakCompaction is the churn/crash harness's live half:
// concurrent upserts, deletes and searches run while compaction
// rebuilds swap the HNSW index underneath them. Asserts recall@10 on a
// stable query set never drops below 0.9, that a quiesced compaction
// ends with zero tombstones, and that SearchInto is still
// allocation-free after the swap. Run with -race in CI; skipped under
// -short.
func TestChurnSoakCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped under -short")
	}
	const (
		dim     = 16
		stableN = 2000
		queries = 30
		k       = 10
		// Searchers ask for kWide results and drop churn ids before
		// comparing to the pinned stable truth; the headroom absorbs
		// the churn vectors that legitimately rank above stable ones
		// (expected ~kWide x churn fraction, far below the slack).
		kWide     = 4 * k
		minRecall = 0.9
	)
	// Race instrumentation slows HNSW inserts by an order of magnitude
	// and CI may give us very few cores; shrink the store and the
	// build beam so the soak exercises the same interleavings in
	// seconds, not minutes. Churned ids stay a minority of the corpus
	// (~20%): a write stream that continuously replaces most of the
	// graph is a bulk reload, not churn, and is served by a rebuild.
	nStable, churnIDs, efC := stableN, 400, 0 // efC 0 = config default
	if raceEnabled {
		nStable, churnIDs, efC = 300, 60, 60
	}
	store := buildStore(t, nStable, dim)
	cfg := DefaultHNSWConfig()
	if efC > 0 {
		cfg.EfConstruction = efC
	}
	h, err := BuildHNSW(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(h)

	// Ground truth for the stable queries, pinned before any churn
	// exists (the store holds only the never-mutated stable vectors
	// here, so this is exact truth over the stable population).
	exact := NewExact(store, cfg.Metric)
	queryVecs := make([][]float64, queries)
	truth := make([][]Result, queries)
	for i := 0; i < queries; i++ {
		q, ok := store.Get(graph.NodeID(i * 7))
		if !ok {
			t.Fatalf("stable query id %d missing", i*7)
		}
		queryVecs[i] = q
		if truth[i], err = exact.Search(q, k); err != nil {
			t.Fatal(err)
		}
	}
	recallOf := func(got, want []Result) float64 {
		hits := 0
		for _, g := range got {
			for _, w := range want {
				if g.ID == w.ID {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(want))
	}

	stop := make(chan struct{})
	var firstErr atomic.Value
	fail := func(format string, args ...any) {
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	var wg sync.WaitGroup

	// Mutators: continuous upsert/delete churn on the disjoint ID range.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if n%16 == 15 {
					// Full-speed mutation on few cores starves the
					// compaction's catch-up; real write load has gaps.
					time.Sleep(time.Millisecond)
				}
				id := graph.NodeID(churnIDBase + rng.Intn(churnIDs))
				if rng.Float64() < 0.4 {
					sw.Remove(id)
					continue
				}
				// In-distribution vectors: churn must look like real
				// embedding updates (a degenerate far-away cluster
				// makes every insert walk a score plateau and can trap
				// beams — a different failure mode than this test's).
				vec := make([]float64, dim)
				for j := range vec {
					vec[j] = rng.NormFloat64()
				}
				if err := sw.Add(id, vec); err != nil {
					fail("churn add: %v", err)
					return
				}
			}
		}(w)
	}

	// Searchers: continuously check that the pinned stable truth stays
	// findable — search wide, drop churn ids, gate on the remainder.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]Result, 0, kWide)
			stable := make([]Result, 0, kWide)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%8 == 7 {
					// Don't starve the rebuild on few-core machines.
					time.Sleep(200 * time.Microsecond)
				}
				qi := (i + w) % queries
				var err error
				dst, err = sw.SearchInto(context.Background(), dst[:0], queryVecs[qi], kWide)
				if err != nil {
					fail("search during churn: %v", err)
					return
				}
				stable = stable[:0]
				for _, r := range dst {
					if r.ID < churnIDBase {
						stable = append(stable, r)
					}
				}
				if r := recallOf(stable, truth[qi]); r < minRecall {
					fail("stable recall@%d dropped to %.3f during churn (query %d, %d churn hits in top-%d)",
						k, r, qi, len(dst)-len(stable), kWide)
					return
				}
			}
		}(w)
	}

	// Foreground: compaction cycles racing the churn above.
	cycles := 3
	if raceEnabled {
		cycles = 2
	}
	for c := 0; c < cycles; c++ {
		if _, err := sw.CompactHNSW(store, cfg); err != nil {
			t.Fatalf("compaction cycle %d: %v", c, err)
		}
		time.Sleep(20 * time.Millisecond) // let churn rebuild a backlog
	}
	close(stop)
	wg.Wait()
	if msg := firstErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Quiesce: delete every churned id, compact once more, and the
	// graph must be tombstone-free and exactly aligned with the store.
	for id := graph.NodeID(churnIDBase); id < graph.NodeID(churnIDBase+churnIDs); id++ {
		sw.Remove(id)
	}
	final, err := sw.CompactHNSW(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alive, tombs, _ := final.Stats()
	if tombs != 0 {
		t.Fatalf("%d tombstones after quiesced compaction, want 0", tombs)
	}
	if alive != store.Len() || alive != nStable {
		t.Fatalf("final graph: %d alive, store %d, want %d", alive, store.Len(), nStable)
	}
	for qi := range queryVecs {
		got, err := sw.Search(queryVecs[qi], k)
		if err != nil {
			t.Fatal(err)
		}
		if r := recallOf(got, truth[qi]); r < minRecall {
			t.Fatalf("recall@%d = %.3f after final compaction (query %d)", k, r, qi)
		}
	}

	// The PR 2/3 bar survives the swap: SearchInto through the Swapper
	// on the compacted graph allocates nothing in steady state.
	if raceEnabled {
		return // race instrumentation allocates; covered by alloc_test builds
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	dst := make([]Result, 0, k)
	for i := 0; i < 3; i++ {
		if dst, err = sw.SearchInto(context.Background(), dst[:0], queryVecs[0], k); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = sw.SearchInto(context.Background(), dst[:0], queryVecs[0], k)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SearchInto allocated %v times per query after index swap", allocs)
	}
}

var _ Index = (*Swapper)(nil)
