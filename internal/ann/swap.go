// Index swapping: the mechanism behind online HNSW tombstone
// compaction. Remove only tombstones graph slots, so a long-lived
// daemon under delete/replace churn accumulates dead slots that slow
// every beam search and bloat snapshots; the only reclamation is a
// rebuild. Swapper makes that rebuild safe to run behind live traffic:
// a fresh graph is built from the store while the old index keeps
// serving, mutations that land during the build are buffered and
// replayed into the new graph (graph-only, so the store is written
// exactly once per mutation), and the new index is promoted with one
// atomic pointer store — searches never block and never miss.
package ann

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ehna/internal/embstore"
	"ehna/internal/graph"
)

// ErrRebuildInProgress is returned by CompactHNSW when a rebuild is
// already running; at most one compaction can be in flight.
var ErrRebuildInProgress = errors.New("ann: index rebuild already in progress")

// swapMutation is one buffered write awaiting replay into a rebuilding
// index. Replay order equals apply order (mutations are serialized
// under the Swapper lock), so the last replayed op per ID matches the
// store's final state.
type swapMutation struct {
	del bool
	id  graph.NodeID
	vec []float64
}

// Swapper wraps an Index, serializing mutations so a background
// rebuild can catch up and atomically replace the index while searches
// keep answering from the old one. The query path is untouched: reads
// go through one atomic pointer load, no lock.
type Swapper struct {
	cur atomic.Pointer[indexBox]

	// mu serializes mutations against each other and against the final
	// catch-up + promote step of a rebuild. Queries never take it.
	mu         sync.Mutex
	rebuilding bool
	pending    []swapMutation

	rebuilds atomic.Int64
	// promoting marks the brief final-drain-and-swap window of a
	// compaction, during which mutations stall behind mu; readiness
	// probes report not-ready while it is set.
	promoting atomic.Bool
}

// indexBox exists because atomic.Pointer needs a concrete pointee type
// to wrap the Index interface value.
type indexBox struct{ idx Index }

// NewSwapper wraps idx.
func NewSwapper(idx Index) *Swapper {
	s := &Swapper{}
	s.cur.Store(&indexBox{idx})
	return s
}

// Current returns the index serving right now. Callers may search it
// directly; mutations must go through the Swapper to stay coherent
// with a concurrent rebuild.
func (s *Swapper) Current() Index { return s.cur.Load().idx }

// Rebuilds reports how many compaction swaps have completed.
func (s *Swapper) Rebuilds() int64 { return s.rebuilds.Load() }

// Promoting reports whether a compaction is inside its final
// drain-and-promote step (mutations briefly blocked).
func (s *Swapper) Promoting() bool { return s.promoting.Load() }

// Metric reports the current index's similarity metric.
func (s *Swapper) Metric() Metric { return s.Current().Metric() }

// Add inserts or replaces a vector through the current index,
// mirroring the mutation into the rebuild buffer when one is running.
func (s *Swapper) Add(id graph.NodeID, vec []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.Current().Add(id, vec); err != nil {
		return err
	}
	if s.rebuilding {
		s.pending = append(s.pending, swapMutation{id: id, vec: append([]float64(nil), vec...)})
	}
	return nil
}

// Remove deletes a vector through the current index, mirroring into
// the rebuild buffer when one is running.
func (s *Swapper) Remove(id graph.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.Current().Remove(id)
	if s.rebuilding {
		s.pending = append(s.pending, swapMutation{del: true, id: id})
	}
	return ok
}

// Search delegates to the current index.
func (s *Swapper) Search(q []float64, k int) ([]Result, error) {
	return s.Current().Search(q, k)
}

// SearchInto delegates to the current index: one atomic load on top of
// the underlying zero-allocation path.
func (s *Swapper) SearchInto(ctx context.Context, dst []Result, q []float64, k int) ([]Result, error) {
	return s.Current().SearchInto(ctx, dst, q, k)
}

// SearchBatch delegates to the current index.
func (s *Swapper) SearchBatch(ctx context.Context, qs [][]float64, k int) ([][]Result, error) {
	return s.Current().SearchBatch(ctx, qs, k)
}

// catchupBatchMax bounds how much of the mutation buffer is drained
// outside the lock per round; when the residue is at or below this,
// the final drain runs under the lock and the swap happens.
const catchupBatchMax = 64

// CompactHNSW rebuilds a fresh HNSW graph over store — reclaiming
// every tombstone — and promotes it. The sequence: buffer mutations
// from now on, bulk-build the new graph from the live store, replay
// buffered mutations into it (graph-only: the live index already wrote
// the store) in rounds until the backlog is small, then briefly block
// mutations for the final replay and the atomic pointer swap. Searches
// are served continuously, by the old graph until the swap and the new
// one after. Returns the promoted graph.
func (s *Swapper) CompactHNSW(store *embstore.Store, cfg HNSWConfig) (*HNSW, error) {
	s.mu.Lock()
	if s.rebuilding {
		s.mu.Unlock()
		return nil, ErrRebuildInProgress
	}
	s.rebuilding = true
	s.pending = s.pending[:0]
	s.mu.Unlock()

	fail := func(err error) (*HNSW, error) {
		s.mu.Lock()
		s.rebuilding = false
		s.pending = nil
		s.mu.Unlock()
		return nil, err
	}
	next, err := NewHNSW(store, cfg)
	if err != nil {
		return fail(err)
	}
	if err := next.Build(); err != nil {
		return fail(fmt.Errorf("ann: compaction rebuild: %w", err))
	}

	// Bound the chase: if mutations arrive faster than replay drains
	// for this many rounds, give up on convergence and do one final
	// (larger) drain under the lock — briefly stalling writers — rather
	// than looping forever behind a writer that never slows down.
	const maxCatchupRounds = 8
	var batch []swapMutation
	for round := 0; ; round++ {
		s.mu.Lock()
		if len(s.pending) <= catchupBatchMax || round >= maxCatchupRounds {
			// Final drain + promote under the lock: after this no mutation
			// can land in the old index only.
			s.promoting.Store(true)
			replayInto(next, s.pending)
			s.pending = nil
			s.rebuilding = false
			s.cur.Store(&indexBox{next})
			s.promoting.Store(false)
			s.mu.Unlock()
			s.rebuilds.Add(1)
			return next, nil
		}
		batch = append(batch[:0], s.pending...)
		s.pending = s.pending[:0]
		s.mu.Unlock()
		replayInto(next, batch)
	}
}

// replayInto applies buffered mutations to a rebuilding graph without
// touching the store (the live index already did).
func replayInto(next *HNSW, ms []swapMutation) {
	for _, m := range ms {
		if m.del {
			next.RemoveFromGraph(m.id)
		} else {
			_ = next.AddToGraph(m.id, m.vec) // graph-only insert never errors
		}
	}
}
