package ann

import (
	"math/rand"
	"testing"

	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// recallVsF64 builds a full-precision ground truth and a compressed
// store over the same embedding matrix, runs nq queries through the
// index mk builds over the compressed store, and returns mean
// recall@10 against exact f64 search.
func recallVsF64(t *testing.T, n, dim, nq int, prec embstore.Precision,
	mk func(*embstore.Store) (Index, error)) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	emb := tensor.Randn(n, dim, 1, rng)
	truthStore, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewExact(truthStore, Cosine)
	compressed, err := embstore.FromMatrixPrecision(emb, embstore.DefaultShards, prec)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := mk(compressed)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	var approx, exact [][]graph.NodeID
	for qi := 0; qi < nq; qi++ {
		q := emb.Row(qi * (n / nq) % n)
		tr, err := truth.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := idx.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact = append(exact, ids(tr))
		approx = append(approx, ids(ar))
	}
	recall, err := eval.MeanRecallAtK(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	return recall
}

// TestSQ8Recall gates the quantized plane end to end: every index type
// searching an sq8 store must keep recall@10 ≥ 0.95 against exact
// full-precision search on isotropic Gaussian vectors (the hardest
// case — real embeddings cluster and recall rises). This is the CI
// quantization smoke (go test -run TestSQ8Recall -short).
func TestSQ8Recall(t *testing.T) {
	const n, dim, nq = 3000, 32, 40
	for name, mk := range map[string]func(*embstore.Store) (Index, error){
		"exact": func(s *embstore.Store) (Index, error) { return NewExact(s, Cosine), nil },
		"lsh":   func(s *embstore.Store) (Index, error) { return NewLSH(s, DefaultLSHConfig()) },
		"hnsw":  func(s *embstore.Store) (Index, error) { return BuildHNSW(s, DefaultHNSWConfig()) },
	} {
		recall := recallVsF64(t, n, dim, nq, embstore.SQ8, mk)
		t.Logf("sq8 %s recall@10 = %.3f", name, recall)
		if recall < 0.95 {
			t.Errorf("sq8 %s recall@10 = %.3f, want ≥ 0.95", name, recall)
		}
	}
}

// TestF32Recall: the float32 plane must be visually indistinguishable
// from full precision (the acceptance bar is within 2 points of f64;
// at this scale exact f32 search should be essentially perfect).
func TestF32Recall(t *testing.T) {
	recall := recallVsF64(t, 3000, 32, 40, embstore.F32, func(s *embstore.Store) (Index, error) {
		return NewExact(s, Cosine), nil
	})
	t.Logf("f32 exact recall@10 = %.3f", recall)
	if recall < 0.98 {
		t.Errorf("f32 exact recall@10 = %.3f, want ≥ 0.98", recall)
	}
}

// TestPrecisionMutability: upsert/delete churn through the Index
// interface works at every precision (the compressed plane is not
// read-only), and searches keep answering through it.
func TestPrecisionMutability(t *testing.T) {
	for _, prec := range []embstore.Precision{embstore.F32, embstore.SQ8} {
		store := buildStoreAt(t, 300, 16, prec)
		lsh, err := NewLSH(store, DefaultLSHConfig())
		if err != nil {
			t.Fatal(err)
		}
		hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(33))
		for name, idx := range map[string]Index{"lsh": lsh, "hnsw": hnsw} {
			for i := 0; i < 50; i++ {
				id := graph.NodeID(rng.Intn(400))
				vec := make([]float64, 16)
				for j := range vec {
					vec[j] = rng.NormFloat64()
				}
				switch rng.Intn(3) {
				case 0:
					if err := idx.Add(id, vec); err != nil {
						t.Fatalf("%s/%s add: %v", name, prec, err)
					}
				case 1:
					idx.Remove(id)
				default:
					rs, err := idx.Search(vec, 5)
					if err != nil {
						t.Fatalf("%s/%s search: %v", name, prec, err)
					}
					if len(rs) == 0 {
						t.Fatalf("%s/%s search returned nothing over a populated store", name, prec)
					}
				}
			}
		}
	}
}
