package ann

import "ehna/internal/obs"

// Search-path metrics, registered on the process-wide registry. Every
// instrument here is touched from SearchInto, so the rules are the
// hot-path rules: package-level pointers resolved at init (no registry
// lookup per query), atomic-only operations (obs.Counter.Inc and
// obs.Histogram.Observe are single atomic adds), zero allocations —
// TestSearchIntoZeroAlloc runs with all of this enabled.
//
// The two stage histograms split a query where the index designs
// split it: "candidates" is generating the candidate set (the full
// scan for exact, table probing + dedup for LSH, the layered beam
// search for HNSW) and "rerank" is ranking it into the final top-k
// (shard-grouped exact scoring for LSH, heap trim — the stage that
// absorbs the sq8-widened beam — for HNSW). The split shows where a
// latency regression lives: kernel/bandwidth cost lands in
// candidates, quantization-widening and top-k cost in rerank.
var (
	annQueriesExact = obs.Default().Counter("ehnad_ann_queries_total",
		"Single-vector queries answered, by index type.", obs.L("index", "exact"))
	annQueriesLSH = obs.Default().Counter("ehnad_ann_queries_total",
		"Single-vector queries answered, by index type.", obs.L("index", "lsh"))
	annQueriesHNSW = obs.Default().Counter("ehnad_ann_queries_total",
		"Single-vector queries answered, by index type.", obs.L("index", "hnsw"))

	annFallbacks = obs.Default().Counter("ehnad_ann_fallback_total",
		"Queries answered by the exact fallback after the primary index starved.")

	annStageExactCand  = annStage("exact", "candidates")
	annStageLSHCand    = annStage("lsh", "candidates")
	annStageLSHRerank  = annStage("lsh", "rerank")
	annStageHNSWCand   = annStage("hnsw", "candidates")
	annStageHNSWRerank = annStage("hnsw", "rerank")
)

func annStage(index, stage string) *obs.Histogram {
	return obs.Default().Histogram("ehnad_ann_stage_seconds",
		"Search-stage latency: candidate generation vs top-k re-rank, by index type.",
		obs.L("index", index), obs.L("stage", stage))
}
