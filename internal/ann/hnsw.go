// Hierarchical Navigable Small World (HNSW, Malkov & Yashunin): a
// multi-layer proximity graph over the embstore. Every vector gets a
// geometrically-distributed top level; upper layers form progressively
// sparser graphs that greedy descent crosses in a few hops, and layer 0
// holds the dense graph a beam search (width efSearch) scans for the
// final candidates. Queries therefore touch O(log n)-ish nodes instead
// of the whole store (Exact) or a bucket union re-rank (LSH) — the
// sublinear query path for 100k+ node stores.
//
// The search hot path holds the PR 2 bar: all per-query state (the
// epoch-stamped visited array, candidate/result heaps, shard-grouping
// buffers) lives in a pooled scratch, the query norm is computed once
// per query, and candidate vectors are read straight out of the
// embstore SoA slabs in shard-grouped batches (one WithShard lock
// acquisition per shard per expansion), so SearchInto is allocation-
// free in steady state.
//
// Mutability: Add inserts online (discovery under the read lock, link
// mutation under the write lock, so concurrent searches keep running
// through an insert's expensive phase); Remove tombstones the slot and
// repairs the hole by cross-linking the victim's neighbors, falling
// back to a fresh entry point when the entry node itself is removed.
// Build inserts a whole store snapshot in parallel with per-worker
// scratch. SaveGraph/LoadHNSWGraph snapshot the graph structure so a
// daemon can boot without paying the build again.
package ann

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"slices"
	"sync"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

// HNSWConfig parameterizes the graph. Recall grows with M (graph
// degree), EfConstruction (build-time beam width) and EfSearch
// (query-time beam width); query cost grows with M and EfSearch, build
// cost with M and EfConstruction.
type HNSWConfig struct {
	// M is the target out-degree per node on layers ≥ 1; layer 0 allows
	// 2M. Default 16. Must be at least 2.
	M int
	// EfConstruction is the beam width used while inserting (default
	// 200). Wider beams find better neighbors and raise recall.
	EfConstruction int
	// EfSearch is the layer-0 beam width at query time (default 64);
	// queries run at max(EfSearch, k). The recall/latency dial.
	EfSearch int
	// Seed fixes the level draws for reproducible builds.
	Seed int64
	// Metric is the similarity the graph is built and searched under
	// (default Cosine).
	Metric Metric
}

// DefaultHNSWConfig returns the configuration used by cmd/ehnad unless
// overridden: M=16, efConstruction=200, efSearch=64 measures recall@10
// ≥ 0.95 against exact search at 100k isotropic Gaussian vectors (the
// hardest case — real embeddings cluster and recall rises).
func DefaultHNSWConfig() HNSWConfig {
	return HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 64, Seed: 1, Metric: Cosine}
}

func (c *HNSWConfig) fill() error {
	if c.M == 0 {
		c.M = 16
	}
	if c.M < 2 || c.M > 128 {
		return fmt.Errorf("ann: hnsw M %d outside [2,128]", c.M)
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return nil
}

// hnswMaxLevel caps the geometric level draw; with M ≥ 2 the chance of
// a legitimate draw this high is ≈ 2^-32.
const hnswMaxLevel = 32

// hnswNode is one graph vertex. Slots are append-only: a node keeps its
// slot for the index's lifetime, so link lists can store bare slot
// numbers. Tombstoned slots (alive=false) keep id for bookkeeping but
// drop their links.
type hnswNode struct {
	id    graph.NodeID
	alive bool
	links [][]uint32 // layer → neighbor slots; len(links) == level+1
}

// HNSW is the graph index over an embstore. The store remains the
// source of truth for vectors; the graph only holds link structure.
// Safe for concurrent use: searches share the read lock, mutations
// take the write lock, and Add holds the write lock only for its cheap
// bookkeeping and link-wiring phases — neighbor discovery (the
// expensive part) runs under the read lock alongside queries.
//
// Invariant: store writes for indexed IDs happen under h.mu, so while
// the read lock is held every alive slot's vector is present in the
// store (lock order is always h.mu → shard lock, matching LSH).
type HNSW struct {
	store    *embstore.Store
	levelMul float64 // 1/ln(M): geometric level distribution parameter
	fallback *Exact

	mu       sync.RWMutex
	cfg      HNSWConfig // EfSearch mutable via SetEfSearch
	nodes    []hnswNode
	slotOf   map[graph.NodeID]uint32 // alive slots only
	entry    int                     // entry-point slot; -1 when empty
	maxLevel int                     // level of entry; -1 when empty
	alive    int
	rng      *rand.Rand // level draws; guarded by mu
}

// NewHNSW returns an empty graph over store. Call Build to index the
// vectors already in the store, or Add them incrementally.
func NewHNSW(store *embstore.Store, cfg HNSWConfig) (*HNSW, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &HNSW{
		store:    store,
		cfg:      cfg,
		levelMul: 1 / math.Log(float64(cfg.M)),
		fallback: NewExact(store, cfg.Metric),
		slotOf:   make(map[graph.NodeID]uint32, store.Len()),
		entry:    -1,
		maxLevel: -1,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// BuildHNSW is NewHNSW followed by Build: the one-call path from a
// loaded store to a queryable graph.
func BuildHNSW(store *embstore.Store, cfg HNSWConfig) (*HNSW, error) {
	h, err := NewHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Build(); err != nil {
		return nil, err
	}
	return h, nil
}

// Config returns the (filled-in) configuration.
func (h *HNSW) Config() HNSWConfig {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.cfg
}

// SetEfSearch adjusts the query-time beam width (ignored if ef ≤ 0) —
// the recall/latency dial, safe to turn on a live index.
func (h *HNSW) SetEfSearch(ef int) {
	if ef <= 0 {
		return
	}
	h.mu.Lock()
	h.cfg.EfSearch = ef
	h.mu.Unlock()
}

// Metric reports the similarity metric.
func (h *HNSW) Metric() Metric { return h.cfg.Metric }

// Len reports the number of live (searchable) nodes in the graph.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.alive
}

// Stats reports graph shape: live nodes, tombstoned slots awaiting a
// rebuild, and the top layer of the hierarchy.
func (h *HNSW) Stats() (alive, tombstones, maxLevel int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.alive, len(h.nodes) - h.alive, h.maxLevel
}

// TombstoneRatio reports the fraction of graph slots occupied by
// tombstones — the number the daemon's maintenance loop compares
// against -compact-at to decide when a rebuild pays for itself. 0 on
// an empty graph.
func (h *HNSW) TombstoneRatio() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.nodes) == 0 {
		return 0
	}
	return float64(len(h.nodes)-h.alive) / float64(len(h.nodes))
}

// maxConn is the per-layer degree cap: 2M on the dense base layer, M
// above it.
func (h *HNSW) maxConn(layer int) int {
	if layer == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// randomLevelLocked draws a geometric level: P(level ≥ l) = M^-l.
// Caller holds h.mu.
func (h *HNSW) randomLevelLocked() int {
	u := h.rng.Float64()
	for u == 0 {
		u = h.rng.Float64()
	}
	l := int(-math.Log(u) * h.levelMul)
	if l > hnswMaxLevel {
		l = hnswMaxLevel
	}
	return l
}

// scoredNode pairs a graph slot with its similarity to the current
// pivot (query vector or prune subject). Higher score = closer.
type scoredNode struct {
	slot  uint32
	score float64
}

// scoredCmp orders descending by score, ties ascending by slot, for
// deterministic neighbor selection (package-level to keep sorts
// allocation-free).
func scoredCmp(a, b scoredNode) int {
	switch {
	case a.score > b.score:
		return -1
	case a.score < b.score:
		return 1
	case a.slot < b.slot:
		return -1
	case a.slot > b.slot:
		return 1
	default:
		return 0
	}
}

// nodeHeap is a hand-rolled binary heap over scoredNode. Result beams
// are min-heaps (root = current worst, evicted first); the expansion
// frontier is a max-heap (root = most promising candidate).
type nodeHeap struct {
	min bool
	a   []scoredNode
}

func (hp *nodeHeap) reset(min bool) { hp.min, hp.a = min, hp.a[:0] }
func (hp *nodeHeap) len() int       { return len(hp.a) }

// peek returns the root: the worst element of a min-heap, the best of a
// max-heap.
func (hp *nodeHeap) peek() scoredNode { return hp.a[0] }

func (hp *nodeHeap) before(a, b scoredNode) bool {
	if hp.min {
		return a.score < b.score
	}
	return a.score > b.score
}

func (hp *nodeHeap) push(n scoredNode) {
	hp.a = append(hp.a, n)
	i := len(hp.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hp.before(hp.a[i], hp.a[p]) {
			break
		}
		hp.a[i], hp.a[p] = hp.a[p], hp.a[i]
		i = p
	}
}

func (hp *nodeHeap) pop() scoredNode {
	root := hp.a[0]
	last := len(hp.a) - 1
	hp.a[0] = hp.a[last]
	hp.a = hp.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(hp.a) && hp.before(hp.a[l], hp.a[best]) {
			best = l
		}
		if r < len(hp.a) && hp.before(hp.a[r], hp.a[best]) {
			best = r
		}
		if best == i {
			return root
		}
		hp.a[i], hp.a[best] = hp.a[best], hp.a[i]
		i = best
	}
}

// hnswScratch is the pooled per-query (and per-build-worker) working
// state. Everything is capacity-reused, so the steady-state search
// path performs no allocations.
type hnswScratch struct {
	// visited is the epoch-stamp array over graph slots: visited[s] ==
	// epoch marks s as seen this beam search. Sized to the node count,
	// grown (amortized) as the graph grows.
	visited []uint32
	epoch   uint32

	cand    nodeHeap // expansion frontier (max-heap)
	res     nodeHeap // beam results (min-heap, capped at ef)
	pending []uint32 // slots awaiting batch scoring this expansion

	// Shard-grouping buffers: pending slots and their IDs bucketed by
	// store shard so each expansion takes one read lock per shard.
	shardSlots [][]uint32
	shardIDs   [][]graph.NodeID

	// Neighbor-selection state: beam survivors sorted by score with
	// their vectors cached out of the store, so the diversity heuristic
	// scores candidate pairs without further locking. candNorms < 0
	// flags a candidate whose vector was missing.
	work      []scoredNode
	candVecs  []float64
	candNorms []float64
	chosen    []int
	discard   []int
	selected  [][]uint32 // per-layer chosen neighbor slots (insert)

	qbuf []float64 // prune-subject vector copy (pruneLocked)
	vbuf []float64 // insert-vector copy (Build); distinct from qbuf,
	// which pruneLocked clobbers mid-insert
	top topK // final top-k assembly
}

var hnswScratchPool = sync.Pool{New: func() any { return new(hnswScratch) }}

// bumpEpoch starts a fresh visited generation over n slots.
func (sc *hnswScratch) bumpEpoch(n int) {
	if len(sc.visited) < n {
		grown := make([]uint32, n)
		copy(grown, sc.visited)
		sc.visited = grown
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide
		clear(sc.visited)
		sc.epoch = 1
	}
}

// scoreSlot scores a single slot against q through the store, reporting
// whether the vector was present. Used for entry points and prune
// subjects; bulk scoring goes through scorePending.
func (h *HNSW) scoreSlot(slot uint32, q []float64, qNorm float64) (float64, bool) {
	var s float64
	ok := h.store.With(h.nodes[slot].id, func(vec []float64, norm float64) {
		s = h.cfg.Metric.score(q, vec, qNorm, norm)
	})
	return s, ok
}

// scorePending scores every slot queued in sc.pending against q,
// reading vectors from the store's SoA slabs in shard-grouped batches —
// one WithShard lock acquisition per shard touched, not one per vector
// — and invokes visit for each vector found. Slots whose vector has
// vanished (a remove racing a stale link) are silently skipped.
func (h *HNSW) scorePending(sc *hnswScratch, q []float64, qNorm float64, visit func(slot uint32, score float64)) {
	nShards := h.store.NumShards()
	for len(sc.shardSlots) < nShards {
		sc.shardSlots = append(sc.shardSlots, nil)
		sc.shardIDs = append(sc.shardIDs, nil)
	}
	for i := 0; i < nShards; i++ {
		sc.shardSlots[i] = sc.shardSlots[i][:0]
		sc.shardIDs[i] = sc.shardIDs[i][:0]
	}
	for _, slot := range sc.pending {
		id := h.nodes[slot].id
		si := h.store.ShardOf(id)
		sc.shardSlots[si] = append(sc.shardSlots[si], slot)
		sc.shardIDs[si] = append(sc.shardIDs[si], id)
	}
	for si := 0; si < nShards; si++ {
		if len(sc.shardIDs[si]) == 0 {
			continue
		}
		ids, slots := sc.shardIDs[si], sc.shardSlots[si]
		cur := 0
		h.store.WithShard(si, ids, func(id graph.NodeID, vec []float64, norm float64) {
			// WithShard preserves request order but skips missing IDs;
			// advance the cursor to re-align (alive slots have unique IDs,
			// so the match is unambiguous).
			for ids[cur] != id {
				cur++
			}
			visit(slots[cur], h.cfg.Metric.score(q, vec, qNorm, norm))
			cur++
		})
	}
}

// searchLayer runs a beam search of width ef across one layer from the
// (already scored, alive) entry ep, leaving the ≤ ef best alive nodes
// in sc.res. ef=1 degrades to the greedy descent used on upper layers.
// Caller holds h.mu (read or write).
func (h *HNSW) searchLayer(sc *hnswScratch, q []float64, qNorm float64, ep scoredNode, ef, layer int) {
	sc.bumpEpoch(len(h.nodes))
	sc.visited[ep.slot] = sc.epoch
	sc.cand.reset(false)
	sc.res.reset(true)
	sc.cand.push(ep)
	sc.res.push(ep)
	for sc.cand.len() > 0 {
		c := sc.cand.pop()
		if sc.res.len() >= ef && c.score < sc.res.peek().score {
			break // every remaining candidate is worse than the beam's worst
		}
		sc.pending = sc.pending[:0]
		for _, nb := range h.nodes[c.slot].links[layer] {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			sc.visited[nb] = sc.epoch
			if !h.nodes[nb].alive {
				continue // tombstone: repaired links route around it
			}
			sc.pending = append(sc.pending, nb)
		}
		h.scorePending(sc, q, qNorm, func(slot uint32, score float64) {
			if sc.res.len() < ef {
				sc.cand.push(scoredNode{slot, score})
				sc.res.push(scoredNode{slot, score})
			} else if score > sc.res.peek().score {
				sc.cand.push(scoredNode{slot, score})
				sc.res.push(scoredNode{slot, score})
				sc.res.pop()
			}
		})
	}
}

// bestOfRes returns the highest-scoring element of sc.res (the res heap
// is a min-heap, so the best is not the root).
func (sc *hnswScratch) bestOfRes() scoredNode {
	best := sc.res.a[0]
	for _, n := range sc.res.a[1:] {
		if n.score > best.score {
			best = n
		}
	}
	return best
}

// gatherWork sorts sc.res into sc.work (descending score) and caches
// each survivor's vector and norm from the store in shard-grouped
// batches, so the selection heuristic can score candidate pairs without
// touching the store again. Missing vectors are flagged with a negative
// norm. Caller holds h.mu.
func (h *HNSW) gatherWork(sc *hnswScratch, dim int) {
	sc.work = append(sc.work[:0], sc.res.a...)
	slices.SortFunc(sc.work, scoredCmp)
	need := len(sc.work) * dim
	if cap(sc.candVecs) < need {
		sc.candVecs = make([]float64, need)
	}
	sc.candVecs = sc.candVecs[:need]
	if cap(sc.candNorms) < len(sc.work) {
		sc.candNorms = make([]float64, len(sc.work))
	}
	sc.candNorms = sc.candNorms[:len(sc.work)]
	for i := range sc.candNorms {
		sc.candNorms[i] = -1
	}

	nShards := h.store.NumShards()
	for len(sc.shardSlots) < nShards {
		sc.shardSlots = append(sc.shardSlots, nil)
		sc.shardIDs = append(sc.shardIDs, nil)
	}
	for i := 0; i < nShards; i++ {
		// shardSlots carries work indices here, not graph slots.
		sc.shardSlots[i] = sc.shardSlots[i][:0]
		sc.shardIDs[i] = sc.shardIDs[i][:0]
	}
	for i, w := range sc.work {
		id := h.nodes[w.slot].id
		si := h.store.ShardOf(id)
		sc.shardSlots[si] = append(sc.shardSlots[si], uint32(i))
		sc.shardIDs[si] = append(sc.shardIDs[si], id)
	}
	for si := 0; si < nShards; si++ {
		if len(sc.shardIDs[si]) == 0 {
			continue
		}
		ids, idxs := sc.shardIDs[si], sc.shardSlots[si]
		cur := 0
		h.store.WithShard(si, ids, func(id graph.NodeID, vec []float64, norm float64) {
			for ids[cur] != id {
				cur++
			}
			w := int(idxs[cur])
			copy(sc.candVecs[w*dim:(w+1)*dim], vec)
			sc.candNorms[w] = norm
			cur++
		})
	}
}

// selectNeighbors runs the HNSW diversity heuristic over sc.work (as
// prepared by gatherWork): walking candidates best-first, keep one only
// if it is closer to the pivot than to every already-kept neighbor —
// spreading links across directions instead of bunching them in the
// nearest cluster — then recycle pruned candidates to fill spare
// capacity. Appends up to m chosen slots to dst and returns it.
func (h *HNSW) selectNeighbors(sc *hnswScratch, dst []uint32, m, dim int) []uint32 {
	sc.chosen = sc.chosen[:0]
	sc.discard = sc.discard[:0]
	for i := range sc.work {
		if len(sc.chosen) >= m {
			break
		}
		if sc.candNorms[i] < 0 {
			continue
		}
		ci := sc.candVecs[i*dim : (i+1)*dim]
		keep := true
		for _, j := range sc.chosen {
			sim := h.cfg.Metric.score(ci, sc.candVecs[j*dim:(j+1)*dim], sc.candNorms[i], sc.candNorms[j])
			if sim > sc.work[i].score {
				keep = false
				break
			}
		}
		if keep {
			sc.chosen = append(sc.chosen, i)
		} else {
			sc.discard = append(sc.discard, i)
		}
	}
	for _, i := range sc.discard { // keep-pruned: don't waste capacity
		if len(sc.chosen) >= m {
			break
		}
		sc.chosen = append(sc.chosen, i)
	}
	for _, i := range sc.chosen {
		dst = append(dst, sc.work[i].slot)
	}
	return dst
}

// pruneLocked re-selects slot u's links at layer down to the degree
// cap, scoring from u's own vector and dropping dead links along the
// way. Caller holds h.mu for writing.
func (h *HNSW) pruneLocked(u uint32, layer int, sc *hnswScratch) {
	dim := h.store.Dim()
	if cap(sc.qbuf) < dim {
		sc.qbuf = make([]float64, dim)
	}
	q := sc.qbuf[:dim]
	var qNorm float64
	ok := h.store.With(h.nodes[u].id, func(vec []float64, norm float64) {
		copy(q, vec)
		qNorm = norm
	})
	if !ok {
		return
	}
	sc.pending = sc.pending[:0]
	for _, nb := range h.nodes[u].links[layer] {
		if nb != u && h.nodes[nb].alive {
			sc.pending = append(sc.pending, nb)
		}
	}
	sc.res.reset(true)
	h.scorePending(sc, q, qNorm, func(slot uint32, score float64) {
		sc.res.push(scoredNode{slot, score})
	})
	h.gatherWork(sc, dim)
	h.nodes[u].links[layer] = h.selectNeighbors(sc, h.nodes[u].links[layer][:0], h.maxConn(layer), dim)
}

// Add inserts or replaces a vector in the store and the graph.
func (h *HNSW) Add(id graph.NodeID, vec []float64) error {
	sc := hnswScratchPool.Get().(*hnswScratch)
	err := h.insert(id, vec, sc, true)
	hnswScratchPool.Put(sc)
	return err
}

// insert runs the three-phase online insertion. upsert=false is the
// Build path, where the vector is already in the store.
func (h *HNSW) insert(id graph.NodeID, vec []float64, sc *hnswScratch, upsert bool) error {
	// Phase 1 (write lock, cheap): store upsert, tombstone of any prior
	// slot for this id, level draw, slot allocation.
	h.mu.Lock()
	if upsert {
		if err := h.store.Upsert(id, vec); err != nil {
			h.mu.Unlock()
			return err
		}
	}
	if old, ok := h.slotOf[id]; ok {
		h.detachLocked(old, sc)
	}
	level := h.randomLevelLocked()
	slot := uint32(len(h.nodes))
	h.nodes = append(h.nodes, hnswNode{id: id, alive: true, links: make([][]uint32, level+1)})
	h.slotOf[id] = slot
	h.alive++
	if h.entry < 0 { // first node: it is the graph
		h.entry, h.maxLevel = int(slot), level
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()

	// Phase 2 (read lock): neighbor discovery — greedy descent through
	// the upper layers, then an efConstruction-wide beam plus the
	// diversity heuristic on every layer the new node occupies. Runs
	// concurrently with searches and other inserts' discovery.
	qNorm := vecmath.Norm(vec)
	dim := h.store.Dim()
	h.mu.RLock()
	entry, entryLevel := h.entry, h.maxLevel
	top := -1
	if entry >= 0 && uint32(entry) != slot {
		if epScore, ok := h.scoreSlot(uint32(entry), vec, qNorm); ok {
			cur := scoredNode{uint32(entry), epScore}
			top = min(level, entryLevel)
			for layer := entryLevel; layer > top; layer-- {
				h.searchLayer(sc, vec, qNorm, cur, 1, layer)
				cur = sc.res.peek()
			}
			for len(sc.selected) <= top {
				sc.selected = append(sc.selected, nil)
			}
			for layer := top; layer >= 0; layer-- {
				h.searchLayer(sc, vec, qNorm, cur, h.cfg.EfConstruction, layer)
				cur = sc.bestOfRes()
				h.gatherWork(sc, dim)
				sc.selected[layer] = h.selectNeighbors(sc, sc.selected[layer][:0], h.cfg.M, dim)
			}
		}
	}
	h.mu.RUnlock()

	// Phase 3 (write lock): wire the links both ways and prune any
	// neighbor pushed over its degree cap.
	h.mu.Lock()
	n := &h.nodes[slot]
	if n.alive { // a racing Remove may have tombstoned us mid-insert
		for layer := 0; layer <= top; layer++ {
			sel := sc.selected[layer]
			n.links[layer] = append(n.links[layer][:0], sel...)
			for _, u := range sel {
				un := &h.nodes[u]
				if !un.alive || len(un.links) <= layer {
					continue // tombstoned between discovery and wiring
				}
				un.links[layer] = append(un.links[layer], slot)
				if len(un.links[layer]) > h.maxConn(layer) {
					h.pruneLocked(u, layer, sc)
				}
			}
		}
		if level > h.maxLevel {
			h.entry, h.maxLevel = int(slot), level
		}
	}
	h.mu.Unlock()
	return nil
}

// detachLocked tombstones slot and repairs the hole it leaves: each
// alive neighbor drops its link to the victim and receives the victim's
// other neighbors as replacement candidates, re-pruned by the diversity
// heuristic, so the graph stays navigable as nodes churn. If the victim
// was the entry point, a fresh one is chosen from the surviving nodes.
// Caller holds h.mu for writing.
func (h *HNSW) detachLocked(slot uint32, sc *hnswScratch) {
	n := &h.nodes[slot]
	if !n.alive {
		return
	}
	n.alive = false
	h.alive--
	if cur, ok := h.slotOf[n.id]; ok && cur == slot {
		delete(h.slotOf, n.id)
	}
	links := n.links
	n.links = nil
	for layer := range links {
		for _, u := range links[layer] {
			un := &h.nodes[u]
			if !un.alive || len(un.links) <= layer {
				continue
			}
			// Drop the link to the victim, then offer the victim's other
			// neighbors as candidates.
			ul := un.links[layer][:0]
			for _, nb := range un.links[layer] {
				if nb != slot {
					ul = append(ul, nb)
				}
			}
			for _, c := range links[layer] {
				if c == u || !h.nodes[c].alive || slices.Contains(ul, c) {
					continue
				}
				ul = append(ul, c)
			}
			un.links[layer] = ul
			if len(ul) > h.maxConn(layer) {
				h.pruneLocked(u, layer, sc)
			}
		}
	}
	if h.entry == int(slot) {
		h.pickEntryLocked()
	}
}

// pickEntryLocked selects the highest-level alive node as the new entry
// point (−1 when the graph is empty). Caller holds h.mu for writing.
func (h *HNSW) pickEntryLocked() {
	h.entry, h.maxLevel = -1, -1
	for i := range h.nodes {
		if h.nodes[i].alive && len(h.nodes[i].links)-1 > h.maxLevel {
			h.entry, h.maxLevel = i, len(h.nodes[i].links)-1
		}
	}
}

// AddToGraph indexes a vector without writing it to the store: the
// catch-up path of a background rebuild, where the live index owns the
// store and the rebuilding graph only mirrors link structure. The
// vector may be gone from the store again by the time discovery runs
// (a racing delete); the node then links poorly, and the delete's own
// catch-up replay removes it.
func (h *HNSW) AddToGraph(id graph.NodeID, vec []float64) error {
	sc := hnswScratchPool.Get().(*hnswScratch)
	err := h.insert(id, vec, sc, false)
	hnswScratchPool.Put(sc)
	return err
}

// RemoveFromGraph tombstones id in the graph (repairing its
// neighborhood) without deleting the store vector, which the live
// index owns during a rebuild. Reports whether the node was indexed.
func (h *HNSW) RemoveFromGraph(id graph.NodeID) bool {
	sc := hnswScratchPool.Get().(*hnswScratch)
	h.mu.Lock()
	slot, ok := h.slotOf[id]
	if ok {
		h.detachLocked(slot, sc)
	}
	h.mu.Unlock()
	hnswScratchPool.Put(sc)
	return ok
}

// Remove tombstones the node in the graph (repairing its neighborhood)
// and deletes the vector from the store, atomically with respect to
// other mutations. Tombstoned slots are reclaimed only by a rebuild.
func (h *HNSW) Remove(id graph.NodeID) bool {
	sc := hnswScratchPool.Get().(*hnswScratch)
	h.mu.Lock()
	slot, ok := h.slotOf[id]
	if ok {
		h.detachLocked(slot, sc)
	}
	inStore := h.store.Delete(id)
	h.mu.Unlock()
	hnswScratchPool.Put(sc)
	return ok || inStore
}

// Build indexes every vector already in the store, fanning inserts out
// over a ParallelFor worker pool with pooled per-worker scratch.
// Discovery (the expensive phase) runs under the shared read lock, so
// workers overlap; only the link-wiring critical sections serialize.
func (h *HNSW) Build() error {
	ids := h.store.IDs()
	dim := h.store.Dim()
	ParallelFor(len(ids), func(i int) {
		sc := hnswScratchPool.Get().(*hnswScratch)
		if cap(sc.vbuf) < dim {
			sc.vbuf = make([]float64, dim)
		}
		vbuf := sc.vbuf[:dim]
		if h.store.With(ids[i], func(vec []float64, _ float64) { copy(vbuf, vec) }) {
			_ = h.insert(ids[i], vbuf, sc, false) // upsert=false never errors
		}
		hnswScratchPool.Put(sc)
	})
	return nil
}

// Search returns the top-k neighbors of q as a fresh slice.
func (h *HNSW) Search(q []float64, k int) ([]Result, error) {
	return h.SearchInto(nil, q, k)
}

// SearchInto is Search writing into dst: the zero-allocation query
// path. Greedy descent from the entry point to layer 1, then a beam of
// width max(EfSearch, k) across layer 0; if the beam surfaces fewer
// than min(k, live) results (possible only on a heavily-churned graph),
// the exact fallback takes over so results never silently degrade.
func (h *HNSW) SearchInto(dst []Result, q []float64, k int) ([]Result, error) {
	if err := checkQuery(h.store, q, k); err != nil {
		return nil, err
	}
	qNorm := vecmath.Norm(q)
	sc := hnswScratchPool.Get().(*hnswScratch)

	h.mu.RLock()
	if h.entry < 0 {
		h.mu.RUnlock()
		hnswScratchPool.Put(sc)
		// Empty graph: serve whatever the store holds (normally nothing).
		return h.fallback.SearchInto(dst, q, k)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	epScore, ok := h.scoreSlot(uint32(h.entry), q, qNorm)
	if !ok {
		h.mu.RUnlock()
		hnswScratchPool.Put(sc)
		return h.fallback.SearchInto(dst, q, k)
	}
	cur := scoredNode{uint32(h.entry), epScore}
	for layer := h.maxLevel; layer > 0; layer-- {
		h.searchLayer(sc, q, qNorm, cur, 1, layer)
		cur = sc.res.peek()
	}
	h.searchLayer(sc, q, qNorm, cur, ef, 0)
	sc.top.reset(k)
	for _, n := range sc.res.a {
		sc.top.push(Result{ID: h.nodes[n.slot].id, Score: n.score})
	}
	alive := h.alive
	h.mu.RUnlock()

	got := sc.top.sorted()
	want := k
	if alive < want {
		want = alive
	}
	if len(got) < want {
		hnswScratchPool.Put(sc)
		return h.fallback.SearchInto(dst, q, k)
	}
	dst = appendResults(dst, got)
	hnswScratchPool.Put(sc)
	return dst, nil
}

// SearchBatch answers queries across a worker pool.
func (h *HNSW) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		return h.Search(q, k)
	})
}

// hnswWire is the gob wire format of a graph snapshot: per-slot arrays
// plus one flattened link stream, so encoding cost is a handful of
// slice writes rather than a gob walk over every neighbor list.
type hnswWire struct {
	Version        int
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	Metric         int
	Entry          int
	MaxLevel       int
	IDs            []graph.NodeID
	Alive          []bool
	Layers         []int32 // per slot: layer count (0 for detached tombstones)
	Counts         []int32 // per slot per layer: link count
	Links          []uint32
}

// hnswSnapshotVersion guards the wire format; bump on incompatible changes.
const hnswSnapshotVersion = 1

// SaveGraph writes a snapshot of the graph structure (not the vectors —
// those live in the embstore snapshot) so a daemon can reload the index
// without rebuilding. Quiesce writers for a point-in-time image.
func (h *HNSW) SaveGraph(w io.Writer) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	wire := hnswWire{
		Version:        hnswSnapshotVersion,
		M:              h.cfg.M,
		EfConstruction: h.cfg.EfConstruction,
		EfSearch:       h.cfg.EfSearch,
		Seed:           h.cfg.Seed,
		Metric:         int(h.cfg.Metric),
		Entry:          h.entry,
		MaxLevel:       h.maxLevel,
		IDs:            make([]graph.NodeID, len(h.nodes)),
		Alive:          make([]bool, len(h.nodes)),
		Layers:         make([]int32, len(h.nodes)),
	}
	for i := range h.nodes {
		n := &h.nodes[i]
		wire.IDs[i] = n.id
		wire.Alive[i] = n.alive
		wire.Layers[i] = int32(len(n.links))
		for _, links := range n.links {
			wire.Counts = append(wire.Counts, int32(len(links)))
			wire.Links = append(wire.Links, links...)
		}
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("ann: hnsw save: %v", err)
	}
	return nil
}

// LoadHNSWGraph reconstructs a graph written by SaveGraph over store,
// which must hold the same vectors the graph was built on (the embstore
// snapshot saved alongside it). Every live node must be present in the
// store; structural corruption is rejected.
func LoadHNSWGraph(r io.Reader, store *embstore.Store) (*HNSW, error) {
	var wire hnswWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ann: hnsw load: %v", err)
	}
	if wire.Version != hnswSnapshotVersion {
		return nil, fmt.Errorf("ann: hnsw load: snapshot version %d, want %d", wire.Version, hnswSnapshotVersion)
	}
	cfg := HNSWConfig{
		M:              wire.M,
		EfConstruction: wire.EfConstruction,
		EfSearch:       wire.EfSearch,
		Seed:           wire.Seed,
		Metric:         Metric(wire.Metric),
	}
	h, err := NewHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	nSlots := len(wire.IDs)
	if len(wire.Alive) != nSlots || len(wire.Layers) != nSlots {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: %d ids, %d alive, %d layer counts",
			nSlots, len(wire.Alive), len(wire.Layers))
	}
	h.nodes = make([]hnswNode, nSlots)
	ci, li := 0, 0
	for i := 0; i < nSlots; i++ {
		n := &h.nodes[i]
		n.id, n.alive = wire.IDs[i], wire.Alive[i]
		layers := int(wire.Layers[i])
		if layers < 0 || ci+layers > len(wire.Counts) {
			return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: layer counts overrun at slot %d", i)
		}
		if layers > 0 {
			n.links = make([][]uint32, layers)
			for l := 0; l < layers; l++ {
				cnt := int(wire.Counts[ci])
				ci++
				if cnt < 0 || li+cnt > len(wire.Links) {
					return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: link stream overrun at slot %d", i)
				}
				n.links[l] = wire.Links[li : li+cnt : li+cnt]
				for _, nb := range n.links[l] {
					if int(nb) >= nSlots {
						return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: link to slot %d of %d", nb, nSlots)
					}
					// A live linked node must occupy this layer, or the beam
					// would index past its link lists at query time (dead
					// targets are skipped before expansion, so they may have
					// dropped theirs).
					if wire.Alive[nb] && int(wire.Layers[nb]) <= l {
						return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: slot %d links to slot %d at layer %d beyond its %d layers",
							i, nb, l, wire.Layers[nb])
					}
				}
				li += cnt
			}
		}
		if n.alive {
			if layers < 1 {
				return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: live slot %d has no layers", i)
			}
			h.slotOf[n.id] = uint32(i)
			h.alive++
			if !store.With(n.id, func([]float64, float64) {}) {
				return nil, fmt.Errorf("ann: hnsw load: node %d in graph but not in store (snapshot mismatch)", n.id)
			}
		}
	}
	if ci != len(wire.Counts) || li != len(wire.Links) {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: %d/%d counts and %d/%d links consumed",
			ci, len(wire.Counts), li, len(wire.Links))
	}
	if wire.Entry < -1 || wire.Entry >= nSlots ||
		(wire.Entry >= 0 && !h.nodes[wire.Entry].alive) ||
		(wire.Entry < 0) != (wire.MaxLevel < 0) {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: entry slot %d (max level %d)", wire.Entry, wire.MaxLevel)
	}
	// The search descent starts at maxLevel, so the entry point must
	// actually occupy that layer.
	if wire.Entry >= 0 && int(wire.Layers[wire.Entry]) != wire.MaxLevel+1 {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: entry slot %d has %d layers, max level %d",
			wire.Entry, wire.Layers[wire.Entry], wire.MaxLevel)
	}
	// Membership was checked graph→store above; require the counts to
	// match too, or a stale snapshot over a newer, larger store would
	// load cleanly and silently exclude the extra vectors from every
	// search.
	if h.alive != store.Len() {
		return nil, fmt.Errorf("ann: hnsw load: graph indexes %d nodes but store holds %d (stale snapshot? rebuild)",
			h.alive, store.Len())
	}
	h.entry, h.maxLevel = wire.Entry, wire.MaxLevel
	return h, nil
}
