// Hierarchical Navigable Small World (HNSW, Malkov & Yashunin): a
// multi-layer proximity graph over the embstore. Every vector gets a
// geometrically-distributed top level; upper layers form progressively
// sparser graphs that greedy descent crosses in a few hops, and layer 0
// holds the dense graph a beam search (width efSearch) scans for the
// final candidates. Queries therefore touch O(log n)-ish nodes instead
// of the whole store (Exact) or a bucket union re-rank (LSH) — the
// sublinear query path for 100k+ node stores.
//
// The search hot path holds the PR 2 bar: all per-query state (the
// epoch-stamped visited array, candidate/result heaps, the
// narrowed/quantized query context) lives in a pooled scratch, the
// query norm is computed once per query, and candidate vectors are
// read straight out of the graph-resident slot-indexed slab — at the
// store's precision (f64/f32/sq8), with no id→slot map lookups or
// shard locks per expansion — so SearchInto is allocation-free in
// steady state. Over sq8 slabs the beam widens to at least rerank·k;
// on SIMD backends it scores candidates with the symmetric int8×int8
// kernel (the query is quantized once per search) and the beam's
// survivors are re-ranked asymmetrically, while on scalar backends
// every candidate is scored with the asymmetric LUT kernel directly
// (see Metric.quickScoreView for why that is the scalar optimum).
//
// Mutability: Add inserts online (discovery under the read lock, link
// mutation under the write lock, so concurrent searches keep running
// through an insert's expensive phase); Remove tombstones the slot and
// repairs the hole by cross-linking the victim's neighbors, falling
// back to a fresh entry point when the entry node itself is removed.
// Build inserts a whole store snapshot in parallel with per-worker
// scratch. SaveGraph/LoadHNSWGraph snapshot the graph structure so a
// daemon can boot without paying the build again.
package ann

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

// HNSWConfig parameterizes the graph. Recall grows with M (graph
// degree), EfConstruction (build-time beam width) and EfSearch
// (query-time beam width); query cost grows with M and EfSearch, build
// cost with M and EfConstruction.
type HNSWConfig struct {
	// M is the target out-degree per node on layers ≥ 1; layer 0 allows
	// 2M. Default 16. Must be at least 2.
	M int
	// EfConstruction is the beam width used while inserting (default
	// 200). Wider beams find better neighbors and raise recall.
	EfConstruction int
	// EfSearch is the layer-0 beam width at query time (default 64);
	// queries run at max(EfSearch, k). The recall/latency dial.
	EfSearch int
	// Seed fixes the level draws for reproducible builds.
	Seed int64
	// Metric is the similarity the graph is built and searched under
	// (default Cosine).
	Metric Metric
}

// DefaultHNSWConfig returns the configuration used by cmd/ehnad unless
// overridden: M=16, efConstruction=200, efSearch=64 measures recall@10
// ≥ 0.95 against exact search at 100k isotropic Gaussian vectors (the
// hardest case — real embeddings cluster and recall rises).
func DefaultHNSWConfig() HNSWConfig {
	return HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 64, Seed: 1, Metric: Cosine}
}

func (c *HNSWConfig) fill() error {
	if c.M == 0 {
		c.M = 16
	}
	if c.M < 2 || c.M > 128 {
		return fmt.Errorf("ann: hnsw M %d outside [2,128]", c.M)
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return nil
}

// hnswMaxLevel caps the geometric level draw; with M ≥ 2 the chance of
// a legitimate draw this high is ≈ 2^-32.
const hnswMaxLevel = 32

// hnswNode is one graph vertex. Slots are append-only: a node keeps its
// slot for the index's lifetime, so link lists can store bare slot
// numbers. Tombstoned slots (alive=false) keep id for bookkeeping but
// drop their links.
type hnswNode struct {
	id    graph.NodeID
	alive bool
	links [][]uint32 // layer → neighbor slots; len(links) == level+1
}

// HNSW is the graph index over an embstore. The store remains the
// source of truth for vectors (Get/export/fallback read it); the graph
// holds the link structure plus a slot-indexed mirror of every
// vector's scan representation — the graph-resident slab. Beam
// expansions score straight out of that slab by graph slot, under the
// graph lock they already hold: no id→slot map lookup, no shard lock,
// no shard-grouping pass per expansion (profiling showed those three
// costing more than the distance kernels themselves). The slab lives
// at the store's precision, so an sq8 graph scans 1-byte lanes with a
// 32-byte sidecar per row; the memory price of the mirror is one extra
// BytesPerVector per indexed vector, reclaimed for tombstones only at
// rebuild.
//
// Safe for concurrent use: searches share the read lock, mutations
// take the write lock, and Add holds the write lock only for its cheap
// bookkeeping and link-wiring phases — neighbor discovery (the
// expensive part) runs under the read lock alongside queries. Slab
// rows are written in Add's bookkeeping phase (write lock), so under
// the read lock every slot ≤ len(nodes) has a stable row.
type HNSW struct {
	store    *embstore.Store
	levelMul float64 // 1/ln(M): geometric level distribution parameter
	fallback *Exact
	prec     embstore.Precision
	dim      int

	mu       sync.RWMutex
	cfg      HNSWConfig // EfSearch mutable via SetEfSearch
	nodes    []hnswNode
	slotOf   map[graph.NodeID]uint32 // alive slots only
	entry    int                     // entry-point slot; -1 when empty
	maxLevel int                     // level of entry; -1 when empty
	alive    int
	rng      *rand.Rand // level draws; guarded by mu

	// aliveBits mirrors nodes[s].alive as a dense bitmap. The beam's
	// neighbor loop checks liveness for every unvisited neighbor, and
	// reading it out of the ~48-byte node structs costs a random cache
	// miss per check (the node array is megabytes at serving scale);
	// the bitmap is 1/384th the size and stays L1-resident. Mutated
	// only where nodes[s].alive is (Add, detachLocked, graph load).
	aliveBits []uint64

	// The slot-indexed vector slab: row s is the scan representation of
	// nodes[s]. Exactly one family is populated, per precision.
	// Tombstoned slots keep their (dead) rows for index stability.
	vecs   []float64 // F64
	vecs32 []float32 // F32
	norms  []float64 // F64/F32 per-row norms
	codes  []int8    // SQ8
	side   []sq8Side // SQ8 per-row sidecar (norm included)
}

// sq8Side is the graph slab's per-row SQ8 sidecar (decode parameters,
// code sum for vecmath.DotSQ8Sym, original norm). The float fields are
// deliberately float32: the beam touches a random sidecar per scored
// candidate, and at 16 bytes/row four rows share a cache line — twice
// the residency of the float64 layout — while the ~1e-7 relative error
// the narrowing adds is far below sq8's own quantization error. The
// store keeps its sidecars in float64; only this beam-local mirror is
// narrowed.
type sq8Side struct {
	scale, offset, norm float32
	codeSum             int32
}

// NewHNSW returns an empty graph over store. Call Build to index the
// vectors already in the store, or Add them incrementally.
func NewHNSW(store *embstore.Store, cfg HNSWConfig) (*HNSW, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &HNSW{
		store:    store,
		cfg:      cfg,
		levelMul: 1 / math.Log(float64(cfg.M)),
		fallback: NewExact(store, cfg.Metric),
		prec:     store.Precision(),
		dim:      store.Dim(),
		slotOf:   make(map[graph.NodeID]uint32, store.Len()),
		entry:    -1,
		maxLevel: -1,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// BuildHNSW is NewHNSW followed by Build: the one-call path from a
// loaded store to a queryable graph.
func BuildHNSW(store *embstore.Store, cfg HNSWConfig) (*HNSW, error) {
	h, err := NewHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Build(); err != nil {
		return nil, err
	}
	return h, nil
}

// Config returns the (filled-in) configuration.
func (h *HNSW) Config() HNSWConfig {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.cfg
}

// SetEfSearch adjusts the query-time beam width (ignored if ef ≤ 0) —
// the recall/latency dial, safe to turn on a live index.
func (h *HNSW) SetEfSearch(ef int) {
	if ef <= 0 {
		return
	}
	h.mu.Lock()
	h.cfg.EfSearch = ef
	h.mu.Unlock()
}

// Metric reports the similarity metric.
func (h *HNSW) Metric() Metric { return h.cfg.Metric }

// Len reports the number of live (searchable) nodes in the graph.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.alive
}

// Stats reports graph shape: live nodes, tombstoned slots awaiting a
// rebuild, and the top layer of the hierarchy.
func (h *HNSW) Stats() (alive, tombstones, maxLevel int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.alive, len(h.nodes) - h.alive, h.maxLevel
}

// TombstoneRatio reports the fraction of graph slots occupied by
// tombstones — the number the daemon's maintenance loop compares
// against -compact-at to decide when a rebuild pays for itself. 0 on
// an empty graph.
func (h *HNSW) TombstoneRatio() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.nodes) == 0 {
		return 0
	}
	return float64(len(h.nodes)-h.alive) / float64(len(h.nodes))
}

// maxConn is the per-layer degree cap: 2M on the dense base layer, M
// above it.
func (h *HNSW) maxConn(layer int) int {
	if layer == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// randomLevelLocked draws a geometric level: P(level ≥ l) = M^-l.
// Caller holds h.mu.
func (h *HNSW) randomLevelLocked() int {
	u := h.rng.Float64()
	for u == 0 {
		u = h.rng.Float64()
	}
	l := int(-math.Log(u) * h.levelMul)
	if l > hnswMaxLevel {
		l = hnswMaxLevel
	}
	return l
}

// scoredNode pairs a graph slot with its similarity to the current
// pivot (query vector or prune subject). Higher score = closer.
type scoredNode struct {
	slot  uint32
	score float64
}

// scoredCmp orders descending by score, ties ascending by slot, for
// deterministic neighbor selection (package-level to keep sorts
// allocation-free).
func scoredCmp(a, b scoredNode) int {
	switch {
	case a.score > b.score:
		return -1
	case a.score < b.score:
		return 1
	case a.slot < b.slot:
		return -1
	case a.slot > b.slot:
		return 1
	default:
		return 0
	}
}

// nodeHeap is a hand-rolled binary heap over scoredNode. Result beams
// are min-heaps (root = current worst, evicted first); the expansion
// frontier is a max-heap (root = most promising candidate).
type nodeHeap struct {
	min bool
	a   []scoredNode
}

func (hp *nodeHeap) reset(min bool) { hp.min, hp.a = min, hp.a[:0] }
func (hp *nodeHeap) len() int       { return len(hp.a) }

// peek returns the root: the worst element of a min-heap, the best of a
// max-heap.
func (hp *nodeHeap) peek() scoredNode { return hp.a[0] }

func (hp *nodeHeap) before(a, b scoredNode) bool {
	if hp.min {
		return a.score < b.score
	}
	return a.score > b.score
}

func (hp *nodeHeap) push(n scoredNode) {
	hp.a = append(hp.a, n)
	i := len(hp.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hp.before(hp.a[i], hp.a[p]) {
			break
		}
		hp.a[i], hp.a[p] = hp.a[p], hp.a[i]
		i = p
	}
}

func (hp *nodeHeap) pop() scoredNode {
	root := hp.a[0]
	last := len(hp.a) - 1
	hp.a[0] = hp.a[last]
	hp.a = hp.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(hp.a) && hp.before(hp.a[l], hp.a[best]) {
			best = l
		}
		if r < len(hp.a) && hp.before(hp.a[r], hp.a[best]) {
			best = r
		}
		if best == i {
			return root
		}
		hp.a[i], hp.a[best] = hp.a[best], hp.a[i]
		i = best
	}
}

// hnswScratch is the pooled per-query (and per-build-worker) working
// state. Everything is capacity-reused, so the steady-state search
// path performs no allocations.
type hnswScratch struct {
	// ctx is the precision-dispatched query state the beam's
	// precision-dispatched scoring kernels consume.
	ctx queryCtx

	// visited is the epoch-stamp array over graph slots: visited[s] ==
	// epoch marks s as seen this beam search. Sized to the node count,
	// grown (amortized) as the graph grows. uint16 on purpose: the
	// array is touched randomly for every neighbor of every expansion,
	// so halving it doubles how much of it survives in cache; the cost
	// is a 128KB-per-100k-slots clear every 65535 searches at wrap.
	visited []uint16
	epoch   uint16

	cand    nodeHeap // expansion frontier (max-heap)
	res     nodeHeap // beam results (min-heap, capped at ef)
	pending []uint32 // slots awaiting scoring this expansion

	// Neighbor-selection state: beam survivors sorted by score with
	// their vectors dequantized out of the graph slab, so the diversity
	// heuristic scores candidate pairs in full precision.
	work      []scoredNode
	candVecs  []float64
	candNorms []float64
	chosen    []int
	discard   []int
	selected  [][]uint32 // per-layer chosen neighbor slots (insert)

	qbuf []float64 // prune-subject vector copy (pruneLocked)
	vbuf []float64 // insert-vector copy (Build); distinct from qbuf,
	// which pruneLocked clobbers mid-insert
	top topK // final top-k assembly

	// touch keeps scorePendingSym's pre-touch loads observable so the
	// compiler cannot delete them; the value itself is meaningless.
	touch int32
}

var hnswScratchPool = sync.Pool{New: func() any { return new(hnswScratch) }}

// bumpEpoch starts a fresh visited generation over n slots.
func (sc *hnswScratch) bumpEpoch(n int) {
	if len(sc.visited) < n {
		grown := make([]uint16, n)
		copy(grown, sc.visited)
		sc.visited = grown
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide
		clear(sc.visited)
		sc.epoch = 1
	}
}

// appendSlabRowLocked appends vec's scan representation as the next
// slab row (the row for the node about to occupy slot len(nodes)).
// Caller holds h.mu for writing.
func (h *HNSW) appendSlabRowLocked(vec []float64, norm float64) {
	switch h.prec {
	case embstore.F32:
		h.vecs32 = extendSlab(h.vecs32, h.dim)
		vecmath.F64To32(h.vecs32[len(h.vecs32)-h.dim:], vec)
	case embstore.SQ8:
		h.codes = extendSlab(h.codes, h.dim)
		scale, offset, codeSum := vecmath.EncodeSQ8(vec, h.codes[len(h.codes)-h.dim:])
		h.side = append(h.side, sq8Side{scale: float32(scale), offset: float32(offset), norm: float32(norm), codeSum: codeSum})
	default:
		h.vecs = append(h.vecs, vec...)
	}
	if h.prec != embstore.SQ8 {
		h.norms = append(h.norms, norm)
	}
}

// extendSlab grows s by n zero elements (embstore keeps its own copy
// of this helper next to its slabs). The reused-capacity path must
// clear explicitly: spare capacity may hold stale row bytes.
func extendSlab[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		s = s[: len(s)+n : cap(s)]
		clear(s[len(s)-n:])
		return s
	}
	return append(s, make([]T, n)...)
}

// aliveBit reads slot's liveness from the dense bitmap. Caller holds
// h.mu; the bitmap covers every allocated slot by construction.
func (h *HNSW) aliveBit(slot uint32) bool {
	return h.aliveBits[slot>>6]&(1<<(slot&63)) != 0
}

// setAliveBit mirrors a nodes[slot].alive write into the bitmap,
// growing it to cover slot. Caller holds h.mu for writing.
func (h *HNSW) setAliveBit(slot uint32, v bool) {
	for int(slot>>6) >= len(h.aliveBits) {
		h.aliveBits = append(h.aliveBits, 0)
	}
	if v {
		h.aliveBits[slot>>6] |= 1 << (slot & 63)
	} else {
		h.aliveBits[slot>>6] &^= 1 << (slot & 63)
	}
}

// slabView points v at slot's slab row. Caller holds h.mu (read or
// write); rows exist for every allocated slot by construction.
func (h *HNSW) slabView(slot uint32, v *embstore.VecView) {
	lo := int(slot) * h.dim
	switch h.prec {
	case embstore.F32:
		v.F32 = h.vecs32[lo : lo+h.dim]
		v.Norm = h.norms[slot]
	case embstore.SQ8:
		s := &h.side[slot]
		v.Code = h.codes[lo : lo+h.dim]
		v.Scale, v.Offset, v.CodeSum, v.Norm = float64(s.scale), float64(s.offset), s.codeSum, float64(s.norm)
	default:
		v.F64 = h.vecs[lo : lo+h.dim]
		v.Norm = h.norms[slot]
	}
}

// scoreSlot scores a single slot against the scratch's query from the
// graph slab with the candidate-generation kernel (symmetric over sq8
// slabs on SIMD backends). Used for entry points; bulk scoring goes
// through scorePending. Caller holds h.mu.
func (h *HNSW) scoreSlot(slot uint32, qc *queryCtx) float64 {
	var v embstore.VecView
	h.slabView(slot, &v)
	return h.cfg.Metric.beamScoreView(qc, &v)
}

// scorePending scores every slot queued in sc.pending against the
// scratch's query (sc.ctx) straight out of the graph slab — a tight
// slot-indexed loop with no store access — and invokes visit for each.
// Scoring uses the candidate-generation kernel (see beamScoreView);
// over sq8 slabs on SIMD backends that is the symmetric integer
// kernel, and SearchInto re-ranks the beam's survivors asymmetrically.
// Used by the prune/repair paths; the query beam goes through
// scorePendingBeam, which folds its heap updates into the loop.
// Caller holds h.mu.
func (h *HNSW) scorePending(sc *hnswScratch, visit func(slot uint32, score float64)) {
	var v embstore.VecView
	for _, slot := range sc.pending {
		h.slabView(slot, &v)
		visit(slot, h.cfg.Metric.beamScoreView(&sc.ctx, &v))
	}
}

// beamPush applies the standard beam update for one scored slot: grow
// the beam until it holds ef results, then displace its worst. Both
// heaps receive every admitted node (cand drives expansion, res keeps
// the beam).
func beamPush(sc *hnswScratch, slot uint32, score float64, ef int) {
	if sc.res.len() < ef {
		sc.cand.push(scoredNode{slot, score})
		sc.res.push(scoredNode{slot, score})
	} else if score > sc.res.peek().score {
		sc.cand.push(scoredNode{slot, score})
		sc.res.push(scoredNode{slot, score})
		sc.res.pop()
	}
}

// scorePendingBeam scores sc.pending into the beam heaps (see
// beamPush). This is the query beam's hot loop; profiles show it bound
// by memory latency and per-candidate overhead, not kernel arithmetic,
// so the sq8+SIMD specialization (sc.ctx.sym) (a) reads codes and
// sidecars straight off the slab arrays with no VecView assembly,
// (b) hoists the affine correction's query-side terms out of the loop
// and calls the raw integer kernel per candidate, and (c) pre-touches
// every pending row first, so the candidates' cache misses issue
// back-to-back and resolve in parallel instead of serializing one
// score call at a time. The score it produces is symScoreView's up to
// floating-point regrouping. Caller holds h.mu.
func (h *HNSW) scorePendingBeam(sc *hnswScratch, ef int) {
	qc := &sc.ctx
	if !qc.sym {
		var v embstore.VecView
		for _, slot := range sc.pending {
			h.slabView(slot, &v)
			beamPush(sc, slot, h.cfg.Metric.quickScoreView(qc, &v), ef)
		}
		return
	}
	q := &qc.sq8q
	dim := h.dim
	var touch int32
	for _, slot := range sc.pending {
		lo := int(slot) * dim
		touch ^= int32(h.codes[lo]) ^ int32(h.codes[lo+dim-1]) ^ h.side[slot].codeSum
	}
	sc.touch = touch
	qScale := q.Scale
	qOffset := q.Offset
	nqo := float64(dim) * qOffset // n·qOff term of the correction
	qs := float64(q.CodeSum)      // Σ query codes
	cosine := h.cfg.Metric != DotProduct
	invQ := 0.0
	if qc.qNorm != 0 {
		invQ = 1 / qc.qNorm
	}
	for _, slot := range sc.pending {
		lo := int(slot) * dim
		sd := &h.side[slot]
		acc := vecmath.DotSQ8SymCodes(q.Code, h.codes[lo:lo+dim])
		scale, offset := float64(sd.scale), float64(sd.offset)
		dot := nqo*offset + qOffset*scale*float64(sd.codeSum) +
			offset*qScale*qs + qScale*scale*float64(acc)
		score := dot
		if cosine {
			if invQ == 0 || sd.norm == 0 {
				score = 0
			} else {
				score = dot * invQ / float64(sd.norm)
			}
		}
		beamPush(sc, slot, score, ef)
	}
}

// searchLayer runs a beam search of width ef across one layer from the
// (already scored, alive) entry ep, leaving the ≤ ef best alive nodes
// in sc.res. ef=1 degrades to the greedy descent used on upper layers.
// The query is sc.ctx. Caller holds h.mu (read or write).
func (h *HNSW) searchLayer(sc *hnswScratch, ep scoredNode, ef, layer int) {
	sc.bumpEpoch(len(h.nodes))
	sc.visited[ep.slot] = sc.epoch
	sc.cand.reset(false)
	sc.res.reset(true)
	sc.cand.push(ep)
	sc.res.push(ep)
	for sc.cand.len() > 0 {
		if sc.ctx.canceled() {
			return // abandoned query: stop expanding, caller returns ctx.Err()
		}
		c := sc.cand.pop()
		if sc.res.len() >= ef && c.score < sc.res.peek().score {
			break // every remaining candidate is worse than the beam's worst
		}
		if sc.cand.len() > 0 {
			// Pre-touch the likely next expansion's link chain (node
			// record → per-layer headers → neighbor list): three
			// dependent loads that would otherwise serialize at the top
			// of the next iteration now resolve behind this expansion's
			// scoring work. "Likely" because scoring may push a better
			// candidate above it; a wasted touch costs nothing.
			if nl := h.nodes[sc.cand.a[0].slot].links; layer < len(nl) {
				if nbl := nl[layer]; len(nbl) > 0 {
					sc.touch ^= int32(nbl[0])
				}
			}
		}
		sc.pending = sc.pending[:0]
		for _, nb := range h.nodes[c.slot].links[layer] {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			sc.visited[nb] = sc.epoch
			if !h.aliveBit(nb) {
				continue // tombstone: repaired links route around it
			}
			sc.pending = append(sc.pending, nb)
		}
		h.scorePendingBeam(sc, ef)
	}
}

// bestOfRes returns the highest-scoring element of sc.res (the res heap
// is a min-heap, so the best is not the root).
func (sc *hnswScratch) bestOfRes() scoredNode {
	best := sc.res.a[0]
	for _, n := range sc.res.a[1:] {
		if n.score > best.score {
			best = n
		}
	}
	return best
}

// gatherWork sorts sc.res into sc.work (descending score) and caches
// each survivor's vector and norm from the graph slab, so the
// selection heuristic can score candidate pairs in full precision
// (compressed rows are dequantized into the cache). Caller holds h.mu.
func (h *HNSW) gatherWork(sc *hnswScratch, dim int) {
	sc.work = append(sc.work[:0], sc.res.a...)
	slices.SortFunc(sc.work, scoredCmp)
	need := len(sc.work) * dim
	if cap(sc.candVecs) < need {
		sc.candVecs = make([]float64, need)
	}
	sc.candVecs = sc.candVecs[:need]
	if cap(sc.candNorms) < len(sc.work) {
		sc.candNorms = make([]float64, len(sc.work))
	}
	sc.candNorms = sc.candNorms[:len(sc.work)]
	var v embstore.VecView
	for i, w := range sc.work {
		h.slabView(w.slot, &v)
		v.DequantizeInto(sc.candVecs[i*dim : (i+1)*dim])
		sc.candNorms[i] = v.Norm
	}
}

// selectNeighbors runs the HNSW diversity heuristic over sc.work (as
// prepared by gatherWork): walking candidates best-first, keep one only
// if it is closer to the pivot than to every already-kept neighbor —
// spreading links across directions instead of bunching them in the
// nearest cluster — then recycle pruned candidates to fill spare
// capacity. Appends up to m chosen slots to dst and returns it.
func (h *HNSW) selectNeighbors(sc *hnswScratch, dst []uint32, m, dim int) []uint32 {
	sc.chosen = sc.chosen[:0]
	sc.discard = sc.discard[:0]
	for i := range sc.work {
		if len(sc.chosen) >= m {
			break
		}
		ci := sc.candVecs[i*dim : (i+1)*dim]
		keep := true
		for _, j := range sc.chosen {
			sim := h.cfg.Metric.score(ci, sc.candVecs[j*dim:(j+1)*dim], sc.candNorms[i], sc.candNorms[j])
			if sim > sc.work[i].score {
				keep = false
				break
			}
		}
		if keep {
			sc.chosen = append(sc.chosen, i)
		} else {
			sc.discard = append(sc.discard, i)
		}
	}
	for _, i := range sc.discard { // keep-pruned: don't waste capacity
		if len(sc.chosen) >= m {
			break
		}
		sc.chosen = append(sc.chosen, i)
	}
	for _, i := range sc.chosen {
		dst = append(dst, sc.work[i].slot)
	}
	return dst
}

// pruneLocked re-selects slot u's links at layer down to the degree
// cap, scoring from u's own vector and dropping dead links along the
// way. Caller holds h.mu for writing.
func (h *HNSW) pruneLocked(u uint32, layer int, sc *hnswScratch) {
	dim := h.dim
	if cap(sc.qbuf) < dim {
		sc.qbuf = make([]float64, dim)
	}
	q := sc.qbuf[:dim]
	var uv embstore.VecView
	h.slabView(u, &uv)
	uv.DequantizeInto(q)
	// Re-point the scratch context at the prune subject. Safe to
	// clobber mid-insert: every use of the inserted vector's context
	// (discovery, selection) completes before the wiring phase that
	// prunes.
	sc.ctx.init(h.store, q)
	sc.pending = sc.pending[:0]
	for _, nb := range h.nodes[u].links[layer] {
		if nb != u && h.nodes[nb].alive {
			sc.pending = append(sc.pending, nb)
		}
	}
	sc.res.reset(true)
	h.scorePending(sc, func(slot uint32, score float64) {
		sc.res.push(scoredNode{slot, score})
	})
	h.gatherWork(sc, dim)
	h.nodes[u].links[layer] = h.selectNeighbors(sc, h.nodes[u].links[layer][:0], h.maxConn(layer), dim)
}

// Add inserts or replaces a vector in the store and the graph.
func (h *HNSW) Add(id graph.NodeID, vec []float64) error {
	sc := hnswScratchPool.Get().(*hnswScratch)
	err := h.insert(id, vec, sc, true)
	hnswScratchPool.Put(sc)
	return err
}

// insert runs the three-phase online insertion. upsert=false is the
// Build path, where the vector is already in the store.
func (h *HNSW) insert(id graph.NodeID, vec []float64, sc *hnswScratch, upsert bool) error {
	// Phase 1 (write lock, cheap): store upsert, tombstone of any prior
	// slot for this id, level draw, slot allocation.
	h.mu.Lock()
	if upsert {
		if err := h.store.Upsert(id, vec); err != nil {
			h.mu.Unlock()
			return err
		}
	}
	if old, ok := h.slotOf[id]; ok {
		h.detachLocked(old, sc)
	}
	level := h.randomLevelLocked()
	slot := uint32(len(h.nodes))
	h.appendSlabRowLocked(vec, vecmath.Norm(vec))
	h.nodes = append(h.nodes, hnswNode{id: id, alive: true, links: make([][]uint32, level+1)})
	h.setAliveBit(slot, true)
	h.slotOf[id] = slot
	h.alive++
	if h.entry < 0 { // first node: it is the graph
		h.entry, h.maxLevel = int(slot), level
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()

	// Phase 2 (read lock): neighbor discovery — greedy descent through
	// the upper layers, then an efConstruction-wide beam plus the
	// diversity heuristic on every layer the new node occupies. Runs
	// concurrently with searches and other inserts' discovery. The
	// context must be built after phase 1: a detach there may have
	// pruned through this scratch and clobbered it.
	sc.ctx.init(h.store, vec)
	dim := h.dim
	h.mu.RLock()
	entry, entryLevel := h.entry, h.maxLevel
	top := -1
	if entry >= 0 && uint32(entry) != slot {
		cur := scoredNode{uint32(entry), h.scoreSlot(uint32(entry), &sc.ctx)}
		top = min(level, entryLevel)
		for layer := entryLevel; layer > top; layer-- {
			h.searchLayer(sc, cur, 1, layer)
			cur = sc.res.peek()
		}
		for len(sc.selected) <= top {
			sc.selected = append(sc.selected, nil)
		}
		for layer := top; layer >= 0; layer-- {
			h.searchLayer(sc, cur, h.cfg.EfConstruction, layer)
			cur = sc.bestOfRes()
			h.gatherWork(sc, dim)
			sc.selected[layer] = h.selectNeighbors(sc, sc.selected[layer][:0], h.cfg.M, dim)
		}
	}
	h.mu.RUnlock()

	// Phase 3 (write lock): wire the links both ways and prune any
	// neighbor pushed over its degree cap.
	h.mu.Lock()
	n := &h.nodes[slot]
	if n.alive { // a racing Remove may have tombstoned us mid-insert
		for layer := 0; layer <= top; layer++ {
			sel := sc.selected[layer]
			n.links[layer] = append(n.links[layer][:0], sel...)
			for _, u := range sel {
				un := &h.nodes[u]
				if !un.alive || len(un.links) <= layer {
					continue // tombstoned between discovery and wiring
				}
				un.links[layer] = append(un.links[layer], slot)
				if len(un.links[layer]) > h.maxConn(layer) {
					h.pruneLocked(u, layer, sc)
				}
			}
		}
		if level > h.maxLevel {
			h.entry, h.maxLevel = int(slot), level
		}
	}
	h.mu.Unlock()
	return nil
}

// detachLocked tombstones slot and repairs the hole it leaves: each
// alive neighbor drops its link to the victim and receives the victim's
// other neighbors as replacement candidates, re-pruned by the diversity
// heuristic, so the graph stays navigable as nodes churn. If the victim
// was the entry point, a fresh one is chosen from the surviving nodes.
// Caller holds h.mu for writing.
func (h *HNSW) detachLocked(slot uint32, sc *hnswScratch) {
	n := &h.nodes[slot]
	if !n.alive {
		return
	}
	n.alive = false
	h.setAliveBit(slot, false)
	h.alive--
	if cur, ok := h.slotOf[n.id]; ok && cur == slot {
		delete(h.slotOf, n.id)
	}
	links := n.links
	n.links = nil
	for layer := range links {
		for _, u := range links[layer] {
			un := &h.nodes[u]
			if !un.alive || len(un.links) <= layer {
				continue
			}
			// Drop the link to the victim, then offer the victim's other
			// neighbors as candidates.
			ul := un.links[layer][:0]
			for _, nb := range un.links[layer] {
				if nb != slot {
					ul = append(ul, nb)
				}
			}
			for _, c := range links[layer] {
				if c == u || !h.nodes[c].alive || slices.Contains(ul, c) {
					continue
				}
				ul = append(ul, c)
			}
			un.links[layer] = ul
			if len(ul) > h.maxConn(layer) {
				h.pruneLocked(u, layer, sc)
			}
		}
	}
	if h.entry == int(slot) {
		h.pickEntryLocked()
	}
}

// pickEntryLocked selects the highest-level alive node as the new entry
// point (−1 when the graph is empty). Caller holds h.mu for writing.
func (h *HNSW) pickEntryLocked() {
	h.entry, h.maxLevel = -1, -1
	for i := range h.nodes {
		if h.nodes[i].alive && len(h.nodes[i].links)-1 > h.maxLevel {
			h.entry, h.maxLevel = i, len(h.nodes[i].links)-1
		}
	}
}

// AddToGraph indexes a vector without writing it to the store: the
// catch-up path of a background rebuild, where the live index owns the
// store and the rebuilding graph only mirrors link structure. The
// vector may be gone from the store again by the time discovery runs
// (a racing delete); the node then links poorly, and the delete's own
// catch-up replay removes it.
func (h *HNSW) AddToGraph(id graph.NodeID, vec []float64) error {
	sc := hnswScratchPool.Get().(*hnswScratch)
	err := h.insert(id, vec, sc, false)
	hnswScratchPool.Put(sc)
	return err
}

// RemoveFromGraph tombstones id in the graph (repairing its
// neighborhood) without deleting the store vector, which the live
// index owns during a rebuild. Reports whether the node was indexed.
func (h *HNSW) RemoveFromGraph(id graph.NodeID) bool {
	sc := hnswScratchPool.Get().(*hnswScratch)
	h.mu.Lock()
	slot, ok := h.slotOf[id]
	if ok {
		h.detachLocked(slot, sc)
	}
	h.mu.Unlock()
	hnswScratchPool.Put(sc)
	return ok
}

// Remove tombstones the node in the graph (repairing its neighborhood)
// and deletes the vector from the store, atomically with respect to
// other mutations. Tombstoned slots are reclaimed only by a rebuild.
func (h *HNSW) Remove(id graph.NodeID) bool {
	sc := hnswScratchPool.Get().(*hnswScratch)
	h.mu.Lock()
	slot, ok := h.slotOf[id]
	if ok {
		h.detachLocked(slot, sc)
	}
	inStore := h.store.Delete(id)
	h.mu.Unlock()
	hnswScratchPool.Put(sc)
	return ok || inStore
}

// Build indexes every vector already in the store, fanning inserts out
// over a ParallelFor worker pool with pooled per-worker scratch.
// Discovery (the expensive phase) runs under the shared read lock, so
// workers overlap; only the link-wiring critical sections serialize.
func (h *HNSW) Build() error {
	ids := h.store.IDs()
	dim := h.store.Dim()
	ParallelFor(len(ids), func(i int) {
		sc := hnswScratchPool.Get().(*hnswScratch)
		if cap(sc.vbuf) < dim {
			sc.vbuf = make([]float64, dim)
		}
		vbuf := sc.vbuf[:dim]
		if h.store.With(ids[i], func(v *embstore.VecView) { v.DequantizeInto(vbuf) }) {
			_ = h.insert(ids[i], vbuf, sc, false) // upsert=false never errors
		}
		hnswScratchPool.Put(sc)
	})
	return nil
}

// Search returns the top-k neighbors of q as a fresh slice.
func (h *HNSW) Search(q []float64, k int) ([]Result, error) {
	return h.SearchInto(context.Background(), nil, q, k)
}

// SearchInto is Search writing into dst: the zero-allocation query
// path. Greedy descent from the entry point to layer 1, then a beam
// across layer 0 of width max(EfSearch, k) — widened to at least
// rerank·k over sq8 slabs, so the candidate pool absorbs quantization
// noise. On SIMD backends the sq8 beam scores candidates with the
// symmetric integer kernel (the query is quantized once per search)
// and the surviving beam is re-ranked with the asymmetric
// full-precision-query kernel; on scalar backends the beam already
// scores asymmetrically and the trim to top-k is the whole re-rank.
// If the beam surfaces fewer than min(k, live) results (possible only
// on a heavily-churned graph), the exact fallback takes over so
// results never silently degrade.
func (h *HNSW) SearchInto(ctx context.Context, dst []Result, q []float64, k int) ([]Result, error) {
	if err := checkQuery(h.store, q, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	annQueriesHNSW.Inc()
	start := time.Now()
	sc := hnswScratchPool.Get().(*hnswScratch)
	sc.ctx.init(h.store, q)
	sc.ctx.done = ctx.Done()
	kk := candidateK(sc.ctx.prec, k)

	h.mu.RLock()
	if h.entry < 0 {
		h.mu.RUnlock()
		hnswScratchPool.Put(sc)
		annFallbacks.Inc()
		// Empty graph: serve whatever the store holds (normally nothing).
		return h.fallback.SearchInto(ctx, dst, q, k)
	}
	ef := h.cfg.EfSearch
	if ef < kk {
		ef = kk
	}
	cur := scoredNode{uint32(h.entry), h.scoreSlot(uint32(h.entry), &sc.ctx)}
	for layer := h.maxLevel; layer > 0; layer-- {
		h.searchLayer(sc, cur, 1, layer)
		cur = sc.res.peek()
	}
	h.searchLayer(sc, cur, ef, 0)
	if sc.ctx.canceled() {
		h.mu.RUnlock()
		hnswScratchPool.Put(sc)
		return dst[:0], ctx.Err()
	}
	// The beam is the candidate stage; the re-rank trims it to the final
	// top-k — re-scoring each survivor with the asymmetric kernel when
	// the beam ranked with the symmetric one (slab rows are still at
	// hand under the read lock), reusing the beam scores otherwise.
	rerankStart := time.Now()
	annStageHNSWCand.Observe(int64(rerankStart.Sub(start)))
	sc.top.reset(k)
	if sc.ctx.sym {
		var v embstore.VecView
		for _, n := range sc.res.a {
			h.slabView(n.slot, &v)
			sc.top.push(Result{ID: h.nodes[n.slot].id, Score: h.cfg.Metric.scoreView(&sc.ctx, &v)})
		}
	} else {
		for _, n := range sc.res.a {
			sc.top.push(Result{ID: h.nodes[n.slot].id, Score: n.score})
		}
	}
	alive := h.alive
	h.mu.RUnlock()

	got := sc.top.sorted()
	want := k
	if alive < want {
		want = alive
	}
	if len(got) < want {
		hnswScratchPool.Put(sc)
		annFallbacks.Inc()
		return h.fallback.SearchInto(ctx, dst, q, k)
	}
	dst = appendResults(dst, got)
	hnswScratchPool.Put(sc)
	annStageHNSWRerank.ObserveSince(rerankStart)
	return dst, nil
}

// SearchBatch answers queries across a worker pool.
func (h *HNSW) SearchBatch(ctx context.Context, qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		return h.SearchInto(ctx, nil, q, k)
	})
}

// hnswWire is the gob wire format of a graph snapshot: per-slot arrays
// plus one flattened link stream, so encoding cost is a handful of
// slice writes rather than a gob walk over every neighbor list.
type hnswWire struct {
	Version        int
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	Metric         int
	Entry          int
	MaxLevel       int
	IDs            []graph.NodeID
	Alive          []bool
	Layers         []int32 // per slot: layer count (0 for detached tombstones)
	Counts         []int32 // per slot per layer: link count
	Links          []uint32
}

// hnswSnapshotVersion guards the wire format; bump on incompatible changes.
const hnswSnapshotVersion = 1

// SaveGraph writes a snapshot of the graph structure (not the vectors —
// those live in the embstore snapshot) so a daemon can reload the index
// without rebuilding. Quiesce writers for a point-in-time image.
func (h *HNSW) SaveGraph(w io.Writer) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	wire := hnswWire{
		Version:        hnswSnapshotVersion,
		M:              h.cfg.M,
		EfConstruction: h.cfg.EfConstruction,
		EfSearch:       h.cfg.EfSearch,
		Seed:           h.cfg.Seed,
		Metric:         int(h.cfg.Metric),
		Entry:          h.entry,
		MaxLevel:       h.maxLevel,
		IDs:            make([]graph.NodeID, len(h.nodes)),
		Alive:          make([]bool, len(h.nodes)),
		Layers:         make([]int32, len(h.nodes)),
	}
	for i := range h.nodes {
		n := &h.nodes[i]
		wire.IDs[i] = n.id
		wire.Alive[i] = n.alive
		wire.Layers[i] = int32(len(n.links))
		for _, links := range n.links {
			wire.Counts = append(wire.Counts, int32(len(links)))
			wire.Links = append(wire.Links, links...)
		}
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("ann: hnsw save: %v", err)
	}
	return nil
}

// LoadHNSWGraph reconstructs a graph written by SaveGraph over store,
// which must hold the same vectors the graph was built on (the embstore
// snapshot saved alongside it). Every live node must be present in the
// store; structural corruption is rejected.
func LoadHNSWGraph(r io.Reader, store *embstore.Store) (*HNSW, error) {
	var wire hnswWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ann: hnsw load: %v", err)
	}
	if wire.Version != hnswSnapshotVersion {
		return nil, fmt.Errorf("ann: hnsw load: snapshot version %d, want %d", wire.Version, hnswSnapshotVersion)
	}
	cfg := HNSWConfig{
		M:              wire.M,
		EfConstruction: wire.EfConstruction,
		EfSearch:       wire.EfSearch,
		Seed:           wire.Seed,
		Metric:         Metric(wire.Metric),
	}
	h, err := NewHNSW(store, cfg)
	if err != nil {
		return nil, err
	}
	nSlots := len(wire.IDs)
	if len(wire.Alive) != nSlots || len(wire.Layers) != nSlots {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: %d ids, %d alive, %d layer counts",
			nSlots, len(wire.Alive), len(wire.Layers))
	}
	h.nodes = make([]hnswNode, nSlots)
	ci, li := 0, 0
	for i := 0; i < nSlots; i++ {
		n := &h.nodes[i]
		n.id, n.alive = wire.IDs[i], wire.Alive[i]
		h.setAliveBit(uint32(i), n.alive)
		layers := int(wire.Layers[i])
		if layers < 0 || ci+layers > len(wire.Counts) {
			return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: layer counts overrun at slot %d", i)
		}
		if layers > 0 {
			n.links = make([][]uint32, layers)
			for l := 0; l < layers; l++ {
				cnt := int(wire.Counts[ci])
				ci++
				if cnt < 0 || li+cnt > len(wire.Links) {
					return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: link stream overrun at slot %d", i)
				}
				n.links[l] = wire.Links[li : li+cnt : li+cnt]
				for _, nb := range n.links[l] {
					if int(nb) >= nSlots {
						return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: link to slot %d of %d", nb, nSlots)
					}
					// A live linked node must occupy this layer, or the beam
					// would index past its link lists at query time (dead
					// targets are skipped before expansion, so they may have
					// dropped theirs).
					if wire.Alive[nb] && int(wire.Layers[nb]) <= l {
						return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: slot %d links to slot %d at layer %d beyond its %d layers",
							i, nb, l, wire.Layers[nb])
					}
				}
				li += cnt
			}
		}
		if n.alive {
			if layers < 1 {
				return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: live slot %d has no layers", i)
			}
			h.slotOf[n.id] = uint32(i)
			h.alive++
			// Mirror the store row into the graph slab (same precision, so
			// the representation copies bit for bit).
			ok := store.With(n.id, func(v *embstore.VecView) {
				switch h.prec {
				case embstore.F32:
					h.vecs32 = append(h.vecs32, v.F32...)
					h.norms = append(h.norms, v.Norm)
				case embstore.SQ8:
					h.codes = append(h.codes, v.Code...)
					h.side = append(h.side, sq8Side{scale: float32(v.Scale), offset: float32(v.Offset), norm: float32(v.Norm), codeSum: v.CodeSum})
				default:
					h.vecs = append(h.vecs, v.F64...)
					h.norms = append(h.norms, v.Norm)
				}
			})
			if !ok {
				return nil, fmt.Errorf("ann: hnsw load: node %d in graph but not in store (snapshot mismatch)", n.id)
			}
		} else {
			// Tombstoned slot: a dead zero row keeps slab indexing aligned.
			switch h.prec {
			case embstore.F32:
				h.vecs32 = extendSlab(h.vecs32, h.dim)
				h.norms = append(h.norms, 0)
			case embstore.SQ8:
				h.codes = extendSlab(h.codes, h.dim)
				h.side = append(h.side, sq8Side{})
			default:
				h.vecs = extendSlab(h.vecs, h.dim)
				h.norms = append(h.norms, 0)
			}
		}
	}
	if ci != len(wire.Counts) || li != len(wire.Links) {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: %d/%d counts and %d/%d links consumed",
			ci, len(wire.Counts), li, len(wire.Links))
	}
	if wire.Entry < -1 || wire.Entry >= nSlots ||
		(wire.Entry >= 0 && !h.nodes[wire.Entry].alive) ||
		(wire.Entry < 0) != (wire.MaxLevel < 0) {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: entry slot %d (max level %d)", wire.Entry, wire.MaxLevel)
	}
	// The search descent starts at maxLevel, so the entry point must
	// actually occupy that layer.
	if wire.Entry >= 0 && int(wire.Layers[wire.Entry]) != wire.MaxLevel+1 {
		return nil, fmt.Errorf("ann: hnsw load: corrupt snapshot: entry slot %d has %d layers, max level %d",
			wire.Entry, wire.Layers[wire.Entry], wire.MaxLevel)
	}
	// Membership was checked graph→store above; require the counts to
	// match too, or a stale snapshot over a newer, larger store would
	// load cleanly and silently exclude the extra vectors from every
	// search.
	if h.alive != store.Len() {
		return nil, fmt.Errorf("ann: hnsw load: graph indexes %d nodes but store holds %d (stale snapshot? rebuild)",
			h.alive, store.Len())
	}
	h.entry, h.maxLevel = wire.Entry, wire.MaxLevel
	return h, nil
}
