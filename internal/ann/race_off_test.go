//go:build !race

package ann

// raceEnabled reports whether the race detector is instrumenting this
// build (it adds bookkeeping allocations that break alloc assertions).
const raceEnabled = false
