package ann

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ehna/internal/datagen"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

func randomStore(t testing.TB, n, dim int, seed int64) *embstore.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := embstore.FromMatrix(tensor.Randn(n, dim, 1, rng), 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bruteForce recomputes top-k by full sort, independently of the heap
// implementation under test.
func bruteForce(s *embstore.Store, q []float64, k int, m Metric) []Result {
	qNorm := tensor.L2NormVec(q)
	var all []Result
	for _, id := range s.IDs() {
		v, _ := s.Get(id)
		all = append(all, Result{ID: id, Score: m.score(q, v, qNorm, tensor.L2NormVec(v))})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if worse(all[i], all[j]) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			return false
		}
	}
	return true
}

func TestExactMatchesBruteForce(t *testing.T) {
	for _, metric := range []Metric{Cosine, DotProduct} {
		s := randomStore(t, 200, 8, 1)
		e := NewExact(s, metric)
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 8)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			got, err := e.Search(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(s, q, 7, metric)
			if !sameResults(got, want) {
				t.Fatalf("%v: exact search %v != brute force %v", metric, got, want)
			}
		}
	}
}

func TestExactSearchBatchMatchesSearch(t *testing.T) {
	s := randomStore(t, 150, 6, 3)
	e := NewExact(s, Cosine)
	rng := rand.New(rand.NewSource(4))
	qs := make([][]float64, 9)
	for i := range qs {
		qs[i] = make([]float64, 6)
		for j := range qs[i] {
			qs[i][j] = rng.NormFloat64()
		}
	}
	batch, err := e.SearchBatch(context.Background(), qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := e.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(batch[i], single) {
			t.Fatalf("query %d: batch %v != single %v", i, batch[i], single)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s := randomStore(t, 10, 4, 5)
	for _, idx := range []Index{NewExact(s, Cosine), mustLSH(t, s, DefaultLSHConfig()), mustHNSW(t, s, DefaultHNSWConfig())} {
		if _, err := idx.Search([]float64{1, 2}, 3); err == nil {
			t.Fatal("wrong-dim query accepted")
		}
		if _, err := idx.Search([]float64{1, 2, 3, 4}, 0); err == nil {
			t.Fatal("k=0 accepted")
		}
	}
}

func TestKLargerThanStore(t *testing.T) {
	s := randomStore(t, 5, 4, 6)
	for _, idx := range []Index{NewExact(s, Cosine), mustLSH(t, s, DefaultLSHConfig()), mustHNSW(t, s, DefaultHNSWConfig())} {
		got, err := idx.Search([]float64{1, 0, 0, 0}, 50)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("got %d results, want all 5", len(got))
		}
	}
}

func mustLSH(t testing.TB, s *embstore.Store, cfg LSHConfig) *LSH {
	t.Helper()
	l, err := NewLSH(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLSHAddRemove(t *testing.T) {
	s := randomStore(t, 100, 8, 7)
	l := mustLSH(t, s, DefaultLSHConfig())

	// A vector added after construction must be findable: query with the
	// vector itself, its cosine with itself is 1 (the maximum).
	vec := make([]float64, 8)
	vec[0], vec[3] = 2, -1
	if err := l.Add(500, vec); err != nil {
		t.Fatal(err)
	}
	got, err := l.Search(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 500 {
		t.Fatalf("self-query after Add = %v, want id 500", got)
	}

	// Re-adding under the same id must not duplicate bucket entries:
	// remove then search must not return it.
	if err := l.Add(500, vec); err != nil {
		t.Fatal(err)
	}
	if !l.Remove(500) {
		t.Fatal("Remove(500) = false")
	}
	if l.Remove(500) {
		t.Fatal("second Remove(500) = true")
	}
	got, err = l.Search(vec, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == 500 {
			t.Fatal("removed id still returned")
		}
	}
}

func TestLSHFallsBackWhenSparse(t *testing.T) {
	// 3 stored vectors, k=3: the candidate set can't reach k without the
	// exact fallback when probing misses buckets.
	s := randomStore(t, 3, 4, 8)
	l := mustLSH(t, s, LSHConfig{Tables: 1, Bits: 16, Probes: 0})
	got, err := l.Search([]float64{1, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3 via exact fallback", len(got))
	}
}

// TestLSHRecallOnDatagenGraph is the acceptance gate for the serving
// subsystem: on embeddings for the datagen test graph, default-config
// LSH must reach mean recall@10 ≥ 0.9 against the exact index.
func TestLSHRecallOnDatagenGraph(t *testing.T) {
	g, err := datagen.Generate(datagen.Digg, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	emb := tensor.Randn(g.NumNodes(), 32, 1, rng)
	s, err := embstore.FromMatrix(emb, 8)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewExact(s, Cosine)
	lsh := mustLSH(t, s, DefaultLSHConfig())

	const k = 10
	nq := 50
	if nq > g.NumNodes() {
		nq = g.NumNodes()
	}
	var approx, truth [][]graph.NodeID
	for qi := 0; qi < nq; qi++ {
		q := emb.Row(qi)
		er, err := exact.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := lsh.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth = append(truth, ids(er))
		approx = append(approx, ids(lr))
	}
	recall, err := eval.MeanRecallAtK(approx, truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LSH recall@%d over %d queries on %d nodes: %.3f", k, nq, g.NumNodes(), recall)
	if recall < 0.9 {
		t.Fatalf("LSH recall@%d = %.3f < 0.9", k, recall)
	}
}

func ids(rs []Result) []graph.NodeID {
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func TestLSHConcurrentQueryAndMutate(t *testing.T) {
	s := randomStore(t, 300, 8, 10)
	l := mustLSH(t, s, DefaultLSHConfig())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			vec := make([]float64, 8)
			for i := 0; i < 200; i++ {
				for j := range vec {
					vec[j] = rng.NormFloat64()
				}
				switch rng.Intn(3) {
				case 0:
					_ = l.Add(graph.NodeID(rng.Intn(400)), vec)
				case 1:
					l.Remove(graph.NodeID(rng.Intn(400)))
				default:
					if _, err := l.Search(vec, 5); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestParseMetric(t *testing.T) {
	if m, err := ParseMetric("cosine"); err != nil || m != Cosine {
		t.Fatalf("cosine: %v %v", m, err)
	}
	if m, err := ParseMetric("dot"); err != nil || m != DotProduct {
		t.Fatalf("dot: %v %v", m, err)
	}
	if _, err := ParseMetric("euclid"); err == nil {
		t.Fatal("bad metric accepted")
	}
}
