package ann

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// flipCtx is a context whose entry check passes (Err returns nil the
// first time) but whose Done channel is already closed, so the only
// way a search can observe the cancellation is through the mid-scan
// cooperative polls. That makes "the search stopped at beam/scan
// granularity, not just at the front door" deterministic to assert.
type flipCtx struct {
	done     chan struct{}
	errCalls atomic.Int32
}

func newFlipCtx() *flipCtx {
	c := &flipCtx{done: make(chan struct{})}
	close(c.done)
	return c
}

func (c *flipCtx) Done() <-chan struct{} { return c.done }
func (c *flipCtx) Err() error {
	if c.errCalls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}
func (c *flipCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *flipCtx) Value(any) any               { return nil }

// TestSearchIntoCancelMidSearch runs every index type against a store
// large enough that a full scan is unmistakable, with a context that
// is only observable as canceled through the cooperative polls. A
// search that ignored cancellation would return k results and no
// error; the required behavior is context.Canceled and no results.
func TestSearchIntoCancelMidSearch(t *testing.T) {
	store := buildStore(t, 5000, 16)
	lsh, err := NewLSH(store, DefaultLSHConfig())
	if err != nil {
		t.Fatal(err)
	}
	hnsw, err := BuildHNSW(store, DefaultHNSWConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(hnsw)
	q := make([]float64, 16)
	for i := range q {
		q[i] = float64(i) - 8
	}
	for name, idx := range map[string]Index{
		"exact":   NewExact(store, Cosine),
		"lsh":     lsh,
		"hnsw":    hnsw,
		"swapper": sw,
	} {
		dst := make([]Result, 0, 10)
		got, err := idx.SearchInto(newFlipCtx(), dst, q, 10)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: returned %d results from a canceled search", name, len(got))
		}
	}
}

// TestSearchIntoExpiredAtEntry checks the front door: a context that
// is already expired returns its error before any scanning happens.
func TestSearchIntoExpiredAtEntry(t *testing.T) {
	store := buildStore(t, 100, 8)
	idx := NewExact(store, Cosine)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := make([]float64, 8)
	if _, err := idx.SearchInto(ctx, nil, q, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchIntoCancelConcurrent cancels a live context while queries
// are in flight and checks every query either completes with valid
// results or reports the cancellation — never a torn in-between.
func TestSearchIntoCancelConcurrent(t *testing.T) {
	store := buildStore(t, 3000, 16)
	idx := NewExact(store, Cosine)
	q := make([]float64, 16)
	for i := range q {
		q[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			dst := make([]Result, 0, 10)
			for i := 0; i < 200; i++ {
				got, err := idx.SearchInto(ctx, dst, q, 10)
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						done <- err
						return
					}
					done <- nil
					return
				}
				if len(got) != 10 {
					done <- errors.New("short result set without error")
					return
				}
			}
			done <- nil
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSearchBatchCanceled checks the batch path propagates ctx errors.
func TestSearchBatchCanceled(t *testing.T) {
	store := buildStore(t, 2000, 16)
	idx := NewExact(store, Cosine)
	qs := make([][]float64, 16)
	for i := range qs {
		qs[i] = make([]float64, 16)
	}
	if _, err := idx.SearchBatch(newFlipCtx(), qs, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
