// Random-hyperplane LSH (Charikar's SimHash family): each table hashes a
// vector to a B-bit signature whose bit b is the sign of the dot product
// with a random Gaussian hyperplane. Vectors with small angular distance
// collide with high probability, so a query only scores the union of its
// own bucket plus Hamming-distance-1 probe buckets across T tables — a
// candidate set orders of magnitude smaller than the store — and the
// exact metric re-ranks that set. When probing yields fewer than k
// candidates the search transparently falls back to a brute-force scan,
// so results never silently degrade on sparse regions.
//
// Query-path engineering (see BENCH_PR2.json for the measured effect):
// the query's L2 norm is computed once per query and threaded through
// CosineWithNorms rather than recomputed per candidate; candidates are
// deduplicated by sort instead of a per-query map; re-ranking groups
// candidates by store shard so each shard lock is taken once per query
// instead of once per candidate; and signature/candidate buffers come
// from the pooled scratch, leaving the steady-state query path
// allocation-free (SearchInto).
package ann

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// LSHConfig parameterizes the index. Recall grows with Tables and
// Probes; query cost grows with the candidate-set size they induce.
// Bits trades bucket occupancy (speed) against collision probability
// (recall): more bits → smaller buckets → faster but lower recall.
type LSHConfig struct {
	// Tables is the number of independent hash tables (default 16).
	Tables int
	// Bits is the signature width per table, at most 30 (default 8).
	Bits int
	// Probes is how many Hamming-1 neighbor buckets to probe per table
	// in addition to the home bucket, at most Bits (default Bits).
	Probes int
	// Seed fixes the hyperplane draw for reproducible indexes.
	Seed int64
	// Metric is the re-ranking similarity (default Cosine). The hash
	// family is angular, so Cosine recall is the calibrated one;
	// DotProduct reuses the same candidates and re-ranks by raw inner
	// product, which works well when vector norms are comparable.
	Metric Metric
}

// DefaultLSHConfig returns the configuration used by cmd/ehnad unless
// overridden. 16 tables × 8 bits with full Hamming-1 probing measures
// recall@10 ≈ 0.94 at 1k nodes and ≈ 0.98 at 10k nodes on isotropic
// Gaussian embeddings (the hardest case — real embeddings cluster and
// recall rises). Raise Bits as the store grows to keep buckets small
// (each +1 bit roughly halves candidates and trades away some recall).
func DefaultLSHConfig() LSHConfig {
	return LSHConfig{Tables: 16, Bits: 8, Probes: 8, Seed: 1, Metric: Cosine}
}

func (c *LSHConfig) fill() error {
	if c.Tables <= 0 {
		c.Tables = 16
	}
	if c.Bits <= 0 {
		c.Bits = 8
	}
	if c.Bits > 30 {
		return fmt.Errorf("ann: lsh bits %d > 30", c.Bits)
	}
	if c.Probes < 0 || c.Probes > c.Bits {
		c.Probes = c.Bits
	}
	return nil
}

// LSH is a multi-table random-hyperplane index over an embstore. The
// store remains the source of truth for vectors; the tables only map
// signatures to candidate IDs. Safe for concurrent use.
type LSH struct {
	store *embstore.Store
	cfg   LSHConfig
	// planes holds Tables×Bits hyperplanes, row-major, each of store dim.
	planes *tensor.Matrix
	// fallback is the prebuilt brute-force index used when probing
	// surfaces fewer than k candidates.
	fallback *Exact

	mu     sync.RWMutex
	tables []map[uint32][]graph.NodeID
	sigs   map[graph.NodeID][]uint32 // per-ID signatures, for Remove/re-Add
}

// NewLSH builds the index over store, inserting every vector already
// present. The hyperplanes are drawn once from cfg.Seed; Add/Remove keep
// the tables in sync with the store afterwards.
func NewLSH(store *embstore.Store, cfg LSHConfig) (*LSH, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &LSH{
		store:    store,
		cfg:      cfg,
		planes:   tensor.Randn(cfg.Tables*cfg.Bits, store.Dim(), 1, rng),
		fallback: NewExact(store, cfg.Metric),
		tables:   make([]map[uint32][]graph.NodeID, cfg.Tables),
		sigs:     make(map[graph.NodeID][]uint32, store.Len()),
	}
	for t := range l.tables {
		l.tables[t] = make(map[uint32][]graph.NodeID)
	}
	// Hash whatever the store holds, dequantized: signatures are sign
	// bits of hyperplane dots, far coarser than any slab precision, so
	// bucketing is insensitive to the reconstruction error.
	buf := make([]float64, store.Dim())
	for _, id := range store.IDs() {
		store.With(id, func(v *embstore.VecView) {
			v.DequantizeInto(buf)
			l.insertLocked(id, l.signatures(buf, nil))
		})
	}
	return l, nil
}

// Config returns the (filled-in) configuration.
func (l *LSH) Config() LSHConfig { return l.cfg }

// Metric reports the re-ranking similarity metric.
func (l *LSH) Metric() Metric { return l.cfg.Metric }

// signatures computes the per-table signatures of vec into buf
// (grown as needed and returned re-sliced).
func (l *LSH) signatures(vec []float64, buf []uint32) []uint32 {
	if cap(buf) < l.cfg.Tables {
		buf = make([]uint32, l.cfg.Tables)
	}
	buf = buf[:l.cfg.Tables]
	for t := 0; t < l.cfg.Tables; t++ {
		var sig uint32
		base := t * l.cfg.Bits
		for b := 0; b < l.cfg.Bits; b++ {
			if vecmath.Dot(l.planes.Row(base+b), vec) >= 0 {
				sig |= 1 << uint(b)
			}
		}
		buf[t] = sig
	}
	return buf
}

// insertLocked records id under sigs in every table, taking ownership
// of sigs. Caller must hold l.mu (NewLSH is the one exception: it runs
// before the index is shared, so it calls this lock-free).
func (l *LSH) insertLocked(id graph.NodeID, sigs []uint32) {
	for t, sig := range sigs {
		l.tables[t][sig] = append(l.tables[t][sig], id)
	}
	l.sigs[id] = sigs
}

// removeLocked drops id from every table. Caller holds l.mu.
func (l *LSH) removeLocked(id graph.NodeID) bool {
	sigs, ok := l.sigs[id]
	if !ok {
		return false
	}
	for t, sig := range sigs {
		bucket := l.tables[t][sig]
		for i, b := range bucket {
			if b == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(l.tables[t], sig)
		} else {
			l.tables[t][sig] = bucket
		}
	}
	delete(l.sigs, id)
	return true
}

// Add upserts the vector into the store and rehashes it in every table.
// The store mutation happens under l.mu so concurrent writers to the
// same ID cannot leave the tables bucketing a vector the store no
// longer holds (lock order is always l.mu → shard lock; queries take
// the shard locks only after releasing l.mu, so this cannot deadlock).
func (l *LSH) Add(id graph.NodeID, vec []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.store.Upsert(id, vec); err != nil {
		return err
	}
	l.removeLocked(id)
	l.insertLocked(id, l.signatures(vec, nil))
	return nil
}

// Remove deletes the vector from the store and the tables, atomically
// with respect to other Add/Remove calls.
func (l *LSH) Remove(id graph.NodeID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	inStore := l.store.Delete(id)
	return l.removeLocked(id) || inStore
}

// collectCandidates appends the IDs of every probed bucket across all
// tables into sc.cand (with duplicates), then deduplicates in place.
// Dense ID spaces use the O(1)-per-candidate epoch-stamp array; IDs at
// or above stampCap fall back to sort-and-compact. Returns the
// deduplicated candidate slice (owned by sc).
func (l *LSH) collectCandidates(sc *queryScratch, q []float64) []graph.NodeID {
	sc.sigs = l.signatures(q, sc.sigs)
	sc.cand = sc.cand[:0]
	var maxID graph.NodeID
	l.mu.RLock()
	for t, sig := range sc.sigs {
		table := l.tables[t]
		for _, id := range table[sig] {
			if id > maxID {
				maxID = id
			}
			sc.cand = append(sc.cand, id)
		}
		for b := 0; b < l.cfg.Probes; b++ {
			for _, id := range table[sig^(1<<uint(b))] {
				if id > maxID {
					maxID = id
				}
				sc.cand = append(sc.cand, id)
			}
		}
	}
	l.mu.RUnlock()

	if len(sc.cand) > 0 && int(maxID) < stampCap {
		if int(maxID) >= len(sc.stamp) {
			grown := make([]uint32, int(maxID)+1)
			copy(grown, sc.stamp)
			sc.stamp = grown
		}
		sc.epoch++
		if sc.epoch == 0 { // wrapped: stale stamps could collide
			clear(sc.stamp)
			sc.epoch = 1
		}
		w := 0
		for _, id := range sc.cand {
			if sc.stamp[id] != sc.epoch {
				sc.stamp[id] = sc.epoch
				sc.cand[w] = id
				w++
			}
		}
		sc.cand = sc.cand[:w]
		return sc.cand
	}
	slices.Sort(sc.cand)
	sc.cand = slices.Compact(sc.cand)
	return sc.cand
}

// Search probes the hash tables for candidates and re-ranks them with
// the exact metric. If fewer than k candidates surface, it falls back to
// a brute-force scan so callers always get min(k, Len) results.
func (l *LSH) Search(q []float64, k int) ([]Result, error) {
	return l.SearchInto(context.Background(), nil, q, k)
}

// SearchInto is Search writing the results into dst: the
// zero-allocation query path. Candidates are ranked by the precision-
// dispatched kernels; on SIMD backends sq8 candidates run through the
// two-stage symmetric ranking (integer kernel into a rerank·k-wide
// heap, asymmetric re-rank of the survivors), on scalar backends the
// asymmetric kernel ranks every candidate directly. Cancellation is
// polled between the probe and re-rank stages and between shard
// groups of the re-rank.
func (l *LSH) SearchInto(ctx context.Context, dst []Result, q []float64, k int) ([]Result, error) {
	if err := checkQuery(l.store, q, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	annQueriesLSH.Inc()
	start := time.Now()
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	cand := l.collectCandidates(sc, q)
	annStageLSHCand.ObserveSince(start)
	if len(cand) < k {
		annFallbacks.Inc()
		return l.fallback.SearchInto(ctx, dst, q, k)
	}
	rerankStart := time.Now()

	// Group candidates by store shard so each shard read lock is taken
	// once per query rather than once per candidate.
	nShards := l.store.NumShards()
	for len(sc.byShard) < nShards {
		sc.byShard = append(sc.byShard, nil)
	}
	byShard := sc.byShard[:nShards]
	for i := range byShard {
		byShard[i] = byShard[i][:0]
	}
	for _, id := range cand {
		si := l.store.ShardOf(id)
		byShard[si] = append(byShard[si], id)
	}

	sc.ctx.init(l.store, q) // query norm (and narrowed/quantized forms) once per query
	sc.ctx.done = ctx.Done()
	qc := &sc.ctx
	if qc.canceled() {
		return dst[:0], ctx.Err()
	}
	if qc.sym {
		// Symmetric first stage: the integer kernel ranks every candidate
		// into a widened heap; the asymmetric kernel re-scores the
		// survivors (rerankWide regroups them by shard itself — byShard
		// is free for reuse once this loop finishes).
		sc.wide.reset(candidateK(qc.prec, k))
		w := &sc.wide
		for si, ids := range byShard {
			if len(ids) == 0 {
				continue
			}
			if qc.canceled() {
				return dst[:0], ctx.Err()
			}
			l.store.WithShard(si, ids, func(id graph.NodeID, v *embstore.VecView) {
				w.push(Result{ID: id, Score: l.cfg.Metric.symScoreView(qc, v)})
			})
		}
		dst = appendResults(dst, rerankWide(l.store, l.cfg.Metric, sc, k))
		annStageLSHRerank.ObserveSince(rerankStart)
		return dst, nil
	}
	sc.top.reset(k)
	t := &sc.top
	for si, ids := range byShard {
		if len(ids) == 0 {
			continue
		}
		if qc.canceled() {
			return dst[:0], ctx.Err()
		}
		l.store.WithShard(si, ids, func(id graph.NodeID, v *embstore.VecView) {
			t.push(Result{ID: id, Score: l.cfg.Metric.quickScoreView(qc, v)})
		})
	}
	dst = appendResults(dst, t.sorted())
	annStageLSHRerank.ObserveSince(rerankStart)
	return dst, nil
}

// SearchBatch answers queries across a worker pool.
func (l *LSH) SearchBatch(ctx context.Context, qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		return l.SearchInto(ctx, nil, q, k)
	})
}
