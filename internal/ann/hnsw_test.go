package ann

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sync"
	"testing"

	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

func mustHNSW(t testing.TB, s *embstore.Store, cfg HNSWConfig) *HNSW {
	t.Helper()
	h, err := BuildHNSW(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// recallVsExact measures mean recall@k of idx against the exact index
// over nq stored-vector queries.
func recallVsExact(t testing.TB, s *embstore.Store, idx Index, emb *tensor.Matrix, nq, k int) float64 {
	t.Helper()
	exact := NewExact(s, idx.Metric())
	var approx, truth [][]graph.NodeID
	for qi := 0; qi < nq; qi++ {
		q := emb.Row(qi)
		er, err := exact.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := idx.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth = append(truth, ids(er))
		approx = append(approx, ids(ar))
	}
	recall, err := eval.MeanRecallAtK(approx, truth)
	if err != nil {
		t.Fatal(err)
	}
	return recall
}

// TestHNSWSelfQuery: every stored vector must find itself as its own
// nearest neighbor (cosine of a vector with itself is the maximum).
func TestHNSWSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	emb := tensor.Randn(500, 16, 1, rng)
	s, err := embstore.FromMatrix(emb, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHNSW(t, s, DefaultHNSWConfig())
	for qi := 0; qi < 50; qi++ {
		got, err := h.Search(emb.Row(qi), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].ID != graph.NodeID(qi) {
			t.Fatalf("self-query of node %d = %v", qi, got)
		}
	}
}

// TestHNSWRecallSmall is the fast recall guard at 2k vectors.
func TestHNSWRecallSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	emb := tensor.Randn(2000, 32, 1, rng)
	s, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHNSW(t, s, DefaultHNSWConfig())
	recall := recallVsExact(t, s, h, emb, 50, 10)
	t.Logf("HNSW recall@10 over 50 queries on 2000 nodes: %.3f", recall)
	if recall < 0.95 {
		t.Fatalf("HNSW recall@10 = %.3f < 0.95", recall)
	}
}

// TestHNSWRecall100k is the acceptance gate: at 100k isotropic Gaussian
// vectors (the hardest case for a proximity graph) the default
// configuration must hold recall@10 ≥ 0.95 against exact search.
func TestHNSWRecall100k(t *testing.T) {
	if raceEnabled {
		t.Skip("100k graph build is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("100k graph build skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(13))
	emb := tensor.Randn(100_000, 32, 1, rng)
	s, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHNSW(t, s, DefaultHNSWConfig())
	recall := recallVsExact(t, s, h, emb, 50, 10)
	t.Logf("HNSW recall@10 over 50 queries on 100k nodes: %.3f", recall)
	if recall < 0.95 {
		t.Fatalf("HNSW recall@10 = %.3f < 0.95", recall)
	}
}

func TestHNSWAddRemove(t *testing.T) {
	s := randomStore(t, 100, 8, 14)
	h := mustHNSW(t, s, DefaultHNSWConfig())

	// A vector added after construction must be findable by itself.
	vec := make([]float64, 8)
	vec[0], vec[3] = 2, -1
	if err := h.Add(500, vec); err != nil {
		t.Fatal(err)
	}
	got, err := h.Search(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 500 {
		t.Fatalf("self-query after Add = %v, want id 500", got)
	}

	// Replacing the vector must not leave a duplicate: remove once and
	// the id must be gone.
	if err := h.Add(500, vec); err != nil {
		t.Fatal(err)
	}
	if !h.Remove(500) {
		t.Fatal("Remove(500) = false")
	}
	if h.Remove(500) {
		t.Fatal("second Remove(500) = true")
	}
	got, err = h.Search(vec, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == 500 {
			t.Fatal("removed id still returned")
		}
	}
}

// TestHNSWRemoveRepair churns a third of the graph out and checks the
// tombstone repair keeps the survivors reachable: searches must still
// return full result sets with high recall, never a removed id.
func TestHNSWRemoveRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	emb := tensor.Randn(1000, 16, 1, rng)
	s, err := embstore.FromMatrix(emb, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHNSW(t, s, DefaultHNSWConfig())
	for id := 0; id < 300; id++ {
		if !h.Remove(graph.NodeID(id)) {
			t.Fatalf("Remove(%d) = false", id)
		}
	}
	if h.Len() != 700 || s.Len() != 700 {
		t.Fatalf("after churn: graph %d, store %d, want 700", h.Len(), s.Len())
	}
	var approx, truth [][]graph.NodeID
	exact := NewExact(s, Cosine)
	for qi := 300; qi < 350; qi++ {
		q := emb.Row(qi)
		hr, err := h.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hr) != 10 {
			t.Fatalf("query %d: %d results, want 10", qi, len(hr))
		}
		for _, r := range hr {
			if r.ID < 300 {
				t.Fatalf("query %d returned removed id %d", qi, r.ID)
			}
		}
		er, err := exact.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		truth = append(truth, ids(er))
		approx = append(approx, ids(hr))
	}
	recall, err := eval.MeanRecallAtK(approx, truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recall@10 after removing 300/1000 nodes: %.3f", recall)
	if recall < 0.9 {
		t.Fatalf("post-churn recall@10 = %.3f < 0.9", recall)
	}
}

// TestHNSWEntryRemoval removes the entry point (and everything else,
// one by one) and checks the fallback re-entry selection keeps the
// index consistent down to the empty graph.
func TestHNSWEntryRemoval(t *testing.T) {
	s := randomStore(t, 60, 8, 16)
	h := mustHNSW(t, s, DefaultHNSWConfig())
	q := make([]float64, 8)
	q[0] = 1
	for n := 60; n > 0; n-- {
		got, err := h.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := 5
		if n < want {
			want = n
		}
		if len(got) != want {
			t.Fatalf("with %d nodes: %d results, want %d", n, len(got), want)
		}
		// Remove the current best hit — frequently the entry point's
		// neighborhood, and eventually the entry itself.
		if !h.Remove(got[0].ID) {
			t.Fatalf("Remove(%d) = false", got[0].ID)
		}
	}
	got, err := h.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty graph returned %v", got)
	}
}

func TestHNSWConcurrentQueryAndMutate(t *testing.T) {
	s := randomStore(t, 300, 8, 17)
	h := mustHNSW(t, s, DefaultHNSWConfig())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			vec := make([]float64, 8)
			for i := 0; i < 200; i++ {
				for j := range vec {
					vec[j] = rng.NormFloat64()
				}
				switch rng.Intn(3) {
				case 0:
					if err := h.Add(graph.NodeID(rng.Intn(400)), vec); err != nil {
						t.Error(err)
						return
					}
				case 1:
					h.Remove(graph.NodeID(rng.Intn(400)))
				default:
					if _, err := h.Search(vec, 5); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestHNSWSnapshotRoundTrip checks SaveGraph → LoadHNSWGraph restores a
// graph that answers every query identically to the original — the
// boot-without-rebuild path the daemon uses.
func TestHNSWSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	emb := tensor.Randn(1200, 16, 1, rng)
	s, err := embstore.FromMatrix(emb, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHNSW(t, s, DefaultHNSWConfig())
	// Mutate a little so the snapshot carries tombstones too.
	for id := 0; id < 20; id++ {
		h.Remove(graph.NodeID(id))
	}
	var buf bytes.Buffer
	if err := h.SaveGraph(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSWGraph(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != h.Len() {
		t.Fatalf("loaded graph has %d live nodes, original %d", loaded.Len(), h.Len())
	}
	if loaded.Config() != h.Config() {
		t.Fatalf("loaded config %+v != %+v", loaded.Config(), h.Config())
	}
	for qi := 0; qi < 30; qi++ {
		q := emb.Row(100 + qi)
		want, err := h.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("query %d: loaded %v != original %v", qi, got, want)
		}
	}

	// A snapshot over the wrong store must be rejected, not served.
	empty, err := embstore.New(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHNSWGraph(bytes.NewReader(buf.Bytes()), empty); err == nil {
		t.Fatal("snapshot accepted over a store missing its nodes")
	}
}

// TestHNSWSetEfSearch checks the recall/latency dial is applied (a tiny
// beam must still return k results via the beam or the fallback).
func TestHNSWSetEfSearch(t *testing.T) {
	s := randomStore(t, 400, 8, 19)
	h := mustHNSW(t, s, DefaultHNSWConfig())
	h.SetEfSearch(1)
	if got := h.Config().EfSearch; got != 1 {
		t.Fatalf("EfSearch = %d after SetEfSearch(1)", got)
	}
	q := make([]float64, 8)
	q[1] = 1
	got, err := h.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("%d results with ef=1, want 10 (beam runs at max(ef,k))", len(got))
	}
	h.SetEfSearch(0) // ignored
	if got := h.Config().EfSearch; got != 1 {
		t.Fatalf("SetEfSearch(0) changed EfSearch to %d", got)
	}
}

// TestHNSWLoadRejectsCorrupt locks in the structural validation: a
// snapshot whose entry/levels/links are inconsistent must be rejected
// at load, not crash the first query.
func TestHNSWLoadRejectsCorrupt(t *testing.T) {
	s := randomStore(t, 50, 8, 20)
	base := func() hnswWire {
		h := mustHNSW(t, s, DefaultHNSWConfig())
		var buf bytes.Buffer
		if err := h.SaveGraph(&buf); err != nil {
			t.Fatal(err)
		}
		var w hnswWire
		if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
			t.Fatal(err)
		}
		return w
	}
	cases := map[string]func(*hnswWire){
		"version":              func(w *hnswWire) { w.Version = 99 },
		"entry out of range":   func(w *hnswWire) { w.Entry = len(w.IDs) },
		"entry below maxlevel": func(w *hnswWire) { w.MaxLevel = int(w.Layers[w.Entry]) + 3 },
		"entry without level":  func(w *hnswWire) { w.Entry = -1 },
		"live node no layers":  func(w *hnswWire) { w.Layers[w.Entry] = 0; w.MaxLevel = -1; w.Entry = -1 },
		"link out of range":    func(w *hnswWire) { w.Links[0] = uint32(len(w.IDs)) },
		"truncated links":      func(w *hnswWire) { w.Links = w.Links[:len(w.Links)-1] },
	}
	for name, corrupt := range cases {
		w := base()
		corrupt(&w)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadHNSWGraph(&buf, s); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}

	// The unmutated snapshot must still load.
	w := base()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHNSWGraph(&buf, s); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
}
