// Package ann provides top-k nearest-neighbor indexes over an embstore:
// a brute-force Exact index that scans shards in parallel, and a
// random-hyperplane LSH index (see lsh.go) behind the same Index
// interface. Scores are similarities — higher is closer — under either
// cosine or raw dot-product, the two metrics the paper's evaluation uses
// (network reconstruction ranks pairs by dot product; attention weights
// are cosine-shaped).
//
// The single-query hot path is allocation-free: all per-query state
// (top-k heaps, LSH signature and candidate buffers) comes from a
// pooled scratch, the scoring kernels are vecmath's unrolled loops, and
// SearchInto writes results into a caller-owned slice. Search is a thin
// veneer that copies the results out (one allocation).
package ann

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

// Metric selects the similarity function.
type Metric int

const (
	// Cosine scores by the angle between vectors, ignoring magnitude.
	Cosine Metric = iota
	// DotProduct scores by the raw inner product, the ranking the
	// reconstruction experiment (Figure 4) uses.
	DotProduct
)

// String returns the metric's name.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case DotProduct:
		return "dot"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric converts a config string ("cosine" or "dot") to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine":
		return Cosine, nil
	case "dot":
		return DotProduct, nil
	default:
		return 0, fmt.Errorf("ann: unknown metric %q (want cosine or dot)", s)
	}
}

// score computes the similarity of q and v. qNorm and vNorm are the
// precomputed L2 norms: the store maintains vNorm on write and callers
// compute qNorm once per query, so the scan never recomputes either.
func (m Metric) score(q, v []float64, qNorm, vNorm float64) float64 {
	if m == DotProduct {
		return vecmath.Dot(q, v)
	}
	return vecmath.CosineWithNorms(q, v, qNorm, vNorm)
}

// Result is one query hit. Higher Score means more similar.
type Result struct {
	ID    graph.NodeID `json:"id"`
	Score float64      `json:"score"`
}

// Index answers top-k similarity queries over a mutable vector set.
// Implementations are safe for concurrent use.
type Index interface {
	// Add inserts or replaces a vector in the underlying store and the
	// index structures.
	Add(id graph.NodeID, vec []float64) error
	// Remove deletes a vector, reporting whether it was present.
	Remove(id graph.NodeID) bool
	// Search returns up to k results most similar to q, sorted by
	// descending score (ties broken by ascending ID).
	Search(q []float64, k int) ([]Result, error)
	// SearchInto is Search writing into dst (grown as needed and
	// returned re-sliced): the zero-allocation single-query path.
	SearchInto(dst []Result, q []float64, k int) ([]Result, error)
	// SearchBatch answers many queries, executing them in parallel.
	SearchBatch(qs [][]float64, k int) ([][]Result, error)
	// Metric reports the similarity metric the index ranks by.
	Metric() Metric
}

// topK is a fixed-capacity min-heap on (score, id): the root is the
// current worst hit, evicted when something better arrives. Ordering
// matches Result sorting so results are deterministic under score ties.
type topK struct {
	k    int
	heap []Result
}

// reset prepares t for a query of size k, reusing the heap's capacity.
func (t *topK) reset(k int) {
	t.k = k
	t.heap = t.heap[:0]
}

// worse reports whether a ranks below b (lower score, or same score and
// higher ID).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func (t *topK) push(r Result) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, r)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(t.heap[i], t.heap[p]) {
				break
			}
			t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
			i = p
		}
		return
	}
	if !worse(t.heap[0], r) {
		return
	}
	t.heap[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		min := i
		if l < len(t.heap) && worse(t.heap[l], t.heap[min]) {
			min = l
		}
		if rr < len(t.heap) && worse(t.heap[rr], t.heap[min]) {
			min = rr
		}
		if min == i {
			return
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// resultCmp orders results descending by score, ties ascending by ID
// (the inverse of worse). A package-level comparator keeps the sort
// allocation-free, unlike a sort.Slice closure.
func resultCmp(a, b Result) int {
	switch {
	case worse(b, a):
		return -1
	case worse(a, b):
		return 1
	default:
		return 0
	}
}

// sorted orders the heap into descending-score order in place and
// returns it. The slice aliases the heap storage; callers that outlive
// the scratch must copy.
func (t *topK) sorted() []Result {
	slices.SortFunc(t.heap, resultCmp)
	return t.heap
}

// queryScratch is the pooled per-query working state shared by both
// index types. Everything is capacity-reused across queries, making
// the steady-state single-query path allocation-free.
type queryScratch struct {
	top     topK
	sigs    []uint32         // LSH per-table signatures
	cand    []graph.NodeID   // LSH candidate IDs (with duplicates)
	byShard [][]graph.NodeID // LSH candidates grouped by store shard

	// stamp/epoch implement O(1) candidate deduplication for dense ID
	// spaces: stamp[id] == epoch marks id as already seen this query.
	// Bounded by stampCap; queries over sparser ID spaces fall back to
	// sort-and-compact (see LSH.collectCandidates).
	stamp []uint32
	epoch uint32
}

// stampCap bounds the epoch-stamp dedup array (16M IDs ≈ 64 MB per
// pooled scratch at the limit). Node IDs are dense row indices in this
// system, so real stores sit far below the cap.
const stampCap = 1 << 24

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// checkQuery validates a query against the store.
func checkQuery(store *embstore.Store, q []float64, k int) error {
	if len(q) != store.Dim() {
		return fmt.Errorf("ann: query dim %d, store dim %d", len(q), store.Dim())
	}
	if k < 1 {
		return fmt.Errorf("ann: k %d < 1", k)
	}
	return nil
}

// appendResults copies rs onto dst[:0], growing dst as needed.
func appendResults(dst, rs []Result) []Result {
	return append(dst[:0], rs...)
}

// Exact is the brute-force index: every query scans the whole store.
// With more than one CPU the shards are scanned in parallel; on a
// single CPU (or a single shard) the scan runs sequentially through
// pooled scratch, which is both faster and allocation-free. It is the
// ground truth LSH recall is measured against and the sane default
// below ~100k vectors.
type Exact struct {
	store  *embstore.Store
	metric Metric
}

// NewExact builds a brute-force index over store.
func NewExact(store *embstore.Store, metric Metric) *Exact {
	return &Exact{store: store, metric: metric}
}

// Metric reports the similarity metric.
func (e *Exact) Metric() Metric { return e.metric }

// Add upserts into the backing store (the scan has no auxiliary state).
func (e *Exact) Add(id graph.NodeID, vec []float64) error { return e.store.Upsert(id, vec) }

// Remove deletes from the backing store.
func (e *Exact) Remove(id graph.NodeID) bool { return e.store.Delete(id) }

// scanSeq scans every shard sequentially into the scratch heap and
// returns the sorted results (aliasing scratch storage).
func (e *Exact) scanSeq(sc *queryScratch, q []float64, qNorm float64, k int) []Result {
	sc.top.reset(k)
	t := &sc.top
	for sIdx := 0; sIdx < e.store.NumShards(); sIdx++ {
		e.store.RangeShard(sIdx, func(id graph.NodeID, vec []float64, norm float64) bool {
			t.push(Result{ID: id, Score: e.metric.score(q, vec, qNorm, norm)})
			return true
		})
	}
	return t.sorted()
}

// Search scans the store and returns the freshly allocated top-k.
func (e *Exact) Search(q []float64, k int) ([]Result, error) {
	out, err := e.SearchInto(nil, q, k)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchInto scans the store, writing the top-k into dst.
func (e *Exact) SearchInto(dst []Result, q []float64, k int) ([]Result, error) {
	if err := checkQuery(e.store, q, k); err != nil {
		return nil, err
	}
	qNorm := vecmath.Norm(q)
	nShards := e.store.NumShards()
	if runtime.GOMAXPROCS(0) == 1 || nShards == 1 {
		sc := scratchPool.Get().(*queryScratch)
		dst = appendResults(dst, e.scanSeq(sc, q, qNorm, k))
		scratchPool.Put(sc)
		return dst, nil
	}
	// Parallel scan: one goroutine per shard, merged through a heap.
	partial := make([]*topK, nShards)
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < nShards; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			t := &topK{k: k, heap: make([]Result, 0, k)}
			e.store.RangeShard(sIdx, func(id graph.NodeID, vec []float64, norm float64) bool {
				t.push(Result{ID: id, Score: e.metric.score(q, vec, qNorm, norm)})
				return true
			})
			partial[sIdx] = t
		}(sIdx)
	}
	wg.Wait()
	merged := &topK{k: k, heap: make([]Result, 0, k)}
	for _, t := range partial {
		for _, r := range t.heap {
			merged.push(r)
		}
	}
	return appendResults(dst, merged.sorted()), nil
}

// SearchBatch runs queries across a GOMAXPROCS-sized worker pool. Each
// query scans shards sequentially (the pool already saturates cores).
func (e *Exact) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		if err := checkQuery(e.store, q, k); err != nil {
			return nil, err
		}
		sc := scratchPool.Get().(*queryScratch)
		out := appendResults(nil, e.scanSeq(sc, q, vecmath.Norm(q), k))
		scratchPool.Put(sc)
		return out, nil
	})
}

// ParallelFor runs fn(i) for every i in [0, n) across min(GOMAXPROCS,
// n) workers pulling from a shared atomic cursor; n ≤ 1 (or a single
// CPU) runs inline with no goroutines. The one fan-out primitive behind
// batch queries, HNSW bulk builds and the daemon's batcher flushes.
func ParallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// batchSearch fans qs out over ParallelFor. The first error wins;
// results stay index-aligned with qs.
func batchSearch(qs [][]float64, k int, search func(q []float64) ([]Result, error)) ([][]Result, error) {
	out := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	ParallelFor(len(qs), func(i int) {
		out[i], errs[i] = search(qs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
