// Package ann provides top-k nearest-neighbor indexes over an embstore:
// a brute-force Exact index that scans shards in parallel, and a
// random-hyperplane LSH index (see lsh.go) behind the same Index
// interface. Scores are similarities — higher is closer — under either
// cosine or raw dot-product, the two metrics the paper's evaluation uses
// (network reconstruction ranks pairs by dot product; attention weights
// are cosine-shaped).
package ann

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// Metric selects the similarity function.
type Metric int

const (
	// Cosine scores by the angle between vectors, ignoring magnitude.
	Cosine Metric = iota
	// DotProduct scores by the raw inner product, the ranking the
	// reconstruction experiment (Figure 4) uses.
	DotProduct
)

// String returns the metric's name.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case DotProduct:
		return "dot"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric converts a config string ("cosine" or "dot") to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine":
		return Cosine, nil
	case "dot":
		return DotProduct, nil
	default:
		return 0, fmt.Errorf("ann: unknown metric %q (want cosine or dot)", s)
	}
}

// score computes the similarity of q and v. qNorm and vNorm are the
// precomputed L2 norms (only used for Cosine; the store maintains vNorm
// on write so the scan never recomputes it).
func (m Metric) score(q, v []float64, qNorm, vNorm float64) float64 {
	d := tensor.DotVec(q, v)
	if m == DotProduct {
		return d
	}
	if qNorm == 0 || vNorm == 0 {
		return 0
	}
	return d / (qNorm * vNorm)
}

// Result is one query hit. Higher Score means more similar.
type Result struct {
	ID    graph.NodeID `json:"id"`
	Score float64      `json:"score"`
}

// Index answers top-k similarity queries over a mutable vector set.
// Implementations are safe for concurrent use.
type Index interface {
	// Add inserts or replaces a vector in the underlying store and the
	// index structures.
	Add(id graph.NodeID, vec []float64) error
	// Remove deletes a vector, reporting whether it was present.
	Remove(id graph.NodeID) bool
	// Search returns up to k results most similar to q, sorted by
	// descending score (ties broken by ascending ID).
	Search(q []float64, k int) ([]Result, error)
	// SearchBatch answers many queries, executing them in parallel.
	SearchBatch(qs [][]float64, k int) ([][]Result, error)
	// Metric reports the similarity metric the index ranks by.
	Metric() Metric
}

// topK is a fixed-capacity min-heap on (score, id): the root is the
// current worst hit, evicted when something better arrives. Ordering
// matches Result sorting so results are deterministic under score ties.
type topK struct {
	k    int
	heap []Result
}

func newTopK(k int) *topK { return &topK{k: k, heap: make([]Result, 0, k)} }

// worse reports whether a ranks below b (lower score, or same score and
// higher ID).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func (t *topK) push(r Result) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, r)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(t.heap[i], t.heap[p]) {
				break
			}
			t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
			i = p
		}
		return
	}
	if !worse(t.heap[0], r) {
		return
	}
	t.heap[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		min := i
		if l < len(t.heap) && worse(t.heap[l], t.heap[min]) {
			min = l
		}
		if rr < len(t.heap) && worse(t.heap[rr], t.heap[min]) {
			min = rr
		}
		if min == i {
			return
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// sorted drains the heap into descending-score order.
func (t *topK) sorted() []Result {
	out := t.heap
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// Exact is the brute-force index: every query scans the whole store,
// shards in parallel. It is the ground truth LSH recall is measured
// against and the sane default below ~100k vectors.
type Exact struct {
	store  *embstore.Store
	metric Metric
}

// NewExact builds a brute-force index over store.
func NewExact(store *embstore.Store, metric Metric) *Exact {
	return &Exact{store: store, metric: metric}
}

// Metric reports the similarity metric.
func (e *Exact) Metric() Metric { return e.metric }

// Add upserts into the backing store (the scan has no auxiliary state).
func (e *Exact) Add(id graph.NodeID, vec []float64) error { return e.store.Upsert(id, vec) }

// Remove deletes from the backing store.
func (e *Exact) Remove(id graph.NodeID) bool { return e.store.Delete(id) }

// Search scans all shards concurrently, merging per-shard top-k heaps.
func (e *Exact) Search(q []float64, k int) ([]Result, error) {
	if err := checkQuery(e.store, q, k); err != nil {
		return nil, err
	}
	qNorm := tensor.L2NormVec(q)
	nShards := e.store.NumShards()
	partial := make([]*topK, nShards)
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < nShards; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			t := newTopK(k)
			e.store.RangeShard(sIdx, func(id graph.NodeID, vec []float64, norm float64) bool {
				t.push(Result{ID: id, Score: e.metric.score(q, vec, qNorm, norm)})
				return true
			})
			partial[sIdx] = t
		}(sIdx)
	}
	wg.Wait()
	merged := newTopK(k)
	for _, t := range partial {
		for _, r := range t.heap {
			merged.push(r)
		}
	}
	return merged.sorted(), nil
}

// SearchBatch runs queries across a GOMAXPROCS-sized worker pool. Each
// query scans shards sequentially (the pool already saturates cores).
func (e *Exact) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		if err := checkQuery(e.store, q, k); err != nil {
			return nil, err
		}
		qNorm := tensor.L2NormVec(q)
		t := newTopK(k)
		for sIdx := 0; sIdx < e.store.NumShards(); sIdx++ {
			e.store.RangeShard(sIdx, func(id graph.NodeID, vec []float64, norm float64) bool {
				t.push(Result{ID: id, Score: e.metric.score(q, vec, qNorm, norm)})
				return true
			})
		}
		return t.sorted(), nil
	})
}

func checkQuery(store *embstore.Store, q []float64, k int) error {
	if len(q) != store.Dim() {
		return fmt.Errorf("ann: query dim %d, store dim %d", len(q), store.Dim())
	}
	if k < 1 {
		return fmt.Errorf("ann: k %d < 1", k)
	}
	return nil
}

// batchSearch fans qs out over min(GOMAXPROCS, len(qs)) workers. The
// first error wins; results stay index-aligned with qs.
func batchSearch(qs [][]float64, k int, search func(q []float64) ([]Result, error)) ([][]Result, error) {
	out := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers < 1 {
		workers = 1
	}
	var next sync.Mutex
	idx := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= len(qs) {
					return
				}
				out[i], errs[i] = search(qs[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
