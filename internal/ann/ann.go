// Package ann provides top-k nearest-neighbor indexes over an embstore:
// a brute-force Exact index that scans shards in parallel, and a
// random-hyperplane LSH index (see lsh.go) behind the same Index
// interface. Scores are similarities — higher is closer — under either
// cosine or raw dot-product, the two metrics the paper's evaluation uses
// (network reconstruction ranks pairs by dot product; attention weights
// are cosine-shaped).
//
// The single-query hot path is allocation-free: all per-query state
// (top-k heaps, LSH signature and candidate buffers) comes from a
// pooled scratch, the scoring kernels are vecmath's unrolled loops, and
// SearchInto writes results into a caller-owned slice. Search is a thin
// veneer that copies the results out (one allocation).
package ann

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/embstore"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

// Metric selects the similarity function.
type Metric int

const (
	// Cosine scores by the angle between vectors, ignoring magnitude.
	Cosine Metric = iota
	// DotProduct scores by the raw inner product, the ranking the
	// reconstruction experiment (Figure 4) uses.
	DotProduct
)

// String returns the metric's name.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case DotProduct:
		return "dot"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric converts a config string ("cosine" or "dot") to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine":
		return Cosine, nil
	case "dot":
		return DotProduct, nil
	default:
		return 0, fmt.Errorf("ann: unknown metric %q (want cosine or dot)", s)
	}
}

// score computes the similarity of q and v. qNorm and vNorm are the
// precomputed L2 norms: the store maintains vNorm on write and callers
// compute qNorm once per query, so the scan never recomputes either.
// This is the full-precision float64 kernel; scans over compressed
// slabs go through scoreView/quickScoreView instead.
func (m Metric) score(q, v []float64, qNorm, vNorm float64) float64 {
	if m == DotProduct {
		return vecmath.Dot(q, v)
	}
	return vecmath.CosineWithNorms(q, v, qNorm, vNorm)
}

// queryCtx is the per-query precomputed state the precision-dispatched
// scoring kernels consume: the query norm (every metric), a narrowed
// float32 copy (F32 slabs), the lane sum (SQ8 slabs — the affine
// correction term of the asymmetric kernel), and on SIMD backends a
// quantized copy of the query (SQ8 slabs — the symmetric first
// stage's operand). It lives inside the pooled scratches, so building
// it allocates only while a scratch's buffers are still growing toward
// the store's dimensionality.
type queryCtx struct {
	q     []float64
	qNorm float64
	prec  embstore.Precision

	q32 []float32 // F32: narrowed query

	qSum float64           // SQ8: Σ q[i], threaded through DotSQ8
	sq8q embstore.SQ8Query // SQ8 + SIMD: quantized query for DotSQ8Sym
	sym  bool              // symmetric first stage active this query

	// done is the query's cancellation signal (ctx.Done()); nil — the
	// Background context's Done — means the query can never be canceled
	// and every check short-circuits on the nil test alone.
	done <-chan struct{}
}

// cancelCheckEvery is how many scored vectors a scan batches between
// cancellation polls: coarse enough that the poll (one channel select)
// vanishes against the scoring kernels, fine enough that an abandoned
// query stops burning CPU within microseconds.
const cancelCheckEvery = 1024

// canceled polls the query's cancellation signal without blocking.
func (qc *queryCtx) canceled() bool {
	if qc.done == nil {
		return false
	}
	select {
	case <-qc.done:
		return true
	default:
		return false
	}
}

// init prepares the context for one query against store.
func (qc *queryCtx) init(store *embstore.Store, q []float64) {
	qc.q = q
	qc.qNorm = vecmath.Norm(q)
	qc.prec = store.Precision()
	qc.sym = false
	qc.done = nil
	switch qc.prec {
	case embstore.F32:
		if cap(qc.q32) < len(q) {
			qc.q32 = make([]float32, len(q))
		}
		qc.q32 = qc.q32[:len(q)]
		vecmath.F64To32(qc.q32, q)
	case embstore.SQ8:
		qc.qSum = vecmath.Sum(q)
		// The symmetric integer kernel only beats the asymmetric one in
		// its SIMD form (see Metric.quickScoreView); on scalar backends
		// the search stays single-stage and the query is never quantized.
		if vecmath.HasSQ8Sym() {
			qc.sym = true
			store.EncodeQuery(q, &qc.sq8q)
		}
	}
}

// scoreView scores the query against a stored vector at full query
// precision: the exact kernel for f64/f32 slabs, the asymmetric
// DotSQ8 kernel for sq8 — only the stored vector's quantization error
// remains.
func (m Metric) scoreView(qc *queryCtx, v *embstore.VecView) float64 {
	var dot float64
	switch {
	case v.F64 != nil:
		dot = vecmath.Dot(qc.q, v.F64)
	case v.F32 != nil:
		dot = vecmath.Dot32(qc.q32, v.F32)
	default:
		dot = vecmath.DotSQ8(qc.q, v.Code, v.Scale, v.Offset, qc.qSum)
	}
	if m == DotProduct {
		return dot
	}
	if qc.qNorm == 0 || v.Norm == 0 {
		return 0
	}
	return dot / (qc.qNorm * v.Norm)
}

// quickScoreView is the scalar-backend candidate-scan kernel. Over sq8
// slabs it reads one byte per lane of the candidate through the
// asymmetric LUT kernel — the "exact re-rank from dequantized
// registers" fused into the scan itself. On scalar cores that is both
// cheaper and more accurate than a symmetric int8×int8 first stage
// (DotSQ8Sym — measured 20.5ns vs 24ns at dim 32, and it carries no
// query-side quantization error), so there the two stages of the sq8
// search share this kernel and an explicit re-score pass would
// reproduce identical scores. On SIMD backends the genuinely cheaper
// integer kernel reinstates the explicit two-stage search: candidate
// generation goes through symScoreView, and scoreView re-ranks the
// widened survivor pool (see candidateK). Other precisions have
// nothing cheaper than the exact kernel and fall through to scoreView.
func (m Metric) quickScoreView(qc *queryCtx, v *embstore.VecView) float64 {
	if v.Code == nil {
		return m.scoreView(qc, v)
	}
	dot := vecmath.DotSQ8(qc.q, v.Code, v.Scale, v.Offset, qc.qSum)
	if m == DotProduct {
		return dot
	}
	if qc.qNorm == 0 || v.Norm == 0 {
		return 0
	}
	return dot / (qc.qNorm * v.Norm)
}

// symScoreView scores the quantized query against an sq8 candidate
// through the symmetric integer kernel: 2 bytes moved per lane, no
// float conversions in the inner loop. The score carries the query's
// quantization error on top of the candidate's, so it only ranks the
// first stage — callers re-rank the widened survivor pool with
// scoreView. Valid only when qc.sym is set.
func (m Metric) symScoreView(qc *queryCtx, v *embstore.VecView) float64 {
	dot := vecmath.DotSQ8Sym(qc.sq8q.Code, v.Code,
		qc.sq8q.Scale, qc.sq8q.Offset, v.Scale, v.Offset,
		qc.sq8q.CodeSum, v.CodeSum)
	if m == DotProduct {
		return dot
	}
	if qc.qNorm == 0 || v.Norm == 0 {
		return 0
	}
	return dot / (qc.qNorm * v.Norm)
}

// beamScoreView is the candidate-generation kernel: the symmetric
// integer kernel when the backend makes it the cheap one, the
// asymmetric scan kernel otherwise. Scores from the two branches are
// not comparable across queries — each query commits to one branch at
// ctx.init time.
func (m Metric) beamScoreView(qc *queryCtx, v *embstore.VecView) float64 {
	if qc.sym {
		return m.symScoreView(qc, v)
	}
	return m.quickScoreView(qc, v)
}

// sq8Rerank is the candidate-widening multiplier for searches over sq8
// slabs: candidate generation runs at least rerank·k wide (the HNSW
// beam always; the linear scans' first-stage heap when the symmetric
// kernel drives them) so the final top-k is drawn from a pool that
// absorbs the quantization noise of the stored vectors — and, on the
// symmetric path, of the quantized query. 4 holds recall@10 within
// half a point of the f64 baseline at 100k vectors.
const sq8Rerank = 4

// candidateK widens k for quantized candidate generation: the HNSW
// beam floor on sq8 slabs, and the symmetric first-stage heap size of
// the two-stage linear scans. (On scalar backends linear scans rank
// every vector with the asymmetric kernel directly, so no widening
// applies there.)
func candidateK(prec embstore.Precision, k int) int {
	if prec == embstore.SQ8 {
		return k * sq8Rerank
	}
	return k
}

// Result is one query hit. Higher Score means more similar.
type Result struct {
	ID    graph.NodeID `json:"id"`
	Score float64      `json:"score"`
}

// Index answers top-k similarity queries over a mutable vector set.
// Implementations are safe for concurrent use.
type Index interface {
	// Add inserts or replaces a vector in the underlying store and the
	// index structures.
	Add(id graph.NodeID, vec []float64) error
	// Remove deletes a vector, reporting whether it was present.
	Remove(id graph.NodeID) bool
	// Search returns up to k results most similar to q, sorted by
	// descending score (ties broken by ascending ID).
	Search(q []float64, k int) ([]Result, error)
	// SearchInto is Search writing into dst (grown as needed and
	// returned re-sliced): the zero-allocation single-query path. The
	// context is polled cooperatively at beam-expansion granularity; a
	// canceled or expired query stops scanning promptly and returns
	// ctx.Err() so abandoned requests stop burning CPU.
	SearchInto(ctx context.Context, dst []Result, q []float64, k int) ([]Result, error)
	// SearchBatch answers many queries, executing them in parallel
	// under one context.
	SearchBatch(ctx context.Context, qs [][]float64, k int) ([][]Result, error)
	// Metric reports the similarity metric the index ranks by.
	Metric() Metric
}

// topK is a fixed-capacity min-heap on (score, id): the root is the
// current worst hit, evicted when something better arrives. Ordering
// matches Result sorting so results are deterministic under score ties.
type topK struct {
	k    int
	heap []Result
}

// reset prepares t for a query of size k, reusing the heap's capacity.
func (t *topK) reset(k int) {
	t.k = k
	t.heap = t.heap[:0]
}

// worse reports whether a ranks below b (lower score, or same score and
// higher ID).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func (t *topK) push(r Result) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, r)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(t.heap[i], t.heap[p]) {
				break
			}
			t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
			i = p
		}
		return
	}
	if !worse(t.heap[0], r) {
		return
	}
	t.heap[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		min := i
		if l < len(t.heap) && worse(t.heap[l], t.heap[min]) {
			min = l
		}
		if rr < len(t.heap) && worse(t.heap[rr], t.heap[min]) {
			min = rr
		}
		if min == i {
			return
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// resultCmp orders results descending by score, ties ascending by ID
// (the inverse of worse). A package-level comparator keeps the sort
// allocation-free, unlike a sort.Slice closure.
func resultCmp(a, b Result) int {
	switch {
	case worse(b, a):
		return -1
	case worse(a, b):
		return 1
	default:
		return 0
	}
}

// sorted orders the heap into descending-score order in place and
// returns it. The slice aliases the heap storage; callers that outlive
// the scratch must copy.
func (t *topK) sorted() []Result {
	slices.SortFunc(t.heap, resultCmp)
	return t.heap
}

// queryScratch is the pooled per-query working state shared by both
// index types. Everything is capacity-reused across queries, making
// the steady-state single-query path allocation-free.
type queryScratch struct {
	top     topK
	wide    topK             // sq8 symmetric stage: widened candidate heap
	ctx     queryCtx         // precision-dispatched query state
	sigs    []uint32         // LSH per-table signatures
	cand    []graph.NodeID   // LSH / re-rank candidate IDs
	byShard [][]graph.NodeID // candidates grouped by store shard

	// stamp/epoch implement O(1) candidate deduplication for dense ID
	// spaces: stamp[id] == epoch marks id as already seen this query.
	// Bounded by stampCap; queries over sparser ID spaces fall back to
	// sort-and-compact (see LSH.collectCandidates).
	stamp []uint32
	epoch uint32
}

// stampCap bounds the epoch-stamp dedup array (16M IDs ≈ 64 MB per
// pooled scratch at the limit). Node IDs are dense row indices in this
// system, so real stores sit far below the cap.
const stampCap = 1 << 24

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// checkQuery validates a query against the store.
func checkQuery(store *embstore.Store, q []float64, k int) error {
	if len(q) != store.Dim() {
		return fmt.Errorf("ann: query dim %d, store dim %d", len(q), store.Dim())
	}
	if k < 1 {
		return fmt.Errorf("ann: k %d < 1", k)
	}
	return nil
}

// appendResults copies rs onto dst[:0], growing dst as needed.
func appendResults(dst, rs []Result) []Result {
	return append(dst[:0], rs...)
}

// rerankWide is the second stage of a symmetric sq8 search: it
// re-scores the survivors accumulated in sc.wide with the asymmetric
// full-precision-query kernel and returns the sorted top-k (aliasing
// sc.top's storage). Survivors are grouped by store shard so each
// shard lock is taken once; all buffers come from the scratch, keeping
// the path allocation-free in steady state.
func rerankWide(store *embstore.Store, m Metric, sc *queryScratch, k int) []Result {
	sc.cand = sc.cand[:0]
	for _, r := range sc.wide.heap {
		sc.cand = append(sc.cand, r.ID)
	}
	nShards := store.NumShards()
	for len(sc.byShard) < nShards {
		sc.byShard = append(sc.byShard, nil)
	}
	byShard := sc.byShard[:nShards]
	for i := range byShard {
		byShard[i] = byShard[i][:0]
	}
	for _, id := range sc.cand {
		byShard[store.ShardOf(id)] = append(byShard[store.ShardOf(id)], id)
	}
	qc := &sc.ctx
	sc.top.reset(k)
	t := &sc.top
	for si, ids := range byShard {
		if len(ids) == 0 {
			continue
		}
		store.WithShard(si, ids, func(id graph.NodeID, v *embstore.VecView) {
			t.push(Result{ID: id, Score: m.scoreView(qc, v)})
		})
	}
	return t.sorted()
}

// Exact is the brute-force index: every query scans the whole store.
// With more than one CPU the shards are scanned in parallel; on a
// single CPU (or a single shard) the scan runs sequentially through
// pooled scratch, which is both faster and allocation-free. It is the
// ground truth LSH recall is measured against and the sane default
// below ~100k vectors.
type Exact struct {
	store  *embstore.Store
	metric Metric
}

// NewExact builds a brute-force index over store.
func NewExact(store *embstore.Store, metric Metric) *Exact {
	return &Exact{store: store, metric: metric}
}

// Metric reports the similarity metric.
func (e *Exact) Metric() Metric { return e.metric }

// Add upserts into the backing store (the scan has no auxiliary state).
func (e *Exact) Add(id graph.NodeID, vec []float64) error { return e.store.Upsert(id, vec) }

// Remove deletes from the backing store.
func (e *Exact) Remove(id graph.NodeID) bool { return e.store.Delete(id) }

// scanSeq scans every shard sequentially into the scratch heap and
// returns the sorted results (aliasing scratch storage). sc.ctx must
// be initialized for the query. On the symmetric sq8 path the scan
// ranks with the integer kernel into a rerank·k-wide heap and the
// asymmetric kernel re-scores the survivors; otherwise the scan is the
// single-stage asymmetric (or full-precision) ranking. The query's
// cancellation signal is polled every cancelCheckEvery vectors; a
// canceled scan stops early and reports canceled=true.
func (e *Exact) scanSeq(sc *queryScratch, k int) (res []Result, canceled bool) {
	qc := &sc.ctx
	n := 0
	if qc.sym {
		sc.wide.reset(candidateK(qc.prec, k))
		w := &sc.wide
		for sIdx := 0; sIdx < e.store.NumShards(); sIdx++ {
			e.store.RangeShard(sIdx, func(id graph.NodeID, v *embstore.VecView) bool {
				w.push(Result{ID: id, Score: e.metric.symScoreView(qc, v)})
				n++
				return n%cancelCheckEvery != 0 || !qc.canceled()
			})
			if qc.canceled() {
				return nil, true
			}
		}
		return rerankWide(e.store, e.metric, sc, k), false
	}
	sc.top.reset(k)
	t := &sc.top
	for sIdx := 0; sIdx < e.store.NumShards(); sIdx++ {
		e.store.RangeShard(sIdx, func(id graph.NodeID, v *embstore.VecView) bool {
			t.push(Result{ID: id, Score: e.metric.quickScoreView(qc, v)})
			n++
			return n%cancelCheckEvery != 0 || !qc.canceled()
		})
		if qc.canceled() {
			return nil, true
		}
	}
	return t.sorted(), false
}

// Search scans the store and returns the freshly allocated top-k.
func (e *Exact) Search(q []float64, k int) ([]Result, error) {
	out, err := e.SearchInto(context.Background(), nil, q, k)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchInto scans the store, writing the top-k into dst. Compressed
// slabs are ranked by the precision-dispatched kernels; on SIMD
// backends sq8 scans run two-stage (symmetric integer candidate
// generation into a rerank·k-wide pool, asymmetric full-precision-
// query re-rank of the survivors), on scalar backends every vector is
// scored asymmetrically in a single pass.
func (e *Exact) SearchInto(ctx context.Context, dst []Result, q []float64, k int) ([]Result, error) {
	if err := checkQuery(e.store, q, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	annQueriesExact.Inc()
	start := time.Now()
	nShards := e.store.NumShards()
	sc := scratchPool.Get().(*queryScratch)
	sc.ctx.init(e.store, q)
	sc.ctx.done = ctx.Done()
	qc := &sc.ctx
	if runtime.GOMAXPROCS(0) == 1 || nShards == 1 {
		res, canceled := e.scanSeq(sc, k)
		if canceled {
			scratchPool.Put(sc)
			return dst[:0], ctx.Err()
		}
		dst = appendResults(dst, res)
		scratchPool.Put(sc)
		annStageExactCand.ObserveSince(start)
		return dst, nil
	}
	// Parallel scan: one goroutine per shard, merged through a heap.
	// qc is read-only during the fan-out. The first-stage heap width is
	// kk (= k unless the symmetric sq8 stage widens it).
	kk := k
	if qc.sym {
		kk = candidateK(qc.prec, k)
	}
	partial := make([]*topK, nShards)
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < nShards; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			t := &topK{k: kk, heap: make([]Result, 0, kk)}
			n := 0
			e.store.RangeShard(sIdx, func(id graph.NodeID, v *embstore.VecView) bool {
				t.push(Result{ID: id, Score: e.metric.beamScoreView(qc, v)})
				n++
				return n%cancelCheckEvery != 0 || !qc.canceled()
			})
			partial[sIdx] = t
		}(sIdx)
	}
	wg.Wait()
	if qc.canceled() {
		scratchPool.Put(sc)
		return dst[:0], ctx.Err()
	}
	merged := &sc.wide
	merged.reset(kk)
	for _, t := range partial {
		for _, r := range t.heap {
			merged.push(r)
		}
	}
	if qc.sym {
		dst = appendResults(dst, rerankWide(e.store, e.metric, sc, k))
	} else {
		dst = appendResults(dst, merged.sorted())
	}
	scratchPool.Put(sc)
	annStageExactCand.ObserveSince(start)
	return dst, nil
}

// SearchBatch runs queries across a GOMAXPROCS-sized worker pool. Each
// query scans shards sequentially (the pool already saturates cores).
func (e *Exact) SearchBatch(ctx context.Context, qs [][]float64, k int) ([][]Result, error) {
	return batchSearch(qs, k, func(q []float64) ([]Result, error) {
		if err := checkQuery(e.store, q, k); err != nil {
			return nil, err
		}
		sc := scratchPool.Get().(*queryScratch)
		sc.ctx.init(e.store, q)
		sc.ctx.done = ctx.Done()
		res, canceled := e.scanSeq(sc, k)
		if canceled {
			scratchPool.Put(sc)
			return nil, ctx.Err()
		}
		out := appendResults(nil, res)
		scratchPool.Put(sc)
		return out, nil
	})
}

// ParallelFor runs fn(i) for every i in [0, n) across min(GOMAXPROCS,
// n) workers pulling from a shared atomic cursor; n ≤ 1 (or a single
// CPU) runs inline with no goroutines. The one fan-out primitive behind
// batch queries, HNSW bulk builds and the daemon's batcher flushes.
func ParallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// batchSearch fans qs out over ParallelFor. The first error wins;
// results stay index-aligned with qs.
func batchSearch(qs [][]float64, k int, search func(q []float64) ([]Result, error)) ([][]Result, error) {
	out := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	ParallelFor(len(qs), func(i int) {
		out[i], errs[i] = search(qs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
