package node2vec

import (
	"testing"

	"ehna/internal/graph"
	"ehna/internal/skipgram"
	"ehna/internal/testutil"
)

func smallConfig() Config {
	return Config{
		P: 1, Q: 1, NumWalks: 8, WalkLen: 20,
		SGNS: skipgram.Config{Dim: 16, Window: 4, Negatives: 5, LR: 0.05, Epochs: 3, Workers: 1},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{P: 0, Q: 1, NumWalks: 1, WalkLen: 2, SGNS: skipgram.DefaultConfig()},
		{P: 1, Q: 0, NumWalks: 1, WalkLen: 2, SGNS: skipgram.DefaultConfig()},
		{P: 1, Q: 1, NumWalks: 0, WalkLen: 2, SGNS: skipgram.DefaultConfig()},
		{P: 1, Q: 1, NumWalks: 1, WalkLen: 1, SGNS: skipgram.DefaultConfig()},
		{P: 1, Q: 1, NumWalks: 1, WalkLen: 2, SGNS: skipgram.Config{}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	empty := graph.NewTemporal(3)
	empty.Build()
	if _, err := Embed(empty, smallConfig(), 1); err == nil {
		t.Fatal("edgeless graph accepted")
	}
	g := testutil.TwoCommunities(4, 0.9, 1)
	if _, err := Embed(g, Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEmbedShape(t *testing.T) {
	g := testutil.TwoCommunities(4, 0.9, 2)
	emb, err := Embed(g, smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != g.NumNodes() || emb.Cols != 16 {
		t.Fatalf("shape %dx%d", emb.Rows, emb.Cols)
	}
}

func TestEmbedSeparatesCommunities(t *testing.T) {
	g := testutil.TwoCommunities(8, 0.8, 4)
	emb, err := Embed(g, smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := testutil.CommunityScoreSeparation(emb, 8)
	if intra <= inter {
		t.Fatalf("communities not separated: intra %g inter %g", intra, inter)
	}
}
