// Package node2vec implements the NODE2VEC baseline (Grover & Leskovec,
// KDD 2016): second-order p/q-biased random walks feeding skip-gram with
// negative sampling. It ignores all temporal information — the paper's
// representative static embedding method.
package node2vec

import (
	"fmt"
	"math/rand"

	"ehna/internal/graph"
	"ehna/internal/skipgram"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// Config parameterizes the baseline. The paper's Section V-C uses k=10
// walks of length ℓ=80 per node, window 10, 5 negatives, d=128.
type Config struct {
	P, Q     float64
	NumWalks int
	WalkLen  int
	SGNS     skipgram.Config
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{P: 1, Q: 1, NumWalks: 10, WalkLen: 80, SGNS: skipgram.DefaultConfig()}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.P <= 0 || c.Q <= 0 {
		return fmt.Errorf("node2vec: p and q must be positive (p=%g q=%g)", c.P, c.Q)
	}
	if c.NumWalks < 1 || c.WalkLen < 2 {
		return fmt.Errorf("node2vec: need NumWalks ≥ 1 and WalkLen ≥ 2 (got %d, %d)", c.NumWalks, c.WalkLen)
	}
	return c.SGNS.Validate()
}

// Embed trains node2vec embeddings for every node of g.
func Embed(g *graph.Temporal, cfg Config, seed int64) (*tensor.Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := walk.NewNode2VecWalker(g, cfg.P, cfg.Q)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var seqs [][]graph.NodeID
	for r := 0; r < cfg.NumWalks; r++ {
		for v := 0; v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			if g.Degree(id) == 0 {
				continue
			}
			if seq := w.Walk(id, cfg.WalkLen, rng); len(seq) >= 2 {
				seqs = append(seqs, seq)
			}
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("node2vec: graph has no walkable nodes")
	}
	noise, err := skipgram.DegreeNoise(g)
	if err != nil {
		return nil, err
	}
	m, err := skipgram.Train(seqs, g.NumNodes(), noise, cfg.SGNS, seed)
	if err != nil {
		return nil, err
	}
	return m.Emb, nil
}
