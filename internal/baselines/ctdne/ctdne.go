// Package ctdne implements the CTDNE baseline (Nguyen et al., WWW 2018):
// continuous-time dynamic network embeddings. Random walks are constrained
// to be forward-in-time (consecutive edges have non-decreasing timestamps)
// and feed the same skip-gram model as node2vec. Per the paper's setup,
// initial edges and subsequent hops are sampled uniformly.
package ctdne

import (
	"fmt"
	"math/rand"

	"ehna/internal/graph"
	"ehna/internal/skipgram"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// Config parameterizes the baseline.
type Config struct {
	WalksPerEdgeFactor float64 // walks sampled = factor × |E| (≥ 1 recommended)
	WalkLen            int
	SGNS               skipgram.Config
}

// DefaultConfig mirrors the paper's setup (window count matched to
// node2vec, uniform sampling).
func DefaultConfig() Config {
	return Config{WalksPerEdgeFactor: 1, WalkLen: 80, SGNS: skipgram.DefaultConfig()}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.WalksPerEdgeFactor <= 0 {
		return fmt.Errorf("ctdne: WalksPerEdgeFactor %g must be positive", c.WalksPerEdgeFactor)
	}
	if c.WalkLen < 2 {
		return fmt.Errorf("ctdne: WalkLen %d < 2", c.WalkLen)
	}
	return c.SGNS.Validate()
}

// Embed trains CTDNE embeddings for every node of g.
func Embed(g *graph.Temporal, cfg Config, seed int64) (*tensor.Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("ctdne: empty graph")
	}
	w := walk.NewCTDNEWalker(g)
	rng := rand.New(rand.NewSource(seed))
	n := int(cfg.WalksPerEdgeFactor * float64(len(edges)))
	if n < 1 {
		n = 1
	}
	var seqs [][]graph.NodeID
	for i := 0; i < n; i++ {
		e := edges[rng.Intn(len(edges))] // uniform initial edge selection
		if seq := w.WalkFromEdge(e, cfg.WalkLen, rng); len(seq) >= 2 {
			seqs = append(seqs, seq)
		}
	}
	noise, err := skipgram.DegreeNoise(g)
	if err != nil {
		return nil, err
	}
	m, err := skipgram.Train(seqs, g.NumNodes(), noise, cfg.SGNS, seed)
	if err != nil {
		return nil, err
	}
	return m.Emb, nil
}
