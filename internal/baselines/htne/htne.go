// Package htne implements the HTNE baseline (Zuo et al., KDD 2018):
// embedding temporal networks via the Hawkes process over neighborhood
// formation sequences. The arrival of neighbor y at node x at time t has
// conditional intensity
//
//	λ̃_{y|x}(t) = μ(x,y) + Σ_{h ∈ H_x(t)} α(h,y) · exp(−δ·(t − t_h))
//
// where the base rate μ(x,y) = −‖e_x − e_y‖² and the historical influence
// α(h,y) = −‖e_h − e_y‖² are both induced from the embeddings, H_x(t) is
// the most recent history of x before t, and δ is a learnable-in-principle
// decay (fixed here, as in the reference implementation's default).
// The likelihood is optimized with negative sampling:
// maximize log σ(λ̃_pos) + Σ log σ(−λ̃_neg).
package htne

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/graph"
	"ehna/internal/sample"
	"ehna/internal/tensor"
)

// Config parameterizes HTNE.
type Config struct {
	Dim       int     // embedding dimensionality
	HistLen   int     // history size per target node (reference default: 5)
	Negatives int     // negative samples per event
	Delta     float64 // exponential decay rate of historical influence
	LR        float64 // SGD learning rate, linearly decayed
	Epochs    int     // passes over the chronological event stream
}

// DefaultConfig returns the reference defaults.
func DefaultConfig() Config {
	return Config{Dim: 128, HistLen: 5, Negatives: 5, Delta: 1, LR: 0.02, Epochs: 1}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("htne: Dim %d < 1", c.Dim)
	}
	if c.HistLen < 1 {
		return fmt.Errorf("htne: HistLen %d < 1", c.HistLen)
	}
	if c.Negatives < 1 {
		return fmt.Errorf("htne: Negatives %d < 1", c.Negatives)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("htne: Delta %g must be positive", c.Delta)
	}
	if c.LR <= 0 {
		return fmt.Errorf("htne: LR %g must be positive", c.LR)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("htne: Epochs %d < 1", c.Epochs)
	}
	return nil
}

// Embed trains HTNE embeddings for every node of g.
func Embed(g *graph.Temporal, cfg Config, seed int64) (*tensor.Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("htne: empty graph")
	}
	neg, err := sample.NewNegative(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	dim := cfg.Dim
	emb := tensor.Uniform(g.NumNodes(), dim, -0.5/float64(dim), 0.5/float64(dim), rng)

	steps := cfg.Epochs * len(edges) * 2
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, e := range edges {
			// Each undirected edge is a neighbor-arrival event for both
			// endpoints: y arrives at x, and x arrives at y.
			lr := cfg.LR * (1 - float64(step)/float64(steps))
			if lr < cfg.LR/100 {
				lr = cfg.LR / 100
			}
			trainEvent(g, emb, e.U, e.V, e.Time, cfg, lr, neg, rng)
			step++
			lr = cfg.LR * (1 - float64(step)/float64(steps))
			if lr < cfg.LR/100 {
				lr = cfg.LR / 100
			}
			trainEvent(g, emb, e.V, e.U, e.Time, cfg, lr, neg, rng)
			step++
		}
	}
	return emb, nil
}

// history returns up to cfg.HistLen most recent neighbors of x strictly
// before t, with their decay weights exp(−δ(t − t_h)).
func history(g *graph.Temporal, x graph.NodeID, t float64, cfg Config) ([]graph.NodeID, []float64) {
	adj := g.NeighborsBefore(x, t)
	// Exclude events at exactly time t (the current event itself).
	hi := len(adj)
	for hi > 0 && adj[hi-1].Time >= t {
		hi--
	}
	lo := hi - cfg.HistLen
	if lo < 0 {
		lo = 0
	}
	nodes := make([]graph.NodeID, 0, hi-lo)
	weights := make([]float64, 0, hi-lo)
	for _, he := range adj[lo:hi] {
		nodes = append(nodes, he.To)
		weights = append(weights, expNeg(cfg.Delta*(t-he.Time)))
	}
	return nodes, weights
}

// intensity computes λ̃_{y|x}(t) given x's history.
func intensity(emb *tensor.Matrix, x, y graph.NodeID, hist []graph.NodeID, hw []float64) float64 {
	ex, ey := emb.Row(int(x)), emb.Row(int(y))
	lambda := -tensor.SqDistVec(ex, ey)
	for i, h := range hist {
		lambda += hw[i] * -tensor.SqDistVec(emb.Row(int(h)), ey)
	}
	return lambda
}

// trainEvent applies one stochastic likelihood step for the arrival of y
// at x at time t, plus negative samples.
func trainEvent(g *graph.Temporal, emb *tensor.Matrix, x, y graph.NodeID, t float64, cfg Config, lr float64, neg *sample.Negative, rng *rand.Rand) {
	hist, hw := history(g, x, t, cfg)
	applyGrad(emb, x, y, hist, hw, 1, lr)
	for k := 0; k < cfg.Negatives; k++ {
		v := neg.Draw(rng, x, y)
		applyGrad(emb, x, v, hist, hw, 0, lr)
	}
}

// applyGrad performs one logistic step on σ(λ̃) toward label.
// dλ̃/de_x = −2(e_x − e_y); dλ̃/de_y = 2(e_x − e_y) + Σ w_i·2(e_h − e_y);
// dλ̃/de_h = −2w_i(e_h − e_y).
func applyGrad(emb *tensor.Matrix, x, y graph.NodeID, hist []graph.NodeID, hw []float64, label float64, lr float64) {
	lambda := intensity(emb, x, y, hist, hw)
	g := lr * (label - tensor.SigmoidScalar(lambda))
	ex, ey := emb.Row(int(x)), emb.Row(int(y))
	for i := range ex {
		d := ex[i] - ey[i]
		ex[i] += g * (-2 * d)
		ey[i] += g * (2 * d)
	}
	for hi, h := range hist {
		eh := emb.Row(int(h))
		w := hw[hi]
		for i := range eh {
			d := eh[i] - ey[i]
			eh[i] += g * (-2 * w * d)
			ey[i] += g * (2 * w * d)
		}
	}
}

// expNeg is exp(−x) with a guard against large arguments.
func expNeg(x float64) float64 {
	if x > 40 {
		return 0
	}
	return math.Exp(-x)
}
