package htne

import (
	"math"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/testutil"
)

func smallConfig() Config {
	return Config{Dim: 16, HistLen: 5, Negatives: 5, Delta: 1, LR: 0.04, Epochs: 10}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Dim: 0, HistLen: 1, Negatives: 1, Delta: 1, LR: 0.1, Epochs: 1},
		{Dim: 8, HistLen: 0, Negatives: 1, Delta: 1, LR: 0.1, Epochs: 1},
		{Dim: 8, HistLen: 1, Negatives: 0, Delta: 1, LR: 0.1, Epochs: 1},
		{Dim: 8, HistLen: 1, Negatives: 1, Delta: 0, LR: 0.1, Epochs: 1},
		{Dim: 8, HistLen: 1, Negatives: 1, Delta: 1, LR: 0, Epochs: 1},
		{Dim: 8, HistLen: 1, Negatives: 1, Delta: 1, LR: 0.1, Epochs: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	empty := graph.NewTemporal(3)
	empty.Build()
	if _, err := Embed(empty, smallConfig(), 1); err == nil {
		t.Fatal("edgeless graph accepted")
	}
	g := testutil.TwoCommunities(4, 0.9, 1)
	if _, err := Embed(g, Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestHistoryWindow(t *testing.T) {
	g := graph.NewTemporal(6)
	for i := 1; i <= 5; i++ {
		_ = g.AddEdge(0, graph.NodeID(i), 1, float64(i))
	}
	g.Build()
	cfg := smallConfig()
	cfg.HistLen = 2
	nodes, weights := history(g, 0, 4.5, cfg)
	// Events before 4.5: times 1..4; most recent two: nodes 3 (t=3), 4 (t=4).
	if len(nodes) != 2 || nodes[0] != 3 || nodes[1] != 4 {
		t.Fatalf("history nodes %v", nodes)
	}
	if !(weights[1] > weights[0]) {
		t.Fatalf("more recent event must carry larger decay weight: %v", weights)
	}
	// The event at exactly t is excluded.
	nodes, _ = history(g, 0, 4, cfg)
	for _, n := range nodes {
		if n == 4 {
			t.Fatal("event at exactly t leaked into history")
		}
	}
	// No history before the first event.
	nodes, _ = history(g, 0, 0.5, cfg)
	if len(nodes) != 0 {
		t.Fatalf("expected empty history, got %v", nodes)
	}
}

func TestIntensityDecomposition(t *testing.T) {
	g := testutil.TwoCommunities(3, 1, 2)
	cfg := smallConfig()
	emb, err := Embed(g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With no history, intensity reduces to −‖e_x − e_y‖².
	lam := intensity(emb, 0, 1, nil, nil)
	want := -sqDist(emb.Row(0), emb.Row(1))
	if math.Abs(lam-want) > 1e-12 {
		t.Fatalf("base intensity %g want %g", lam, want)
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestEmbedSeparatesCommunities(t *testing.T) {
	g := testutil.TwoCommunities(8, 0.8, 4)
	emb, err := Embed(g, smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// HTNE scores proximity by negative distance: intra-community distances
	// must be smaller.
	intra, inter := testutil.CommunitySeparation(emb, 8)
	if intra >= inter {
		t.Fatalf("communities not separated: intra %g inter %g", intra, inter)
	}
}

func TestExpNegGuard(t *testing.T) {
	if expNeg(1000) != 0 {
		t.Fatal("large arguments must underflow to 0")
	}
	if math.Abs(expNeg(1)-math.Exp(-1)) > 1e-12 {
		t.Fatal("expNeg(1)")
	}
}
