package line

import (
	"testing"

	"ehna/internal/graph"
	"ehna/internal/testutil"
)

func smallConfig() Config {
	return Config{Dim: 16, Samples: 60000, Negatives: 5, LR: 0.05}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Dim: 0, Samples: 1, Negatives: 1, LR: 0.1},
		{Dim: 7, Samples: 1, Negatives: 1, LR: 0.1}, // odd dim
		{Dim: 8, Samples: 0, Negatives: 1, LR: 0.1},
		{Dim: 8, Samples: 1, Negatives: 0, LR: 0.1},
		{Dim: 8, Samples: 1, Negatives: 1, LR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	empty := graph.NewTemporal(3)
	empty.Build()
	if _, err := Embed(empty, smallConfig(), 1); err == nil {
		t.Fatal("edgeless graph accepted")
	}
	g := testutil.TwoCommunities(4, 0.9, 1)
	if _, err := Embed(g, Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEmbedShapeConcatenated(t *testing.T) {
	g := testutil.TwoCommunities(4, 0.9, 2)
	emb, err := Embed(g, smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != g.NumNodes() || emb.Cols != 16 {
		t.Fatalf("shape %dx%d (want cols = Dim with both halves concatenated)", emb.Rows, emb.Cols)
	}
}

func TestEmbedSeparatesCommunities(t *testing.T) {
	g := testutil.TwoCommunities(8, 0.8, 4)
	emb, err := Embed(g, smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := testutil.CommunityScoreSeparation(emb, 8)
	if intra <= inter {
		t.Fatalf("communities not separated: intra %g inter %g", intra, inter)
	}
}

func TestFirstOrderSharesVectors(t *testing.T) {
	// First-order training must produce symmetric similarity: linked nodes
	// end up with positive mutual dot products even without context vectors.
	g := testutil.TwoCommunities(6, 1.0, 6)
	emb, err := Embed(g, Config{Dim: 8, Samples: 40000, Negatives: 3, LR: 0.05}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Cols != 8 {
		t.Fatalf("cols %d", emb.Cols)
	}
}
