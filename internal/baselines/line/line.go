// Package line implements the LINE baseline (Tang et al., WWW 2015):
// large-scale information network embedding preserving first-order and
// second-order proximity. Following the authors' recommendation (and the
// paper's Section V-B), both objectives are trained separately at half the
// target dimensionality and the resulting vectors are concatenated.
//
// Training uses edge sampling: edges are drawn with probability
// proportional to weight from an alias table, and each draw performs one
// SGD step with negative sampling, exactly as in the reference C code.
package line

import (
	"fmt"
	"math/rand"

	"ehna/internal/graph"
	"ehna/internal/sample"
	"ehna/internal/skipgram"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Config parameterizes LINE.
type Config struct {
	Dim       int     // final embedding size; each order gets Dim/2
	Samples   int     // edge samples per order (the method's only budget knob)
	Negatives int     // negative samples per edge draw (paper: 5)
	LR        float64 // initial learning rate, linearly decayed
}

// DefaultConfig returns the usual LINE settings scaled for CPU runs.
func DefaultConfig() Config {
	return Config{Dim: 128, Samples: 1_000_000, Negatives: 5, LR: 0.025}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.Dim < 2 || c.Dim%2 != 0 {
		return fmt.Errorf("line: Dim %d must be even and ≥ 2 (half per proximity order)", c.Dim)
	}
	if c.Samples < 1 {
		return fmt.Errorf("line: Samples %d < 1", c.Samples)
	}
	if c.Negatives < 1 {
		return fmt.Errorf("line: Negatives %d < 1", c.Negatives)
	}
	if c.LR <= 0 {
		return fmt.Errorf("line: LR %g must be positive", c.LR)
	}
	return nil
}

// Embed trains LINE embeddings: [first-order ‖ second-order].
func Embed(g *graph.Temporal, cfg Config, seed int64) (*tensor.Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("line: empty graph")
	}
	weights := make([]float64, len(edges))
	for i, e := range edges {
		weights[i] = e.Weight
	}
	edgeAlias, err := sample.NewAlias(weights)
	if err != nil {
		return nil, err
	}
	noise, err := skipgram.DegreeNoise(g)
	if err != nil {
		return nil, err
	}
	half := cfg.Dim / 2
	first := trainOrder(g, edges, edgeAlias, noise, cfg, half, true, seed)
	second := trainOrder(g, edges, edgeAlias, noise, cfg, half, false, seed+1)
	return tensor.ConcatCols(first, second), nil
}

// trainOrder runs one LINE objective. For first-order proximity the
// "context" of a node is the other node's embedding vector itself; for
// second-order proximity each node additionally owns a context vector.
func trainOrder(g *graph.Temporal, edges []graph.Edge, edgeAlias *sample.Alias, noise *sample.Alias, cfg Config, dim int, firstOrder bool, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	emb := tensor.Uniform(n, dim, -0.5/float64(dim), 0.5/float64(dim), rng)
	ctx := emb
	if !firstOrder {
		ctx = tensor.New(n, dim)
	}
	grad := make([]float64, dim)
	for s := 0; s < cfg.Samples; s++ {
		lr := cfg.LR * (1 - float64(s)/float64(cfg.Samples))
		if lr < cfg.LR/100 {
			lr = cfg.LR / 100
		}
		e := edges[edgeAlias.Draw(rng)]
		// The graph is undirected: treat each draw in a random direction.
		src, dst := e.U, e.V
		if rng.Intn(2) == 0 {
			src, dst = dst, src
		}
		v := emb.Row(int(src))
		vecmath.Zero(grad)
		vecmath.SgnsUpdate(v, ctx.Row(int(dst)), grad, 1, lr)
		for k := 0; k < cfg.Negatives; k++ {
			neg := graph.NodeID(noise.Draw(rng))
			if neg == dst || neg == src {
				continue
			}
			vecmath.SgnsUpdate(v, ctx.Row(int(neg)), grad, 0, lr)
		}
		vecmath.Add(v, grad)
	}
	return emb
}
