// Package eval implements the paper's evaluation protocol: the four edge-
// representation operators of Table II, the classification metrics of
// Tables III–VI (AUC, F1, precision, recall and the error-reduction
// statistic), the Precision@P network-reconstruction metric of Figure 4,
// and the dataset assembly helpers (temporal split, balanced negative edge
// sampling, train/test partitioning).
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Operator is one of the binary operators of Table II turning two node
// embeddings into an edge representation.
type Operator int

const (
	// Mean averages the two embeddings element-wise.
	Mean Operator = iota
	// Hadamard multiplies the two embeddings element-wise.
	Hadamard
	// WeightedL1 takes the element-wise absolute difference.
	WeightedL1
	// WeightedL2 takes the element-wise squared difference.
	WeightedL2
)

// Operators lists all four operators in the paper's order.
var Operators = []Operator{Mean, Hadamard, WeightedL1, WeightedL2}

// String returns the paper's name for the operator.
func (op Operator) String() string {
	switch op {
	case Mean:
		return "Mean"
	case Hadamard:
		return "Hadamard"
	case WeightedL1:
		return "Weighted-L1"
	case WeightedL2:
		return "Weighted-L2"
	default:
		return fmt.Sprintf("Operator(%d)", int(op))
	}
}

// Apply writes the edge representation of (ex, ey) into dst through the
// vecmath score kernels.
func (op Operator) Apply(dst, ex, ey []float64) {
	switch op {
	case Mean:
		vecmath.ScoreMean(dst, ex, ey)
	case Hadamard:
		vecmath.ScoreHadamard(dst, ex, ey)
	case WeightedL1:
		vecmath.ScoreL1(dst, ex, ey)
	case WeightedL2:
		vecmath.ScoreL2(dst, ex, ey)
	default:
		panic(fmt.Sprintf("eval: unknown operator %d", int(op)))
	}
}

// NodePair is an unordered candidate node pair.
type NodePair struct {
	U, V graph.NodeID
}

// EdgeFeatures builds the feature matrix for pairs under op from node
// embeddings emb (NumNodes×d).
func EdgeFeatures(emb *tensor.Matrix, pairs []NodePair, op Operator) *tensor.Matrix {
	X := tensor.New(len(pairs), emb.Cols)
	for i, p := range pairs {
		op.Apply(X.Row(i), emb.Row(int(p.U)), emb.Row(int(p.V)))
	}
	return X
}

// AUC computes the area under the ROC curve for scores against binary
// labels (1 = positive) using the rank statistic, with midrank tie
// handling. It returns an error when either class is absent.
func AUC(scores []float64, labels []int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	type sl struct {
		s float64
		l int
	}
	data := make([]sl, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		if labels[i] != 0 && labels[i] != 1 {
			return 0, fmt.Errorf("eval: label[%d] = %d is not binary", i, labels[i])
		}
		data[i] = sl{s, labels[i]}
		if labels[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("eval: AUC needs both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	sort.Slice(data, func(i, j int) bool { return data[i].s < data[j].s })
	// Midranks over tied scores.
	var rankSumPos float64
	i := 0
	for i < len(data) {
		j := i
		for j < len(data) && data[j].s == data[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of ranks i+1..j (1-based)
		for k := i; k < j; k++ {
			if data[k].l == 1 {
				rankSumPos += midrank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// Confusion holds binary classification counts.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse tallies predictions against labels.
func Confuse(pred, labels []int) (Confusion, error) {
	if len(pred) != len(labels) {
		return Confusion{}, fmt.Errorf("eval: %d predictions vs %d labels", len(pred), len(labels))
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			c.TP++
		case pred[i] == 1 && labels[i] == 0:
			c.FP++
		case pred[i] == 0 && labels[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c, nil
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// ErrorReduction is the paper's comparison statistic
// ((1−them) − (1−us)) / (1−them): the fraction of the best baseline's error
// eliminated by our method. Negative when ours is worse.
func ErrorReduction(them, us float64) float64 {
	if them >= 1 {
		return 0
	}
	return ((1 - them) - (1 - us)) / (1 - them)
}

// SampleNegativePairs draws n node pairs that share no edge in g (the
// link-prediction negative examples). Pairs exclude the extra forbidden
// set (e.g. held-out test edges). Sampling retries are bounded; an error
// is returned if the graph is too dense to find enough negatives.
func SampleNegativePairs(g *graph.Temporal, n int, forbidden map[NodePair]bool, rng *rand.Rand) ([]NodePair, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("eval: graph too small for negative sampling")
	}
	out := make([]NodePair, 0, n)
	maxTries := 100 * n
	for tries := 0; len(out) < n && tries < maxTries; tries++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := NodePair{U: u, V: v}
		if g.HasEdge(u, v) || forbidden[p] {
			continue
		}
		out = append(out, p)
	}
	if len(out) < n {
		return nil, fmt.Errorf("eval: found only %d of %d negative pairs", len(out), n)
	}
	return out, nil
}

// CanonicalPair returns the pair with U ≤ V.
func CanonicalPair(u, v graph.NodeID) NodePair {
	if u > v {
		u, v = v, u
	}
	return NodePair{U: u, V: v}
}

// PrecisionAtP evaluates network reconstruction (Figure 4): candidate node
// pairs among sampleNodes are ranked by embedding dot product, and
// precision@P is the fraction of the top P pairs that are true edges of g.
// It returns one precision per requested P (ascending Ps required).
func PrecisionAtP(g *graph.Temporal, emb *tensor.Matrix, sampleNodes []graph.NodeID, Ps []int) ([]float64, error) {
	if len(Ps) == 0 {
		return nil, fmt.Errorf("eval: no P values")
	}
	for i := 1; i < len(Ps); i++ {
		if Ps[i] <= Ps[i-1] {
			return nil, fmt.Errorf("eval: Ps must be strictly ascending")
		}
	}
	if len(sampleNodes) < 2 {
		return nil, fmt.Errorf("eval: need ≥ 2 sample nodes")
	}
	type scored struct {
		pair  NodePair
		score float64
	}
	pairs := make([]scored, 0, len(sampleNodes)*(len(sampleNodes)-1)/2)
	for i := 0; i < len(sampleNodes); i++ {
		for j := i + 1; j < len(sampleNodes); j++ {
			u, v := sampleNodes[i], sampleNodes[j]
			pairs = append(pairs, scored{
				pair:  CanonicalPair(u, v),
				score: vecmath.Dot(emb.Row(int(u)), emb.Row(int(v))),
			})
		}
	}
	maxP := Ps[len(Ps)-1]
	if maxP > len(pairs) {
		return nil, fmt.Errorf("eval: P=%d exceeds %d candidate pairs", maxP, len(pairs))
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		// Deterministic tie-break.
		if pairs[i].pair.U != pairs[j].pair.U {
			return pairs[i].pair.U < pairs[j].pair.U
		}
		return pairs[i].pair.V < pairs[j].pair.V
	})
	out := make([]float64, len(Ps))
	hits := 0
	pi := 0
	for rank := 0; rank < maxP; rank++ {
		if g.HasEdge(pairs[rank].pair.U, pairs[rank].pair.V) {
			hits++
		}
		if rank+1 == Ps[pi] {
			out[pi] = float64(hits) / float64(rank+1)
			pi++
		}
	}
	return out, nil
}

// LinkPredData is a balanced link-prediction dataset: positive pairs are
// the held-out most recent edges, negatives are sampled non-edges.
type LinkPredData struct {
	Pairs  []NodePair
	Labels []int
}

// BuildLinkPredData assembles the paper's link-prediction examples from a
// full graph's held-out edges. Duplicate held-out pairs are kept once.
func BuildLinkPredData(full *graph.Temporal, heldOut []graph.Edge, rng *rand.Rand) (*LinkPredData, error) {
	seen := make(map[NodePair]bool, len(heldOut))
	var pos []NodePair
	for _, e := range heldOut {
		p := CanonicalPair(e.U, e.V)
		if !seen[p] {
			seen[p] = true
			pos = append(pos, p)
		}
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("eval: no held-out edges")
	}
	neg, err := SampleNegativePairs(full, len(pos), seen, rng)
	if err != nil {
		return nil, err
	}
	d := &LinkPredData{
		Pairs:  make([]NodePair, 0, 2*len(pos)),
		Labels: make([]int, 0, 2*len(pos)),
	}
	for _, p := range pos {
		d.Pairs = append(d.Pairs, p)
		d.Labels = append(d.Labels, 1)
	}
	for _, p := range neg {
		d.Pairs = append(d.Pairs, p)
		d.Labels = append(d.Labels, 0)
	}
	return d, nil
}

// Split partitions the dataset into train/test with the given train
// fraction, shuffling deterministically.
func (d *LinkPredData) Split(trainFrac float64, rng *rand.Rand) (train, test *LinkPredData, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("eval: trainFrac %g outside (0,1)", trainFrac)
	}
	n := len(d.Pairs)
	order := rng.Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("eval: split leaves an empty side (n=%d)", n)
	}
	mk := func(idx []int) *LinkPredData {
		out := &LinkPredData{Pairs: make([]NodePair, len(idx)), Labels: make([]int, len(idx))}
		for i, j := range idx {
			out.Pairs[i] = d.Pairs[j]
			out.Labels[i] = d.Labels[j]
		}
		return out
	}
	return mk(order[:cut]), mk(order[cut:]), nil
}

// RecallAtK measures approximate nearest-neighbor quality for one query:
// the fraction of the exact top-k IDs that the approximate result set
// recovered (order-insensitive, the standard ANN recall@k). exact defines
// k; approx may be shorter (missing hits count against recall) or longer
// (extra hits are ignored — truncate upstream to audit a stricter k).
func RecallAtK(approx, exact []graph.NodeID) (float64, error) {
	if len(exact) == 0 {
		return 0, fmt.Errorf("eval: recall@k with empty exact set")
	}
	want := make(map[graph.NodeID]bool, len(exact))
	for _, id := range exact {
		want[id] = true
	}
	if len(want) != len(exact) {
		return 0, fmt.Errorf("eval: recall@k exact set has duplicates")
	}
	hits := 0
	for _, id := range approx {
		if want[id] {
			hits++
			want[id] = false // count each exact ID once
		}
	}
	return float64(hits) / float64(len(exact)), nil
}

// MeanRecallAtK averages RecallAtK over aligned per-query result sets —
// the headline number for comparing an LSH index against exact search.
func MeanRecallAtK(approx, exact [][]graph.NodeID) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("eval: %d approx result sets vs %d exact", len(approx), len(exact))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("eval: recall@k with no queries")
	}
	var sum float64
	for i := range exact {
		r, err := RecallAtK(approx[i], exact[i])
		if err != nil {
			return 0, fmt.Errorf("eval: query %d: %v", i, err)
		}
		sum += r
	}
	return sum / float64(len(exact)), nil
}

// CombinedFeatures concatenates several operators' edge representations
// into one feature matrix (len(pairs) × len(ops)·d). The paper notes that
// "the choice of operator may be domain specific ... we are unaware of any
// systematic and sensible evaluation of combining operators" and leaves
// the exploration to future work; this is that extension.
func CombinedFeatures(emb *tensor.Matrix, pairs []NodePair, ops []Operator) (*tensor.Matrix, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("eval: CombinedFeatures needs ≥ 1 operator")
	}
	d := emb.Cols
	X := tensor.New(len(pairs), len(ops)*d)
	for i, p := range pairs {
		row := X.Row(i)
		for k, op := range ops {
			op.Apply(row[k*d:(k+1)*d], emb.Row(int(p.U)), emb.Row(int(p.V)))
		}
	}
	return X, nil
}
