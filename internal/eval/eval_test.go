package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/testutil"
)

func TestOperatorString(t *testing.T) {
	names := map[Operator]string{
		Mean: "Mean", Hadamard: "Hadamard", WeightedL1: "Weighted-L1", WeightedL2: "Weighted-L2",
	}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%v", op)
		}
	}
	if len(Operators) != 4 {
		t.Fatal("Operators must list all four")
	}
}

func TestOperatorApply(t *testing.T) {
	ex := []float64{1, -2, 3}
	ey := []float64{3, 2, -1}
	dst := make([]float64, 3)
	Mean.Apply(dst, ex, ey)
	if dst[0] != 2 || dst[1] != 0 || dst[2] != 1 {
		t.Fatalf("mean %v", dst)
	}
	Hadamard.Apply(dst, ex, ey)
	if dst[0] != 3 || dst[1] != -4 || dst[2] != -3 {
		t.Fatalf("hadamard %v", dst)
	}
	WeightedL1.Apply(dst, ex, ey)
	if dst[0] != 2 || dst[1] != 4 || dst[2] != 4 {
		t.Fatalf("l1 %v", dst)
	}
	WeightedL2.Apply(dst, ex, ey)
	if dst[0] != 4 || dst[1] != 16 || dst[2] != 16 {
		t.Fatalf("l2 %v", dst)
	}
}

func TestOperatorApplyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean.Apply(make([]float64, 2), make([]float64, 3), make([]float64, 3))
}

func TestEdgeFeatures(t *testing.T) {
	emb := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	pairs := []NodePair{{0, 1}, {1, 2}}
	X := EdgeFeatures(emb, pairs, Mean)
	if X.Rows != 2 || X.Cols != 2 {
		t.Fatal("shape")
	}
	if X.At(0, 0) != 2 || X.At(1, 1) != 5 {
		t.Fatalf("values %v", X.Data)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil || auc != 1 {
		t.Fatalf("perfect AUC %g err %v", auc, err)
	}
	auc, err = AUC(scores, []int{0, 0, 1, 1})
	if err != nil || auc != 0 {
		t.Fatalf("inverted AUC %g err %v", auc, err)
	}
}

func TestAUCTiesGiveHalf(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	auc, err := AUC(scores, labels)
	if err != nil || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %g err %v", auc, err)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []int{1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := AUC([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("single-class accepted")
	}
	if _, err := AUC([]float64{1, 2}, []int{1, 5}); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]int, n)
		nPos := 0
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10 // force ties
			labels[i] = rng.Intn(2)
			nPos += labels[i]
		}
		if nPos == 0 || nPos == n {
			return true
		}
		got, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		// Brute force: P(score_pos > score_neg) + 0.5 P(equal).
		var num, den float64
		for i := range scores {
			if labels[i] != 1 {
				continue
			}
			for j := range scores {
				if labels[j] != 0 {
					continue
				}
				den++
				if scores[i] > scores[j] {
					num++
				} else if scores[i] == scores[j] {
					num += 0.5
				}
			}
		}
		return math.Abs(got-num/den) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionMetrics(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	labels := []int{1, 0, 0, 1, 1}
	c, err := Confuse(pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("%+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatal("precision")
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatal("recall")
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatal("f1")
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Fatal("accuracy")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion must yield zeros")
	}
	if _, err := Confuse([]int{1}, []int{1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestErrorReduction(t *testing.T) {
	// them 0.9 → error 0.1; us 0.95 → error 0.05; reduction 50%.
	if got := ErrorReduction(0.9, 0.95); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("got %g", got)
	}
	// Worse performance yields negative reduction.
	if got := ErrorReduction(0.9, 0.8); got >= 0 {
		t.Fatalf("got %g", got)
	}
	if got := ErrorReduction(1.0, 0.9); got != 0 {
		t.Fatalf("degenerate them=1: got %g", got)
	}
}

func TestSampleNegativePairs(t *testing.T) {
	g := testutil.TwoCommunities(5, 0.6, 1)
	rng := rand.New(rand.NewSource(2))
	pairs, err := SampleNegativePairs(g, 20, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("%d pairs", len(pairs))
	}
	for _, p := range pairs {
		if g.HasEdge(p.U, p.V) {
			t.Fatal("negative pair is an edge")
		}
		if p.U > p.V {
			t.Fatal("pair not canonical")
		}
	}
}

func TestSampleNegativePairsRespectsForbidden(t *testing.T) {
	// Tiny graph where only one non-edge exists; forbidding it must fail.
	g := graph.NewTemporal(3)
	_ = g.AddEdge(0, 1, 1, 1)
	_ = g.AddEdge(1, 2, 1, 2)
	g.Build()
	forbidden := map[NodePair]bool{{U: 0, V: 2}: true}
	rng := rand.New(rand.NewSource(3))
	if _, err := SampleNegativePairs(g, 1, forbidden, rng); err == nil {
		t.Fatal("expected exhaustion error")
	}
	pairs, err := SampleNegativePairs(g, 1, nil, rng)
	if err != nil || pairs[0] != (NodePair{U: 0, V: 2}) {
		t.Fatalf("pairs %v err %v", pairs, err)
	}
}

func TestPrecisionAtPPerfectEmbedding(t *testing.T) {
	// Embed two cliques at two distant points: reconstruction should be
	// perfect until P exceeds the number of true edges among samples.
	g := testutil.TwoCommunities(4, 1.0, 4) // two 4-cliques + bridge
	emb := tensor.New(8, 2)
	for i := 0; i < 8; i++ {
		if i < 4 {
			emb.SetRow(i, []float64{1, 0})
		} else {
			emb.SetRow(i, []float64{0, 1})
		}
	}
	nodes := make([]graph.NodeID, 8)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	// 12 intra-pairs are all true edges (plus 1 bridge among inter pairs).
	ps, err := PrecisionAtP(g, emb, nodes, []int{6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] != 1 || ps[1] != 1 {
		t.Fatalf("precision %v, want perfect", ps)
	}
	// At P=28 (all pairs) precision = 13/28.
	ps, err = PrecisionAtP(g, emb, nodes, []int{28})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps[0]-13.0/28) > 1e-12 {
		t.Fatalf("precision@28 = %g want %g", ps[0], 13.0/28)
	}
}

func TestPrecisionAtPErrors(t *testing.T) {
	g := testutil.TwoCommunities(3, 1, 5)
	emb := tensor.New(6, 2)
	nodes := []graph.NodeID{0, 1, 2}
	if _, err := PrecisionAtP(g, emb, nodes, nil); err == nil {
		t.Fatal("no Ps accepted")
	}
	if _, err := PrecisionAtP(g, emb, nodes, []int{2, 2}); err == nil {
		t.Fatal("non-ascending Ps accepted")
	}
	if _, err := PrecisionAtP(g, emb, nodes, []int{100}); err == nil {
		t.Fatal("P beyond pair count accepted")
	}
	if _, err := PrecisionAtP(g, emb, []graph.NodeID{0}, []int{1}); err == nil {
		t.Fatal("single sample node accepted")
	}
}

func TestBuildLinkPredDataBalanced(t *testing.T) {
	g := testutil.TwoCommunities(6, 0.7, 6)
	_, held, err := g.SplitByTime(0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	d, err := BuildLinkPredData(g, held, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	for _, l := range d.Labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg || pos == 0 {
		t.Fatalf("unbalanced: %d pos %d neg", pos, neg)
	}
	if _, err := BuildLinkPredData(g, nil, rng); err == nil {
		t.Fatal("empty held-out accepted")
	}
}

func TestLinkPredSplit(t *testing.T) {
	g := testutil.TwoCommunities(6, 0.7, 8)
	_, held, err := g.SplitByTime(0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	d, err := BuildLinkPredData(g, held, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Split(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Pairs)+len(test.Pairs) != len(d.Pairs) {
		t.Fatal("split lost examples")
	}
	if _, _, err := d.Split(0, rng); err == nil {
		t.Fatal("frac 0 accepted")
	}
	if _, _, err := d.Split(1, rng); err == nil {
		t.Fatal("frac 1 accepted")
	}
}

func TestCombinedFeatures(t *testing.T) {
	emb := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	pairs := []NodePair{{0, 1}}
	X, err := CombinedFeatures(emb, pairs, []Operator{Mean, Hadamard})
	if err != nil {
		t.Fatal(err)
	}
	if X.Rows != 1 || X.Cols != 4 {
		t.Fatalf("shape %dx%d", X.Rows, X.Cols)
	}
	want := []float64{2, 3, 3, 8} // mean then hadamard
	for i, v := range want {
		if X.At(0, i) != v {
			t.Fatalf("X %v want %v", X.Data, want)
		}
	}
	if _, err := CombinedFeatures(emb, pairs, nil); err == nil {
		t.Fatal("empty operator list accepted")
	}
}

func TestRecallAtK(t *testing.T) {
	exact := []graph.NodeID{1, 2, 3, 4}
	cases := []struct {
		name   string
		approx []graph.NodeID
		want   float64
	}{
		{"perfect", []graph.NodeID{4, 3, 2, 1}, 1},
		{"half", []graph.NodeID{1, 2, 9, 8}, 0.5},
		{"miss", []graph.NodeID{7, 8, 9, 10}, 0},
		{"short approx", []graph.NodeID{1}, 0.25},
		{"duplicate approx counted once", []graph.NodeID{1, 1, 1, 1}, 0.25},
		{"extra hits ignored", []graph.NodeID{1, 2, 3, 4, 5, 6}, 1},
	}
	for _, c := range cases {
		got, err := RecallAtK(c.approx, exact)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Fatalf("%s: recall = %g, want %g", c.name, got, c.want)
		}
	}
	if _, err := RecallAtK(nil, nil); err == nil {
		t.Fatal("empty exact set accepted")
	}
	if _, err := RecallAtK(nil, []graph.NodeID{1, 1}); err == nil {
		t.Fatal("duplicated exact set accepted")
	}
}

func TestMeanRecallAtK(t *testing.T) {
	approx := [][]graph.NodeID{{1, 2}, {5, 6}}
	exact := [][]graph.NodeID{{1, 2}, {5, 7}}
	got, err := MeanRecallAtK(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("mean recall = %g, want 0.75", got)
	}
	if _, err := MeanRecallAtK(approx, exact[:1]); err == nil {
		t.Fatal("misaligned sets accepted")
	}
	if _, err := MeanRecallAtK(nil, nil); err == nil {
		t.Fatal("zero queries accepted")
	}
}
