package classify

import (
	"math"
	"math/rand"
	"testing"

	"ehna/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{L2: -1, LR: 0.1, Epochs: 1, BatchSize: 1},
		{L2: 0, LR: 0, Epochs: 1, BatchSize: 1},
		{L2: 0, LR: 0.1, Epochs: 0, BatchSize: 1},
		{L2: 0, LR: 0.1, Epochs: 1, BatchSize: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestTrainInputValidation(t *testing.T) {
	cfg := DefaultConfig()
	X := tensor.New(2, 3)
	if _, err := Train(X, []int{1}, cfg); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := Train(tensor.New(0, 3), nil, cfg); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train(X, []int{1, 2}, cfg); err == nil {
		t.Fatal("non-binary label accepted")
	}
	if _, err := Train(X, []int{0, 1}, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// separableData builds a linearly separable 2-D dataset.
func separableData(n int, seed int64) (*tensor.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			X.Set(i, 0, rng.NormFloat64()+2)
			X.Set(i, 1, rng.NormFloat64()+2)
			y[i] = 1
		} else {
			X.Set(i, 0, rng.NormFloat64()-2)
			X.Set(i, 1, rng.NormFloat64()-2)
		}
	}
	return X, y
}

func TestTrainSeparable(t *testing.T) {
	X, y := separableData(200, 1)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(X)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(y))
	if acc < 0.97 {
		t.Fatalf("accuracy %g on separable data", acc)
	}
}

func TestPredictProbaRange(t *testing.T) {
	X, y := separableData(100, 2)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictProba(X) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %g out of range", p)
		}
	}
}

func TestPredictDimensionPanic(t *testing.T) {
	X, y := separableData(50, 3)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict(tensor.New(1, 5))
}

func TestTrainDeterministic(t *testing.T) {
	X, y := separableData(80, 4)
	m1, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	X, y := separableData(150, 5)
	weak := DefaultConfig()
	weak.L2 = 1e-6
	strong := DefaultConfig()
	strong.L2 = 1.0
	mWeak, err := Train(X, y, weak)
	if err != nil {
		t.Fatal(err)
	}
	mStrong, err := Train(X, y, strong)
	if err != nil {
		t.Fatal(err)
	}
	nw := tensor.L2NormVec(mWeak.W)
	ns := tensor.L2NormVec(mStrong.W)
	if ns >= nw {
		t.Fatalf("stronger L2 must shrink weights: %g vs %g", ns, nw)
	}
}

func TestImbalancedStillLearns(t *testing.T) {
	// 90/10 imbalance; model must beat the majority-class baseline's
	// recall of 0 on the minority class.
	rng := rand.New(rand.NewSource(6))
	n := 300
	X := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			X.Set(i, 0, rng.NormFloat64()+3)
			X.Set(i, 1, rng.NormFloat64()+3)
			y[i] = 1
		} else {
			X.Set(i, 0, rng.NormFloat64()-1)
			X.Set(i, 1, rng.NormFloat64()-1)
		}
	}
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(X)
	tp := 0
	for i := range pred {
		if pred[i] == 1 && y[i] == 1 {
			tp++
		}
	}
	if tp == 0 {
		t.Fatal("minority class never predicted")
	}
}

func TestOneVsRest(t *testing.T) {
	// Three well-separated Gaussian blobs.
	rng := rand.New(rand.NewSource(9))
	n := 300
	X := tensor.New(n, 2)
	y := make([]int, n)
	centers := [][2]float64{{0, 4}, {-4, -2}, {4, -2}}
	for i := 0; i < n; i++ {
		c := i % 3
		X.Set(i, 0, centers[c][0]+rng.NormFloat64()*0.5)
		X.Set(i, 1, centers[c][1]+rng.NormFloat64()*0.5)
		y[i] = c
	}
	ovr, err := TrainOneVsRest(X, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := ovr.Predict(X)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("one-vs-rest accuracy %g", acc)
	}
}

func TestOneVsRestValidation(t *testing.T) {
	X := tensor.New(2, 2)
	if _, err := TrainOneVsRest(X, []int{0, 1}, 1, DefaultConfig()); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := TrainOneVsRest(X, []int{0}, 2, DefaultConfig()); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := TrainOneVsRest(X, []int{0, 5}, 2, DefaultConfig()); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := TrainOneVsRest(X, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
