// Package classify provides the L2-regularized binary logistic regression
// used as the link-prediction probe (the paper trains "the same logistic
// regression classifier with the LIBLINEAR package" on edge representations
// for every embedding method, Section V-E).
//
// The solver is deterministic mini-batch SGD with a linearly decayed rate
// and iterate averaging over the final epoch — accurate enough for the
// linear probe role while depending only on the standard library.
package classify

import (
	"fmt"
	"math/rand"

	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Config parameterizes the logistic regression.
type Config struct {
	L2        float64 // L2 regularization strength (λ)
	LR        float64 // initial learning rate
	Epochs    int     // passes over the training set
	BatchSize int     // examples per SGD step
	Seed      int64   // shuffling seed
}

// DefaultConfig returns settings comparable to LIBLINEAR's defaults for the
// probe's problem sizes.
func DefaultConfig() Config {
	return Config{L2: 1e-4, LR: 0.5, Epochs: 50, BatchSize: 64, Seed: 1}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.L2 < 0 {
		return fmt.Errorf("classify: negative L2 %g", c.L2)
	}
	if c.LR <= 0 {
		return fmt.Errorf("classify: LR %g must be positive", c.LR)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("classify: Epochs %d < 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("classify: BatchSize %d < 1", c.BatchSize)
	}
	return nil
}

// Model is a trained binary logistic regression.
type Model struct {
	W    []float64 // weights, len = feature dim
	Bias float64
}

// Train fits the model on features X (n×d) and binary labels y (0 or 1).
func Train(X *tensor.Matrix, y []int, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if X.Rows != len(y) {
		return nil, fmt.Errorf("classify: %d rows but %d labels", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return nil, fmt.Errorf("classify: empty training set")
	}
	for i, l := range y {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("classify: label[%d] = %d is not binary", i, l)
		}
	}
	d := X.Cols
	m := &Model{W: make([]float64, d)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(X.Rows)

	// Iterate averaging over the last epoch stabilizes SGD's tail.
	avgW := make([]float64, d)
	var avgB float64
	var avgCount int

	totalSteps := cfg.Epochs * ((X.Rows + cfg.BatchSize - 1) / cfg.BatchSize)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Fisher–Yates reshuffle per epoch, deterministic via rng.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps))
			if lr < cfg.LR/100 {
				lr = cfg.LR / 100
			}
			m.sgdStep(X, y, order[lo:hi], lr, cfg.L2)
			step++
			if epoch == cfg.Epochs-1 {
				for i, w := range m.W {
					avgW[i] += w
				}
				avgB += m.Bias
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for i := range avgW {
			m.W[i] = avgW[i] / float64(avgCount)
		}
		m.Bias = avgB / float64(avgCount)
	}
	return m, nil
}

func (m *Model) sgdStep(X *tensor.Matrix, y []int, idx []int, lr, l2 float64) {
	d := len(m.W)
	gradW := make([]float64, d)
	var gradB float64
	for _, i := range idx {
		row := X.Row(i)
		p := vecmath.Sigmoid(vecmath.Dot(m.W, row) + m.Bias)
		g := p - float64(y[i])
		vecmath.Axpy(gradW, g, row)
		gradB += g
	}
	inv := 1 / float64(len(idx))
	for j := range m.W {
		m.W[j] -= lr * (gradW[j]*inv + l2*m.W[j])
	}
	m.Bias -= lr * gradB * inv
}

// PredictProba returns P(y=1|x) for each row of X.
func (m *Model) PredictProba(X *tensor.Matrix) []float64 {
	if X.Cols != len(m.W) {
		panic(fmt.Sprintf("classify: %d features, model has %d", X.Cols, len(m.W)))
	}
	out := make([]float64, X.Rows)
	for i := range out {
		out[i] = tensor.SigmoidScalar(tensor.DotVec(m.W, X.Row(i)) + m.Bias)
	}
	return out
}

// Predict returns hard 0/1 labels at the 0.5 threshold.
func (m *Model) Predict(X *tensor.Matrix) []int {
	probs := m.PredictProba(X)
	out := make([]int, len(probs))
	for i, p := range probs {
		if p >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// OneVsRest is a multi-class classifier built from per-class binary
// logistic regressions (the standard reduction LIBLINEAR also uses).
type OneVsRest struct {
	Classes int
	Models  []*Model
}

// TrainOneVsRest fits one binary model per class on features X and integer
// labels in [0, classes).
func TrainOneVsRest(X *tensor.Matrix, y []int, classes int, cfg Config) (*OneVsRest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if classes < 2 {
		return nil, fmt.Errorf("classify: need ≥ 2 classes, got %d", classes)
	}
	if X.Rows != len(y) {
		return nil, fmt.Errorf("classify: %d rows but %d labels", X.Rows, len(y))
	}
	for i, l := range y {
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("classify: label[%d] = %d outside [0,%d)", i, l, classes)
		}
	}
	ovr := &OneVsRest{Classes: classes, Models: make([]*Model, classes)}
	bin := make([]int, len(y))
	for c := 0; c < classes; c++ {
		for i, l := range y {
			if l == c {
				bin[i] = 1
			} else {
				bin[i] = 0
			}
		}
		m, err := Train(X, bin, cfg)
		if err != nil {
			return nil, fmt.Errorf("classify: class %d: %v", c, err)
		}
		ovr.Models[c] = m
	}
	return ovr, nil
}

// Predict returns the argmax-probability class per row of X.
func (o *OneVsRest) Predict(X *tensor.Matrix) []int {
	scores := make([][]float64, o.Classes)
	for c, m := range o.Models {
		scores[c] = m.PredictProba(X)
	}
	out := make([]int, X.Rows)
	for i := range out {
		best, arg := -1.0, 0
		for c := 0; c < o.Classes; c++ {
			if scores[c][i] > best {
				best, arg = scores[c][i], c
			}
		}
		out[i] = arg
	}
	return out
}
