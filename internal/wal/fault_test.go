package wal

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"ehna/internal/faultfs"
	"ehna/internal/graph"
)

// appendUntilFault appends records one at a time (Append = buffered
// write + commit) until one fails, returning the last acked seq and
// the error that stopped the stream.
func appendUntilFault(t *testing.T, l *Log, max int) (acked uint64, ferr error) {
	t.Helper()
	for i := 0; i < max; i++ {
		seq, err := l.Append(OpUpsert, graph.NodeID(i), []float64{float64(i), -float64(i)})
		if err != nil {
			return acked, err
		}
		acked = seq
	}
	return acked, nil
}

// replaySeqs replays dir and returns every record seq in order.
func replaySeqs(t *testing.T, dir string) []uint64 {
	t.Helper()
	var seqs []uint64
	if _, err := Replay(dir, 0, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return seqs
}

// TestFsyncFaultPoisonsThenHeals injects a burst of fsync failures:
// the log must refuse further appends (sticky error, no silent ack),
// and a reopen after the fault clears must recover every acked record
// and accept new appends.
func TestFsyncFaultPoisonsThenHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	inj := faultfs.New(nil)
	l, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	acked, ferr := appendUntilFault(t, l, 10)
	if ferr != nil {
		t.Fatalf("appends failed before fault injected: %v", ferr)
	}

	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Count: 3})
	_, ferr = appendUntilFault(t, l, 10)
	if !errors.Is(ferr, syscall.EIO) {
		t.Fatalf("append under fsync fault: err=%v, want EIO", ferr)
	}
	// The error is sticky: even though the injector would let a 4th
	// fsync through, the poisoned log must not pretend to be healthy.
	if _, err := l.Append(OpUpsert, 999, []float64{1}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append after poison: err=%v, want sticky EIO", err)
	}
	_ = l.Close()

	// Fault cleared: reopen recovers. Replay may surface records beyond
	// the acked prefix (written to the page cache before the failed
	// fsync) but must never lose an acked one, and must be gap-free.
	inj.Clear()
	seqs := replaySeqs(t, dir)
	if uint64(len(seqs)) < acked {
		t.Fatalf("replay lost acked records: got %d, acked through %d", len(seqs), acked)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("replay gap at %d: seq %d", i, s)
		}
	}

	l2, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("reopen after fault cleared: %v", err)
	}
	defer l2.Close()
	seq, err := l2.Append(OpUpsert, 1000, []float64{2})
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if seq != seqs[len(seqs)-1]+1 {
		t.Fatalf("healed log resumed at seq %d, want %d", seq, seqs[len(seqs)-1]+1)
	}
}

// TestENOSPCMidStream fills the "disk" mid-stream: writes start
// returning ENOSPC, appends fail without acking, and clearing the
// fault lets a reopened log resume with the acked prefix intact.
func TestENOSPCMidStream(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	inj := faultfs.New(nil)
	l, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	acked, ferr := appendUntilFault(t, l, 5)
	if ferr != nil {
		t.Fatalf("appends failed before fault: %v", ferr)
	}

	// Big records overflow the 64 KiB buffered writer so the injected
	// write error surfaces on Append itself, not only at fsync.
	big := make([]float64, 1<<13)
	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Err: syscall.ENOSPC})
	var sawENOSPC bool
	for i := 0; i < 4; i++ {
		if _, err := l.Append(OpUpsert, graph.NodeID(100+i), big); err != nil {
			if !faultfs.IsDiskFull(err) {
				t.Fatalf("append: err=%v, want ENOSPC", err)
			}
			sawENOSPC = true
			break
		}
	}
	if !sawENOSPC {
		t.Fatal("no append surfaced ENOSPC")
	}
	_ = l.Close()

	inj.Clear()
	seqs := replaySeqs(t, dir)
	if uint64(len(seqs)) < acked {
		t.Fatalf("replay lost acked records: got %d, acked through %d", len(seqs), acked)
	}
	l2, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if _, err := l2.Append(OpUpsert, 2000, []float64{3}); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
}

// TestTornWriteTailRepairedOnReopen makes the final flush land only
// half its bytes (a torn frame), then checks Open truncates the tail
// and the log appends cleanly from the last whole record.
func TestTornWriteTailRepairedOnReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	inj := faultfs.New(nil)
	l, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	acked, ferr := appendUntilFault(t, l, 6)
	if ferr != nil {
		t.Fatalf("appends failed before fault: %v", ferr)
	}
	big := make([]float64, 1<<13)
	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Torn: true})
	if _, err := l.Append(OpUpsert, 500, big); err == nil {
		t.Fatal("torn append reported success")
	}
	_ = l.Close()

	inj.Clear()
	info, err := Replay(dir, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("Replay over torn tail: %v", err)
	}
	if info.LastSeq < acked {
		t.Fatalf("torn tail ate acked records: last=%d, acked=%d", info.LastSeq, acked)
	}
	l2, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer l2.Close()
	seq, err := l2.Append(OpUpsert, 501, []float64{4})
	if err != nil {
		t.Fatalf("append after tail repair: %v", err)
	}
	if seq != info.LastSeq+1 {
		t.Fatalf("append resumed at %d, want %d", seq, info.LastSeq+1)
	}
	seqs := replaySeqs(t, dir)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("replay gap after repair at %d: seq %d", i, s)
		}
	}
}

// TestSlowFsyncStillDurable wires a stalling disk: appends get slower
// but nothing is lost.
func TestSlowFsyncStillDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	inj := faultfs.New(nil)
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Sleep: 5e6}) // 5ms per fsync
	l, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	acked, ferr := appendUntilFault(t, l, 5)
	if ferr != nil {
		t.Fatalf("append under slow fsync: %v", ferr)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if seqs := replaySeqs(t, dir); uint64(len(seqs)) != acked {
		t.Fatalf("replayed %d records, want %d", len(seqs), acked)
	}
}
