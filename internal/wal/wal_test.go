package wal

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ehna/internal/graph"
)

// randomOps generates a reproducible mixed upsert/delete stream over a
// small ID space (so deletes hit and upserts replace).
func randomOps(rng *rand.Rand, n, dim int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		id := graph.NodeID(rng.Intn(64))
		if rng.Float64() < 0.25 {
			recs[i] = Record{Op: OpDelete, ID: id}
			continue
		}
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		recs[i] = Record{Op: OpUpsert, ID: id, Vec: vec}
	}
	return recs
}

// replayState materializes a replay into a map: the reference "state
// machine" the log drives. Returns the Info alongside.
func replayState(t *testing.T, dir string, after uint64) (map[graph.NodeID][]float64, Info) {
	t.Helper()
	state := make(map[graph.NodeID][]float64)
	info, err := Replay(dir, after, func(r Record) error {
		applyTo(state, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return state, info
}

func applyTo(state map[graph.NodeID][]float64, r Record) {
	switch r.Op {
	case OpUpsert:
		state[r.ID] = append([]float64(nil), r.Vec...)
	case OpDelete:
		delete(state, r.ID)
	}
}

func statesEqual(a, b map[graph.NodeID][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, av := range a {
		bv, ok := b[id]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func appendOps(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for i := range recs {
		if _, err := l.Append(recs[i].Op, recs[i].ID, recs[i].Vec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := randomOps(rand.New(rand.NewSource(1)), 200, 8)
	appendOps(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	info, err := Replay(dir, 0, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(recs) || info.LastSeq != uint64(len(recs)) {
		t.Fatalf("replayed %d records (last seq %d), want %d", len(got), info.LastSeq, len(recs))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Op != recs[i].Op || r.ID != recs[i].ID {
			t.Fatalf("record %d: %+v vs %+v", i, r, recs[i])
		}
		for j := range recs[i].Vec {
			if r.Vec[j] != recs[i].Vec[j] {
				t.Fatalf("record %d vector differs", i)
			}
		}
	}
}

// TestReplayIdempotent: applying a log twice leaves the same state as
// applying it once (the guarantee that lets a snapshot bleed records
// past its watermark and still recover exactly).
func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rand.New(rand.NewSource(2)), 300, 4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	once, _ := replayState(t, dir, 0)
	twice := make(map[graph.NodeID][]float64)
	for pass := 0; pass < 2; pass++ {
		if _, err := Replay(dir, 0, func(r Record) error {
			applyTo(twice, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !statesEqual(once, twice) {
		t.Fatal("replaying twice diverged from replaying once")
	}
}

// TestReplayComposes: replay(append(a,b)) == replay(a) then replay(b) —
// cutting a log at any boundary and replaying the halves in order is
// the same as replaying the whole.
func TestReplayComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomOps(rng, 120, 4)
	b := randomOps(rng, 150, 4)

	full, da := t.TempDir(), t.TempDir()
	db := t.TempDir()
	for _, w := range []struct {
		dir  string
		recs [][]Record
	}{{full, [][]Record{a, b}}, {da, [][]Record{a}}, {db, [][]Record{b}}} {
		l, err := Open(w.dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for _, recs := range w.recs {
			appendOps(t, l, recs)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	want, _ := replayState(t, full, 0)
	got := make(map[graph.NodeID][]float64)
	for _, dir := range []string{da, db} {
		if _, err := Replay(dir, 0, func(r Record) error {
			applyTo(got, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !statesEqual(want, got) {
		t.Fatal("replay(a+b) != replay(a);replay(b)")
	}
}

// TestRotateTruncateKeepsUnsnapshottedRecords: whatever watermark is
// passed, truncation only drops records a rotation sealed at or below
// it — everything after the watermark survives and replays.
func TestRotateTruncateKeepsUnsnapshottedRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	reference := make(map[graph.NodeID][]float64)
	var watermark uint64
	var tail []Record // records with seq > watermark, in order
	for round := 0; round < 5; round++ {
		recs := randomOps(rng, 40+rng.Intn(40), 4)
		for i := range recs {
			seq, err := l.Append(recs[i].Op, recs[i].ID, recs[i].Vec)
			if err != nil {
				t.Fatal(err)
			}
			recs[i].Seq = seq
			applyTo(reference, recs[i])
			tail = append(tail, recs[i])
		}
		wm, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if wm <= watermark && round > 0 {
			t.Fatalf("watermark did not advance: %d -> %d", watermark, wm)
		}
		// Truncate to a watermark in the middle of history: only sealed
		// segments entirely <= wm may vanish.
		mid := watermark + (wm-watermark)/2
		if err := l.TruncateThrough(mid); err != nil {
			t.Fatal(err)
		}
		state, _ := replayState(t, dir, mid)
		partial := make(map[graph.NodeID][]float64)
		for _, r := range tail {
			if r.Seq > mid {
				applyTo(partial, r)
			}
		}
		if !statesEqual(state, partial) {
			t.Fatalf("round %d: replay after truncate-to-%d lost records", round, mid)
		}
		watermark = wm
		// Now truncate fully to the rotation watermark and check the
		// suffix still replays to the reference when applied over the
		// "snapshot" (the reference state at the watermark).
		if err := l.TruncateThrough(wm); err != nil {
			t.Fatal(err)
		}
		snap := make(map[graph.NodeID][]float64)
		for id, v := range reference {
			snap[id] = v
		}
		if _, err := Replay(dir, wm, func(r Record) error {
			applyTo(snap, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !statesEqual(snap, reference) {
			t.Fatalf("round %d: snapshot+suffix != full history", round)
		}
		tail = tail[:0]
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailToleratedAndRepaired simulates a crash mid-append: a
// partial frame at the end of the final segment. Replay must stop
// cleanly at the last good record, and Open must truncate the tail so
// subsequent appends produce a clean log.
func TestTornTailToleratedAndRepaired(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"header fragment": {0x55, 0x01},
		"short payload":   {0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
		"bad crc":         nil, // filled below: full frame with flipped crc
		"insane length":   {0xff, 0xff, 0xff, 0x7f, 0x00, 0x00, 0x00, 0x00, 0x00},
		"zero length":     {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			recs := randomOps(rand.New(rand.NewSource(5)), 50, 4)
			appendOps(t, l, recs)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			want, _ := replayState(t, dir, 0)
			if garbage == nil {
				frame := AppendRecord(nil, Record{Seq: 51, Op: OpDelete, ID: 9})
				frame[4] ^= 0xff // corrupt the crc
				garbage = frame
			}
			segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments: %v", err)
			}
			last := segs[len(segs)-1]
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			state, info := replayState(t, dir, 0)
			if !info.Torn {
				t.Fatal("torn tail not reported")
			}
			if info.LastSeq != 50 {
				t.Fatalf("last seq %d after torn tail, want 50", info.LastSeq)
			}
			if !statesEqual(state, want) {
				t.Fatal("torn tail changed the replayed state")
			}

			// Reopen: the tail must be truncated and appends must work.
			l, err = Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			if l.LastSeq() != 50 {
				t.Fatalf("reopened at seq %d, want 50", l.LastSeq())
			}
			seq, err := l.Append(OpDelete, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if seq != 51 {
				t.Fatalf("append after repair got seq %d, want 51", seq)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, info = replayState(t, dir, 0)
			if info.Torn || info.LastSeq != 51 {
				t.Fatalf("after repair+append: torn=%v last=%d", info.Torn, info.LastSeq)
			}
		})
	}
}

// TestCorruptionMidSealedSegmentIsAnError: tolerance is only for the
// final segment's tail — damage to sealed history must be loud.
func TestCorruptionMidSealedSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rand.New(rand.NewSource(6)), 30, 4))
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rand.New(rand.NewSource(7)), 30, 4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("corrupt sealed segment replayed cleanly")
	}
}

// TestReopenContinuesSequence: close/open cycles preserve the sequence
// and the full history replays across them.
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	reference := make(map[graph.NodeID][]float64)
	var total int
	for session := 0; session < 4; session++ {
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if got := l.LastSeq(); got != uint64(total) {
			t.Fatalf("session %d opened at seq %d, want %d", session, got, total)
		}
		recs := randomOps(rng, 25, 4)
		for i := range recs {
			if _, err := l.Append(recs[i].Op, recs[i].ID, recs[i].Vec); err != nil {
				t.Fatal(err)
			}
			applyTo(reference, recs[i])
		}
		total += len(recs)
		if session%2 == 1 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	state, info := replayState(t, dir, 0)
	if info.LastSeq != uint64(total) {
		t.Fatalf("last seq %d, want %d", info.LastSeq, total)
	}
	if !statesEqual(state, reference) {
		t.Fatal("replay across sessions diverged")
	}
}

// TestGroupCommitConcurrentAppends hammers Append from many goroutines
// under SyncAlways and checks every acknowledged record is durable and
// the sequence is gapless.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vec := []float64{float64(w)}
			for i := 0; i < perWorker; i++ {
				seq, err := l.Append(OpUpsert, graph.NodeID(w), vec)
				if err != nil {
					errs <- err
					return
				}
				if l.DurableSeq() < seq {
					errs <- errors.New("append acknowledged before durable under SyncAlways")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := replayState(t, dir, 0)
	if info.Records != workers*perWorker || info.LastSeq != workers*perWorker {
		t.Fatalf("replayed %d records (last %d), want %d", info.Records, info.LastSeq, workers*perWorker)
	}
}

// TestSyncIntervalEventuallyDurable: the background loop catches up
// without explicit Sync calls.
func TestSyncIntervalEventuallyDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(OpUpsert, 1, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchAssignsContiguousSeqs: one batch, one durability wait,
// gapless sequence numbers.
func TestAppendBatchAssignsContiguousSeqs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpUpsert, ID: 1, Vec: []float64{1}},
		{Op: OpDelete, ID: 2},
		{Op: OpUpsert, ID: 3, Vec: []float64{3}},
	}
	last, err := l.AppendBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Fatalf("batch last seq %d, want 3", last)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d assigned seq %d", i, r.Seq)
		}
	}
	if l.DurableSeq() != 3 {
		t.Fatalf("durable %d after batch, want 3", l.DurableSeq())
	}
	if _, err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"never", SyncNever, true},
		{"none", SyncNever, true},
		{"250ms", SyncInterval, true},
		{"-1s", 0, false},
		{"banana", 0, false},
	} {
		got, _, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestEncodeDecodeIdentity is the deterministic cousin of the fuzz
// round-trip: frames survive encode→decode bit-exactly, including
// NaN/Inf payloads and back-to-back frames in one buffer.
func TestEncodeDecodeIdentity(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: OpUpsert, ID: 0, Vec: []float64{0, -0, 1.5e308, -1.5e-308}},
		{Seq: 2, Op: OpDelete, ID: 4294967295},
		{Seq: 3, Op: OpUpsert, ID: 7, Vec: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	for i, want := range recs {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Op != want.Op || got.ID != want.ID || len(got.Vec) != len(want.Vec) {
			t.Fatalf("record %d: %+v vs %+v", i, got, want)
		}
		for j := range want.Vec {
			if math.Float64bits(got.Vec[j]) != math.Float64bits(want.Vec[j]) {
				t.Fatalf("record %d vec[%d] bits differ", i, j)
			}
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
	if !bytes.Equal(AppendRecord(nil, recs[1]), AppendRecord(nil, recs[1])) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestAppendBufferedCommitGroup: buffered appends are not durable
// until Commit, and Commit makes everything up to the sequence
// durable (the daemon's append-under-lock, commit-outside-lock shape).
func TestAppendBufferedCommitGroup(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		if last, err = l.AppendBuffered([]Record{{Op: OpDelete, ID: graph.NodeID(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if l.DurableSeq() != 0 {
		t.Fatalf("durable %d before commit, want 0", l.DurableSeq())
	}
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	if l.DurableSeq() != last {
		t.Fatalf("durable %d after commit, want %d", l.DurableSeq(), last)
	}
	// A later commit covers earlier sequences for free.
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, info := replayState(t, dir, 0); info.LastSeq != last {
		t.Fatalf("replayed to %d, want %d", info.LastSeq, last)
	}
}

// TestReplayRefusesGapBeforeOldestSegment: if the log was truncated
// past the requested replay start, the hole must be an error, not
// silently skipped records.
func TestReplayRefusesGapBeforeOldestSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rand.New(rand.NewSource(9)), 30, 4))
	wm, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rand.New(rand.NewSource(10)), 10, 4))
	if err := l.TruncateThrough(wm); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay from the watermark (or later) is fine...
	if _, err := Replay(dir, wm, func(Record) error { return nil }); err != nil {
		t.Fatalf("replay from watermark: %v", err)
	}
	// ...but pretending the log still reaches back to 0 must fail: the
	// records 1..wm are gone (this models a stale snapshot restored
	// over a truncated log).
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay across the truncation hole succeeded silently")
	}
}
