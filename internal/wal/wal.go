// Package wal is the write-ahead log that makes the serving daemon a
// system of record: every upsert/delete is appended (and made durable
// per the fsync policy) before it is applied to the embstore and index,
// so a crash loses nothing that was acknowledged.
//
// On disk a log is a directory of segment files named by the sequence
// number of their first record (00000000000000000001.wal, ...). Each
// record is a length-prefixed, CRC32C-framed frame:
//
//	u32 LE payload length | u32 LE crc32c(payload) | payload
//	payload = u8 op | u64 LE seq | u32 LE node id | float64 LE vector...
//
// Appends group-commit: concurrent appenders write to one buffered
// writer, and under SyncAlways the first to reach the fsync gate
// flushes everyone queued behind it, so an fsync is paid per commit
// cohort rather than per record. Replay iterates records in sequence
// order and tolerates a torn final record (the tail a crash mid-write
// leaves behind): it stops cleanly at the last valid frame and reports
// where. Open repairs such a tail by truncating it, so the next append
// starts from a clean frame boundary.
//
// Snapshot integration: Rotate seals the active segment and returns
// the sequence number of its last record — the watermark a snapshot
// taken afterwards covers — and TruncateThrough deletes only sealed
// segments entirely at or below a watermark, so records newer than the
// snapshot (and anything still being appended) are never dropped.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/faultfs"
	"ehna/internal/graph"
)

// Op is the record type.
type Op uint8

const (
	// OpUpsert inserts or replaces a vector.
	OpUpsert Op = 1
	// OpDelete removes a vector.
	OpDelete Op = 2
)

// String returns the op's name.
func (o Op) String() string {
	switch o {
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Record is one logged mutation. Vec is nil for deletes.
type Record struct {
	Seq uint64
	Op  Op
	ID  graph.NodeID
	Vec []float64
}

const (
	frameHeader = 8         // u32 length + u32 crc
	payloadMin  = 1 + 8 + 4 // op + seq + id
	payloadMax  = 1 << 26   // 64 MiB: anything larger is corruption, not a record
	segSuffix   = ".wal"
	segNameLen  = 20 // zero-padded decimal first-seq
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports an incomplete final frame: more bytes were promised
// (by the length prefix, or the header itself) than are present. It is
// the signature a crash mid-append leaves and is tolerated at the tail.
var ErrTorn = errors.New("wal: torn record")

// ErrCorrupt reports a structurally invalid frame: CRC mismatch,
// unknown op, or an impossible length.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrGap reports that replay cannot start at the requested watermark:
// the oldest surviving segment begins after it, so the intervening
// records no longer exist (snapshot truncation moved past the caller).
// A replication follower that hits it must re-bootstrap from a
// snapshot instead of streaming.
var ErrGap = errors.New("wal: records truncated before replay watermark")

// ErrDiverged reports that AppendAt was handed a record whose sequence
// number does not continue the local log — the replication stream and
// the log disagree about history. Refused before any byte is written,
// so it never poisons the log the way a persistence failure does.
var ErrDiverged = errors.New("wal: replication stream diverged from the local log")

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	payload := payloadMin + 8*len(r.Vec)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+payload)...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	p := b[frameHeader:]
	p[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(p[1:9], r.Seq)
	binary.LittleEndian.PutUint32(p[9:13], uint32(r.ID))
	for i, v := range r.Vec {
		binary.LittleEndian.PutUint64(p[13+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(p, castagnoli))
	return dst
}

// DecodeRecord decodes the first frame of b, returning the record and
// the number of bytes consumed. A frame that runs past the end of b
// yields ErrTorn; a structurally invalid one yields ErrCorrupt. The
// record's vector is freshly allocated (it does not alias b).
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("%w: %d-byte header fragment", ErrTorn, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < payloadMin || n > payloadMax {
		return Record{}, 0, fmt.Errorf("%w: payload length %d outside [%d,%d]", ErrCorrupt, n, payloadMin, payloadMax)
	}
	if len(b) < frameHeader+n {
		return Record{}, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTorn, len(b)-frameHeader, n)
	}
	p := b[frameHeader : frameHeader+n]
	if got, want := crc32.Checksum(p, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc %08x, want %08x", ErrCorrupt, got, want)
	}
	r, err := decodePayload(p)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeader + n, nil
}

// decodePayload decodes a length-sane, CRC-validated payload.
func decodePayload(p []byte) (Record, error) {
	n := len(p)
	r := Record{
		Op:  Op(p[0]),
		Seq: binary.LittleEndian.Uint64(p[1:9]),
		ID:  graph.NodeID(binary.LittleEndian.Uint32(p[9:13])),
	}
	switch r.Op {
	case OpDelete:
		if n != payloadMin {
			return Record{}, fmt.Errorf("%w: delete payload of %d bytes", ErrCorrupt, n)
		}
	case OpUpsert:
		if (n-payloadMin)%8 != 0 {
			return Record{}, fmt.Errorf("%w: upsert payload of %d bytes", ErrCorrupt, n)
		}
		r.Vec = make([]float64, (n-payloadMin)/8)
		for i := range r.Vec {
			r.Vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[13+8*i:]))
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, p[0])
	}
	return r, nil
}

// SyncPolicy selects when appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways makes every append durable before it returns,
	// group-committed across concurrent appenders. The crash-safe
	// default: an acknowledged write survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs in the background every Options.Interval. A
	// crash can lose up to one interval of acknowledged writes; an OS
	// that stays up loses nothing (data is in the page cache).
	SyncInterval
	// SyncNever leaves fsync to segment rotation and Close. Fastest;
	// durability rides entirely on the OS page cache.
	SyncNever
)

// ParseSyncPolicy maps a -fsync flag value onto a policy: "always",
// "never", or a duration like "250ms" (the background sync interval).
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return SyncAlways, 0, nil
	case "never", "none":
		return SyncNever, 0, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: fsync policy %q (want always, never, or a positive duration)", s)
		}
		return SyncInterval, d, nil
	}
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// FS is the filesystem the log persists through (default the real
	// one). Fault drills inject a faultfs.Injector here.
	FS faultfs.FS
	// FirstSeq is the sequence number the log starts at when the
	// directory holds no segments yet (default 1). A follower
	// bootstrapped from a snapshot at watermark W opens its log with
	// FirstSeq W+1, so replicated records keep the leader's numbering
	// and a later Replay(W) finds no gap.
	FirstSeq uint64
}

func (o *Options) fill() {
	if o.Sync == SyncInterval && o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	if o.FirstSeq == 0 {
		o.FirstSeq = 1
	}
}

// sealedSeg is a closed segment: records [first, last] in path.
type sealedSeg struct {
	path        string
	first, last uint64
	bytes       int64
}

// Log is an append-only write-ahead log over a directory of segments.
// Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // buffer writes, seq assignment, segment bookkeeping
	f        faultfs.File
	bw       *bufio.Writer
	enc      []byte // frame-encoding scratch
	nextSeq  uint64
	segFirst uint64 // first seq of the active segment
	segBytes int64  // bytes appended to the active segment
	sealed   []sealedSeg
	closed   bool

	syncMu  sync.Mutex // the group-commit gate; also serializes f swaps vs fsync
	syncErr error      // sticky: a failed fsync poisons the log
	durable atomic.Uint64

	stopInterval chan struct{}
	intervalDone chan struct{}
}

// segName returns the file name of the segment whose first record is seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%0*d%s", segNameLen, seq, segSuffix)
}

// parseSegName extracts the first-seq from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) || len(name) != segNameLen+len(segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:segNameLen], 10, 64)
	return n, err == nil && n > 0
}

// listSegments returns the directory's segment files sorted by first seq.
func listSegments(fsys faultfs.FS, dir string) ([]sealedSeg, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []sealedSeg
	for _, e := range ents {
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, sealedSeg{path: filepath.Join(dir, e.Name()), first: first, bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	// A sealed segment's last record is the next segment's first minus
	// one; the active (final) segment's last is discovered by scanning.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first <= segs[i].first {
			return nil, fmt.Errorf("wal: segments %s and %s out of order", segs[i].path, segs[i+1].path)
		}
		segs[i].last = segs[i+1].first - 1
	}
	return segs, nil
}

// syncDir fsyncs the directory so segment creates/removes survive a
// crash of the machine, not just the process.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanSegment walks every frame of one segment file, calling fn for
// each record, and returns the byte offset and sequence number after
// the last valid record. A torn or corrupt tail is reported via torn
// (with the offset where it starts), not as an error; fn errors abort.
func scanSegment(fsys faultfs.FS, path string, firstSeq uint64, fn func(Record) error) (end int64, last uint64, torn bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var (
		off    int64
		expect = firstSeq
		hdr    [frameHeader]byte
		buf    []byte
	)
	last = firstSeq - 1
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return off, last, false, nil // clean end
			}
			return off, last, true, nil // header fragment: torn
		}
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		if n < payloadMin || n > payloadMax {
			return off, last, true, nil
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return off, last, true, nil
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, last, true, nil
		}
		rec, derr := decodePayload(buf)
		if derr != nil {
			return off, last, true, nil
		}
		if rec.Seq != expect {
			return off, last, true, nil // sequence break: treat as tail
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, last, false, err
			}
		}
		off += int64(frameHeader + n)
		last = rec.Seq
		expect++
	}
}

// Info summarizes a Replay pass.
type Info struct {
	// LastSeq is the sequence number of the last valid record (0 when
	// the log is empty).
	LastSeq uint64
	// Records is the number of records passed to fn.
	Records int
	// Torn reports that the final segment ended in an invalid frame,
	// which replay skipped — the expected residue of a crash mid-append.
	Torn bool
	// TornPath/TornOffset locate the invalid tail when Torn is set.
	TornPath   string
	TornOffset int64
}

// Replay iterates every record with Seq > after, in sequence order,
// across all segments of dir. It tolerates a torn final record in the
// last segment (reported via Info.Torn); corruption anywhere else —
// including a whole missing segment — is an error. A missing or empty
// directory replays zero records.
func Replay(dir string, after uint64, fn func(Record) error) (Info, error) {
	return ReplayFS(faultfs.OS(), dir, after, fn)
}

// ReplayFS is Replay reading through an explicit filesystem, so fault
// drills can exercise boot-time recovery too.
func ReplayFS(fsys faultfs.FS, dir string, after uint64, fn func(Record) error) (Info, error) {
	return ReplayRangeFS(fsys, dir, after, math.MaxUint64, fn)
}

// ReplayRange is Replay bounded above: it iterates records with
// after < Seq ≤ upTo and stops cleanly once the bound is passed,
// without scanning the rest of the log. The replication stream handler
// uses it to ship exactly the durable prefix while appends continue.
func ReplayRange(dir string, after, upTo uint64, fn func(Record) error) (Info, error) {
	return ReplayRangeFS(faultfs.OS(), dir, after, upTo, fn)
}

// errStopReplay threads the upTo early-stop through scanSegment's
// fn-error abort path; it never escapes this package.
var errStopReplay = errors.New("wal: stop replay")

// ReplayRangeFS is ReplayRange reading through an explicit filesystem.
func ReplayRangeFS(fsys faultfs.FS, dir string, after, upTo uint64, fn func(Record) error) (Info, error) {
	var info Info
	if upTo <= after {
		return info, nil
	}
	segs, err := listSegments(fsys, dir)
	if os.IsNotExist(err) {
		return info, nil
	}
	if err != nil {
		return info, err
	}
	// The oldest surviving segment must reach back to the replay start:
	// a gap here means records between the snapshot watermark and the
	// log were lost (mismatched snapshot restored over a truncated log,
	// segments deleted by hand) — refuse to boot on silent data loss.
	if len(segs) > 0 && segs[0].first > after+1 {
		return info, fmt.Errorf("%w: oldest segment starts at seq %d but replay begins after %d: records %d-%d are missing",
			ErrGap, segs[0].first, after, after+1, segs[0].first-1)
	}
	for i, seg := range segs {
		final := i == len(segs)-1
		if i > 0 && seg.first != segs[i-1].last+1 {
			return info, fmt.Errorf("wal: gap between segments: %s ends at %d, %s starts at %d",
				segs[i-1].path, segs[i-1].last, seg.path, seg.first)
		}
		if seg.first > upTo {
			return info, nil
		}
		end, last, torn, err := scanSegment(fsys, seg.path, seg.first, func(r Record) error {
			if r.Seq <= after {
				return nil
			}
			if r.Seq > upTo {
				return errStopReplay
			}
			info.Records++
			return fn(r)
		})
		if errors.Is(err, errStopReplay) {
			if last >= seg.first {
				info.LastSeq = last
			}
			return info, nil
		}
		if err != nil {
			return info, err
		}
		if torn && !final {
			return info, fmt.Errorf("wal: %w in non-final segment %s at offset %d", ErrCorrupt, seg.path, end)
		}
		if !final && last != seg.last {
			return info, fmt.Errorf("wal: sealed segment %s ends at seq %d, want %d", seg.path, last, seg.last)
		}
		if last >= seg.first {
			info.LastSeq = last
		}
		if torn {
			info.Torn, info.TornPath, info.TornOffset = true, seg.path, end
		}
	}
	return info, nil
}

// OldestSeq reports the first sequence number still present in dir's
// segments (0 when the directory holds none). The replication stream
// handler uses it to answer a follower whose watermark predates the
// log with a bootstrap signal instead of a mid-stream failure.
func OldestSeq(dir string) (uint64, error) {
	segs, err := listSegments(faultfs.OS(), dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	return segs[0].first, nil
}

// Open opens (creating if needed) the log directory for appending. The
// final segment is scanned to find the append position; a torn tail is
// truncated away so the next record starts at a clean frame boundary.
// Records already in the log are untouched — call Replay first to read
// them.
func Open(dir string, opts Options) (*Log, error) {
	opts.fill()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.openSegment(opts.FirstSeq); err != nil {
			return nil, err
		}
	} else {
		active := segs[len(segs)-1]
		l.sealed = segs[:len(segs)-1]
		end, last, torn, err := scanSegment(opts.FS, active.path, active.first, nil)
		if err != nil {
			return nil, err
		}
		f, err := opts.FS.OpenFile(active.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		l.bw = bufio.NewWriterSize(f, 1<<16)
		l.segFirst = active.first
		l.segBytes = end
		l.nextSeq = active.first // empty active segment
		if last >= active.first {
			l.nextSeq = last + 1
		}
		l.durable.Store(l.nextSeq - 1)
	}
	if opts.Sync == SyncInterval {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop()
	}
	return l, nil
}

// openSegment creates the segment whose first record will be seq and
// makes it the active one. Caller holds no locks (Open) or both locks
// (Rotate).
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := l.opts.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.opts.FS, l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segFirst = seq
	l.segBytes = 0
	l.nextSeq = seq
	l.durable.Store(seq - 1)
	return nil
}

func (l *Log) intervalLoop() {
	defer close(l.intervalDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stopInterval:
			return
		}
	}
}

// Append logs one mutation and returns its sequence number. Under
// SyncAlways the record is durable when Append returns.
func (l *Log) Append(op Op, id graph.NodeID, vec []float64) (uint64, error) {
	rec := Record{Op: op, ID: id, Vec: vec}
	seq, err := l.AppendBuffered([]Record{rec})
	if err != nil {
		return 0, err
	}
	return seq, l.Commit(seq)
}

// AppendBatch logs every record (assigning their Seq fields in order)
// with a single durability wait, and returns the last sequence number.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	seq, err := l.AppendBuffered(recs)
	if err != nil {
		return 0, err
	}
	return seq, l.Commit(seq)
}

// AppendBuffered writes records to the log buffer without waiting for
// durability, returning the last assigned sequence number. Callers
// that hold their own serialization lock (the daemon's applier) append
// buffered inside it and Commit outside it, so concurrent commits can
// share one fsync instead of serializing a sync each behind the lock.
func (l *Log) AppendBuffered(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return l.LastSeq(), nil
	}
	return l.appendAll(recs)
}

// AppendAt buffers records that already carry sequence numbers — the
// replication apply path, where a follower must preserve the leader's
// numbering so Replay watermarks stay meaningful across failover. The
// batch must be contiguous and start exactly at the log's next
// sequence number; anything else means the stream diverged and is
// refused before a byte is written. Durability follows the same
// contract as AppendBuffered: call Commit with the returned sequence.
func (l *Log) AppendAt(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return l.LastSeq(), nil
	}
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return 0, err
	}
	for i := range recs {
		if recs[i].Seq != l.nextSeq {
			want := l.nextSeq
			l.mu.Unlock()
			return 0, fmt.Errorf("%w: replicated record has seq %d, log expects %d", ErrDiverged, recs[i].Seq, want)
		}
		l.enc = AppendRecord(l.enc[:0], recs[i])
		if _, err := l.bw.Write(l.enc); err != nil {
			l.syncErr = err // buffer state is unknown; poison the log
			l.mu.Unlock()
			return 0, err
		}
		l.segBytes += int64(len(l.enc))
		l.nextSeq++
	}
	last := l.nextSeq - 1
	l.mu.Unlock()
	walRecords.Add(uint64(len(recs)))
	walAppendHist.ObserveSince(start)
	return last, nil
}

// Commit makes records through seq durable per the sync policy: under
// SyncAlways it blocks until they are on disk (group-committed with
// concurrent callers); interval/never policies return immediately.
func (l *Log) Commit(seq uint64) error {
	if l.opts.Sync == SyncAlways {
		return l.syncTo(seq)
	}
	return nil
}

func (l *Log) appendAll(recs []Record) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return 0, err
	}
	for i := range recs {
		recs[i].Seq = l.nextSeq
		l.nextSeq++
		l.enc = AppendRecord(l.enc[:0], recs[i])
		if _, err := l.bw.Write(l.enc); err != nil {
			l.syncErr = err // buffer state is unknown; poison the log
			l.mu.Unlock()
			return 0, err
		}
		l.segBytes += int64(len(l.enc))
	}
	last := l.nextSeq - 1
	l.mu.Unlock()
	walRecords.Add(uint64(len(recs)))
	walAppendHist.ObserveSince(start)
	return last, nil
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	last := l.nextSeq - 1
	l.mu.Unlock()
	return l.syncTo(last)
}

// syncTo makes records through seq durable. Concurrent callers
// group-commit: whoever holds the gate flushes for everyone queued
// behind it, and late arrivals find their records already durable.
func (l *Log) syncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= seq {
		return nil
	}
	l.mu.Lock()
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return err
	}
	err := l.bw.Flush()
	flushed := l.nextSeq - 1
	f := l.f
	l.mu.Unlock()
	if err == nil {
		fsyncStart := time.Now()
		err = f.Sync()
		walFsyncs.Inc()
		walFsyncHist.ObserveSince(fsyncStart)
	}
	if err != nil {
		l.mu.Lock()
		l.syncErr = err
		l.mu.Unlock()
		return err
	}
	l.durable.Store(flushed)
	return nil
}

// LastSeq returns the sequence number of the most recently appended
// record (0 when nothing has been logged).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the highest sequence number known to be on disk.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// Rotate seals the active segment (flushed and fsynced) and opens a
// fresh one, returning the watermark: the last sequence number in the
// sealed log. A snapshot taken after Rotate returns covers at least
// every record up to the watermark, making TruncateThrough(watermark)
// safe once that snapshot is on disk. Rotating an empty active segment
// is a no-op. The caller must ensure records up to the watermark are
// applied to the state being snapshotted (the daemon holds its apply
// lock across Rotate for exactly this).
func (l *Log) Rotate() (uint64, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log closed")
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	watermark := l.nextSeq - 1
	if watermark < l.segFirst {
		return watermark, nil // nothing in the active segment
	}
	if err := l.bw.Flush(); err != nil {
		l.syncErr = err
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		l.syncErr = err
		return 0, err
	}
	l.durable.Store(watermark)
	l.sealed = append(l.sealed, sealedSeg{
		path:  filepath.Join(l.dir, segName(l.segFirst)),
		first: l.segFirst,
		last:  watermark,
		bytes: l.segBytes,
	})
	if err := l.openSegment(watermark + 1); err != nil {
		l.syncErr = err
		return 0, err
	}
	return watermark, nil
}

// TruncateThrough deletes sealed segments whose every record has
// sequence number ≤ watermark. The active segment is never touched, so
// records not yet covered by a snapshot are never dropped, whatever
// watermark is passed.
func (l *Log) TruncateThrough(watermark uint64) error {
	l.mu.Lock()
	var drop []sealedSeg
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.last <= watermark {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	for _, s := range drop {
		if err := l.opts.FS.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if len(drop) > 0 {
		return syncDir(l.opts.FS, l.dir)
	}
	return nil
}

// Stats is a point-in-time summary for health reporting.
type Stats struct {
	LastSeq    uint64 `json:"last_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	Segments   int    `json:"segments"`
	SizeBytes  int64  `json:"size_bytes"`
}

// Stats reports the log's current shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastSeq:    l.nextSeq - 1,
		DurableSeq: l.durable.Load(),
		Segments:   len(l.sealed) + 1,
		SizeBytes:  l.segBytes,
	}
	for _, s := range l.sealed {
		st.SizeBytes += s.bytes
	}
	return st
}

// Close flushes, fsyncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.stopInterval != nil {
		close(l.stopInterval)
		<-l.intervalDone
		l.stopInterval = nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.bw.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
