package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Encoder writes framed records to a stream in the same wire format as
// on-disk segments (u32 length | u32 crc32c | payload), so a
// replication response body is byte-for-byte what the follower could
// have read from the leader's own log. Not safe for concurrent use.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one framed record.
func (e *Encoder) Encode(r Record) error {
	e.buf = AppendRecord(e.buf[:0], r)
	_, err := e.w.Write(e.buf)
	return err
}

// Decoder reads framed records from a stream. Decode returns io.EOF at
// a clean frame boundary, an ErrTorn-wrapped error when the stream
// ends mid-frame (a connection cut, the analogue of a crash-torn
// segment tail), and an ErrCorrupt-wrapped error on an invalid frame.
// Not safe for concurrent use.
type Decoder struct {
	br  *bufio.Reader
	buf []byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 1<<16)}
}

// Decode reads the next record.
func (d *Decoder) Decode() (Record, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: header fragment", ErrTorn)
		}
		return Record{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < payloadMin || n > payloadMax {
		return Record{}, fmt.Errorf("%w: payload length %d outside [%d,%d]", ErrCorrupt, n, payloadMin, payloadMax)
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: %d of %d payload bytes", ErrTorn, 0, n)
		}
		return Record{}, err
	}
	if got, want := crc32.Checksum(buf, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return Record{}, fmt.Errorf("%w: crc %08x, want %08x", ErrCorrupt, got, want)
	}
	return decodePayload(buf)
}
