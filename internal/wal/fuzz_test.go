package wal

import (
	"errors"
	"math"
	"testing"

	"ehna/internal/graph"
)

// FuzzWALDecode throws arbitrary bytes at the frame decoder. The
// contract under attack: DecodeRecord never panics, every failure is a
// clean ErrTorn or ErrCorrupt, a successful decode consumes a sane
// byte count, and re-encoding a decoded record reproduces the input
// frame bit-exactly (so replay→rewrite cycles cannot drift).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(AppendRecord(nil, Record{Seq: 1, Op: OpUpsert, ID: 3, Vec: []float64{1, -2.5, math.Inf(1)}}))
	f.Add(AppendRecord(nil, Record{Seq: 42, Op: OpDelete, ID: 0}))
	truncated := AppendRecord(nil, Record{Seq: 2, Op: OpUpsert, ID: 9, Vec: []float64{3}})
	f.Add(truncated[:len(truncated)-3])
	badCRC := AppendRecord(nil, Record{Seq: 7, Op: OpDelete, ID: 1})
	badCRC[5] ^= 0x80
	f.Add(badCRC)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < frameHeader+payloadMin || n > len(data) {
			t.Fatalf("decoded %d bytes of a %d-byte input", n, len(data))
		}
		if rec.Op != OpUpsert && rec.Op != OpDelete {
			t.Fatalf("decoded impossible op %d", rec.Op)
		}
		if rec.Op == OpDelete && rec.Vec != nil {
			t.Fatal("delete decoded with a vector")
		}
		// Round trip: the frame must re-encode to exactly the bytes it
		// was decoded from.
		reenc := AppendRecord(nil, rec)
		if len(reenc) != n {
			t.Fatalf("re-encoded to %d bytes, decoded from %d", len(reenc), n)
		}
		for i := range reenc {
			if reenc[i] != data[i] {
				t.Fatalf("re-encoded frame differs at byte %d", i)
			}
		}
		// And decode back to an identical record.
		again, n2, err := DecodeRecord(reenc)
		if err != nil || n2 != n {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if again.Seq != rec.Seq || again.Op != rec.Op || again.ID != rec.ID || len(again.Vec) != len(rec.Vec) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", again, rec)
		}
		for i := range rec.Vec {
			if math.Float64bits(again.Vec[i]) != math.Float64bits(rec.Vec[i]) {
				t.Fatalf("vec[%d] bits changed across round trip", i)
			}
		}
		_ = graph.NodeID(rec.ID)
	})
}
