package wal

import "ehna/internal/obs"

// Ingest-path metrics on the process-wide registry. Appends and fsyncs
// are the write path's two latency sources — the buffered encode under
// the log lock, and the group-committed sync behind the fsync gate —
// so each gets its own histogram; dividing fsync count into record
// count shows how well group commit is amortizing. Per-instance shape
// (segment count, on-disk bytes) is registered by RegisterMetrics,
// which the daemon calls for the log it serves from.
var (
	walAppendHist = obs.Default().Histogram("ehnad_wal_append_seconds",
		"Latency of buffering a record batch into the log (excludes fsync).")
	walFsyncHist = obs.Default().Histogram("ehnad_wal_fsync_seconds",
		"Latency of one fsync at the group-commit gate.")
	walRecords = obs.Default().Counter("ehnad_wal_records_total",
		"Records appended to the log.")
	walFsyncs = obs.Default().Counter("ehnad_wal_fsyncs_total",
		"Fsyncs paid at the group-commit gate (and segment seals).")
)

// RegisterMetrics exposes this log instance's shape — segment count,
// on-disk size, sequence watermarks — as gauges on reg (the daemon
// passes its per-server registry, so two logs in one test process
// don't fight over the series). Re-registering rebinds the gauges to
// the newest instance.
func (l *Log) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("ehnad_wal_segments",
		"Log segment files on disk (sealed + active).",
		func() float64 { return float64(l.Stats().Segments) })
	reg.GaugeFunc("ehnad_wal_size_bytes",
		"Total bytes across all log segment files.",
		func() float64 { return float64(l.Stats().SizeBytes) })
	reg.GaugeFunc("ehnad_wal_last_seq",
		"Sequence number of the most recently appended record.",
		func() float64 { return float64(l.Stats().LastSeq) })
	reg.GaugeFunc("ehnad_wal_durable_seq",
		"Highest sequence number known fsynced to disk.",
		func() float64 { return float64(l.Stats().DurableSeq) })
}
