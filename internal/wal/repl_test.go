package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// collectRange replays (after, upTo] into a slice of records.
func collectRange(t *testing.T, dir string, after, upTo uint64) []Record {
	t.Helper()
	var got []Record
	if _, err := ReplayRange(dir, after, upTo, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("ReplayRange(%d, %d): %v", after, upTo, err)
	}
	return got
}

// assertSeqs checks got is exactly the contiguous run [lo, hi] — the
// follower catch-up contract: nothing dropped, nothing duplicated.
func assertSeqs(t *testing.T, got []Record, lo, hi uint64) {
	t.Helper()
	if hi < lo {
		if len(got) != 0 {
			t.Fatalf("want empty range, got %d records", len(got))
		}
		return
	}
	if uint64(len(got)) != hi-lo+1 {
		t.Fatalf("got %d records, want %d (seqs %d-%d)", len(got), hi-lo+1, lo, hi)
	}
	for i, r := range got {
		if want := lo + uint64(i); r.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want)
		}
	}
}

// TestReplayBoundaryAtRotateWatermark pins the exact boundary the
// snapshot/replication protocol leans on: Replay(after=watermark)
// after a Rotate yields exactly the records appended since — the
// watermark record itself is excluded, the first post-rotate record is
// included, across every off-by-one-tempting offset.
func TestReplayBoundaryAtRotateWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 37, 4))
	wm, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if wm != 37 {
		t.Fatalf("watermark %d, want 37", wm)
	}
	appendOps(t, l, randomOps(rng, 23, 4))
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	assertSeqs(t, collectRange(t, dir, wm, last), wm+1, last)   // exactly the suffix
	assertSeqs(t, collectRange(t, dir, wm-1, last), wm, last)   // one earlier includes the watermark record
	assertSeqs(t, collectRange(t, dir, wm+1, last), wm+2, last) // one later excludes the first suffix record
	assertSeqs(t, collectRange(t, dir, last, last), 1, 0)       // after == last: empty
	assertSeqs(t, collectRange(t, dir, 0, last), 1, last)       // full history
}

// TestReplayBoundaryAcrossSegments rotates several times and checks
// that for after == the last seq of each sealed segment, replay yields
// exactly the following segments' records — the segment boundary is
// invisible to the watermark arithmetic.
func TestReplayBoundaryAcrossSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var bounds []uint64 // last seq of each sealed segment
	for round := 0; round < 4; round++ {
		appendOps(t, l, randomOps(rng, 10+rng.Intn(20), 4))
		wm, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, wm)
	}
	appendOps(t, l, randomOps(rng, 7, 4)) // active-segment tail
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, b := range bounds {
		assertSeqs(t, collectRange(t, dir, b, last), b+1, last)
		if b > 1 {
			// Straddle the boundary: start one before it.
			assertSeqs(t, collectRange(t, dir, b-1, last), b, last)
		}
	}
}

// TestReplayRangeBounded exercises the upper bound: ranges inside one
// segment, spanning segments, ending exactly on a sealed boundary, and
// extending past the log's end.
func TestReplayRangeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 20, 4))
	wm, err := l.Rotate() // sealed segment 1-20
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 15, 4)) // active 21-35
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	assertSeqs(t, collectRange(t, dir, 5, 12), 6, 12)           // inside the sealed segment
	assertSeqs(t, collectRange(t, dir, 18, 25), 19, 25)         // spans the boundary
	assertSeqs(t, collectRange(t, dir, 10, wm), 11, wm)         // upTo == sealed boundary
	assertSeqs(t, collectRange(t, dir, wm, wm+3), wm+1, wm+3)   // starts at the boundary
	assertSeqs(t, collectRange(t, dir, 30, last+100), 31, last) // upTo past the end
	assertSeqs(t, collectRange(t, dir, 12, 12), 1, 0)           // empty range
	assertSeqs(t, collectRange(t, dir, 12, 3), 1, 0)            // inverted range
}

// TestReplayRangeInfoLastSeq pins Info.LastSeq for bounded replays —
// the stream handler reports it as the shipped watermark.
func TestReplayRangeInfoLastSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 30, 4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := ReplayRange(dir, 5, 17, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 17 || info.Records != 12 {
		t.Fatalf("info = %+v, want LastSeq 17, Records 12", info)
	}
}

// TestReplayGapIsErrGap checks the truncation-gap refusal is typed, so
// the stream handler can turn it into a re-bootstrap signal.
func TestReplayGapIsErrGap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 10, 4))
	wm, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, randomOps(rng, 5, 4))
	if err := l.TruncateThrough(wm); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrGap) {
		t.Fatalf("replay over truncated prefix: err = %v, want ErrGap", err)
	}
	oldest, err := OldestSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	if oldest != wm+1 {
		t.Fatalf("OldestSeq = %d, want %d", oldest, wm+1)
	}
}

// TestStreamCodecRoundTrip pushes records through Encoder/Decoder and
// checks identity plus clean-EOF framing.
func TestStreamCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	recs := randomOps(rng, 50, 6)
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i := 0; ; i++ {
		r, err := dec.Decode()
		if err == io.EOF {
			if i != len(recs) {
				t.Fatalf("EOF after %d records, want %d", i, len(recs))
			}
			break
		}
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := recs[i]
		if r.Seq != want.Seq || r.Op != want.Op || r.ID != want.ID || len(r.Vec) != len(want.Vec) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, want)
		}
		for j := range r.Vec {
			if r.Vec[j] != want.Vec[j] {
				t.Fatalf("record %d vec[%d] mismatch", i, j)
			}
		}
	}
}

// TestStreamDecoderTornTail checks a mid-frame cut (a dropped
// connection) surfaces as ErrTorn, not EOF and not corruption.
func TestStreamDecoderTornTail(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(Record{Seq: 1, Op: OpUpsert, ID: 7, Vec: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	if err := enc.Encode(Record{Seq: 2, Op: OpDelete, ID: 7}); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{whole + 3, whole + frameHeader + 2} {
		dec := NewDecoder(bytes.NewReader(buf.Bytes()[:cut]))
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("first record at cut %d: %v", cut, err)
		}
		if _, err := dec.Decode(); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: err = %v, want ErrTorn", cut, err)
		}
	}
}

// TestAppendAtPreservesLeaderSeqs drives the follower apply path: a
// log opened at FirstSeq = watermark+1 accepts a contiguous replicated
// batch keeping leader numbering, refuses divergence, and replays the
// suffix identically after reopen.
func TestAppendAtPreservesLeaderSeqs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const watermark = 100
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, FirstSeq: watermark + 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != watermark {
		t.Fatalf("fresh log LastSeq = %d, want %d", got, watermark)
	}
	recs := randomOps(rng, 25, 4)
	for i := range recs {
		recs[i].Seq = watermark + 1 + uint64(i)
	}
	last, err := l.AppendAt(recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(watermark + 25); last != want {
		t.Fatalf("AppendAt returned %d, want %d", last, want)
	}
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}

	// A non-contiguous batch is refused before a byte lands.
	if _, err := l.AppendAt([]Record{{Seq: last + 5, Op: OpDelete, ID: 1}}); err == nil {
		t.Fatal("AppendAt accepted a seq gap")
	}
	if got := l.LastSeq(); got != last {
		t.Fatalf("failed AppendAt moved LastSeq to %d", got)
	}

	// Local appends continue the same numbering.
	seq, err := l.Append(OpDelete, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != last+1 {
		t.Fatalf("Append after AppendAt got seq %d, want %d", seq, last+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay(watermark) finds no gap and yields the whole suffix.
	got := collectRange(t, dir, watermark, seq)
	assertSeqs(t, got, watermark+1, seq)

	// Reopen continues the sequence.
	l2, err := Open(dir, Options{Sync: SyncNever, FirstSeq: watermark + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != seq {
		t.Fatalf("reopened LastSeq = %d, want %d", got, seq)
	}
}
