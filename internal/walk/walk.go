// Package walk implements the three random-walk processes used in the
// paper: the EHNA temporal random walk over historical neighborhoods
// (Section IV-A, Eqs. 1–2), the node2vec second-order biased walk (used by
// the NODE2VEC baseline and by the EHNA-RW ablation), and the CTDNE
// forward-in-time constrained walk.
package walk

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ehna/internal/graph"
)

// Walk is one realized random walk. Nodes[0] is the source; Times[i] is the
// formation timestamp of the edge traversed between Nodes[i] and Nodes[i+1]
// (len(Times) == len(Nodes)−1).
type Walk struct {
	Nodes []graph.NodeID
	Times []float64
}

// Len returns the number of nodes in the walk.
func (w Walk) Len() int { return len(w.Nodes) }

// Scratch holds reusable walk-generation buffers: the walk slice, the
// per-walk Nodes/Times backing arrays and the transition-weight
// scratch. The training loop generates k walks per aggregation and
// immediately consumes them, so recycling the buffers removes the
// dominant allocation source of walk generation. Obtain via
// GetScratch, generate with TemporalWalker.WalksScratch, and return
// with PutScratch once the walks are no longer referenced.
type Scratch struct {
	walks   []Walk
	weights []float64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled scratch buffer.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles s. The walks most recently produced from s must
// no longer be referenced.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// slot returns walk slot i, growing the slice while keeping previously
// recycled Nodes/Times capacity.
func (s *Scratch) slot(i int) *Walk {
	for len(s.walks) <= i {
		s.walks = append(s.walks, Walk{})
	}
	return &s.walks[i]
}

// TemporalConfig parameterizes the EHNA temporal random walk.
type TemporalConfig struct {
	P        float64 // return parameter (Eq. 2); likelihood of revisiting the previous node
	Q        float64 // in-out parameter (Eq. 2); BFS (large q) vs DFS (small q) bias
	NumWalks int     // k walks per target node (paper default 10)
	WalkLen  int     // ℓ nodes per walk (paper default 10)
	Static   bool    // EHNA-RW ablation: ignore timestamps entirely (plain node2vec walk)
}

// Validate reports a descriptive error for nonsensical configurations.
func (c TemporalConfig) Validate() error {
	if c.P <= 0 || c.Q <= 0 {
		return fmt.Errorf("walk: p and q must be positive (p=%g q=%g)", c.P, c.Q)
	}
	if c.NumWalks < 1 {
		return fmt.Errorf("walk: NumWalks %d < 1", c.NumWalks)
	}
	if c.WalkLen < 1 {
		return fmt.Errorf("walk: WalkLen %d < 1", c.WalkLen)
	}
	return nil
}

// DefaultTemporalConfig returns the paper's default settings
// (k=10, ℓ=10, p=q=1).
func DefaultTemporalConfig() TemporalConfig {
	return TemporalConfig{P: 1, Q: 1, NumWalks: 10, WalkLen: 10}
}

// TemporalWalker generates temporal random walks over a temporal graph.
// It is safe for concurrent use: all state is read-only after construction
// and randomness comes from the caller's RNG.
type TemporalWalker struct {
	g   *graph.Temporal
	cfg TemporalConfig
}

// NewTemporalWalker validates cfg and returns a walker over g.
func NewTemporalWalker(g *graph.Temporal, cfg TemporalConfig) (*TemporalWalker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TemporalWalker{g: g, cfg: cfg}, nil
}

// Config returns the walker's configuration.
func (w *TemporalWalker) Config() TemporalConfig { return w.cfg }

// Walks generates cfg.NumWalks temporal random walks from x for analyzing
// an edge formed at time tTarget. Each walk visits only relevant nodes
// (Definition 2): traversed edges have non-increasing timestamps ≤ tTarget
// walking away from x. A walk terminates early when no relevant neighbor
// exists. Walks of length 1 (the bare source) are still returned so the
// aggregation layer always has k inputs.
func (w *TemporalWalker) Walks(x graph.NodeID, tTarget float64, rng *rand.Rand) []Walk {
	out := make([]Walk, w.cfg.NumWalks)
	var weights []float64
	for i := range out {
		w.oneInto(&out[i], x, tTarget, rng, &weights)
	}
	return out
}

// WalksScratch is Walks generating into pooled buffers: the returned
// slice and the Nodes/Times of each walk are owned by s and are only
// valid until the next WalksScratch call on s (or PutScratch).
func (w *TemporalWalker) WalksScratch(s *Scratch, x graph.NodeID, tTarget float64, rng *rand.Rand) []Walk {
	for i := 0; i < w.cfg.NumWalks; i++ {
		w.oneInto(s.slot(i), x, tTarget, rng, &s.weights)
	}
	return s.walks[:w.cfg.NumWalks]
}

// oneInto generates one walk into dst, reusing dst's backing arrays
// and the caller's transition-weight scratch.
func (w *TemporalWalker) oneInto(dst *Walk, x graph.NodeID, tTarget float64, rng *rand.Rand, weightsScratch *[]float64) {
	nodes := append(dst.Nodes[:0], x)
	times := dst.Times[:0]

	cur := x
	var prev graph.NodeID
	hasPrev := false
	prevTime := tTarget

	weights := *weightsScratch

	for len(nodes) < w.cfg.WalkLen {
		var cands []graph.HalfEdge
		if w.cfg.Static {
			cands = w.g.Neighbors(cur)
		} else {
			cands = w.g.NeighborsBefore(cur, prevTime)
		}
		if len(cands) == 0 {
			break // early termination: no relevant neighbor (Section IV-A)
		}
		if cap(weights) < len(cands) {
			weights = make([]float64, len(cands))
		}
		weights = weights[:len(cands)]
		var total float64
		for j, he := range cands {
			beta := 1.0
			if hasPrev {
				switch {
				case he.To == prev: // d_uw = 0: backtrack
					beta = 1 / w.cfg.P
				case w.edgeBetween(prev, he.To, tTarget): // d_uw = 1
					beta = 1
				default: // d_uw = 2
					beta = 1 / w.cfg.Q
				}
			}
			k := he.Weight
			if !w.cfg.Static {
				// Eq. 1: K = w·exp(−(t_target − t_edge)); timestamps are
				// expected to be normalized (graph.NormalizeTimes) so the
				// exponent is O(1).
				k *= math.Exp(-(tTarget - he.Time))
			}
			weights[j] = beta * k
			total += weights[j]
		}
		if total <= 0 {
			break
		}
		r := rng.Float64() * total
		pick := len(cands) - 1
		var acc float64
		for j, wt := range weights {
			acc += wt
			if r < acc {
				pick = j
				break
			}
		}
		chosen := cands[pick]
		nodes = append(nodes, chosen.To)
		times = append(times, chosen.Time)
		prev, hasPrev = cur, true
		cur = chosen.To
		if !w.cfg.Static {
			prevTime = chosen.Time
		}
	}
	*weightsScratch = weights
	dst.Nodes = nodes
	dst.Times = times
}

// edgeBetween reports whether a historical edge (≤ tTarget) connects a and
// b, defining the d_uw = 1 case of Eq. 2 on temporally visible structure.
func (w *TemporalWalker) edgeBetween(a, b graph.NodeID, tTarget float64) bool {
	if w.cfg.Static {
		return w.g.HasEdge(a, b)
	}
	return w.g.HasEdgeBefore(a, b, tTarget)
}

// Node2VecWalker generates classic second-order biased random walks
// (Grover & Leskovec) ignoring all temporal information.
type Node2VecWalker struct {
	g    *graph.Temporal
	p, q float64
}

// NewNode2VecWalker returns a walker with the given return/in-out biases.
func NewNode2VecWalker(g *graph.Temporal, p, q float64) (*Node2VecWalker, error) {
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("walk: node2vec p and q must be positive (p=%g q=%g)", p, q)
	}
	return &Node2VecWalker{g: g, p: p, q: q}, nil
}

// Walk generates one walk of up to length nodes starting at x. The walk
// stops early at isolated dead ends.
func (w *Node2VecWalker) Walk(x graph.NodeID, length int, rng *rand.Rand) []graph.NodeID {
	nodes := make([]graph.NodeID, 1, length)
	nodes[0] = x
	cur := x
	var prev graph.NodeID
	hasPrev := false
	var weights []float64
	for len(nodes) < length {
		cands := w.g.Neighbors(cur)
		if len(cands) == 0 {
			break
		}
		if cap(weights) < len(cands) {
			weights = make([]float64, len(cands))
		}
		weights = weights[:len(cands)]
		var total float64
		for j, he := range cands {
			beta := 1.0
			if hasPrev {
				switch {
				case he.To == prev:
					beta = 1 / w.p
				case w.g.HasEdge(prev, he.To):
					beta = 1
				default:
					beta = 1 / w.q
				}
			}
			weights[j] = beta * he.Weight
			total += weights[j]
		}
		r := rng.Float64() * total
		pick := len(cands) - 1
		var acc float64
		for j, wt := range weights {
			acc += wt
			if r < acc {
				pick = j
				break
			}
		}
		prev, hasPrev = cur, true
		cur = cands[pick].To
		nodes = append(nodes, cur)
	}
	return nodes
}

// CTDNEWalker generates forward-in-time constrained walks: consecutive
// edges have non-decreasing timestamps (Nguyen et al., CTDNE). Edge and
// neighbor selection are uniform, matching the paper's experimental setup
// ("we use the uniform sampling for initial edge selections and node
// selections").
type CTDNEWalker struct {
	g *graph.Temporal
}

// NewCTDNEWalker returns a CTDNE walker over g.
func NewCTDNEWalker(g *graph.Temporal) *CTDNEWalker { return &CTDNEWalker{g: g} }

// WalkFromEdge starts a temporal walk by traversing edge e, then extends it
// with uniformly chosen edges of non-decreasing timestamp, up to length
// nodes in total.
func (w *CTDNEWalker) WalkFromEdge(e graph.Edge, length int, rng *rand.Rand) []graph.NodeID {
	nodes := make([]graph.NodeID, 0, length)
	nodes = append(nodes, e.U, e.V)
	cur := e.V
	curTime := e.Time
	for len(nodes) < length {
		adj := w.g.Neighbors(cur)
		// Candidates are edges at Time ≥ curTime: adjacency is time-sorted,
		// so they form a suffix; find its start by binary search.
		lo, hi := 0, len(adj)
		for lo < hi {
			mid := (lo + hi) / 2
			if adj[mid].Time < curTime {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(adj) {
			break
		}
		he := adj[lo+rng.Intn(len(adj)-lo)]
		nodes = append(nodes, he.To)
		cur = he.To
		curTime = he.Time
	}
	return nodes
}
