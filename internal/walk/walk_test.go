package walk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ehna/internal/graph"
)

// chain builds 0-1-2-3-4 with strictly increasing edge times 1,2,3,4.
func chain(t *testing.T) *graph.Temporal {
	t.Helper()
	g := graph.NewTemporal(5)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g.Build()
	return g
}

// clique builds a complete graph over n nodes, all edges at time 1.
func clique(t *testing.T, n int) *graph.Temporal {
	t.Helper()
	g := graph.NewTemporal(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Build()
	return g
}

func TestTemporalConfigValidate(t *testing.T) {
	bad := []TemporalConfig{
		{P: 0, Q: 1, NumWalks: 1, WalkLen: 1},
		{P: 1, Q: -1, NumWalks: 1, WalkLen: 1},
		{P: 1, Q: 1, NumWalks: 0, WalkLen: 1},
		{P: 1, Q: 1, NumWalks: 1, WalkLen: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if err := DefaultTemporalConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	g := chain(t)
	if _, err := NewTemporalWalker(g, TemporalConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTemporalWalkRelevanceConstraint(t *testing.T) {
	// Walking from node 4 at target time 5: edge times must be
	// non-increasing along the walk (Definition 2) and ≤ tTarget.
	g := chain(t)
	w, err := NewTemporalWalker(g, TemporalConfig{P: 1, Q: 1, NumWalks: 20, WalkLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, wk := range w.Walks(4, 5, rng) {
		if wk.Nodes[0] != 4 {
			t.Fatal("walk must start at source")
		}
		if len(wk.Times) != len(wk.Nodes)-1 {
			t.Fatal("times length mismatch")
		}
		prev := 5.0
		for _, tm := range wk.Times {
			if tm > prev {
				t.Fatalf("timestamps increased along walk: %v", wk.Times)
			}
			prev = tm
		}
	}
}

func TestTemporalWalkRespectsTargetTime(t *testing.T) {
	// Target time 2 from node 2: edges at times 3,4 are in the future and
	// must never be traversed. Only 0-1-2 side is reachable.
	g := chain(t)
	w, _ := NewTemporalWalker(g, TemporalConfig{P: 1, Q: 1, NumWalks: 50, WalkLen: 5})
	rng := rand.New(rand.NewSource(2))
	for _, wk := range w.Walks(2, 2, rng) {
		for _, n := range wk.Nodes {
			if n == 3 || n == 4 {
				t.Fatalf("future node %d visited: %v", n, wk.Nodes)
			}
		}
	}
}

func TestTemporalWalkEarlyTermination(t *testing.T) {
	// From node 0 at time 1 the only edge is (0,1,t=1). After moving to 1,
	// the only continuations are backtracking (0, t=1) or (1,2,t=2) which
	// violates non-increasing time — so walks are confined to {0,1}.
	g := chain(t)
	w, _ := NewTemporalWalker(g, TemporalConfig{P: 1, Q: 1, NumWalks: 30, WalkLen: 6})
	rng := rand.New(rand.NewSource(3))
	for _, wk := range w.Walks(0, 1, rng) {
		for _, n := range wk.Nodes {
			if n != 0 && n != 1 {
				t.Fatalf("node %d beyond temporal horizon: %v", n, wk.Nodes)
			}
		}
	}
	// A node with no history at all yields bare single-node walks.
	for _, wk := range w.Walks(4, 0.5, rng) {
		if wk.Len() != 1 {
			t.Fatalf("expected bare walk, got %v", wk.Nodes)
		}
	}
}

func TestTemporalWalkCount(t *testing.T) {
	g := clique(t, 6)
	cfg := TemporalConfig{P: 1, Q: 1, NumWalks: 7, WalkLen: 4}
	w, _ := NewTemporalWalker(g, cfg)
	if w.Config() != cfg {
		t.Fatal("Config roundtrip")
	}
	rng := rand.New(rand.NewSource(4))
	walks := w.Walks(0, 2, rng)
	if len(walks) != 7 {
		t.Fatalf("got %d walks want 7", len(walks))
	}
	for _, wk := range walks {
		if wk.Len() != 4 {
			t.Fatalf("clique walk stopped early: %v", wk.Nodes)
		}
	}
}

func TestTemporalWalkSmallPBacktracks(t *testing.T) {
	// On a clique with uniform times, p ≪ 1 strongly favors returning to
	// the previous node; p ≫ 1 avoids it.
	g := clique(t, 8)
	count := func(p float64, seed int64) int {
		w, _ := NewTemporalWalker(g, TemporalConfig{P: p, Q: 1, NumWalks: 200, WalkLen: 6})
		rng := rand.New(rand.NewSource(seed))
		back := 0
		for _, wk := range w.Walks(0, 2, rng) {
			for i := 2; i < len(wk.Nodes); i++ {
				if wk.Nodes[i] == wk.Nodes[i-2] {
					back++
				}
			}
		}
		return back
	}
	lo := count(0.05, 5)
	hi := count(20, 5)
	if lo <= hi*2 {
		t.Fatalf("backtracking not controlled by p: p=0.05 → %d, p=20 → %d", lo, hi)
	}
}

func TestTemporalWalkQBiasesBFS(t *testing.T) {
	// Wheel with spokes: hub 0 joined to ring 1-2-3; each ring node also
	// has a private outer leaf (4,5,6) NOT adjacent to the hub. After
	// stepping 0→i, the next hop chooses between ring neighbors (distance 1
	// from the hub, β=1) and the outer leaf (distance 2, β=1/q), so large q
	// (BFS) keeps the walk near the hub while small q (DFS) pushes outward.
	g := graph.NewTemporal(7)
	for i := 1; i <= 3; i++ {
		_ = g.AddEdge(0, graph.NodeID(i), 1, 1)
	}
	_ = g.AddEdge(1, 2, 1, 1)
	_ = g.AddEdge(2, 3, 1, 1)
	_ = g.AddEdge(3, 1, 1, 1)
	_ = g.AddEdge(1, 4, 1, 1)
	_ = g.AddEdge(2, 5, 1, 1)
	_ = g.AddEdge(3, 6, 1, 1)
	g.Build()

	frac := func(q float64) float64 {
		w, _ := NewTemporalWalker(g, TemporalConfig{P: 1000, Q: q, NumWalks: 400, WalkLen: 3})
		rng := rand.New(rand.NewSource(6))
		local, total := 0, 0
		for _, wk := range w.Walks(0, 2, rng) {
			if wk.Len() < 3 {
				continue
			}
			total++
			// Step 2 lands on a node adjacent to the start (d=1) or not (d=2).
			if g.HasEdge(0, wk.Nodes[2]) && wk.Nodes[2] != 0 {
				local++
			}
		}
		if total == 0 {
			t.Fatal("no full walks")
		}
		return float64(local) / float64(total)
	}
	if bfs, dfs := frac(10), frac(0.1); bfs <= dfs {
		t.Fatalf("q bias inverted: frac(q=10)=%g ≤ frac(q=0.1)=%g", bfs, dfs)
	}
}

func TestTemporalWalkStaticIgnoresTime(t *testing.T) {
	// Static mode (EHNA-RW ablation) can traverse future edges.
	g := chain(t)
	w, _ := NewTemporalWalker(g, TemporalConfig{P: 1, Q: 1, NumWalks: 100, WalkLen: 5, Static: true})
	rng := rand.New(rand.NewSource(7))
	sawFuture := false
	for _, wk := range w.Walks(0, 1, rng) {
		for _, n := range wk.Nodes {
			if n > 1 {
				sawFuture = true
			}
		}
	}
	if !sawFuture {
		t.Fatal("static walk never escaped the temporal horizon")
	}
}

func TestTemporalWalkDecayPrefersRecent(t *testing.T) {
	// Node 0 has two neighbors: node 1 (old edge, t=0) and node 2 (recent,
	// t≈1). With the decay kernel, first steps should prefer node 2.
	g := graph.NewTemporal(3)
	_ = g.AddEdge(0, 1, 1, 0)
	_ = g.AddEdge(0, 2, 1, 0.99)
	g.Build()
	w, _ := NewTemporalWalker(g, TemporalConfig{P: 1, Q: 1, NumWalks: 2000, WalkLen: 2})
	rng := rand.New(rand.NewSource(8))
	recent := 0
	for _, wk := range w.Walks(0, 1, rng) {
		if wk.Len() > 1 && wk.Nodes[1] == 2 {
			recent++
		}
	}
	// exp(-0.01)/(exp(-0.01)+exp(-1)) ≈ 0.73
	fr := float64(recent) / 2000
	if fr < 0.68 || fr > 0.78 {
		t.Fatalf("recency preference %g, want ≈0.73", fr)
	}
}

// Property: every temporal walk satisfies Definition 2 on random graphs.
func TestPropertyTemporalWalkRelevance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := graph.NewTemporal(n)
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			_ = g.AddEdge(u, v, 0.5+rng.Float64(), rng.Float64())
		}
		g.Build()
		w, err := NewTemporalWalker(g, TemporalConfig{P: 0.5, Q: 2, NumWalks: 3, WalkLen: 6})
		if err != nil {
			return false
		}
		src := graph.NodeID(rng.Intn(n))
		tTarget := rng.Float64()
		for _, wk := range w.Walks(src, tTarget, rng) {
			if wk.Nodes[0] != src || len(wk.Times) != len(wk.Nodes)-1 {
				return false
			}
			prev := tTarget
			for i, tm := range wk.Times {
				if tm > prev {
					return false
				}
				// The traversed edge must actually exist at that time.
				if !g.HasEdgeBefore(wk.Nodes[i], wk.Nodes[i+1], tm) {
					return false
				}
				prev = tm
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNode2VecWalkerValidation(t *testing.T) {
	g := chain(t)
	if _, err := NewNode2VecWalker(g, 0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewNode2VecWalker(g, 1, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
}

func TestNode2VecWalkLengthAndConnectivity(t *testing.T) {
	g := clique(t, 5)
	w, _ := NewNode2VecWalker(g, 1, 1)
	rng := rand.New(rand.NewSource(9))
	nodes := w.Walk(0, 10, rng)
	if len(nodes) != 10 {
		t.Fatalf("walk length %d want 10", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if !g.HasEdge(nodes[i-1], nodes[i]) {
			t.Fatal("walk traversed a non-edge")
		}
	}
}

func TestNode2VecWalkDeadEnd(t *testing.T) {
	g := graph.NewTemporal(3)
	_ = g.AddEdge(0, 1, 1, 1)
	g.Build()
	w, _ := NewNode2VecWalker(g, 1, 1)
	rng := rand.New(rand.NewSource(10))
	nodes := w.Walk(2, 5, rng) // isolated node
	if len(nodes) != 1 {
		t.Fatalf("isolated start should yield length-1 walk, got %v", nodes)
	}
}

func TestCTDNEWalkNonDecreasingTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.NewTemporal(20)
	for i := 0; i < 80; i++ {
		u, v := graph.NodeID(rng.Intn(20)), graph.NodeID(rng.Intn(20))
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, 1, rng.Float64())
	}
	g.Build()
	w := NewCTDNEWalker(g)
	for _, e := range g.Edges() {
		nodes := w.WalkFromEdge(e, 8, rng)
		if nodes[0] != e.U || nodes[1] != e.V {
			t.Fatal("walk must start by traversing the seed edge")
		}
		// Verify each hop exists with a time ≥ the previous hop by
		// replaying reachability: every consecutive pair must share an edge.
		for i := 2; i < len(nodes); i++ {
			if !g.HasEdge(nodes[i-1], nodes[i]) {
				t.Fatal("CTDNE traversed a non-edge")
			}
		}
	}
}

func TestCTDNEWalkStopsAtTemporalDeadEnd(t *testing.T) {
	g := chain(t)
	w := NewCTDNEWalker(g)
	rng := rand.New(rand.NewSource(12))
	// Seed with the last edge (3,4,t=4): node 4 has no later edges, so the
	// walk can only continue via (4,3,t=4) ... which then allows (3,4,t=4)
	// again; lengths are capped by the length argument regardless.
	nodes := w.WalkFromEdge(graph.Edge{U: 3, V: 4, Weight: 1, Time: 4}, 4, rng)
	if len(nodes) > 4 {
		t.Fatalf("walk exceeded cap: %v", nodes)
	}
}

func BenchmarkTemporalWalks(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	g := graph.NewTemporal(n)
	for i := 0; i < 20000; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, 1, rng.Float64())
	}
	g.Build()
	w, _ := NewTemporalWalker(g, DefaultTemporalConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Walks(graph.NodeID(i%n), 0.9, rng)
	}
}
