package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ehna/internal/datagen"
	"ehna/internal/eval"
)

// tiny returns settings small enough for unit tests.
func tiny() Settings {
	s := Quick()
	s.Scale = 0.02
	s.Repeats = 2
	s.EHNAWalks = 3
	s.EHNAWalkLen = 4
	s.SGNSEpochs = 1
	s.LINESamples = 20_000
	s.HTNEEpochs = 2
	s.Workers = 1 // hogwild SGNS is deliberately racy; keep tests race-clean
	return s
}

// skipIfShort guards the heavier end-to-end runners: under -race they
// multiply past the package test timeout.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping heavy experiment runner in -short mode")
	}
}

func TestSettingsValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Full().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Settings){
		func(s *Settings) { s.Scale = 0 },
		func(s *Settings) { s.Dim = 7 },
		func(s *Settings) { s.Repeats = 0 },
		func(s *Settings) { s.EHNAEpochs = 0 },
		func(s *Settings) { s.EHNAWalks = 0 },
		func(s *Settings) { s.EHNAWalkLen = 1 },
		func(s *Settings) { s.LINESamples = 0 },
	}
	for i, mut := range bad {
		s := Quick()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestMethodsRoster(t *testing.T) {
	ms := Quick().Methods()
	if len(ms) != 5 {
		t.Fatalf("%d methods", len(ms))
	}
	want := []string{"LINE", "Node2Vec", "CTDNE", "HTNE", "EHNA"}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Fatalf("method %d = %s want %s", i, m.Name, want[i])
		}
	}
}

func TestAllMethodsEmbedTinyGraph(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	g, err := datagen.Generate(datagen.Digg, s.Scale, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Methods() {
		emb, err := m.Embed(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if emb.Rows != g.NumNodes() || emb.Cols != s.Dim {
			t.Fatalf("%s: shape %dx%d", m.Name, emb.Rows, emb.Cols)
		}
	}
}

func TestRunFig4(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	r, err := RunFig4(s, datagen.Digg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ps) == 0 || len(r.Precisions) != 5 {
		t.Fatalf("ps %v methods %d", r.Ps, len(r.Precisions))
	}
	for name, prec := range r.Precisions {
		if len(prec) != len(r.Ps) {
			t.Fatalf("%s: %d precisions for %d Ps", name, len(prec), len(r.Ps))
		}
		for _, p := range prec {
			if p < 0 || p > 1 {
				t.Fatalf("%s: precision %g out of range", name, p)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig4(&buf, r)
	if !strings.Contains(buf.String(), "EHNA") {
		t.Fatal("printer output missing method")
	}
}

func TestRunLinkPred(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	r, err := RunLinkPred(s, datagen.DBLP)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 5 {
		t.Fatalf("%d methods", len(r.Methods))
	}
	for _, op := range eval.Operators {
		for _, m := range r.Methods {
			mt := r.Cells[op][m]
			for _, v := range []float64{mt.AUC, mt.F1, mt.Precision, mt.Recall} {
				if v < 0 || v > 1 {
					t.Fatalf("%s/%s metric %g out of range", op, m, v)
				}
			}
		}
		if _, ok := r.ErrorReduction[op]["F1"]; !ok {
			t.Fatal("missing error reduction")
		}
	}
	if r.BestBaseline(eval.Hadamard, func(m Metrics) float64 { return m.AUC }) == "" {
		t.Fatal("best baseline empty")
	}
	var buf bytes.Buffer
	PrintLinkPred(&buf, r)
	if !strings.Contains(buf.String(), "Weighted-L2") {
		t.Fatal("printer output missing operator")
	}
}

func TestRunAblation(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	ds := []datagen.Dataset{datagen.Digg}
	r, err := RunAblation(s, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 4 {
		t.Fatalf("%d variants", len(r.Variants))
	}
	for _, v := range r.Variants {
		f1 := r.F1[v][datagen.Digg]
		if f1 < 0 || f1 > 1 {
			t.Fatalf("%s F1 %g", v, f1)
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, r, ds)
	if !strings.Contains(buf.String(), "EHNA-SL") {
		t.Fatal("printer output missing variant")
	}
}

func TestRunEfficiency(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	ds := []datagen.Dataset{datagen.Digg}
	r, err := RunEfficiency(s, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 8 {
		t.Fatalf("%d methods", len(r.Methods))
	}
	for _, m := range r.Methods {
		if r.Seconds[m][datagen.Digg] <= 0 {
			t.Fatalf("%s: non-positive time", m)
		}
	}
	var buf bytes.Buffer
	PrintEfficiency(&buf, r, ds)
	if !strings.Contains(buf.String(), "Node2Vec_W") {
		t.Fatal("printer output missing multi-worker row")
	}
}

func TestRunParamSweep(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	s.Repeats = 1
	r, err := RunParamSweep(s, datagen.Digg, SweepMargin)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("%d points", len(r.Points))
	}
	var buf bytes.Buffer
	PrintSweep(&buf, r)
	if !strings.Contains(buf.String(), "margin") {
		t.Fatal("printer output missing label")
	}
	if _, err := RunParamSweep(s, datagen.Digg, SweepParam("bogus")); err == nil {
		t.Fatal("unknown sweep accepted")
	}
}

func TestRunOperatorCombo(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	r, err := RunOperatorCombo(s, datagen.Digg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.F1) != 5 || len(r.AUC) != 5 {
		t.Fatalf("feature sets: %d F1, %d AUC", len(r.F1), len(r.AUC))
	}
	for name, v := range r.AUC {
		if v < 0 || v > 1 {
			t.Fatalf("%s AUC %g", name, v)
		}
	}
	var buf bytes.Buffer
	PrintCombo(&buf, r)
	if !strings.Contains(buf.String(), "Combined") {
		t.Fatal("printer output missing Combined row")
	}
}

func TestRunNodeClassification(t *testing.T) {
	skipIfShort(t)
	s := tiny()
	r, err := RunNodeClassification(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) != 5 {
		t.Fatalf("%d methods", len(r.Accuracy))
	}
	for name, acc := range r.Accuracy {
		if acc < 0 || acc > 1 {
			t.Fatalf("%s accuracy %g", name, acc)
		}
	}
	var buf bytes.Buffer
	PrintNodeClass(&buf, r)
	if !strings.Contains(buf.String(), "Accuracy") {
		t.Fatal("printer missing header")
	}
}
