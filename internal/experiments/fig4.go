package experiments

import (
	"fmt"
	"math/rand"

	"ehna/internal/datagen"
	"ehna/internal/eval"
	"ehna/internal/graph"
)

// Fig4Result holds one dataset's network-reconstruction curves (Figure 4):
// precision@P per method over ascending P values.
type Fig4Result struct {
	Dataset    datagen.Dataset
	Ps         []int
	Precisions map[string][]float64 // method → precision per P
}

// RunFig4 reproduces one panel of Figure 4: every method is trained on the
// full graph, node pairs among a node sample are ranked by dot product and
// precision@P is reported at logarithmically spaced cutoffs.
func RunFig4(s Settings, dataset datagen.Dataset) (*Fig4Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 100))
	// The paper samples 10k nodes; at our scale, sample up to 400 non-
	// isolated nodes.
	var candidates []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) > 0 {
			candidates = append(candidates, graph.NodeID(v))
		}
	}
	nSample := 400
	if nSample > len(candidates) {
		nSample = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	nodes := make([]graph.NodeID, nSample)
	for i := 0; i < nSample; i++ {
		nodes[i] = candidates[perm[i]]
	}
	maxPairs := nSample * (nSample - 1) / 2
	// Log-spaced cutoffs echoing the paper's 1e2..1e6 sweep, clipped.
	var ps []int
	for _, p := range []int{100, 300, 1000, 3000, 10000, 30000} {
		if p <= maxPairs {
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("experiments: sample too small for any P (%d pairs)", maxPairs)
	}
	res := &Fig4Result{Dataset: dataset, Ps: ps, Precisions: make(map[string][]float64)}
	for _, m := range s.Methods() {
		emb, err := m.Embed(g, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %v", m.Name, dataset, err)
		}
		prec, err := eval.PrecisionAtP(g, emb, nodes, ps)
		if err != nil {
			return nil, err
		}
		res.Precisions[m.Name] = prec
	}
	return res, nil
}
