package experiments

import (
	"fmt"
	"math/rand"

	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/eval"
)

// AblationResult reproduces Table VII: F1 under the Weighted-L2 operator
// for EHNA and its three ablated variants on every dataset.
type AblationResult struct {
	Variants []string                               // row order
	F1       map[string]map[datagen.Dataset]float64 // variant → dataset → F1
}

// AblationVariants lists Table VII's rows with their config mutations.
func AblationVariants(s Settings) []Method {
	return []Method{
		s.EHNAMethod("EHNA", nil),
		s.EHNAMethod("EHNA-NA", func(c *ehna.Config) { c.DisableAttention = true }),
		s.EHNAMethod("EHNA-RW", func(c *ehna.Config) {
			c.Walk.Static = true
			c.DisableAttention = true // the paper's -RW variant drops attention too
		}),
		s.EHNAMethod("EHNA-SL", func(c *ehna.Config) { c.SingleLevel = true }),
	}
}

// RunAblation reproduces Table VII over the given datasets.
func RunAblation(s Settings, datasets []datagen.Dataset) (*AblationResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{F1: make(map[string]map[datagen.Dataset]float64)}
	variants := AblationVariants(s)
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
		res.F1[v.Name] = make(map[datagen.Dataset]float64)
	}
	for _, d := range datasets {
		full, err := datagen.Generate(d, s.Scale, s.Seed)
		if err != nil {
			return nil, err
		}
		train, held, err := full.SplitByTime(0.2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.Seed + 300))
		data, err := eval.BuildLinkPredData(full, held, rng)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			emb, err := v.Embed(train, s.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %v", v.Name, d, err)
			}
			mt, err := EvalOperator(emb, data, eval.WeightedL2, s.Repeats, s.Seed)
			if err != nil {
				return nil, err
			}
			res.F1[v.Name][d] = mt.F1
		}
	}
	return res, nil
}

// RunAblationCheapNegatives evaluates the F1 (Weighted-L2) of EHNA with
// negatives aggregated faithfully vs through the cheap fallback — the
// negative-aggregation design ablation recorded in DESIGN.md.
func RunAblationCheapNegatives(s Settings, dataset datagen.Dataset, cheap bool) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	full, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return 0, err
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 600))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		return 0, err
	}
	m := s.EHNAMethod("EHNA", func(c *ehna.Config) { c.CheapNegatives = cheap })
	emb, err := m.Embed(train, s.Seed)
	if err != nil {
		return 0, err
	}
	mt, err := EvalOperator(emb, data, eval.WeightedL2, s.Repeats, s.Seed)
	if err != nil {
		return 0, err
	}
	return mt.F1, nil
}
