package experiments

import (
	"fmt"
	"io"
	"sort"

	"ehna/internal/datagen"
	"ehna/internal/eval"
)

// PrintFig4 renders one Figure 4 panel as an aligned text table.
func PrintFig4(w io.Writer, r *Fig4Result) {
	fmt.Fprintf(w, "Figure 4 (%s): network reconstruction precision@P\n", r.Dataset)
	fmt.Fprintf(w, "%-10s", "P")
	names := sortedKeys(r.Precisions)
	for _, n := range names {
		fmt.Fprintf(w, "%12s", n)
	}
	fmt.Fprintln(w)
	for i, p := range r.Ps {
		fmt.Fprintf(w, "%-10d", p)
		for _, n := range names {
			fmt.Fprintf(w, "%12.4f", r.Precisions[n][i])
		}
		fmt.Fprintln(w)
	}
}

// PrintLinkPred renders one Tables III–VI analogue.
func PrintLinkPred(w io.Writer, r *LinkPredResult) {
	fmt.Fprintf(w, "Link prediction (%s): metrics per operator ×10 repeats\n", r.Dataset)
	for _, op := range eval.Operators {
		fmt.Fprintf(w, "-- %s --\n", op)
		fmt.Fprintf(w, "%-10s", "Metric")
		for _, m := range r.Methods {
			fmt.Fprintf(w, "%12s", m)
		}
		fmt.Fprintf(w, "%12s\n", "ErrRed")
		rows := []struct {
			name string
			get  func(Metrics) float64
		}{
			{"AUC", func(m Metrics) float64 { return m.AUC }},
			{"F1", func(m Metrics) float64 { return m.F1 }},
			{"Precision", func(m Metrics) float64 { return m.Precision }},
			{"Recall", func(m Metrics) float64 { return m.Recall }},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%-10s", row.name)
			for _, m := range r.Methods {
				fmt.Fprintf(w, "%12.4f", row.get(r.Cells[op][m]))
			}
			fmt.Fprintf(w, "%11.1f%%\n", 100*r.ErrorReduction[op][row.name])
		}
	}
}

// PrintAblation renders the Table VII analogue.
func PrintAblation(w io.Writer, r *AblationResult, datasets []datagen.Dataset) {
	fmt.Fprintln(w, "Table VII: ablation, F1 under Weighted-L2")
	fmt.Fprintf(w, "%-10s", "Variant")
	for _, d := range datasets {
		fmt.Fprintf(w, "%12s", d)
	}
	fmt.Fprintln(w)
	for _, v := range r.Variants {
		fmt.Fprintf(w, "%-10s", v)
		for _, d := range datasets {
			fmt.Fprintf(w, "%12.4f", r.F1[v][d])
		}
		fmt.Fprintln(w)
	}
}

// PrintEfficiency renders the Table VIII analogue.
func PrintEfficiency(w io.Writer, r *EfficiencyResult, datasets []datagen.Dataset) {
	fmt.Fprintln(w, "Table VIII: training time per epoch (seconds)")
	fmt.Fprintf(w, "%-12s", "Method")
	for _, d := range datasets {
		fmt.Fprintf(w, "%12s", d)
	}
	fmt.Fprintln(w)
	for _, m := range r.Methods {
		fmt.Fprintf(w, "%-12s", m)
		for _, d := range datasets {
			fmt.Fprintf(w, "%12.3f", r.Seconds[m][d])
		}
		fmt.Fprintln(w)
	}
}

// PrintSweep renders one Figure 5 panel.
func PrintSweep(w io.Writer, r *SweepResult) {
	label := map[SweepParam]string{
		SweepMargin:  "safety margin m",
		SweepWalkLen: "walk length ℓ",
		SweepP:       "log₂ p",
		SweepQ:       "log₂ q",
	}[r.Param]
	fmt.Fprintf(w, "Figure 5 (%s on %s): avg F1 (Weighted-L2)\n", label, r.Dataset)
	fmt.Fprintf(w, "%-10s%12s\n", label, "F1")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-10.2f%12.4f\n", pt.X, pt.F1)
	}
}

func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
