package experiments

import (
	"fmt"
	"math/rand"

	"ehna/internal/classify"
	"ehna/internal/datagen"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// Metrics are the four scores reported per cell of Tables III–VI.
type Metrics struct {
	AUC, F1, Precision, Recall float64
}

// LinkPredCell is one (operator, method) cell.
type LinkPredCell struct {
	Metrics
}

// LinkPredResult holds one dataset's link-prediction table
// (the analogue of one of Tables III–VI).
type LinkPredResult struct {
	Dataset datagen.Dataset
	Methods []string
	// Cells[op][method] holds the averaged metrics.
	Cells map[eval.Operator]map[string]Metrics
	// ErrorReduction[op][metric] is EHNA vs the best baseline, as in the
	// paper's rightmost column. Keys: "AUC", "F1", "Precision", "Recall".
	ErrorReduction map[eval.Operator]map[string]float64
}

// RunLinkPred reproduces one of Tables III–VI: hold out the 20% most
// recent edges, train every method on the remainder, probe the four edge
// operators with a logistic regression over `Repeats` random 50/50 splits.
func RunLinkPred(s Settings, dataset datagen.Dataset) (*LinkPredResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	full, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 200))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		return nil, err
	}
	res := &LinkPredResult{
		Dataset:        dataset,
		Cells:          make(map[eval.Operator]map[string]Metrics),
		ErrorReduction: make(map[eval.Operator]map[string]float64),
	}
	for _, op := range eval.Operators {
		res.Cells[op] = make(map[string]Metrics)
	}
	for _, m := range s.Methods() {
		res.Methods = append(res.Methods, m.Name)
		emb, err := m.Embed(train, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %v", m.Name, dataset, err)
		}
		for _, op := range eval.Operators {
			mt, err := EvalOperator(emb, data, op, s.Repeats, s.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %v", m.Name, op, err)
			}
			res.Cells[op][m.Name] = mt
		}
	}
	// Error reduction: EHNA vs the best baseline per metric.
	for _, op := range eval.Operators {
		red := make(map[string]float64, 4)
		us := res.Cells[op]["EHNA"]
		pick := func(get func(Metrics) float64) float64 {
			best := 0.0
			for _, name := range res.Methods {
				if name == "EHNA" {
					continue
				}
				if v := get(res.Cells[op][name]); v > best {
					best = v
				}
			}
			return best
		}
		red["AUC"] = eval.ErrorReduction(pick(func(m Metrics) float64 { return m.AUC }), us.AUC)
		red["F1"] = eval.ErrorReduction(pick(func(m Metrics) float64 { return m.F1 }), us.F1)
		red["Precision"] = eval.ErrorReduction(pick(func(m Metrics) float64 { return m.Precision }), us.Precision)
		red["Recall"] = eval.ErrorReduction(pick(func(m Metrics) float64 { return m.Recall }), us.Recall)
		res.ErrorReduction[op] = red
	}
	return res, nil
}

// EvalOperator averages the probe metrics over repeats random 50/50
// train/test splits, exactly mirroring the paper's protocol.
func EvalOperator(emb *tensor.Matrix, data *eval.LinkPredData, op eval.Operator, repeats int, seed int64) (Metrics, error) {
	X := eval.EdgeFeatures(emb, data.Pairs, op)
	var sum Metrics
	for r := 0; r < repeats; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*31 + 1))
		shuffled := &eval.LinkPredData{Pairs: data.Pairs, Labels: data.Labels}
		trainIdx, testIdx, err := splitIndices(len(shuffled.Pairs), 0.5, rng)
		if err != nil {
			return Metrics{}, err
		}
		Xtr, ytr := subset(X, data.Labels, trainIdx)
		Xte, yte := subset(X, data.Labels, testIdx)
		cfg := classify.DefaultConfig()
		cfg.Seed = seed + int64(r)
		model, err := classify.Train(Xtr, ytr, cfg)
		if err != nil {
			return Metrics{}, err
		}
		probs := model.PredictProba(Xte)
		auc, err := eval.AUC(probs, yte)
		if err != nil {
			return Metrics{}, err
		}
		conf, err := eval.Confuse(model.Predict(Xte), yte)
		if err != nil {
			return Metrics{}, err
		}
		sum.AUC += auc
		sum.F1 += conf.F1()
		sum.Precision += conf.Precision()
		sum.Recall += conf.Recall()
	}
	inv := 1 / float64(repeats)
	return Metrics{AUC: sum.AUC * inv, F1: sum.F1 * inv, Precision: sum.Precision * inv, Recall: sum.Recall * inv}, nil
}

func splitIndices(n int, frac float64, rng *rand.Rand) (a, b []int, err error) {
	if n < 4 {
		return nil, nil, fmt.Errorf("experiments: dataset too small (%d)", n)
	}
	order := rng.Perm(n)
	cut := int(float64(n) * frac)
	return order[:cut], order[cut:], nil
}

func subset(X *tensor.Matrix, y []int, idx []int) (*tensor.Matrix, []int) {
	out := tensor.New(len(idx), X.Cols)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(out.Row(i), X.Row(j))
		labels[i] = y[j]
	}
	return out, labels
}

// BestBaseline returns the strongest non-EHNA method name for a metric in
// one operator row (diagnostics for the report printer).
func (r *LinkPredResult) BestBaseline(op eval.Operator, get func(Metrics) float64) string {
	best, name := -1.0, ""
	for _, m := range r.Methods {
		if m == "EHNA" {
			continue
		}
		if v := get(r.Cells[op][m]); v > best {
			best, name = v, m
		}
	}
	return name
}

// nonIsolatedNodes is shared by runners needing node samples.
func nonIsolatedNodes(g *graph.Temporal) []graph.NodeID {
	var out []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) > 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
