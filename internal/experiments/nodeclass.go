package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ehna/internal/classify"
	"ehna/internal/datagen"
	"ehna/internal/tensor"
)

// NodeClassResult is the node-classification application study: community
// prediction accuracy on the labeled DBLP analogue per method. Node
// classification is one of the applications the paper's introduction
// motivates but does not evaluate; this extension closes that gap.
type NodeClassResult struct {
	Classes  int
	Accuracy map[string]float64 // method → test accuracy
}

// RunNodeClassification trains every method on the labeled co-author
// network and probes community membership with a one-vs-rest logistic
// regression over a 50/50 node split.
func RunNodeClassification(s Settings) (*NodeClassResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := datagen.DefaultCoauthorConfig()
	cfg.Authors = int(float64(cfg.Authors) * float64(s.Scale))
	if cfg.Authors < 60 {
		cfg.Authors = 60
	}
	cfg.Papers = int(float64(cfg.Papers) * float64(s.Scale))
	if cfg.Papers < 200 {
		cfg.Papers = 200
	}
	cfg.Communities = 6
	cfg.Seed = s.Seed
	g, labels, err := datagen.CoauthorLabeled(cfg)
	if err != nil {
		return nil, err
	}
	res := &NodeClassResult{Classes: cfg.Communities, Accuracy: make(map[string]float64)}
	rng := rand.New(rand.NewSource(s.Seed + 700))
	order := rng.Perm(g.NumNodes())
	cut := g.NumNodes() / 2
	trainIdx, testIdx := order[:cut], order[cut:]
	for _, m := range s.Methods() {
		emb, err := m.Embed(g, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", m.Name, err)
		}
		Xtr, ytr := subsetRows(emb, labels, trainIdx)
		Xte, yte := subsetRows(emb, labels, testIdx)
		ccfg := classify.DefaultConfig()
		ccfg.Seed = s.Seed
		ovr, err := classify.TrainOneVsRest(Xtr, ytr, cfg.Communities, ccfg)
		if err != nil {
			return nil, err
		}
		pred := ovr.Predict(Xte)
		correct := 0
		for i := range pred {
			if pred[i] == yte[i] {
				correct++
			}
		}
		res.Accuracy[m.Name] = float64(correct) / float64(len(pred))
	}
	return res, nil
}

func subsetRows(X *tensor.Matrix, y []int, idx []int) (*tensor.Matrix, []int) {
	out := tensor.New(len(idx), X.Cols)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(out.Row(i), X.Row(j))
		labels[i] = y[j]
	}
	return out, labels
}

// PrintNodeClass renders the node-classification study.
func PrintNodeClass(w io.Writer, r *NodeClassResult) {
	fmt.Fprintf(w, "Extension: node classification (%d communities, DBLP analogue)\n", r.Classes)
	fmt.Fprintf(w, "%-12s%12s\n", "Method", "Accuracy")
	for _, n := range []string{"LINE", "Node2Vec", "CTDNE", "HTNE", "EHNA"} {
		fmt.Fprintf(w, "%-12s%12.4f\n", n, r.Accuracy[n])
	}
}
