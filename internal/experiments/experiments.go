// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) on the synthetic dataset analogues:
//
//	Figure 4     — network reconstruction precision@P curves (RunFig4)
//	Tables III–VI — link prediction metrics per operator (RunLinkPred)
//	Table VII    — ablation study (RunAblation)
//	Table VIII   — per-epoch training time (RunEfficiency)
//	Figure 5a–d  — parameter sensitivity sweeps (RunParamSweep)
//
// The same runners back cmd/experiments and the repository's bench suite,
// so `go test -bench .` regenerates the numbers.
package experiments

import (
	"fmt"

	"ehna/internal/baselines/ctdne"
	"ehna/internal/baselines/htne"
	"ehna/internal/baselines/line"
	"ehna/internal/baselines/node2vec"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/skipgram"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// Settings sizes a whole experimental run. The paper's absolute scales
// (hundreds of thousands of nodes, d=128) are reduced to CPU-friendly
// values; relative comparisons between methods are what the suite checks.
type Settings struct {
	Scale       datagen.Scale // dataset size multiplier vs datagen defaults
	Dim         int           // embedding dimensionality for every method
	Seed        int64
	Repeats     int // classifier evaluation repeats (paper: 10)
	Workers     int // parallel workers for SGNS-based baselines
	EHNAEpochs  int
	EHNAWalks   int
	EHNAWalkLen int
	SGNSEpochs  int
	LINESamples int
	HTNEEpochs  int
}

// Quick returns the smallest sensible settings; used by the bench suite.
// Sized for single-core CI machines: the entire bench suite finishes in
// minutes rather than hours.
func Quick() Settings {
	return Settings{
		Scale: 0.03, Dim: 16, Seed: 1, Repeats: 2, Workers: 1,
		EHNAEpochs: 1, EHNAWalks: 4, EHNAWalkLen: 5,
		SGNSEpochs: 2, LINESamples: 80_000, HTNEEpochs: 5,
	}
}

// Full returns the settings used for the recorded EXPERIMENTS.md numbers.
func Full() Settings {
	return Settings{
		Scale: 0.08, Dim: 16, Seed: 1, Repeats: 5, Workers: 1,
		EHNAEpochs: 2, EHNAWalks: 5, EHNAWalkLen: 6,
		SGNSEpochs: 3, LINESamples: 200_000, HTNEEpochs: 10,
	}
}

// Validate reports a descriptive error for nonsensical settings.
func (s Settings) Validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("experiments: Scale %g must be positive", float64(s.Scale))
	}
	if s.Dim < 2 || s.Dim%2 != 0 {
		return fmt.Errorf("experiments: Dim %d must be even and ≥ 2 (LINE splits it)", s.Dim)
	}
	if s.Repeats < 1 {
		return fmt.Errorf("experiments: Repeats %d < 1", s.Repeats)
	}
	if s.EHNAEpochs < 1 || s.SGNSEpochs < 1 || s.HTNEEpochs < 1 {
		return fmt.Errorf("experiments: epochs must be ≥ 1")
	}
	if s.EHNAWalks < 1 || s.EHNAWalkLen < 2 {
		return fmt.Errorf("experiments: EHNA walk settings invalid (%d, %d)", s.EHNAWalks, s.EHNAWalkLen)
	}
	if s.LINESamples < 1 {
		return fmt.Errorf("experiments: LINESamples %d < 1", s.LINESamples)
	}
	return nil
}

// Method is one embedding method under evaluation.
type Method struct {
	Name  string
	Embed func(g *graph.Temporal, seed int64) (*tensor.Matrix, error)
}

// EHNAConfig derives the EHNA configuration from the settings.
func (s Settings) EHNAConfig() ehna.Config {
	cfg := ehna.DefaultConfig()
	cfg.Dim = s.Dim
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: s.EHNAWalks, WalkLen: s.EHNAWalkLen}
	cfg.Epochs = s.EHNAEpochs
	// Q=3 (vs the paper's 5) keeps the per-edge aggregation count (and so
	// single-core wall time) manageable while preserving the loss shape.
	cfg.Bidirectional = true
	cfg.Negatives = 3
	cfg.EmbLR = 0.1
	cfg.Workers = s.Workers
	cfg.Seed = s.Seed
	return cfg
}

func (s Settings) sgnsConfig() skipgram.Config {
	return skipgram.Config{
		Dim: s.Dim, Window: 5, Negatives: 5, LR: 0.05,
		Epochs: s.SGNSEpochs, Workers: s.Workers,
	}
}

// EHNAMethod returns the EHNA method with an optional config mutation
// (used by the ablation and sensitivity runners).
func (s Settings) EHNAMethod(name string, mutate func(*ehna.Config)) Method {
	return Method{
		Name: name,
		Embed: func(g *graph.Temporal, seed int64) (*tensor.Matrix, error) {
			cfg := s.EHNAConfig()
			cfg.Seed = seed
			if mutate != nil {
				mutate(&cfg)
			}
			m, err := ehna.NewModel(g, cfg)
			if err != nil {
				return nil, err
			}
			m.Train()
			return m.InferAll(), nil
		},
	}
}

// Methods returns the five methods of the paper's comparison in its
// presentation order: LINE, Node2Vec, CTDNE, HTNE, EHNA.
func (s Settings) Methods() []Method {
	return []Method{
		{
			Name: "LINE",
			Embed: func(g *graph.Temporal, seed int64) (*tensor.Matrix, error) {
				cfg := line.DefaultConfig()
				cfg.Dim = s.Dim
				cfg.Samples = s.LINESamples
				return line.Embed(g, cfg, seed)
			},
		},
		{
			Name: "Node2Vec",
			Embed: func(g *graph.Temporal, seed int64) (*tensor.Matrix, error) {
				cfg := node2vec.Config{P: 1, Q: 1, NumWalks: 10, WalkLen: 40, SGNS: s.sgnsConfig()}
				return node2vec.Embed(g, cfg, seed)
			},
		},
		{
			Name: "CTDNE",
			Embed: func(g *graph.Temporal, seed int64) (*tensor.Matrix, error) {
				cfg := ctdne.Config{WalksPerEdgeFactor: 5, WalkLen: 40, SGNS: s.sgnsConfig()}
				return ctdne.Embed(g, cfg, seed)
			},
		},
		{
			Name: "HTNE",
			Embed: func(g *graph.Temporal, seed int64) (*tensor.Matrix, error) {
				cfg := htne.DefaultConfig()
				cfg.Dim = s.Dim
				cfg.Epochs = s.HTNEEpochs
				return htne.Embed(g, cfg, seed)
			},
		},
		s.EHNAMethod("EHNA", nil),
	}
}
