package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/eval"
)

// SweepParam selects which hyperparameter Figure 5 varies.
type SweepParam string

// The four panels of Figure 5.
const (
	SweepMargin  SweepParam = "margin"  // Fig. 5a: m ∈ 1..5
	SweepWalkLen SweepParam = "walklen" // Fig. 5b: ℓ ∈ {1,5,10,15,20,25}
	SweepP       SweepParam = "p"       // Fig. 5c: log₂ p ∈ −2..2
	SweepQ       SweepParam = "q"       // Fig. 5d: log₂ q ∈ −2..2
)

// SweepPoint is one x/y point of a Figure 5 panel.
type SweepPoint struct {
	X  float64 // the parameter value (or log₂ value for p/q)
	F1 float64 // average F1 under Weighted-L2, as in the paper
}

// SweepResult is one panel of Figure 5.
type SweepResult struct {
	Param   SweepParam
	Dataset datagen.Dataset
	Points  []SweepPoint
}

// RunParamSweep reproduces one panel of Figure 5 on the given dataset
// (the paper uses Yelp).
func RunParamSweep(s Settings, dataset datagen.Dataset, param SweepParam) (*SweepResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var xs []float64
	switch param {
	case SweepMargin:
		xs = []float64{1, 2, 3, 4, 5}
	case SweepWalkLen:
		xs = []float64{2, 5, 10, 15, 20}
	case SweepP, SweepQ:
		xs = []float64{-2, -1, 0, 1, 2} // log₂ values
	default:
		return nil, fmt.Errorf("experiments: unknown sweep parameter %q", string(param))
	}
	full, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 400))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Param: param, Dataset: dataset}
	for _, x := range xs {
		x := x
		method := s.EHNAMethod("EHNA", func(c *ehna.Config) {
			switch param {
			case SweepMargin:
				c.Margin = x
			case SweepWalkLen:
				c.Walk.WalkLen = int(x)
			case SweepP:
				c.Walk.P = math.Pow(2, x)
			case SweepQ:
				c.Walk.Q = math.Pow(2, x)
			}
		})
		emb, err := method.Embed(train, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep %s=%g: %v", param, x, err)
		}
		mt, err := EvalOperator(emb, data, eval.WeightedL2, s.Repeats, s.Seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{X: x, F1: mt.F1})
	}
	return res, nil
}
