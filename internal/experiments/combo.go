package experiments

import (
	"fmt"
	"math/rand"

	"io"

	"ehna/internal/classify"
	"ehna/internal/datagen"
	"ehna/internal/eval"
	"ehna/internal/tensor"
)

// ComboResult holds the operator-combination extension study: link
// prediction with each single operator versus the concatenation of all
// four. This implements the exploration the paper explicitly defers to
// future work (Section V-E: "we are unaware of any systematic and sensible
// evaluation of combining operators").
type ComboResult struct {
	Dataset datagen.Dataset
	// F1 and AUC per feature set; keys are the operator names plus "Combined".
	F1, AUC map[string]float64
}

// RunOperatorCombo evaluates EHNA link prediction with single-operator
// features against the 4-operator concatenation.
func RunOperatorCombo(s Settings, dataset datagen.Dataset) (*ComboResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	full, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 500))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		return nil, err
	}
	emb, err := s.EHNAMethod("EHNA", nil).Embed(train, s.Seed)
	if err != nil {
		return nil, err
	}
	res := &ComboResult{
		Dataset: dataset,
		F1:      make(map[string]float64),
		AUC:     make(map[string]float64),
	}
	evalFeatures := func(name string, build func(pairs []eval.NodePair) (*tensor.Matrix, error)) error {
		var sumF1, sumAUC float64
		for r := 0; r < s.Repeats; r++ {
			rr := rand.New(rand.NewSource(s.Seed + int64(r)*13 + 5))
			trainD, testD, err := data.Split(0.5, rr)
			if err != nil {
				return err
			}
			Xtr, err := build(trainD.Pairs)
			if err != nil {
				return err
			}
			Xte, err := build(testD.Pairs)
			if err != nil {
				return err
			}
			cfg := classify.DefaultConfig()
			cfg.Seed = s.Seed + int64(r)
			clf, err := classify.Train(Xtr, trainD.Labels, cfg)
			if err != nil {
				return err
			}
			auc, err := eval.AUC(clf.PredictProba(Xte), testD.Labels)
			if err != nil {
				return err
			}
			conf, err := eval.Confuse(clf.Predict(Xte), testD.Labels)
			if err != nil {
				return err
			}
			sumF1 += conf.F1()
			sumAUC += auc
		}
		res.F1[name] = sumF1 / float64(s.Repeats)
		res.AUC[name] = sumAUC / float64(s.Repeats)
		return nil
	}
	for _, op := range eval.Operators {
		op := op
		if err := evalFeatures(op.String(), func(pairs []eval.NodePair) (*tensor.Matrix, error) {
			return eval.EdgeFeatures(emb, pairs, op), nil
		}); err != nil {
			return nil, err
		}
	}
	if err := evalFeatures("Combined", func(pairs []eval.NodePair) (*tensor.Matrix, error) {
		return eval.CombinedFeatures(emb, pairs, eval.Operators)
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// PrintCombo renders the extension study.
func PrintCombo(w io.Writer, r *ComboResult) {
	fmt.Fprintf(w, "Extension (%s): operator combination, EHNA link prediction\n", r.Dataset)
	fmt.Fprintf(w, "%-14s%10s%10s\n", "Features", "AUC", "F1")
	names := []string{"Mean", "Hadamard", "Weighted-L1", "Weighted-L2", "Combined"}
	for _, n := range names {
		fmt.Fprintf(w, "%-14s%10.4f%10.4f\n", n, r.AUC[n], r.F1[n])
	}
}
