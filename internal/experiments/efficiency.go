package experiments

import (
	"time"

	"ehna/internal/datagen"
	"ehna/internal/ehna"
)

// EfficiencyResult reproduces Table VIII: wall-clock seconds per training
// epoch for every method and dataset. Node2Vec and CTDNE additionally get
// multi-worker rows (the paper's "_10" multi-threaded variants).
type EfficiencyResult struct {
	Methods []string
	Seconds map[string]map[datagen.Dataset]float64
}

// RunEfficiency reproduces Table VIII over the given datasets.
func RunEfficiency(s Settings, datasets []datagen.Dataset) (*EfficiencyResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// One-epoch settings so the timing is per epoch.
	one := s
	one.SGNSEpochs = 1
	one.EHNAEpochs = 1
	one.HTNEEpochs = 1

	serial := one
	serial.Workers = 1
	parallel := one

	methods := []struct {
		name string
		m    Method
	}{
		{"Node2Vec", serial.Methods()[1]},
		{"Node2Vec_W", parallel.Methods()[1]},
		{"CTDNE", serial.Methods()[2]},
		{"CTDNE_W", parallel.Methods()[2]},
		{"LINE", one.Methods()[0]},
		{"HTNE", one.Methods()[3]},
		{"EHNA", serial.Methods()[4]},
		{"EHNA_W", parallel.Methods()[4]},
	}
	res := &EfficiencyResult{Seconds: make(map[string]map[datagen.Dataset]float64)}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.name)
		res.Seconds[m.name] = make(map[datagen.Dataset]float64)
	}
	for _, d := range datasets {
		g, err := datagen.Generate(d, s.Scale, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			start := time.Now()
			if _, err := m.m.Embed(g, s.Seed); err != nil {
				return nil, err
			}
			res.Seconds[m.name][d] = time.Since(start).Seconds()
		}
	}
	return res, nil
}

// RunWorkerScaling times one EHNA epoch serial vs with 4 workers,
// returning (serialSeconds, parallelSeconds).
func RunWorkerScaling(s Settings, dataset datagen.Dataset) (serialSec, parallelSec float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	g, err := datagen.Generate(dataset, s.Scale, s.Seed)
	if err != nil {
		return 0, 0, err
	}
	run := func(workers int) (float64, error) {
		cfg := s.EHNAConfig()
		cfg.Epochs = 1
		cfg.Workers = workers
		m, err := ehna.NewModel(g, cfg)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		m.TrainEpoch()
		return time.Since(start).Seconds(), nil
	}
	if serialSec, err = run(1); err != nil {
		return 0, 0, err
	}
	if parallelSec, err = run(4); err != nil {
		return 0, 0, err
	}
	return serialSec, parallelSec, nil
}
