package obs

import (
	"bufio"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"
)

// TestPromExpositionGolden pins the text format end to end: HELP/TYPE
// pairs, stable registration-order output, label rendering, counter/
// gauge/histogram syntax. Any format drift shows up as a diff here
// before a scraper chokes on it.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", L("path", "/v1/neighbors"), L("code", "2xx"))
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_nodes", "Vectors resident.")
	g.Set(100000)
	r.GaugeFunc("test_ratio", "A computed ratio.", func() float64 { return 0.25 })
	h := r.SizeHistogram("test_batch_size", "Coalesced batch sizes.")
	h.Observe(1)
	h.Observe(3)
	h.Observe(700)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{code="2xx",path="/v1/neighbors"} 42
# HELP test_nodes Vectors resident.
# TYPE test_nodes gauge
test_nodes 100000
# HELP test_ratio A computed ratio.
# TYPE test_ratio gauge
test_ratio 0.25
# HELP test_batch_size Coalesced batch sizes.
# TYPE test_batch_size histogram
test_batch_size_bucket{le="1"} 1
test_batch_size_bucket{le="2"} 1
test_batch_size_bucket{le="4"} 2
test_batch_size_bucket{le="8"} 2
test_batch_size_bucket{le="16"} 2
test_batch_size_bucket{le="32"} 2
test_batch_size_bucket{le="64"} 2
test_batch_size_bucket{le="128"} 2
test_batch_size_bucket{le="256"} 2
test_batch_size_bucket{le="512"} 2
test_batch_size_bucket{le="1024"} 3
test_batch_size_bucket{le="2048"} 3
test_batch_size_bucket{le="4096"} 3
test_batch_size_bucket{le="+Inf"} 3
test_batch_size_sum 704
test_batch_size_count 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromExpositionParseable walks every line of a busy registry's
// output and checks the structural invariants a scraper relies on:
// each family has exactly one HELP and one TYPE line (in that order,
// before its samples), every sample line is "name[{labels}] value"
// with a parseable value, and histogram buckets are cumulative.
func TestPromExpositionParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A counter.").Add(7)
	r.Gauge("b_gauge", "A gauge with\nnewline help.").Set(1.5)
	h := r.Histogram("c_seconds", "A latency histogram.", L("stage", "candidates"))
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}

	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	var lastBucket uint64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.SplitN(line[len("# HELP "):], " ", 2)[0]
			if seenHelp[name] {
				t.Fatalf("duplicate HELP for %s", name)
			}
			seenHelp[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			name := parts[0]
			if !seenHelp[name] {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			if seenType[name] {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			seenType[name] = true
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q", parts[1])
			}
			lastBucket = 0
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		if strings.Contains(series, "_bucket") {
			var n uint64
			for _, ch := range val {
				if ch < '0' || ch > '9' {
					t.Fatalf("non-integer bucket count %q in %q", val, line)
				}
				n = n*10 + uint64(ch-'0')
			}
			if n < lastBucket {
				t.Fatalf("bucket counts not cumulative at %q (%d < %d)", line, n, lastBucket)
			}
			lastBucket = n
		}
		if strings.Contains(series, "{") && !strings.HasSuffix(series, "}") {
			t.Fatalf("unbalanced label braces in %q", series)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seenHelp) != 3 || len(seenType) != 3 {
		t.Fatalf("expected 3 families, saw HELP for %d, TYPE for %d", len(seenHelp), len(seenType))
	}
}

// TestRegistryIdempotent: re-registering the same (name, labels)
// returns the same instrument; a kind clash panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.", L("a", "b"))
	c2 := r.Counter("x_total", "X.", L("a", "b"))
	if c1 != c2 {
		t.Fatal("same series produced distinct counters")
	}
	c3 := r.Counter("x_total", "X.", L("a", "c"))
	if c1 == c3 {
		t.Fatal("distinct labels shared a counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("y_seconds", "Y.", L("a", "1"), L("b", "2"))
	h2 := r.Histogram("y_seconds", "Y.", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "X as a gauge.")
}

// TestHandlerMergesRegistries: the HTTP handler concatenates the
// receiver and extras with the right content type.
func TestHandlerMergesRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("from_a_total", "A.").Inc()
	b := NewRegistry()
	b.Gauge("from_b", "B.").Set(2)
	rec := httptest.NewRecorder()
	a.Handler(b).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "from_a_total 1") || !strings.Contains(body, "from_b 2") {
		t.Fatalf("merged exposition missing series:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

// TestRuntimeMetricsRegistered: RegisterRuntime lands the Go runtime
// series on the default registry with sane values.
func TestRuntimeMetricsRegistered(t *testing.T) {
	RegisterRuntime()
	var b strings.Builder
	if err := Default().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes",
		"go_gc_pause_seconds_total", "ehnad_build_info",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("runtime metric %s missing from default registry", name)
		}
	}
	if !strings.Contains(out, runtime.Version()) {
		t.Errorf("build_info missing go version %s", runtime.Version())
	}
}

// TestObserveZeroAlloc asserts the two hot-path operations allocate
// nothing — the property that lets the search path carry metrics while
// TestSearchIntoZeroAlloc still demands 0 allocs/query.
func TestObserveZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	r := NewRegistry()
	c := r.Counter("hot_total", "Hot counter.")
	h := r.Histogram("hot_seconds", "Hot histogram.")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocated %v times", allocs)
	}
	v := int64(12345)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 997 }); allocs != 0 {
		t.Errorf("Histogram.Observe allocated %v times", allocs)
	}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); allocs != 0 {
		t.Errorf("Histogram.ObserveSince allocated %v times", allocs)
	}
}

// BenchmarkCounterInc and BenchmarkHistogramObserve report ns/op and
// assert 0 allocs/op via -benchmem in CI's bench smoke.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "Bench counter.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "Bench histogram.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*31 + 1000)
	}
}
