//go:build linux

package obs

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// procStats is one sample of the kernel's view of this process:
// /proc/self/statm for the memory sizes (already in pages, no parsing
// ambiguity) and /proc/self/stat for the major-fault counter. The
// distinction matters for the mmap-backed store: RSS minus the
// file-backed shared pages is the heap the process really owns, and
// major faults are the cold tier's disk trips.
type procStats struct {
	virtualBytes  float64 // statm field 1 (size)
	residentBytes float64 // statm field 2 (resident)
	sharedBytes   float64 // statm field 3 (file-backed resident)
	majorFaults   float64 // stat field 12 (majflt)
	ok            bool
}

// procStatsCache amortizes the /proc reads across a scrape burst, like
// memStatsCache does for ReadMemStats.
type procStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	s    procStats
	once bool
}

func (c *procStatsCache) get() *procStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.once || time.Since(c.at) > time.Second {
		c.s = readProcStats()
		c.at = time.Now()
		c.once = true
	}
	return &c.s
}

func readProcStats() procStats {
	var s procStats
	page := float64(os.Getpagesize())
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		f := strings.Fields(string(b))
		if len(f) >= 3 {
			if v, err := strconv.ParseFloat(f[0], 64); err == nil {
				s.virtualBytes = v * page
			}
			if v, err := strconv.ParseFloat(f[1], 64); err == nil {
				s.residentBytes = v * page
			}
			if v, err := strconv.ParseFloat(f[2], 64); err == nil {
				s.sharedBytes = v * page
			}
			s.ok = true
		}
	}
	if b, err := os.ReadFile("/proc/self/stat"); err == nil {
		// comm (field 2) may contain spaces; fields after the closing
		// paren are well-formed. majflt is field 12 (1-based), i.e.
		// index 9 of the post-paren fields.
		if i := strings.LastIndexByte(string(b), ')'); i >= 0 {
			f := strings.Fields(string(b[i+1:]))
			if len(f) >= 10 {
				if v, err := strconv.ParseFloat(f[9], 64); err == nil {
					s.majorFaults = v
				}
			}
		}
	}
	return s
}

var registerProcessOnce sync.Once

// RegisterProcess registers process-level memory gauges from /proc/self
// on the default registry (once; later calls are no-ops): resident set
// size, the file-backed (shared) portion of it, virtual size, and the
// cumulative major page-fault count. These are the operator's view of
// cold-tier pressure: an mmap-backed store shows up here as shared
// resident bytes that come and go with reclaim, and as major faults
// when the working set misses the page cache.
func RegisterProcess() {
	registerProcessOnce.Do(func() {
		r := Default()
		var ps procStatsCache
		r.GaugeFunc("process_resident_bytes", "Resident set size of the process.",
			func() float64 { return ps.get().residentBytes })
		r.GaugeFunc("process_shared_resident_bytes", "File-backed (shared) portion of the resident set — mmap'd snapshots live here.",
			func() float64 { return ps.get().sharedBytes })
		r.GaugeFunc("process_virtual_bytes", "Virtual address-space size of the process.",
			func() float64 { return ps.get().virtualBytes })
		r.GaugeFunc("process_major_faults_total", "Cumulative major page faults (each one was a disk read).",
			func() float64 { return ps.get().majorFaults })
	})
}
