package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: 8 sub-buckets per power of two over the
// full non-negative int64 range. Bucket width is at most 1/8 of the
// bucket's lower bound, so any quantile read off the buckets is within
// ~12.5% of the exact sample quantile — tight enough to gate p99
// regressions without storing samples.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// Values 0..7 get exact buckets 0..7; above that each power of two
	// [2^e, 2^(e+1)) splits into 8, for e in [3, 62] (int64 values
	// never reach exponent 63). The last bucket's upper bound is
	// exactly MaxInt64.
	histBuckets = (63-histSubBits)*histSubBuckets + histSubBuckets
)

// bucketIndex maps a value to its bucket (negatives clamp to 0).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // ≥ histSubBits
	return (exp-histSubBits+1)<<histSubBits + int((u>>(exp-histSubBits))&(histSubBuckets-1))
}

// bucketBounds returns the inclusive [lower, upper] value range of
// bucket i. The topmost buckets clamp to MaxInt64.
func bucketBounds(i int) (lower, upper int64) {
	if i < histSubBuckets {
		return int64(i), int64(i)
	}
	exp := i>>histSubBits + histSubBits - 1
	m := uint64(i & (histSubBuckets - 1))
	shift := uint(exp - histSubBits)
	lo := (histSubBuckets + m) << shift
	hi := lo + (uint64(1) << shift) - 1
	return int64(lo), int64(hi)
}

// unit selects how a histogram's raw int64 observations are exposed.
type unit int

const (
	// unitSeconds: observations are nanoseconds, exposed as seconds.
	unitSeconds unit = iota
	// unitCount: observations are unitless integers, exposed as-is.
	unitCount
)

// Histogram is a fixed-size log-bucketed distribution. Observe is a
// handful of atomic adds into preallocated arrays: lock-free,
// allocation-free, safe on the search hot path. Quantiles are read
// through Snapshot, never on the write path.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	u      unit
}

func newHistogram(u unit) *Histogram { return &Histogram{u: u} }

// Observe records one value. Negative values clamp to zero (durations
// from a monotonic clock are never negative; a clamped zero is less
// wrong than a panic on the hot path).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram. Snapshots merge
// by addition, so per-worker recordings combine exactly.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram's state into s. The copy is not a
// single atomic cut — observations landing mid-copy may be partially
// included — which is the standard, and for monitoring sufficient,
// trade for a lock-free write path.
func (h *Histogram) Snapshot(s *HistSnapshot) {
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the p-quantile (p in [0,1]) of the recorded
// values, interpolating linearly inside the target bucket. The
// estimate is within one bucket width (≤ ~12.5% relative) of the exact
// sample quantile. Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(p float64) int64 {
	total := uint64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			// The true maximum is tracked exactly; never report a
			// bucket-upper estimate past it (matters for p999 and for
			// single-observation histograms).
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	// Unreachable: rank ≤ total by construction.
	return s.Max
}

// Mean returns the average recorded value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CountAtMost returns how many observations were ≤ v — the cumulative
// count the Prometheus _bucket series expose. Exact whenever v is a
// bucket upper bound (the exposition bounds are chosen so it is).
func (s *HistSnapshot) CountAtMost(v int64) uint64 {
	var n uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		_, hi := bucketBounds(i)
		if hi <= v {
			n += c
		}
	}
	return n
}
