//go:build linux

package obs

import "testing"

func TestReadProcStats(t *testing.T) {
	s := readProcStats()
	if !s.ok {
		t.Fatal("statm not readable")
	}
	if s.residentBytes <= 0 || s.virtualBytes < s.residentBytes {
		t.Fatalf("resident %f, virtual %f", s.residentBytes, s.virtualBytes)
	}
	if s.sharedBytes < 0 || s.sharedBytes > s.residentBytes {
		t.Fatalf("shared %f outside [0, resident %f]", s.sharedBytes, s.residentBytes)
	}
	if s.majorFaults < 0 {
		t.Fatalf("majorFaults %f", s.majorFaults)
	}
}

func TestRegisterProcess(t *testing.T) {
	RegisterProcess()
	RegisterProcess() // idempotent
	for _, name := range []string{
		"process_resident_bytes",
		"process_shared_resident_bytes",
		"process_virtual_bytes",
		"process_major_faults_total",
	} {
		if _, ok := Default().GaugeValue(name); !ok {
			t.Fatalf("%s not registered", name)
		}
	}
	if v, _ := Default().GaugeValue("process_resident_bytes"); v <= 0 {
		t.Fatalf("process_resident_bytes = %f", v)
	}
}
