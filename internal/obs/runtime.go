package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// memStatsCache amortizes runtime.ReadMemStats across the gauges that
// read from it: one stop-the-world sample per scrape burst, not one
// per series.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	m    runtime.MemStats
	once bool
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.once || time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.m)
		c.at = time.Now()
		c.once = true
	}
	return &c.m
}

var registerRuntimeOnce sync.Once

// RegisterRuntime registers Go runtime and build metrics on the
// default registry (once; later calls are no-ops): goroutine count,
// heap and sys bytes, GC pause total and cycle count, GOMAXPROCS, and
// a constant build_info series carrying the Go version and main-module
// version so loadgen runs can correlate tail latency with GC and pin
// which build produced them.
func RegisterRuntime() {
	registerRuntimeOnce.Do(func() {
		r := Default()
		var ms memStatsCache
		r.GaugeFunc("go_goroutines", "Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS: the scheduler's CPU parallelism bound.",
			func() float64 { return float64(runtime.GOMAXPROCS(0)) })
		r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
			func() float64 { return float64(ms.get().HeapAlloc) })
		r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
			func() float64 { return float64(ms.get().HeapObjects) })
		r.GaugeFunc("go_sys_bytes", "Total bytes obtained from the OS.",
			func() float64 { return float64(ms.get().Sys) })
		r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
			func() float64 { return float64(ms.get().PauseTotalNs) / 1e9 })
		r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
			func() float64 { return float64(ms.get().NumGC) })

		goVersion := runtime.Version()
		modVersion := "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
			modVersion = bi.Main.Version
		}
		g := r.Gauge("ehnad_build_info",
			"Constant 1; the labels carry the Go toolchain and main-module versions.",
			L("go_version", goVersion), L("module_version", modVersion))
		g.Set(1)
	})
}
