package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketIndexBoundsRoundTrip: every bucket's [lower, upper] range
// maps back to that bucket, ranges tile the int64 line with no gaps,
// and widths respect the 1/8 relative-error budget.
func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	prevUpper := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevUpper+1 && lo != math.MaxInt64 {
			t.Fatalf("bucket %d: lower %d leaves a gap after %d", i, lo, prevUpper)
		}
		if lo != math.MaxInt64 {
			prevUpper = hi
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lower %d) = %d, want %d", lo, got, i)
		}
		if hi != math.MaxInt64 {
			if got := bucketIndex(hi); got != i {
				t.Fatalf("bucketIndex(upper %d) = %d, want %d", hi, got, i)
			}
		}
		if lo >= histSubBuckets && hi != math.MaxInt64 {
			if width := hi - lo + 1; float64(width) > float64(lo)/float64(histSubBuckets)+1 {
				t.Fatalf("bucket %d [%d,%d] wider than lower/8", i, lo, hi)
			}
		}
	}
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("MaxInt64 lands in bucket %d, want %d", got, histBuckets-1)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value lands in bucket %d, want 0", got)
	}
}

// TestQuantileAccuracyProperty compares histogram quantile estimates
// against the exact quantiles of a sorted sample, across several
// distributions shaped like real latency data. The bucket geometry
// bounds relative error at 1/8; allow a little slack on top for
// interpolation at bucket edges.
func TestQuantileAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() int64{
		// Tight unimodal: the common case for a healthy p50.
		"normal": func() int64 { return int64(200_000 + 20_000*rng.NormFloat64()) },
		// Heavy tail: what p999 gating is for.
		"lognormal": func() int64 { return int64(50_000 * math.Exp(rng.NormFloat64())) },
		// Uniform over four decades: stresses every octave.
		"loguniform": func() int64 { return int64(1000 * math.Pow(10, 4*rng.Float64())) },
		// Bimodal: fast path + slow path.
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return int64(5_000_000 + 500_000*rng.NormFloat64())
			}
			return int64(100_000 + 10_000*rng.NormFloat64())
		},
	}
	for name, draw := range distributions {
		h := newHistogram(unitSeconds)
		samples := make([]int64, 20000)
		for i := range samples {
			v := draw()
			if v < 0 {
				v = 0
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var s HistSnapshot
		h.Snapshot(&s)
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
			rank := int(math.Ceil(p*float64(len(samples)))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := samples[rank]
			got := s.Quantile(p)
			relErr := math.Abs(float64(got-exact)) / math.Max(float64(exact), 1)
			if relErr > 0.13 {
				t.Errorf("%s p%g: estimate %d vs exact %d (rel err %.3f > 0.13)",
					name, p*100, got, exact, relErr)
			}
		}
	}
}

// TestSnapshotMergeExact: merging per-worker snapshots equals one
// histogram fed everything — count, sum, max and every quantile.
func TestSnapshotMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := newHistogram(unitSeconds)
	parts := []*Histogram{newHistogram(unitSeconds), newHistogram(unitSeconds), newHistogram(unitSeconds)}
	for i := 0; i < 30000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	var want, got, tmp HistSnapshot
	whole.Snapshot(&want)
	parts[0].Snapshot(&got)
	for _, p := range parts[1:] {
		p.Snapshot(&tmp)
		got.Merge(&tmp)
	}
	if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
		t.Fatalf("merged summary %d/%d/%d != whole %d/%d/%d",
			got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
	}
	if got.Buckets != want.Buckets {
		t.Fatal("merged buckets differ from whole-histogram buckets")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks nothing is lost (the atomics' whole job).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(unitSeconds)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket sum %d, want %d", bucketSum, workers*per)
	}
	if s.Max != workers*per-1 {
		t.Fatalf("max %d, want %d", s.Max, workers*per-1)
	}
}

// TestQuantileEdgeCases: empty histogram, single value, clamped p.
func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram(unitCount)
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(42)
	h.Snapshot(&s)
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if q := s.Quantile(p); q != 42 {
			t.Fatalf("single-value quantile(%g) = %d, want 42", p, q)
		}
	}
	// 42 lives in the bucket [40, 43]; CountAtMost is exact at bucket
	// upper bounds (39 and 43 here), which is what the exposition uses.
	if s.CountAtMost(39) != 0 || s.CountAtMost(43) != 1 || s.CountAtMost(1<<40) != 1 {
		t.Fatal("CountAtMost wrong around single value")
	}
}
