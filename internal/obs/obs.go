// Package obs is the daemon's metrics plane: dependency-free,
// allocation-free-on-the-hot-path counters, gauges and log-bucketed
// latency histograms behind a registry with a Prometheus text-format
// exposition handler.
//
// Design constraints, in order:
//
//   - The instruments must be safe to call from the serving hot path.
//     Counter.Inc and Histogram.Observe are single atomic adds into
//     preallocated storage — no locks, no allocations, no branches on
//     shared mutable state — so the zero-alloc SearchInto guarantee
//     (ann's TestSearchIntoZeroAlloc) survives instrumentation.
//   - Histograms must answer tail-quantile questions (p50/p90/p99/p999)
//     without storing samples: buckets are log-spaced (8 sub-buckets
//     per power of two, ≤ 12.5% relative width) over the full int64
//     range, and snapshots are plain arrays that merge by addition, so
//     a load generator can combine per-worker recordings exactly.
//   - Exposition must be boring: stable ordering (registration order),
//     HELP/TYPE pairs per family, standard counter/gauge/histogram
//     text syntax a Prometheus scraper parses as-is.
//
// Registration is idempotent: asking for an existing (name, labels)
// pair returns the same instrument, so package-level metrics in
// library code (ann, wal) and per-server metrics in the daemon can
// both register eagerly without double-registration errors.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to an instrument at
// registration. Labels are baked into the series — there is no
// per-observation label lookup, which is what keeps Observe lock-free.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Lock-free, allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Stored as float64 bits so
// ratios and byte counts share one type.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a family for TYPE exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series inside a family. Exactly one of the
// value fields is set, matching the family kind.
type child struct {
	labels  string // rendered {k="v",...}, "" for unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name: one HELP/TYPE pair,
// children in registration order.
type family struct {
	name     string
	help     string
	kind     metricKind
	children []*child
	byLabels map[string]int
}

// Registry holds instruments in registration order and renders them in
// Prometheus text format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// def is the process-wide default registry, home of library-level
// metrics (ann query counters, wal latency histograms, Go runtime
// stats). The daemon exposes it alongside its per-server registry.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// renderLabels renders a label set sorted by key, so the same logical
// series always maps to the same string whatever order the caller
// passed.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP line.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// register finds or creates the (name, labels) child of the given kind.
// A kind mismatch on an existing name panics: that is a programming
// error (two subsystems claiming one name as different types), not a
// runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *child {
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]int)}
		r.index[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if i, ok := f.byLabels[rendered]; ok {
		return f.children[i]
	}
	c := &child{labels: rendered}
	f.byLabels[rendered] = len(f.children)
	f.children = append(f.children, c)
	return c
}

// Counter returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.counter == nil {
		c.counter = new(Counter)
	}
	return c.counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.gauge == nil {
		c.gauge = new(Gauge)
		c.gaugeFn = nil
	}
	return c.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same (name, labels) replaces the callback — the
// behavior a restarted server in one test process needs.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c.gauge = nil
	c.gaugeFn = fn
}

// GaugeValue reads the current value of the gauge registered under
// (name, labels), evaluating the callback for GaugeFunc series. It is
// how /healthz reports the same numbers /metrics exposes: both read
// the one registered instrument, so they cannot drift.
func (r *Registry) GaugeValue(name string, labels ...Label) (float64, bool) {
	rendered := renderLabels(labels)
	r.mu.Lock()
	f := r.index[name]
	var c *child
	if f != nil && f.kind == kindGauge {
		if i, ok := f.byLabels[rendered]; ok {
			c = f.children[i]
		}
	}
	r.mu.Unlock() // evaluate gaugeFn outside the lock; it may scrape live state
	switch {
	case c == nil:
		return 0, false
	case c.gaugeFn != nil:
		return c.gaugeFn(), true
	case c.gauge != nil:
		return c.gauge.Load(), true
	default:
		return 0, false
	}
}

// Histogram returns the duration histogram registered under (name,
// labels): observations are nanoseconds, exposition is in seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, unitSeconds, labels)
}

// SizeHistogram returns a unitless histogram (batch sizes, counts):
// observations and exposition share the raw integer scale.
func (r *Registry) SizeHistogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, unitCount, labels)
}

func (r *Registry) histogram(name, help string, u unit, labels []Label) *Histogram {
	c := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.hist == nil {
		c.hist = newHistogram(u)
	}
	return c.hist
}

// Handler serves this registry (and any extras, in order) in
// Prometheus text format. Families are written registry by registry,
// so keep metric names disjoint across the merged set.
func (r *Registry) Handler(extras ...*Registry) http.Handler {
	regs := append([]*Registry{r}, extras...)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			reg.WriteProm(w)
		}
	})
}
