package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Exposition bucket bounds. The internal histograms keep full 8-per-
// octave resolution for quantile estimation; the Prometheus text
// output coarsens to one bound per two octaves so a scrape stays
// compact. Every bound is an exact internal bucket upper edge + 1 - 1
// (a power of two minus nothing — i.e. bounds align with octave
// boundaries), so the cumulative counts are exact, not interpolated.
var (
	// promSecondsBounds are nanosecond bounds from ~1µs to ~17s.
	promSecondsBounds = []int64{
		1 << 10, // 1.024µs
		1 << 12, // 4.1µs
		1 << 14, // 16.4µs
		1 << 16, // 65.5µs
		1 << 18, // 262µs
		1 << 20, // 1.05ms
		1 << 22, // 4.2ms
		1 << 24, // 16.8ms
		1 << 26, // 67.1ms
		1 << 28, // 268ms
		1 << 30, // 1.07s
		1 << 32, // 4.3s
		1 << 34, // 17.2s
	}
	// promCountBounds cover unitless sizes (batch sizes, queue depths).
	promCountBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
)

// WriteProm renders the registry in Prometheus text format: families
// in registration order, HELP/TYPE once per family, children in
// registration order. The output is deterministic for a fixed
// registration sequence, which the golden test pins.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var snap HistSnapshot
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		r.mu.Lock()
		children := make([]*child, len(f.children))
		copy(children, f.children)
		r.mu.Unlock()
		for _, c := range children {
			switch f.kind {
			case kindCounter:
				bw.WriteString(f.name)
				bw.WriteString(c.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(c.counter.Load(), 10))
				bw.WriteByte('\n')
			case kindGauge:
				v := 0.0
				if c.gaugeFn != nil {
					v = c.gaugeFn()
				} else if c.gauge != nil {
					v = c.gauge.Load()
				}
				bw.WriteString(f.name)
				bw.WriteString(c.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(v))
				bw.WriteByte('\n')
			case kindHistogram:
				c.hist.Snapshot(&snap)
				writePromHistogram(bw, f.name, c.labels, c.hist.u, &snap)
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram child: cumulative _bucket
// series over the unit's fixed bounds, then _sum and _count.
func writePromHistogram(bw *bufio.Writer, name, labels string, u unit, s *HistSnapshot) {
	bounds := promSecondsBounds
	if u == unitCount {
		bounds = promCountBounds
	}
	for _, b := range bounds {
		writeBucketLine(bw, name, labels, formatBound(b, u), s.CountAtMost(b))
	}
	writeBucketLine(bw, name, labels, "+Inf", s.Count)
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	if u == unitSeconds {
		bw.WriteString(formatFloat(float64(s.Sum) / 1e9))
	} else {
		bw.WriteString(strconv.FormatInt(s.Sum, 10))
	}
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Count, 10))
	bw.WriteByte('\n')
}

// writeBucketLine writes one cumulative bucket sample, splicing the
// le label into the child's label set.
func writeBucketLine(bw *bufio.Writer, name, labels, le string, count uint64) {
	bw.WriteString(name)
	bw.WriteString("_bucket")
	if labels == "" {
		bw.WriteString(`{le="`)
		bw.WriteString(le)
		bw.WriteString(`"}`)
	} else {
		// labels is "{...}"; insert before the closing brace.
		bw.WriteString(labels[:len(labels)-1])
		bw.WriteString(`,le="`)
		bw.WriteString(le)
		bw.WriteString(`"}`)
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(count, 10))
	bw.WriteByte('\n')
}

// formatBound renders a bucket bound in the exposition unit.
func formatBound(b int64, u unit) string {
	if u == unitSeconds {
		return formatFloat(float64(b) / 1e9)
	}
	return strconv.FormatInt(b, 10)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
