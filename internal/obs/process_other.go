//go:build !linux

package obs

// RegisterProcess is a no-op where /proc/self is unavailable; the
// process-memory series are simply absent rather than zero-valued
// lies.
func RegisterProcess() {}
