// Fused tape operators for the training hot path.
//
// The unfused LSTM gate graph records ~25 nodes per timestep (eight
// MatMuls, four broadcast-adds, four activations and the cell/hidden
// arithmetic), each with its own value matrix, gradient matrix and
// backward closure. LSTMStep collapses a full timestep into two nodes
// with a handwritten backward, and LayerNorm collapses the ~13-node
// per-row normalization chain into one. Both are verified against the
// unfused compositions and central finite differences in fused_test.go.
package ag

import (
	"fmt"
	"math"

	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// LSTMWeights binds the twelve LSTM gate parameters (already recorded
// on the tape, typically via nn.Param.Node) for a fused LSTMStep call.
// W* are in×hidden, U* are hidden×hidden, B* are 1×hidden.
type LSTMWeights struct {
	Wi, Ui, Bi *Node
	Wf, Uf, Bf *Node
	Wo, Uo, Bo *Node
	Wg, Ug, Bg *Node
}

func (w LSTMWeights) all() []*Node {
	return []*Node{w.Wi, w.Ui, w.Bi, w.Wf, w.Uf, w.Bf, w.Wo, w.Uo, w.Bo, w.Wg, w.Ug, w.Bg}
}

// LSTMStep computes one fused LSTM timestep
//
//	i = σ(x·Wi + h·Ui + bi)    f = σ(x·Wf + h·Uf + bf)
//	o = σ(x·Wo + h·Uo + bo)    g = tanh(x·Wg + h·Ug + bg)
//	c' = f⊙c + i⊙g             h' = o⊙tanh(c')
//
// for x (n×in) and state h, c (n×hidden), recording only two tape
// nodes. The fused backward runs when hNew's gradient is propagated,
// so hNew must be consumed by the rest of the graph (cNew may be left
// dangling, as on the final timestep); this invariant holds for any
// sequence model that reads the hidden state.
func (t *Tape) LSTMStep(w LSTMWeights, x, h, c *Node) (hNew, cNew *Node) {
	n, hidden := x.Value.Rows, w.Bi.Value.Cols
	if h.Value.Rows != n || c.Value.Rows != n || h.Value.Cols != hidden || c.Value.Cols != hidden {
		panic(fmt.Sprintf("ag: LSTMStep state %dx%d/%dx%d for x rows %d hidden %d",
			h.Value.Rows, h.Value.Cols, c.Value.Rows, c.Value.Cols, n, hidden))
	}

	gate := func(W, U, B *Node) *tensor.Matrix {
		pre := tensor.New(n, hidden)
		for r := 0; r < n; r++ {
			copy(pre.Row(r), B.Value.Data)
		}
		tensor.MatMulAddInto(pre, x.Value, W.Value)
		tensor.MatMulAddInto(pre, h.Value, U.Value)
		return pre
	}
	iv := gate(w.Wi, w.Ui, w.Bi)
	fv := gate(w.Wf, w.Uf, w.Bf)
	ov := gate(w.Wo, w.Uo, w.Bo)
	gv := gate(w.Wg, w.Ug, w.Bg)
	for idx := range iv.Data {
		iv.Data[idx] = vecmath.Sigmoid(iv.Data[idx])
		fv.Data[idx] = vecmath.Sigmoid(fv.Data[idx])
		ov.Data[idx] = vecmath.Sigmoid(ov.Data[idx])
		gv.Data[idx] = math.Tanh(gv.Data[idx])
	}
	cVal := tensor.New(n, hidden)
	tc := tensor.New(n, hidden)
	hVal := tensor.New(n, hidden)
	for idx := range cVal.Data {
		cVal.Data[idx] = fv.Data[idx]*c.Value.Data[idx] + iv.Data[idx]*gv.Data[idx]
		tc.Data[idx] = math.Tanh(cVal.Data[idx])
		hVal.Data[idx] = ov.Data[idx] * tc.Data[idx]
	}

	needs := needsAny(append(w.all(), x, h, c)...)
	cNode := &Node{Value: cVal, needs: needs}
	hNode := &Node{Value: hVal, needs: needs}
	if needs {
		hNode.back = func(hn *Node) {
			dh := hn.grad
			var dcOut *tensor.Matrix // grad arriving at c' from downstream
			if cNode.grad != nil {
				dcOut = cNode.grad
			}
			dpreI := tensor.New(n, hidden)
			dpreF := tensor.New(n, hidden)
			dpreO := tensor.New(n, hidden)
			dpreG := tensor.New(n, hidden)
			var cg *tensor.Matrix
			if c.needs {
				cg = c.Grad()
			}
			for idx := range hVal.Data {
				dhv := dh.Data[idx]
				tcv := tc.Data[idx]
				dc := dhv * ov.Data[idx] * (1 - tcv*tcv)
				if dcOut != nil {
					dc += dcOut.Data[idx]
				}
				ivv, fvv, ovv, gvv := iv.Data[idx], fv.Data[idx], ov.Data[idx], gv.Data[idx]
				dpreI.Data[idx] = dc * gvv * ivv * (1 - ivv)
				dpreF.Data[idx] = dc * c.Value.Data[idx] * fvv * (1 - fvv)
				dpreO.Data[idx] = dhv * tcv * ovv * (1 - ovv)
				dpreG.Data[idx] = dc * ivv * (1 - gvv*gvv)
				if cg != nil {
					cg.Data[idx] += dc * fvv
				}
			}
			backGate := func(dpre *tensor.Matrix, W, U, B *Node) {
				if W.needs {
					// dW += xᵀ·dpre
					wg := W.Grad()
					for r := 0; r < n; r++ {
						xrow := x.Value.Row(r)
						drow := dpre.Row(r)
						for k, xv := range xrow {
							if xv == 0 {
								continue
							}
							vecmath.Axpy(wg.Row(k), xv, drow)
						}
					}
				}
				if U.needs {
					ug := U.Grad()
					for r := 0; r < n; r++ {
						hrow := h.Value.Row(r)
						drow := dpre.Row(r)
						for k, hv := range hrow {
							if hv == 0 {
								continue
							}
							vecmath.Axpy(ug.Row(k), hv, drow)
						}
					}
				}
				if B.needs {
					bg := B.Grad()
					for r := 0; r < n; r++ {
						vecmath.Add(bg.Data, dpre.Row(r))
					}
				}
				if x.needs {
					// dx += dpre·Wᵀ
					xg := x.Grad()
					for r := 0; r < n; r++ {
						drow := dpre.Row(r)
						xgrow := xg.Row(r)
						for k := range xgrow {
							xgrow[k] += vecmath.Dot(drow, W.Value.Row(k))
						}
					}
				}
				if h.needs {
					hg := h.Grad()
					for r := 0; r < n; r++ {
						drow := dpre.Row(r)
						hgrow := hg.Row(r)
						for k := range hgrow {
							hgrow[k] += vecmath.Dot(drow, U.Value.Row(k))
						}
					}
				}
			}
			backGate(dpreI, w.Wi, w.Ui, w.Bi)
			backGate(dpreF, w.Wf, w.Uf, w.Bf)
			backGate(dpreO, w.Wo, w.Uo, w.Bo)
			backGate(dpreG, w.Wg, w.Ug, w.Bg)
		}
	}
	// cNew is recorded before hNew so that hNew's backward — which
	// consumes cNew's accumulated gradient — runs first in the tape's
	// reverse sweep.
	t.add(cNode)
	t.add(hNode)
	return hNode, cNode
}

// LayerNorm normalizes each row of x to zero mean and unit variance
// across features, then applies the learned affine transform:
//
//	y[r,:] = gain ⊙ (x[r,:] − μ_r)/√(σ²_r + eps) + bias
//
// gain and bias are 1×cols nodes. One fused node replaces the ~13-node
// per-row chain the unfused implementation recorded.
func (t *Tape) LayerNorm(x, gain, bias *Node, eps float64) *Node {
	rows, d := x.Value.Rows, x.Value.Cols
	if gain.Value.Rows != 1 || gain.Value.Cols != d || bias.Value.Rows != 1 || bias.Value.Cols != d {
		panic(fmt.Sprintf("ag: LayerNorm gain %dx%d bias %dx%d for x cols %d",
			gain.Value.Rows, gain.Value.Cols, bias.Value.Rows, bias.Value.Cols, d))
	}
	inv := make([]float64, rows)
	xhat := tensor.New(rows, d)
	val := tensor.New(rows, d)
	fd := float64(d)
	for r := 0; r < rows; r++ {
		xrow := x.Value.Row(r)
		var mu float64
		for _, v := range xrow {
			mu += v
		}
		mu /= fd
		var variance float64
		for _, v := range xrow {
			dv := v - mu
			variance += dv * dv
		}
		variance /= fd
		inv[r] = 1 / math.Sqrt(variance+eps)
		hrow := xhat.Row(r)
		vrow := val.Row(r)
		for j, v := range xrow {
			hrow[j] = (v - mu) * inv[r]
			vrow[j] = hrow[j]*gain.Value.Data[j] + bias.Value.Data[j]
		}
	}
	n := &Node{Value: val, needs: needsAny(x, gain, bias)}
	if n.needs {
		n.back = func(n *Node) {
			for r := 0; r < rows; r++ {
				grow := n.grad.Row(r)
				hrow := xhat.Row(r)
				if bias.needs {
					vecmath.Add(bias.Grad().Data, grow)
				}
				if gain.needs {
					gg := gain.Grad().Data
					for j, g := range grow {
						gg[j] += g * hrow[j]
					}
				}
				if x.needs {
					// dxhat = dy ⊙ gain; dx = inv·(dxhat − mean(dxhat)
					//        − xhat·mean(dxhat ⊙ xhat))
					var m1, m2 float64
					for j, g := range grow {
						dxh := g * gain.Value.Data[j]
						m1 += dxh
						m2 += dxh * hrow[j]
					}
					m1 /= fd
					m2 /= fd
					xrow := x.Grad().Row(r)
					for j, g := range grow {
						dxh := g * gain.Value.Data[j]
						xrow[j] += inv[r] * (dxh - m1 - hrow[j]*m2)
					}
				}
			}
		}
	}
	return t.add(n)
}
