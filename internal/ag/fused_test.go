package ag

import (
	"math"
	"testing"

	"ehna/internal/tensor"
)

// lstmInputs builds the 15 input matrices of one LSTM step:
// x, h, c, then the 12 gate weights in LSTMWeights order.
func lstmInputs(n, in, hidden int, seed int64) []*tensor.Matrix {
	ms := []*tensor.Matrix{rnd(n, in, seed), rnd(n, hidden, seed+1), rnd(n, hidden, seed+2)}
	s := seed + 3
	for g := 0; g < 4; g++ {
		ms = append(ms, rnd(in, hidden, s), rnd(hidden, hidden, s+1), rnd(1, hidden, s+2))
		s += 3
	}
	return ms
}

func weightsFrom(leaves []*Node) LSTMWeights {
	return LSTMWeights{
		Wi: leaves[3], Ui: leaves[4], Bi: leaves[5],
		Wf: leaves[6], Uf: leaves[7], Bf: leaves[8],
		Wo: leaves[9], Uo: leaves[10], Bo: leaves[11],
		Wg: leaves[12], Ug: leaves[13], Bg: leaves[14],
	}
}

// unfusedStep is the reference composition LSTMStep replaced.
func unfusedStep(tp *Tape, w LSTMWeights, x, h, c *Node) (hNew, cNew *Node) {
	gate := func(W, U, B *Node) *Node {
		return tp.AddRowBroadcast(tp.Add(tp.MatMul(x, W), tp.MatMul(h, U)), B)
	}
	i := tp.Sigmoid(gate(w.Wi, w.Ui, w.Bi))
	f := tp.Sigmoid(gate(w.Wf, w.Uf, w.Bf))
	o := tp.Sigmoid(gate(w.Wo, w.Uo, w.Bo))
	g := tp.Tanh(gate(w.Wg, w.Ug, w.Bg))
	cNew = tp.Add(tp.Mul(f, c), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cNew))
	return hNew, cNew
}

// TestGradLSTMStep verifies the fused backward against central finite
// differences for every input, with both outputs consumed.
func TestGradLSTMStep(t *testing.T) {
	checkGrad(t, "LSTMStep", lstmInputs(2, 3, 4, 42), func(tp *Tape, leaves []*Node) *Node {
		hN, cN := tp.LSTMStep(weightsFrom(leaves), leaves[0], leaves[1], leaves[2])
		return tp.Add(tp.SumSquares(hN), tp.SumSquares(cN))
	})
}

// TestGradLSTMStepDanglingCell covers the final-timestep shape: cNew is
// never consumed, so its gradient must be treated as zero.
func TestGradLSTMStepDanglingCell(t *testing.T) {
	checkGrad(t, "LSTMStep/dangling-c", lstmInputs(1, 3, 3, 7), func(tp *Tape, leaves []*Node) *Node {
		hN, _ := tp.LSTMStep(weightsFrom(leaves), leaves[0], leaves[1], leaves[2])
		return tp.SumSquares(hN)
	})
}

// TestGradLSTMStepChained runs two fused timesteps so state gradients
// flow through both the hidden and the cell paths.
func TestGradLSTMStepChained(t *testing.T) {
	inputs := append(lstmInputs(1, 4, 4, 11), rnd(1, 4, 99)) // second x
	checkGrad(t, "LSTMStep/chain", inputs, func(tp *Tape, leaves []*Node) *Node {
		w := weightsFrom(leaves)
		h1, c1 := tp.LSTMStep(w, leaves[0], leaves[1], leaves[2])
		h2, _ := tp.LSTMStep(w, leaves[15], h1, c1)
		return tp.SumSquares(h2)
	})
}

// TestLSTMStepMatchesUnfused checks value and gradient agreement with
// the op-by-op composition the fused kernel replaced.
func TestLSTMStepMatchesUnfused(t *testing.T) {
	run := func(step func(tp *Tape, w LSTMWeights, x, h, c *Node) (*Node, *Node)) (val *tensor.Matrix, grads []*tensor.Matrix) {
		inputs := lstmInputs(2, 3, 4, 1234)
		tp := New()
		leaves := make([]*Node, len(inputs))
		grads = make([]*tensor.Matrix, len(inputs))
		for i, in := range inputs {
			grads[i] = tensor.New(in.Rows, in.Cols)
			leaves[i] = tp.Leaf(in, grads[i])
		}
		hN, cN := step(tp, weightsFrom(leaves), leaves[0], leaves[1], leaves[2])
		tp.Backward(tp.Add(tp.SumSquares(hN), tp.SumSquares(cN)))
		return hN.Value, grads
	}
	fv, fg := run(func(tp *Tape, w LSTMWeights, x, h, c *Node) (*Node, *Node) {
		return tp.LSTMStep(w, x, h, c)
	})
	uv, ug := run(unfusedStep)
	if !tensor.Equal(fv, uv, 1e-12) {
		t.Fatalf("fused h' %v != unfused %v", fv, uv)
	}
	for i := range fg {
		if !tensor.Equal(fg[i], ug[i], 1e-9) {
			t.Fatalf("gradient %d: fused %v != unfused %v", i, fg[i], ug[i])
		}
	}
}

// TestGradLayerNorm verifies the fused LayerNorm backward against
// finite differences for x, gain and bias.
func TestGradLayerNorm(t *testing.T) {
	inputs := []*tensor.Matrix{rnd(3, 5, 21), rnd(1, 5, 22), rnd(1, 5, 23)}
	checkGrad(t, "LayerNorm", inputs, func(tp *Tape, leaves []*Node) *Node {
		return tp.SumSquares(tp.LayerNorm(leaves[0], leaves[1], leaves[2], 1e-5))
	})
}

// TestLayerNormForward checks the normalization invariants directly:
// with unit gain and zero bias every row has mean 0 and variance ~1.
func TestLayerNormForward(t *testing.T) {
	x := rnd(4, 8, 33)
	gain := tensor.New(1, 8)
	gain.Fill(1)
	bias := tensor.New(1, 8)
	tp := New()
	y := tp.LayerNorm(tp.Const(x), tp.Const(gain), tp.Const(bias), 1e-9)
	for r := 0; r < 4; r++ {
		row := y.Value.Row(r)
		var mu, v float64
		for _, e := range row {
			mu += e
		}
		mu /= 8
		for _, e := range row {
			v += (e - mu) * (e - mu)
		}
		v /= 8
		if math.Abs(mu) > 1e-9 || math.Abs(v-1) > 1e-6 {
			t.Fatalf("row %d: mean %g var %g", r, mu, v)
		}
	}
}
