package ag

import (
	"math"
	"math/rand"
	"testing"

	"ehna/internal/tensor"
)

// checkGrad verifies the analytic gradient of a scalar-valued tape program
// against central finite differences for every input matrix.
//
// build must construct the graph from leaves bound to the given inputs and
// return the scalar root.
func checkGrad(t *testing.T, name string, inputs []*tensor.Matrix, build func(tp *Tape, leaves []*Node) *Node) {
	t.Helper()
	sinks := make([]*tensor.Matrix, len(inputs))
	tp := New()
	leaves := make([]*Node, len(inputs))
	for i, in := range inputs {
		sinks[i] = tensor.New(in.Rows, in.Cols)
		leaves[i] = tp.Leaf(in, sinks[i])
	}
	root := build(tp, leaves)
	tp.Backward(root)

	const h = 1e-5
	eval := func() float64 {
		tp2 := New()
		lv := make([]*Node, len(inputs))
		for i, in := range inputs {
			lv[i] = tp2.Const(in)
			lv[i].needs = false
		}
		return Value(build(tp2, lv))
	}
	for pi, in := range inputs {
		for i := range in.Data {
			orig := in.Data[i]
			in.Data[i] = orig + h
			fp := eval()
			in.Data[i] = orig - h
			fm := eval()
			in.Data[i] = orig
			num := (fp - fm) / (2 * h)
			got := sinks[pi].Data[i]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > 1e-4 {
				t.Fatalf("%s: input %d elem %d: analytic %g numeric %g", name, pi, i, got, num)
			}
		}
	}
}

func rnd(rows, cols int, seed int64) *tensor.Matrix {
	return tensor.Randn(rows, cols, 0.7, rand.New(rand.NewSource(seed)))
}

func TestGradAdd(t *testing.T) {
	checkGrad(t, "add", []*tensor.Matrix{rnd(2, 3, 1), rnd(2, 3, 2)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.Add(l[0], l[1]))
	})
}

func TestGradSub(t *testing.T) {
	checkGrad(t, "sub", []*tensor.Matrix{rnd(2, 3, 3), rnd(2, 3, 4)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.Sub(l[0], l[1]))
	})
}

func TestGradMul(t *testing.T) {
	checkGrad(t, "mul", []*tensor.Matrix{rnd(2, 3, 5), rnd(2, 3, 6)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumAll(tp.Mul(l[0], l[1]))
	})
}

func TestGradScaleAddConst(t *testing.T) {
	checkGrad(t, "scale", []*tensor.Matrix{rnd(2, 2, 7)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.AddConst(tp.Scale(l[0], -2.5), 0.3))
	})
}

func TestGradMatMul(t *testing.T) {
	checkGrad(t, "matmul", []*tensor.Matrix{rnd(3, 4, 8), rnd(4, 2, 9)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.MatMul(l[0], l[1]))
	})
}

func TestGradMatMulChain(t *testing.T) {
	checkGrad(t, "matmulchain", []*tensor.Matrix{rnd(2, 3, 10), rnd(3, 3, 11), rnd(3, 1, 12)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.MatMul(tp.MatMul(l[0], l[1]), l[2]))
	})
}

func TestGradAddRowBroadcast(t *testing.T) {
	checkGrad(t, "bias", []*tensor.Matrix{rnd(3, 4, 13), rnd(1, 4, 14)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.AddRowBroadcast(l[0], l[1]))
	})
}

func TestGradSigmoid(t *testing.T) {
	checkGrad(t, "sigmoid", []*tensor.Matrix{rnd(2, 3, 15)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.Sigmoid(l[0]))
	})
}

func TestGradTanh(t *testing.T) {
	checkGrad(t, "tanh", []*tensor.Matrix{rnd(2, 3, 16)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.Tanh(l[0]))
	})
}

func TestGradReLU(t *testing.T) {
	// Shift inputs away from the kink at 0 so finite differences are valid.
	in := rnd(2, 3, 17)
	for i := range in.Data {
		if math.Abs(in.Data[i]) < 0.05 {
			in.Data[i] = 0.1
		}
	}
	checkGrad(t, "relu", []*tensor.Matrix{in}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.ReLU(l[0]))
	})
}

func TestGradSoftmaxRow(t *testing.T) {
	checkGrad(t, "softmax", []*tensor.Matrix{rnd(1, 5, 18), rnd(1, 5, 19)}, func(tp *Tape, l []*Node) *Node {
		// Weighted sum of softmax outputs exercises the full Jacobian.
		return tp.SumAll(tp.Mul(tp.SoftmaxRow(l[0]), l[1]))
	})
}

func TestGradConcatCols(t *testing.T) {
	checkGrad(t, "concat", []*tensor.Matrix{rnd(2, 3, 20), rnd(2, 2, 21)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.ConcatCols(l[0], l[1]))
	})
}

func TestGradRowScale(t *testing.T) {
	checkGrad(t, "rowscale", []*tensor.Matrix{rnd(3, 4, 22), rnd(1, 3, 23)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.RowScale(l[0], l[1]))
	})
}

func TestGradRowAndStack(t *testing.T) {
	checkGrad(t, "rowstack", []*tensor.Matrix{rnd(3, 4, 24)}, func(tp *Tape, l []*Node) *Node {
		r0 := tp.Row(l[0], 0)
		r2 := tp.Row(l[0], 2)
		return tp.SumSquares(tp.StackRows([]*Node{r0, r2, r0}))
	})
}

func TestGradMeanRows(t *testing.T) {
	checkGrad(t, "meanrows", []*tensor.Matrix{rnd(4, 3, 25)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.MeanRows(l[0]))
	})
}

func TestGradL2NormalizeRow(t *testing.T) {
	checkGrad(t, "l2norm", []*tensor.Matrix{rnd(1, 5, 26), rnd(1, 5, 27)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumAll(tp.Mul(tp.L2NormalizeRow(l[0]), l[1]))
	})
}

func TestGradSqDistHinge(t *testing.T) {
	checkGrad(t, "hinge", []*tensor.Matrix{rnd(1, 4, 28), rnd(1, 4, 29), rnd(1, 4, 30)}, func(tp *Tape, l []*Node) *Node {
		pos := tp.SqDist(l[0], l[1])
		neg := tp.SqDist(l[0], l[2])
		return tp.Hinge(5, pos, neg)
	})
}

func TestGradDeepComposite(t *testing.T) {
	// A miniature of the EHNA readout: attention → weighted rows → dense →
	// tanh → normalize → distance.
	checkGrad(t, "composite", []*tensor.Matrix{rnd(3, 4, 31), rnd(1, 3, 32), rnd(4, 4, 33), rnd(1, 4, 34)}, func(tp *Tape, l []*Node) *Node {
		att := tp.SoftmaxRow(l[1])
		weighted := tp.RowScale(l[0], att)
		mean := tp.MeanRows(weighted)
		h := tp.Tanh(tp.MatMul(mean, l[2]))
		z := tp.L2NormalizeRow(h)
		return tp.SqDist(z, l[3])
	})
}

func TestLeafAccumulatesAcrossUses(t *testing.T) {
	// Using a leaf twice must sum both gradient contributions.
	in := rnd(1, 3, 35)
	sink := tensor.New(1, 3)
	tp := New()
	x := tp.Leaf(in, sink)
	root := tp.SumSquares(tp.Add(x, x)) // d/dx sum((2x)^2) = 8x
	tp.Backward(root)
	for i, v := range in.Data {
		if math.Abs(sink.Data[i]-8*v) > 1e-9 {
			t.Fatalf("elem %d: got %g want %g", i, sink.Data[i], 8*v)
		}
	}
}

func TestLeafFuncDeliversGrad(t *testing.T) {
	in := rnd(1, 3, 36)
	var delivered *tensor.Matrix
	tp := New()
	x := tp.LeafFunc(in, func(g *tensor.Matrix) { delivered = g.Clone() })
	tp.Backward(tp.SumSquares(x))
	if delivered == nil {
		t.Fatal("LeafFunc callback not invoked")
	}
	for i, v := range in.Data {
		if math.Abs(delivered.Data[i]-2*v) > 1e-9 {
			t.Fatalf("elem %d: got %g want %g", i, delivered.Data[i], 2*v)
		}
	}
}

func TestConstGetsNoGradient(t *testing.T) {
	tp := New()
	c := tp.Const(rnd(2, 2, 37))
	root := tp.SumSquares(c)
	tp.Backward(root)
	if c.grad != nil {
		t.Fatal("const node must not receive a gradient")
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New()
	x := tp.Const(rnd(2, 2, 38))
	tp.Backward(x)
}

func TestValueHelpers(t *testing.T) {
	tp := New()
	n := tp.Const(tensor.FromSlice(1, 1, []float64{3.5}))
	if Value(n) != 3.5 {
		t.Fatal("Value")
	}
	if !IsFinite(n) {
		t.Fatal("IsFinite on finite")
	}
	bad := tp.Const(tensor.FromSlice(1, 1, []float64{math.NaN()}))
	if IsFinite(bad) {
		t.Fatal("IsFinite on NaN")
	}
}

func TestTapeLen(t *testing.T) {
	tp := New()
	a := tp.Const(rnd(1, 1, 39))
	_ = tp.Add(a, a)
	if tp.Len() != 2 {
		t.Fatalf("Len = %d want 2", tp.Len())
	}
}

func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.Randn(64, 64, 0.1, rng)
	w2 := tensor.Randn(64, 64, 0.1, rng)
	x := tensor.Randn(8, 64, 1, rng)
	g1 := tensor.New(64, 64)
	g2 := tensor.New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g1.Zero()
		g2.Zero()
		tp := New()
		w1n := tp.Leaf(w1, g1)
		w2n := tp.Leaf(w2, g2)
		h := tp.Tanh(tp.MatMul(tp.Const(x), w1n))
		out := tp.SumSquares(tp.MatMul(h, w2n))
		tp.Backward(out)
	}
}

func TestGradRSqrt(t *testing.T) {
	in := rnd(2, 3, 40)
	for i := range in.Data {
		in.Data[i] = math.Abs(in.Data[i]) + 0.5 // keep strictly positive
	}
	checkGrad(t, "rsqrt", []*tensor.Matrix{in}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.RSqrt(l[0]))
	})
}

func TestGradRowBroadcastMul(t *testing.T) {
	checkGrad(t, "rowbmul", []*tensor.Matrix{rnd(3, 4, 41), rnd(1, 4, 42)}, func(tp *Tape, l []*Node) *Node {
		return tp.SumSquares(tp.RowBroadcastMul(l[0], l[1]))
	})
}

func TestGradConcatScalars(t *testing.T) {
	checkGrad(t, "concatscalars", []*tensor.Matrix{rnd(1, 4, 43), rnd(1, 4, 44)}, func(tp *Tape, l []*Node) *Node {
		parts := make([]*Node, 3)
		for i := range parts {
			parts[i] = tp.SqDist(tp.Scale(l[0], float64(i+1)), l[1])
		}
		row := tp.ConcatScalars(parts)
		return tp.SumSquares(tp.SoftmaxRow(row))
	})
}
