// Package ag implements reverse-mode automatic differentiation over dense
// matrices (a "tape" or Wengert list). It is the training substrate that
// replaces the Python autodiff stack used by the original EHNA paper.
//
// Usage: create a Tape per forward pass, build the computation with the
// Tape's operator methods, then call Backward on a scalar (1×1) root node.
// Gradients of Leaf nodes are accumulated into caller-owned sink matrices,
// which optimizers (internal/nn) then consume.
//
// Every operator's gradient is verified against central finite differences
// in ag_test.go.
package ag

import (
	"fmt"
	"math"

	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Node is one value in the computation graph.
type Node struct {
	Value *tensor.Matrix
	grad  *tensor.Matrix
	back  func(n *Node)
	needs bool // whether any ancestor is a Leaf (gradient required)
}

// Grad returns the accumulated gradient of n, allocating it on first use.
func (n *Node) Grad() *tensor.Matrix {
	if n.grad == nil {
		n.grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.grad
}

// Tape records nodes in topological (creation) order.
type Tape struct {
	nodes []*Node
}

// New returns an empty tape.
func New() *Tape {
	return &Tape{nodes: make([]*Node, 0, 256)}
}

// Len returns the number of recorded nodes (useful for instrumentation).
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) add(n *Node) *Node {
	t.nodes = append(t.nodes, n)
	return n
}

// Const records a node that requires no gradient.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.add(&Node{Value: v})
}

// Leaf records a differentiable input whose gradient is accumulated into
// sink (same shape as v). The caller owns both matrices.
func (t *Tape) Leaf(v, sink *tensor.Matrix) *Node {
	if v.Rows != sink.Rows || v.Cols != sink.Cols {
		panic(fmt.Sprintf("ag: Leaf sink shape %dx%d != value %dx%d", sink.Rows, sink.Cols, v.Rows, v.Cols))
	}
	n := &Node{Value: v, needs: true}
	n.back = func(n *Node) {
		tensor.AddInPlace(sink, n.Grad())
	}
	return t.add(n)
}

// LeafFunc records a differentiable input whose gradient is delivered to fn
// at backward time. Used for embedding-table lookups where the gradient is
// scattered into sparse per-row accumulators.
func (t *Tape) LeafFunc(v *tensor.Matrix, fn func(grad *tensor.Matrix)) *Node {
	n := &Node{Value: v, needs: true}
	n.back = func(n *Node) { fn(n.Grad()) }
	return t.add(n)
}

// Backward seeds the gradient of the scalar root with 1 and propagates
// gradients to all leaves in reverse topological order.
func (t *Tape) Backward(root *Node) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("ag: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	root.Grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.grad != nil && n.back != nil {
			n.back(n)
		}
	}
}

func needsAny(parents ...*Node) bool {
	for _, p := range parents {
		if p.needs {
			return true
		}
	}
	return false
}

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	n := &Node{Value: tensor.Add(a.Value, b.Value), needs: needsAny(a, b)}
	if n.needs {
		n.back = func(n *Node) {
			if a.needs {
				tensor.AddInPlace(a.Grad(), n.grad)
			}
			if b.needs {
				tensor.AddInPlace(b.Grad(), n.grad)
			}
		}
	}
	return t.add(n)
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	n := &Node{Value: tensor.Sub(a.Value, b.Value), needs: needsAny(a, b)}
	if n.needs {
		n.back = func(n *Node) {
			if a.needs {
				tensor.AddInPlace(a.Grad(), n.grad)
			}
			if b.needs {
				tensor.AxpyInPlace(b.Grad(), -1, n.grad)
			}
		}
	}
	return t.add(n)
}

// Mul returns the element-wise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	n := &Node{Value: tensor.Hadamard(a.Value, b.Value), needs: needsAny(a, b)}
	if n.needs {
		n.back = func(n *Node) {
			if a.needs {
				tensor.AddInPlace(a.Grad(), tensor.Hadamard(n.grad, b.Value))
			}
			if b.needs {
				tensor.AddInPlace(b.Grad(), tensor.Hadamard(n.grad, a.Value))
			}
		}
	}
	return t.add(n)
}

// Scale returns c·a for a compile-time constant c.
func (t *Tape) Scale(a *Node, c float64) *Node {
	n := &Node{Value: tensor.Scale(a.Value, c), needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			tensor.AxpyInPlace(a.Grad(), c, n.grad)
		}
	}
	return t.add(n)
}

// AddConst returns a + c element-wise for a constant c.
func (t *Tape) AddConst(a *Node, c float64) *Node {
	n := &Node{Value: tensor.Apply(a.Value, func(v float64) float64 { return v + c }), needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			tensor.AddInPlace(a.Grad(), n.grad)
		}
	}
	return t.add(n)
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	n := &Node{Value: tensor.MatMul(a.Value, b.Value), needs: needsAny(a, b)}
	if n.needs {
		n.back = func(n *Node) {
			if a.needs {
				tensor.AddInPlace(a.Grad(), tensor.MatMulBTransposed(n.grad, b.Value))
			}
			if b.needs {
				tensor.AddInPlace(b.Grad(), tensor.MatMulATransposed(a.Value, n.grad))
			}
		}
	}
	return t.add(n)
}

// AddRowBroadcast returns x with the 1×cols bias node added to every row.
func (t *Tape) AddRowBroadcast(x, bias *Node) *Node {
	n := &Node{Value: tensor.AddRowBroadcast(x.Value, bias.Value), needs: needsAny(x, bias)}
	if n.needs {
		n.back = func(n *Node) {
			if x.needs {
				tensor.AddInPlace(x.Grad(), n.grad)
			}
			if bias.needs {
				tensor.AddInPlace(bias.Grad(), tensor.SumRows(n.grad))
			}
		}
	}
	return t.add(n)
}

// Sigmoid returns the logistic function applied element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	val := tensor.Sigmoid(a.Value)
	n := &Node{Value: val, needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := a.Grad()
			for i, s := range val.Data {
				g.Data[i] += n.grad.Data[i] * s * (1 - s)
			}
		}
	}
	return t.add(n)
}

// Tanh returns tanh applied element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	val := tensor.Tanh(a.Value)
	n := &Node{Value: val, needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := a.Grad()
			for i, th := range val.Data {
				g.Data[i] += n.grad.Data[i] * (1 - th*th)
			}
		}
	}
	return t.add(n)
}

// ReLU returns max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	val := tensor.ReLU(a.Value)
	n := &Node{Value: val, needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := a.Grad()
			for i, v := range a.Value.Data {
				if v > 0 {
					g.Data[i] += n.grad.Data[i]
				}
			}
		}
	}
	return t.add(n)
}

// SoftmaxRow returns softmax of a 1×n row vector.
func (t *Tape) SoftmaxRow(a *Node) *Node {
	if a.Value.Rows != 1 {
		panic("ag: SoftmaxRow expects a 1×n node")
	}
	val := tensor.SoftmaxRows(a.Value)
	n := &Node{Value: val, needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			// dL/dx_i = s_i (dL/ds_i − Σ_j dL/ds_j s_j)
			dot := vecmath.Dot(n.grad.Data, val.Data)
			g := a.Grad()
			for i, s := range val.Data {
				g.Data[i] += s * (n.grad.Data[i] - dot)
			}
		}
	}
	return t.add(n)
}

// ConcatCols returns [a ‖ b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	n := &Node{Value: tensor.ConcatCols(a.Value, b.Value), needs: needsAny(a, b)}
	if n.needs {
		ac := a.Value.Cols
		n.back = func(n *Node) {
			for i := 0; i < n.Value.Rows; i++ {
				grow := n.grad.Row(i)
				if a.needs {
					vecmath.Add(a.Grad().Row(i), grow[:ac])
				}
				if b.needs {
					vecmath.Add(b.Grad().Row(i), grow[ac:])
				}
			}
		}
	}
	return t.add(n)
}

// RowScale scales row i of x (n×d) by element i of s (1×n):
// out[i,:] = s[i]·x[i,:]. This is the attention-weighting primitive.
func (t *Tape) RowScale(x, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != x.Value.Rows {
		panic(fmt.Sprintf("ag: RowScale s %dx%d for x %dx%d", s.Value.Rows, s.Value.Cols, x.Value.Rows, x.Value.Cols))
	}
	val := tensor.New(x.Value.Rows, x.Value.Cols)
	for i := 0; i < x.Value.Rows; i++ {
		si := s.Value.Data[i]
		xrow := x.Value.Row(i)
		vrow := val.Row(i)
		for j, v := range xrow {
			vrow[j] = si * v
		}
	}
	n := &Node{Value: val, needs: needsAny(x, s)}
	if n.needs {
		n.back = func(n *Node) {
			for i := 0; i < x.Value.Rows; i++ {
				grow := n.grad.Row(i)
				if x.needs {
					vecmath.Axpy(x.Grad().Row(i), s.Value.Data[i], grow)
				}
				if s.needs {
					s.Grad().Data[i] += vecmath.Dot(grow, x.Value.Row(i))
				}
			}
		}
	}
	return t.add(n)
}

// Row returns row i of x as a 1×cols node.
func (t *Tape) Row(x *Node, i int) *Node {
	val := tensor.New(1, x.Value.Cols)
	copy(val.Data, x.Value.Row(i))
	n := &Node{Value: val, needs: x.needs}
	if n.needs {
		n.back = func(n *Node) {
			vecmath.Add(x.Grad().Row(i), n.grad.Data)
		}
	}
	return t.add(n)
}

// StackRows stacks 1×c nodes into an n×c node.
func (t *Tape) StackRows(rows []*Node) *Node {
	if len(rows) == 0 {
		panic("ag: StackRows of zero rows")
	}
	c := rows[0].Value.Cols
	val := tensor.New(len(rows), c)
	needs := false
	for i, r := range rows {
		if r.Value.Rows != 1 || r.Value.Cols != c {
			panic(fmt.Sprintf("ag: StackRows row %d is %dx%d want 1x%d", i, r.Value.Rows, r.Value.Cols, c))
		}
		copy(val.Row(i), r.Value.Data)
		needs = needs || r.needs
	}
	n := &Node{Value: val, needs: needs}
	if needs {
		n.back = func(n *Node) {
			for i, r := range rows {
				if r.needs {
					vecmath.Add(r.Grad().Data, n.grad.Row(i))
				}
			}
		}
	}
	return t.add(n)
}

// SumAll returns the 1×1 sum of all elements of x.
func (t *Tape) SumAll(x *Node) *Node {
	val := tensor.FromSlice(1, 1, []float64{x.Value.Sum()})
	n := &Node{Value: val, needs: x.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := n.grad.Data[0]
			xg := x.Grad()
			for i := range xg.Data {
				xg.Data[i] += g
			}
		}
	}
	return t.add(n)
}

// SumSquares returns the 1×1 sum of squared elements of x.
func (t *Tape) SumSquares(x *Node) *Node {
	s := vecmath.SquaredL2(x.Value.Data)
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{s}), needs: x.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := n.grad.Data[0]
			xg := x.Grad()
			for i, v := range x.Value.Data {
				xg.Data[i] += 2 * g * v
			}
		}
	}
	return t.add(n)
}

// MeanRows returns the 1×cols column means of x.
func (t *Tape) MeanRows(x *Node) *Node {
	n := &Node{Value: tensor.MeanRows(x.Value), needs: x.needs}
	if n.needs {
		inv := 1 / float64(x.Value.Rows)
		n.back = func(n *Node) {
			xg := x.Grad()
			for i := 0; i < x.Value.Rows; i++ {
				vecmath.Axpy(xg.Row(i), inv, n.grad.Data)
			}
		}
	}
	return t.add(n)
}

// L2NormalizeRow returns x/‖x‖₂ for a 1×d node, with ε guarding zero input.
func (t *Tape) L2NormalizeRow(x *Node) *Node {
	if x.Value.Rows != 1 {
		panic("ag: L2NormalizeRow expects 1×d")
	}
	const eps = 1e-12
	norm := vecmath.Norm(x.Value.Data) + eps
	val := tensor.Scale(x.Value, 1/norm)
	n := &Node{Value: val, needs: x.needs}
	if n.needs {
		n.back = func(n *Node) {
			// d(x/‖x‖)/dx = (I − y·yᵀ)/‖x‖ where y = x/‖x‖
			dot := vecmath.Dot(n.grad.Data, val.Data)
			xg := x.Grad()
			for i := range xg.Data {
				xg.Data[i] += (n.grad.Data[i] - dot*val.Data[i]) / norm
			}
		}
	}
	return t.add(n)
}

// SqDist returns the 1×1 squared Euclidean distance ‖a−b‖² of two
// equal-shape nodes. Composite helper used by the EHNA loss and attention.
func (t *Tape) SqDist(a, b *Node) *Node {
	return t.SumSquares(t.Sub(a, b))
}

// Hinge returns max(0, margin + pos − neg) for 1×1 nodes pos and neg.
func (t *Tape) Hinge(margin float64, pos, neg *Node) *Node {
	return t.ReLU(t.AddConst(t.Sub(pos, neg), margin))
}

// Value returns the scalar value of a 1×1 node.
func Value(n *Node) float64 {
	if n.Value.Rows != 1 || n.Value.Cols != 1 {
		panic("ag: Value expects a 1×1 node")
	}
	return n.Value.Data[0]
}

// IsFinite reports whether every element of the node's value is finite.
func IsFinite(n *Node) bool {
	for _, v := range n.Value.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// RSqrt returns 1/√x element-wise. Inputs must be positive.
func (t *Tape) RSqrt(a *Node) *Node {
	val := tensor.Apply(a.Value, func(v float64) float64 { return 1 / math.Sqrt(v) })
	n := &Node{Value: val, needs: a.needs}
	if n.needs {
		n.back = func(n *Node) {
			g := a.Grad()
			for i, y := range val.Data {
				// d(1/√x)/dx = −½·x^(−3/2) = −½·y³
				g.Data[i] += n.grad.Data[i] * (-0.5 * y * y * y)
			}
		}
	}
	return t.add(n)
}

// RowBroadcastMul returns x with every row multiplied element-wise by the
// 1×cols node s: out[i,j] = x[i,j]·s[j].
func (t *Tape) RowBroadcastMul(x, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != x.Value.Cols {
		panic(fmt.Sprintf("ag: RowBroadcastMul s %dx%d for x %dx%d", s.Value.Rows, s.Value.Cols, x.Value.Rows, x.Value.Cols))
	}
	val := tensor.New(x.Value.Rows, x.Value.Cols)
	for i := 0; i < x.Value.Rows; i++ {
		xrow := x.Value.Row(i)
		vrow := val.Row(i)
		for j, v := range xrow {
			vrow[j] = v * s.Value.Data[j]
		}
	}
	n := &Node{Value: val, needs: needsAny(x, s)}
	if n.needs {
		n.back = func(n *Node) {
			for i := 0; i < x.Value.Rows; i++ {
				grow := n.grad.Row(i)
				if x.needs {
					xg := x.Grad().Row(i)
					for j, g := range grow {
						xg[j] += g * s.Value.Data[j]
					}
				}
				if s.needs {
					sg := s.Grad()
					xrow := x.Value.Row(i)
					for j, g := range grow {
						sg.Data[j] += g * xrow[j]
					}
				}
			}
		}
	}
	return t.add(n)
}

// ConcatScalars concatenates 1×1 nodes into a single 1×n row (used to
// assemble attention score vectors before SoftmaxRow).
func (t *Tape) ConcatScalars(scalars []*Node) *Node {
	if len(scalars) == 0 {
		panic("ag: ConcatScalars of zero nodes")
	}
	val := tensor.New(1, len(scalars))
	needs := false
	for i, s := range scalars {
		if s.Value.Rows != 1 || s.Value.Cols != 1 {
			panic(fmt.Sprintf("ag: ConcatScalars element %d is %dx%d", i, s.Value.Rows, s.Value.Cols))
		}
		val.Data[i] = s.Value.Data[0]
		needs = needs || s.needs
	}
	n := &Node{Value: val, needs: needs}
	if needs {
		n.back = func(n *Node) {
			for i, s := range scalars {
				if s.needs {
					s.Grad().Data[0] += n.grad.Data[i]
				}
			}
		}
	}
	return t.add(n)
}
