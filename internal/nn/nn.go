// Package nn provides neural-network building blocks on top of the ag
// autodiff tape: parameter registry, dense layers, a stacked LSTM, a
// normalization layer, an embedding table with sparse gradients, and the
// SGD/Adam optimizers with global-norm gradient clipping.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/ag"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Param is one trainable matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix // value
	G    *tensor.Matrix // accumulated gradient
}

// NewParam returns a parameter wrapping w with a zeroed gradient.
func NewParam(name string, w *tensor.Matrix) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Rows, w.Cols)}
}

// Node binds the parameter onto the tape so gradients flow into p.G.
func (p *Param) Node(tp *ag.Tape) *ag.Node { return tp.Leaf(p.W, p.G) }

// Params is a named collection of trainable parameters.
type Params struct {
	list []*Param
}

// Add registers params (in order) and returns the collection for chaining.
func (ps *Params) Add(params ...*Param) *Params {
	ps.list = append(ps.list, params...)
	return ps
}

// List returns the registered parameters in registration order.
func (ps *Params) List() []*Param { return ps.list }

// ZeroGrad clears every parameter gradient.
func (ps *Params) ZeroGrad() {
	for _, p := range ps.list {
		p.G.Zero()
	}
}

// GradNorm returns the global L2 norm across all parameter gradients.
func (ps *Params) GradNorm() float64 {
	var s float64
	for _, p := range ps.list {
		s += vecmath.SquaredL2(p.G.Data)
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global norm is at most max.
// It returns the pre-clip norm.
func (ps *Params) ClipGradNorm(max float64) float64 {
	norm := ps.GradNorm()
	if norm > max && norm > 0 {
		scale := max / norm
		for _, p := range ps.list {
			tensor.ScaleInPlace(p.G, scale)
		}
	}
	return norm
}

// Count returns the total number of scalar parameters.
func (ps *Params) Count() int {
	n := 0
	for _, p := range ps.list {
		n += len(p.W.Data)
	}
	return n
}

// XavierInit returns a rows×cols matrix with Glorot-uniform entries.
func XavierInit(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return tensor.Uniform(rows, cols, -limit, limit, rng)
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	W, B *Param
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		W: NewParam(name+".W", XavierInit(in, out, rng)),
		B: NewParam(name+".b", tensor.New(1, out)),
	}
}

// Register adds the layer's parameters to ps.
func (d *Dense) Register(ps *Params) { ps.Add(d.W, d.B) }

// Forward applies the layer to x (n×in) producing n×out.
func (d *Dense) Forward(tp *ag.Tape, x *ag.Node) *ag.Node {
	return tp.AddRowBroadcast(tp.MatMul(x, d.W.Node(tp)), d.B.Node(tp))
}

// LSTMCell is a single LSTM layer processing one timestep at a time.
// Gates follow the standard formulation:
//
//	i = σ(x·Wi + h·Ui + bi)    f = σ(x·Wf + h·Uf + bf)
//	o = σ(x·Wo + h·Uo + bo)    g = tanh(x·Wg + h·Ug + bg)
//	c' = f⊙c + i⊙g             h' = o⊙tanh(c')
type LSTMCell struct {
	In, Hidden int
	Wi, Ui, Bi *Param
	Wf, Uf, Bf *Param
	Wo, Uo, Bo *Param
	Wg, Ug, Bg *Param
}

// NewLSTMCell returns an LSTM cell with Xavier weights and forget-gate bias
// initialized to 1 (standard practice to ease gradient flow early on).
func NewLSTMCell(name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	mk := func(suffix string, r, c int) *Param {
		return NewParam(name+"."+suffix, XavierInit(r, c, rng))
	}
	cell := &LSTMCell{
		In: in, Hidden: hidden,
		Wi: mk("Wi", in, hidden), Ui: mk("Ui", hidden, hidden), Bi: NewParam(name+".bi", tensor.New(1, hidden)),
		Wf: mk("Wf", in, hidden), Uf: mk("Uf", hidden, hidden), Bf: NewParam(name+".bf", tensor.New(1, hidden)),
		Wo: mk("Wo", in, hidden), Uo: mk("Uo", hidden, hidden), Bo: NewParam(name+".bo", tensor.New(1, hidden)),
		Wg: mk("Wg", in, hidden), Ug: mk("Ug", hidden, hidden), Bg: NewParam(name+".bg", tensor.New(1, hidden)),
	}
	cell.Bf.W.Fill(1)
	return cell
}

// Register adds all gate parameters to ps.
func (c *LSTMCell) Register(ps *Params) {
	ps.Add(c.Wi, c.Ui, c.Bi, c.Wf, c.Uf, c.Bf, c.Wo, c.Uo, c.Bo, c.Wg, c.Ug, c.Bg)
}

// State is the (h, c) pair carried across timesteps.
type State struct {
	H, C *ag.Node
}

// InitState returns a zero state for batch size n on the tape.
func (c *LSTMCell) InitState(tp *ag.Tape, n int) State {
	return State{H: tp.Const(tensor.New(n, c.Hidden)), C: tp.Const(tensor.New(n, c.Hidden))}
}

// Weights records the cell's twelve gate parameters on the tape once,
// so a sequence of StepW calls shares the leaf nodes instead of
// re-binding every parameter at every timestep.
func (c *LSTMCell) Weights(tp *ag.Tape) ag.LSTMWeights {
	return ag.LSTMWeights{
		Wi: c.Wi.Node(tp), Ui: c.Ui.Node(tp), Bi: c.Bi.Node(tp),
		Wf: c.Wf.Node(tp), Uf: c.Uf.Node(tp), Bf: c.Bf.Node(tp),
		Wo: c.Wo.Node(tp), Uo: c.Uo.Node(tp), Bo: c.Bo.Node(tp),
		Wg: c.Wg.Node(tp), Ug: c.Ug.Node(tp), Bg: c.Bg.Node(tp),
	}
}

// Step advances the cell by one timestep with input x (n×in) through
// the fused ag.LSTMStep kernel.
func (c *LSTMCell) Step(tp *ag.Tape, x *ag.Node, s State) State {
	return c.StepW(tp, c.Weights(tp), x, s)
}

// StepW is Step with pre-bound weight nodes (see Weights); sequence
// loops use it to avoid re-recording the parameters each timestep.
func (c *LSTMCell) StepW(tp *ag.Tape, w ag.LSTMWeights, x *ag.Node, s State) State {
	hNew, cNew := tp.LSTMStep(w, x, s.H, s.C)
	return State{H: hNew, C: cNew}
}

// StackedLSTM is a multi-layer LSTM (the paper uses 2 layers). The input of
// layer k>0 is the hidden sequence of layer k−1; Forward returns the final
// hidden state of the top layer, summarizing the sequence.
type StackedLSTM struct {
	Cells []*LSTMCell
}

// NewStackedLSTM builds layers LSTM cells mapping in→hidden→…→hidden.
func NewStackedLSTM(name string, in, hidden, layers int, rng *rand.Rand) *StackedLSTM {
	if layers < 1 {
		panic(fmt.Sprintf("nn: StackedLSTM needs ≥1 layer, got %d", layers))
	}
	cells := make([]*LSTMCell, layers)
	for l := 0; l < layers; l++ {
		cin := in
		if l > 0 {
			cin = hidden
		}
		cells[l] = NewLSTMCell(fmt.Sprintf("%s.l%d", name, l), cin, hidden, rng)
	}
	return &StackedLSTM{Cells: cells}
}

// Register adds all layers' parameters to ps.
func (s *StackedLSTM) Register(ps *Params) {
	for _, c := range s.Cells {
		c.Register(ps)
	}
}

// Forward consumes seq (T×in, one row per timestep, batch size 1) and
// returns the top layer's final hidden state (1×hidden).
func (s *StackedLSTM) Forward(tp *ag.Tape, seq *ag.Node) *ag.Node {
	T := seq.Value.Rows
	if T == 0 {
		panic("nn: StackedLSTM on empty sequence")
	}
	inputs := make([]*ag.Node, T)
	for t := 0; t < T; t++ {
		inputs[t] = tp.Row(seq, t)
	}
	for _, cell := range s.Cells {
		w := cell.Weights(tp)
		st := cell.InitState(tp, 1)
		outs := make([]*ag.Node, T)
		for t := 0; t < T; t++ {
			st = cell.StepW(tp, w, inputs[t], st)
			outs[t] = st.H
		}
		inputs = outs
	}
	return inputs[T-1]
}

// Norm is a normalization layer with learned gain and bias. The paper
// applies batch normalization after each LSTM aggregator; because EHNA's
// aggregation graph has batch dimension 1 per target node, we normalize
// across features (layer normalization), which preserves the role of the
// paper's BN (re-centering/re-scaling with trainable affine) and is
// well-defined for single samples. Recorded as a substitution in DESIGN.md.
type Norm struct {
	Gain, Bias *Param
	eps        float64
}

// NewNorm returns a feature-normalization layer over dim features.
func NewNorm(name string, dim int) *Norm {
	g := tensor.New(1, dim)
	g.Fill(1)
	return &Norm{
		Gain: NewParam(name+".gain", g),
		Bias: NewParam(name+".bias", tensor.New(1, dim)),
		eps:  1e-5,
	}
}

// Register adds the layer's parameters to ps.
func (n *Norm) Register(ps *Params) { ps.Add(n.Gain, n.Bias) }

// Forward normalizes each row of x to zero mean and unit variance across
// features, then applies the learned affine transform, through the fused
// ag.LayerNorm kernel (one tape node instead of ~13 per row).
func (n *Norm) Forward(tp *ag.Tape, x *ag.Node) *ag.Node {
	return tp.LayerNorm(x, n.Gain.Node(tp), n.Bias.Node(tp), n.eps)
}

// Embedding is a |V|×d table with sparse gradient accumulation: only rows
// touched in the current step allocate gradient storage.
type Embedding struct {
	W     *tensor.Matrix
	grads map[int][]float64
}

// NewEmbedding returns a table initialized with N(0, 1/d) entries.
func NewEmbedding(n, d int, rng *rand.Rand) *Embedding {
	return &Embedding{
		W:     tensor.Randn(n, d, 1/math.Sqrt(float64(d)), rng),
		grads: make(map[int][]float64),
	}
}

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.W.Cols }

// Len returns the number of rows (vocabulary size).
func (e *Embedding) Len() int { return e.W.Rows }

// Lookup binds rows idx of the table onto the tape as a len(idx)×d node.
// Gradients are scattered into per-row accumulators.
func (e *Embedding) Lookup(tp *ag.Tape, idx []int) *ag.Node {
	v := tensor.New(len(idx), e.W.Cols)
	for i, id := range idx {
		copy(v.Row(i), e.W.Row(id))
	}
	return tp.LeafFunc(v, func(grad *tensor.Matrix) {
		for i, id := range idx {
			acc := e.grads[id]
			if acc == nil {
				acc = make([]float64, e.W.Cols)
				e.grads[id] = acc
			}
			vecmath.Add(acc, grad.Row(i))
		}
	})
}

// LookupOne binds a single row as a 1×d node.
func (e *Embedding) LookupOne(tp *ag.Tape, id int) *ag.Node {
	return e.Lookup(tp, []int{id})
}

// Step applies plain SGD to the touched rows and clears the accumulators.
func (e *Embedding) Step(lr float64) {
	for id, g := range e.grads {
		vecmath.Axpy(e.W.Row(id), -lr, g)
	}
	e.ZeroGrad()
}

// ZeroGrad discards all accumulated row gradients.
func (e *Embedding) ZeroGrad() {
	for k := range e.grads {
		delete(e.grads, k)
	}
}

// TouchedRows returns how many rows currently hold gradient (test hook).
func (e *Embedding) TouchedRows() int { return len(e.grads) }

// SGD is stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step updates all parameters in ps from their gradients.
func (o *SGD) Step(ps *Params) {
	for _, p := range ps.List() {
		vecmath.SgdStep(p.W.Data, p.G.Data, o.LR, o.WeightDecay)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns Adam with the canonical defaults and the given rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64)}
}

// Step updates all parameters in ps from their gradients.
func (o *Adam) Step(ps *Params) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range ps.List() {
		m := o.m[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.W.Data))
		}
		v := o.v[p]
		vecmath.AdamStep(p.W.Data, m, v, p.G.Data, o.LR, o.Beta1, o.Beta2, o.Eps, c1, c2)
	}
}

// Shadow returns a parameter sharing p's weights but owning a private
// gradient buffer. Worker replicas use shadows to accumulate gradients
// without data races; MergeGradsInto folds them back.
func (p *Param) Shadow() *Param {
	return &Param{Name: p.Name, W: p.W, G: tensor.New(p.W.Rows, p.W.Cols)}
}

// Shadow returns a layer view sharing weights with a private gradient.
func (d *Dense) Shadow() *Dense {
	return &Dense{W: d.W.Shadow(), B: d.B.Shadow()}
}

// Shadow returns a cell view sharing weights with private gradients.
func (c *LSTMCell) Shadow() *LSTMCell {
	return &LSTMCell{
		In: c.In, Hidden: c.Hidden,
		Wi: c.Wi.Shadow(), Ui: c.Ui.Shadow(), Bi: c.Bi.Shadow(),
		Wf: c.Wf.Shadow(), Uf: c.Uf.Shadow(), Bf: c.Bf.Shadow(),
		Wo: c.Wo.Shadow(), Uo: c.Uo.Shadow(), Bo: c.Bo.Shadow(),
		Wg: c.Wg.Shadow(), Ug: c.Ug.Shadow(), Bg: c.Bg.Shadow(),
	}
}

// Shadow returns a stacked-LSTM view sharing weights with private gradients.
func (s *StackedLSTM) Shadow() *StackedLSTM {
	cells := make([]*LSTMCell, len(s.Cells))
	for i, c := range s.Cells {
		cells[i] = c.Shadow()
	}
	return &StackedLSTM{Cells: cells}
}

// Shadow returns a normalization-layer view sharing weights with private
// gradients.
func (n *Norm) Shadow() *Norm {
	return &Norm{Gain: n.Gain.Shadow(), Bias: n.Bias.Shadow(), eps: n.eps}
}

// Shadow returns an embedding view sharing the table with a private
// sparse-gradient accumulator.
func (e *Embedding) Shadow() *Embedding {
	return &Embedding{W: e.W, grads: make(map[int][]float64)}
}

// MergeGradsInto adds e's accumulated row gradients into dst and clears e.
func (e *Embedding) MergeGradsInto(dst *Embedding) {
	for id, g := range e.grads {
		acc := dst.grads[id]
		if acc == nil {
			acc = make([]float64, dst.W.Cols)
			dst.grads[id] = acc
		}
		vecmath.Add(acc, g)
	}
	e.ZeroGrad()
}

// MergeGradsInto adds src's gradients into dst position-wise. Both
// collections must have been registered in the same order (shadow
// replicas preserve registration order by construction).
func MergeGradsInto(dst, src *Params) {
	if len(dst.list) != len(src.list) {
		panic(fmt.Sprintf("nn: MergeGradsInto size mismatch %d vs %d", len(dst.list), len(src.list)))
	}
	for i, p := range src.list {
		tensor.AddInPlace(dst.list[i].G, p.G)
	}
}
