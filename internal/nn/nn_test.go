package nn

import (
	"math"
	"math/rand"
	"testing"

	"ehna/internal/ag"
	"ehna/internal/tensor"
)

func TestParamNodeAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam("w", tensor.Randn(2, 2, 1, rng))
	tp := ag.New()
	n := p.Node(tp)
	tp.Backward(tp.SumSquares(n))
	for i, v := range p.W.Data {
		if math.Abs(p.G.Data[i]-2*v) > 1e-9 {
			t.Fatalf("grad elem %d: got %g want %g", i, p.G.Data[i], 2*v)
		}
	}
}

func TestParamsRegistryAndZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ps Params
	a := NewParam("a", tensor.Randn(2, 3, 1, rng))
	b := NewParam("b", tensor.Randn(1, 3, 1, rng))
	ps.Add(a, b)
	if len(ps.List()) != 2 || ps.Count() != 9 {
		t.Fatalf("registry: %d params count %d", len(ps.List()), ps.Count())
	}
	a.G.Fill(1)
	ps.ZeroGrad()
	if a.G.Sum() != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestClipGradNorm(t *testing.T) {
	var ps Params
	p := NewParam("p", tensor.New(1, 4))
	ps.Add(p)
	p.G.SetRow(0, []float64{3, 4, 0, 0}) // norm 5
	pre := ps.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g", pre)
	}
	if math.Abs(ps.GradNorm()-1) > 1e-9 {
		t.Fatalf("post-clip norm %g", ps.GradNorm())
	}
	// Norm below max must be untouched.
	p.G.SetRow(0, []float64{0.1, 0, 0, 0})
	ps.ClipGradNorm(1)
	if math.Abs(ps.GradNorm()-0.1) > 1e-12 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := XavierInit(10, 30, rng)
	limit := math.Sqrt(6.0 / 40.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %g outside ±%g", v, limit)
		}
	}
}

func TestDenseForwardShapeAndValue(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("fc", 3, 2, rng)
	d.B.W.SetRow(0, []float64{1, -1})
	tp := ag.New()
	x := tp.Const(tensor.FromSlice(1, 3, []float64{1, 0, 0}))
	y := d.Forward(tp, x)
	if y.Value.Rows != 1 || y.Value.Cols != 2 {
		t.Fatalf("shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
	want0 := d.W.W.At(0, 0) + 1
	if math.Abs(y.Value.At(0, 0)-want0) > 1e-12 {
		t.Fatalf("got %g want %g", y.Value.At(0, 0), want0)
	}
}

// finite-difference check through an entire layer's parameters.
func layerGradCheck(t *testing.T, ps *Params, forward func() float64) {
	t.Helper()
	ps.ZeroGrad()
	base := forward() // populates gradients via Backward inside
	_ = base
	const h = 1e-5
	for _, p := range ps.List() {
		for i := range p.W.Data {
			analytic := p.G.Data[i]
			orig := p.W.Data[i]
			ps2 := *ps // evaluation must not re-accumulate; we re-zero below
			_ = ps2
			p.W.Data[i] = orig + h
			gsave := cloneGrads(ps)
			fp := forward()
			restoreGrads(ps, gsave)
			p.W.Data[i] = orig - h
			gsave = cloneGrads(ps)
			fm := forward()
			restoreGrads(ps, gsave)
			p.W.Data[i] = orig
			num := (fp - fm) / (2 * h)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(analytic)))
			if math.Abs(num-analytic)/scale > 1e-3 {
				t.Fatalf("param %s elem %d: analytic %g numeric %g", p.Name, i, analytic, num)
			}
		}
	}
}

func cloneGrads(ps *Params) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(ps.List()))
	for i, p := range ps.List() {
		out[i] = p.G.Clone()
	}
	return out
}

func restoreGrads(ps *Params, saved []*tensor.Matrix) {
	for i, p := range ps.List() {
		copy(p.G.Data, saved[i].Data)
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense("fc", 3, 2, rng)
	var ps Params
	d.Register(&ps)
	x := tensor.Randn(2, 3, 1, rng)
	layerGradCheck(t, &ps, func() float64 {
		tp := ag.New()
		out := tp.SumSquares(d.Forward(tp, tp.Const(x)))
		tp.Backward(out)
		return ag.Value(out)
	})
}

func TestLSTMCellStepShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewLSTMCell("lstm", 4, 3, rng)
	tp := ag.New()
	st := c.InitState(tp, 1)
	x := tp.Const(tensor.Randn(1, 4, 1, rng))
	st = c.Step(tp, x, st)
	if st.H.Value.Cols != 3 || st.C.Value.Cols != 3 {
		t.Fatalf("state dims H %d C %d", st.H.Value.Cols, st.C.Value.Cols)
	}
	// Hidden values must lie in (−1, 1): o·tanh(c).
	for _, v := range st.H.Value.Data {
		if v <= -1 || v >= 1 {
			t.Fatalf("hidden out of range: %g", v)
		}
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewLSTMCell("lstm", 2, 2, rng)
	for _, v := range c.Bf.W.Data {
		if v != 1 {
			t.Fatal("forget bias must initialize to 1")
		}
	}
}

func TestLSTMCellGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewLSTMCell("lstm", 3, 2, rng)
	var ps Params
	c.Register(&ps)
	seq := tensor.Randn(3, 3, 1, rng)
	layerGradCheck(t, &ps, func() float64 {
		tp := ag.New()
		st := c.InitState(tp, 1)
		for i := 0; i < seq.Rows; i++ {
			row := tensor.New(1, seq.Cols)
			copy(row.Data, seq.Row(i))
			st = c.Step(tp, tp.Const(row), st)
		}
		out := tp.SumSquares(st.H)
		tp.Backward(out)
		return ag.Value(out)
	})
}

func TestStackedLSTMForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewStackedLSTM("s", 4, 3, 2, rng)
	if len(s.Cells) != 2 {
		t.Fatal("expected 2 layers")
	}
	if s.Cells[0].In != 4 || s.Cells[1].In != 3 {
		t.Fatalf("layer input dims %d %d", s.Cells[0].In, s.Cells[1].In)
	}
	tp := ag.New()
	seq := tp.Const(tensor.Randn(5, 4, 1, rng))
	h := s.Forward(tp, seq)
	if h.Value.Rows != 1 || h.Value.Cols != 3 {
		t.Fatalf("output %dx%d", h.Value.Rows, h.Value.Cols)
	}
}

func TestStackedLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := NewStackedLSTM("s", 2, 2, 2, rng)
	var ps Params
	s.Register(&ps)
	seq := tensor.Randn(3, 2, 1, rng)
	layerGradCheck(t, &ps, func() float64 {
		tp := ag.New()
		out := tp.SumSquares(s.Forward(tp, tp.Const(seq)))
		tp.Backward(out)
		return ag.Value(out)
	})
}

func TestStackedLSTMEmptySeqPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewStackedLSTM("s", 2, 2, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := ag.New()
	s.Forward(tp, tp.Const(tensor.New(0, 2)))
}

func TestStackedLSTMZeroLayersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStackedLSTM("s", 2, 2, 0, rand.New(rand.NewSource(12)))
}

func TestNormForwardStats(t *testing.T) {
	n := NewNorm("bn", 4)
	tp := ag.New()
	x := tp.Const(tensor.FromSlice(2, 4, []float64{1, 2, 3, 4, 10, 20, 30, 40}))
	y := n.Forward(tp, x)
	for i := 0; i < 2; i++ {
		row := y.Value.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= 4
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %g, want 0 (gain=1 bias=0)", i, mean)
		}
		var variance float64
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= 4
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance %g, want ~1", i, variance)
		}
	}
}

func TestNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := NewNorm("bn", 3)
	var ps Params
	n.Register(&ps)
	x := tensor.Randn(2, 3, 1, rng)
	layerGradCheck(t, &ps, func() float64 {
		tp := ag.New()
		out := tp.SumSquares(n.Forward(tp, tp.Const(x)))
		tp.Backward(out)
		return ag.Value(out)
	})
}

func TestEmbeddingLookupAndStep(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	e := NewEmbedding(10, 4, rng)
	if e.Len() != 10 || e.Dim() != 4 {
		t.Fatal("dims")
	}
	before := e.W.Clone()
	tp := ag.New()
	x := e.Lookup(tp, []int{2, 5, 2})
	tp.Backward(tp.SumSquares(x))
	if e.TouchedRows() != 2 {
		t.Fatalf("touched %d rows, want 2", e.TouchedRows())
	}
	e.Step(0.1)
	if e.TouchedRows() != 0 {
		t.Fatal("Step must clear accumulators")
	}
	// Row 2 was used twice: grad = 2*2*w; row 5 once: 2*w; row 0 untouched.
	for j := 0; j < 4; j++ {
		w := before.At(2, j)
		want := w - 0.1*4*w
		if math.Abs(e.W.At(2, j)-want) > 1e-9 {
			t.Fatalf("row2[%d]: got %g want %g", j, e.W.At(2, j), want)
		}
		if e.W.At(0, j) != before.At(0, j) {
			t.Fatal("untouched row must not change")
		}
	}
}

func TestSGDStepWithWeightDecay(t *testing.T) {
	p := NewParam("p", tensor.FromSlice(1, 2, []float64{1, -1}))
	var ps Params
	ps.Add(p)
	p.G.SetRow(0, []float64{0.5, 0.5})
	opt := &SGD{LR: 0.1, WeightDecay: 0.01}
	opt.Step(&ps)
	want0 := 1 - 0.1*(0.5+0.01*1)
	if math.Abs(p.W.At(0, 0)-want0) > 1e-12 {
		t.Fatalf("got %g want %g", p.W.At(0, 0), want0)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ‖w − target‖² — Adam should get close quickly.
	rng := rand.New(rand.NewSource(15))
	target := tensor.Randn(1, 5, 1, rng)
	p := NewParam("w", tensor.New(1, 5))
	var ps Params
	ps.Add(p)
	opt := NewAdam(0.05)
	for it := 0; it < 500; it++ {
		ps.ZeroGrad()
		tp := ag.New()
		w := p.Node(tp)
		loss := tp.SqDist(w, tp.Const(target))
		tp.Backward(loss)
		opt.Step(&ps)
	}
	if d := tensor.SqDistVec(p.W.Data, target.Data); d > 1e-3 {
		t.Fatalf("Adam did not converge: dist %g", d)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	target := tensor.Randn(1, 3, 1, rng)
	p := NewParam("w", tensor.New(1, 3))
	var ps Params
	ps.Add(p)
	opt := &SGD{LR: 0.1}
	for it := 0; it < 300; it++ {
		ps.ZeroGrad()
		tp := ag.New()
		loss := tp.SqDist(p.Node(tp), tp.Const(target))
		tp.Backward(loss)
		opt.Step(&ps)
	}
	if d := tensor.SqDistVec(p.W.Data, target.Data); d > 1e-6 {
		t.Fatalf("SGD did not converge: dist %g", d)
	}
}

func TestLSTMLearnsToSumSequence(t *testing.T) {
	// Integration: a 1-layer LSTM + dense head learns a simple sequence
	// regression (predict the sum of a short sequence) — verifies that all
	// pieces train together.
	rng := rand.New(rand.NewSource(17))
	lstm := NewStackedLSTM("lstm", 1, 8, 1, rng)
	head := NewDense("head", 8, 1, rng)
	var ps Params
	lstm.Register(&ps)
	head.Register(&ps)
	opt := NewAdam(0.01)

	sample := func() (*tensor.Matrix, float64) {
		T := 3
		seq := tensor.New(T, 1)
		var sum float64
		for i := 0; i < T; i++ {
			v := rng.Float64()*2 - 1
			seq.Set(i, 0, v)
			sum += v
		}
		return seq, sum
	}
	var lastLoss float64
	for it := 0; it < 400; it++ {
		seq, sum := sample()
		ps.ZeroGrad()
		tp := ag.New()
		h := lstm.Forward(tp, tp.Const(seq))
		pred := head.Forward(tp, h)
		loss := tp.SqDist(pred, tp.Const(tensor.FromSlice(1, 1, []float64{sum})))
		tp.Backward(loss)
		ps.ClipGradNorm(5)
		opt.Step(&ps)
		lastLoss = ag.Value(loss)
	}
	// Average the loss over fresh samples.
	var total float64
	for i := 0; i < 50; i++ {
		seq, sum := sample()
		tp := ag.New()
		pred := head.Forward(tp, lstm.Forward(tp, tp.Const(seq)))
		d := pred.Value.Data[0] - sum
		total += d * d
	}
	avg := total / 50
	if avg > 0.05 {
		t.Fatalf("LSTM failed to learn sequence sum: avg MSE %g (last train loss %g)", avg, lastLoss)
	}
}

func BenchmarkStackedLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewStackedLSTM("s", 64, 64, 2, rng)
	var ps Params
	s.Register(&ps)
	seq := tensor.Randn(10, 64, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ZeroGrad()
		tp := ag.New()
		out := tp.SumSquares(s.Forward(tp, tp.Const(seq)))
		tp.Backward(out)
	}
}

func TestParamShadowSharesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := NewParam("w", tensor.Randn(2, 3, 1, rng))
	s := p.Shadow()
	if s.W != p.W {
		t.Fatal("shadow must share the weight matrix")
	}
	if s.G == p.G {
		t.Fatal("shadow must own its gradient")
	}
	s.G.Fill(1)
	if p.G.Sum() != 0 {
		t.Fatal("shadow gradient leaked into the original")
	}
}

func TestMergeGradsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var main, shadow Params
	p := NewParam("w", tensor.Randn(2, 2, 1, rng))
	main.Add(p)
	sp := p.Shadow()
	shadow.Add(sp)
	p.G.Fill(1)
	sp.G.Fill(2)
	MergeGradsInto(&main, &shadow)
	for _, v := range p.G.Data {
		if v != 3 {
			t.Fatalf("merged gradient %g want 3", v)
		}
	}
}

func TestMergeGradsIntoSizeMismatchPanics(t *testing.T) {
	var a, b Params
	a.Add(NewParam("x", tensor.New(1, 1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeGradsInto(&a, &b)
}

func TestLayerShadowsProduceSameForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	lstm := NewStackedLSTM("s", 3, 3, 2, rng)
	shadow := lstm.Shadow()
	norm := NewNorm("n", 3)
	nshadow := norm.Shadow()
	dense := NewDense("d", 3, 2, rng)
	dshadow := dense.Shadow()
	seq := tensor.Randn(4, 3, 1, rng)

	tp1 := ag.New()
	out1 := dshadow.Forward(tp1, nshadow.Forward(tp1, shadow.Forward(tp1, tp1.Const(seq))))
	tp2 := ag.New()
	out2 := dense.Forward(tp2, norm.Forward(tp2, lstm.Forward(tp2, tp2.Const(seq))))
	if !tensor.Equal(out1.Value, out2.Value, 0) {
		t.Fatal("shadow layers must compute identical forward passes")
	}
}

func TestEmbeddingShadowAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := NewEmbedding(5, 3, rng)
	s := e.Shadow()
	if s.W != e.W {
		t.Fatal("embedding shadow must share the table")
	}
	tp := ag.New()
	x := s.Lookup(tp, []int{1, 3})
	tp.Backward(tp.SumSquares(x))
	if s.TouchedRows() != 2 || e.TouchedRows() != 0 {
		t.Fatalf("gradient isolation broken: shadow %d main %d", s.TouchedRows(), e.TouchedRows())
	}
	s.MergeGradsInto(e)
	if e.TouchedRows() != 2 || s.TouchedRows() != 0 {
		t.Fatalf("merge failed: shadow %d main %d", s.TouchedRows(), e.TouchedRows())
	}
}
