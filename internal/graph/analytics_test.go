package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshot(t *testing.T) {
	g := tiny(t)
	snap := g.Snapshot(2013)
	// Edges at 2011 (×2), 2012 (×2), 2013 (×1) = 5.
	if snap.NumEdges() != 5 {
		t.Fatalf("snapshot edges %d want 5", snap.NumEdges())
	}
	if snap.NumNodes() != g.NumNodes() {
		t.Fatal("snapshot must keep the node universe")
	}
	// Snapshot at -inf is empty, at +inf is everything.
	if g.Snapshot(2000).NumEdges() != 0 {
		t.Fatal("pre-history snapshot not empty")
	}
	if g.Snapshot(3000).NumEdges() != g.NumEdges() {
		t.Fatal("full snapshot incomplete")
	}
}

func TestSnapshots(t *testing.T) {
	g := tiny(t)
	snaps, err := g.Snapshots(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	// Cumulative: edge counts non-decreasing, last = all.
	for i := 1; i < 4; i++ {
		if snaps[i].NumEdges() < snaps[i-1].NumEdges() {
			t.Fatal("snapshots not cumulative")
		}
	}
	if snaps[3].NumEdges() != g.NumEdges() {
		t.Fatal("final snapshot incomplete")
	}
	if _, err := g.Snapshots(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	empty := NewTemporal(2)
	empty.Build()
	if _, err := empty.Snapshots(2); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewTemporal(6)
	_ = g.AddEdge(0, 1, 1, 1)
	_ = g.AddEdge(1, 2, 1, 2)
	_ = g.AddEdge(3, 4, 1, 3)
	g.Build() // components: {0,1,2}, {3,4}, {5}
	comp := g.ConnectedComponents()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first component split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatalf("second component wrong: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("isolated node merged: %v", comp)
	}
	if g.NumComponents() != 3 {
		t.Fatalf("NumComponents %d want 3", g.NumComponents())
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: coefficient 1 everywhere.
	tri := NewTemporal(3)
	_ = tri.AddEdge(0, 1, 1, 1)
	_ = tri.AddEdge(1, 2, 1, 2)
	_ = tri.AddEdge(0, 2, 1, 3)
	tri.Build()
	if c := tri.ClusteringCoefficient(0); c != 1 {
		t.Fatalf("triangle coefficient %g", c)
	}
	// Star center: 0.
	star := NewTemporal(4)
	_ = star.AddEdge(0, 1, 1, 1)
	_ = star.AddEdge(0, 2, 1, 2)
	_ = star.AddEdge(0, 3, 1, 3)
	star.Build()
	if c := star.ClusteringCoefficient(0); c != 0 {
		t.Fatalf("star coefficient %g", c)
	}
	// Leaf (single neighbor): 0 by convention.
	if c := star.ClusteringCoefficient(1); c != 0 {
		t.Fatalf("leaf coefficient %g", c)
	}
	// Parallel edges count once: duplicate the triangle edge.
	_ = tri.AddEdge(0, 1, 1, 4)
	tri.Build()
	if c := tri.ClusteringCoefficient(2); c != 1 {
		t.Fatalf("parallel-edge coefficient %g", c)
	}
}

func TestComputeTemporalStats(t *testing.T) {
	g := tiny(t)
	st, ok := g.ComputeTemporalStats()
	if !ok {
		t.Fatal("stats unavailable")
	}
	if st.MeanInterEvent <= 0 || st.MedianInterEvent < 0 {
		t.Fatalf("inter-event stats %+v", st)
	}
	// (1,3) repeats once among 12 edges.
	if math.Abs(st.RepeatEdgeFraction-1.0/12) > 1e-12 {
		t.Fatalf("repeat fraction %g", st.RepeatEdgeFraction)
	}
	if st.BurstRatio <= 0 || st.BurstRatio > 1 {
		t.Fatalf("burst ratio %g", st.BurstRatio)
	}
	small := NewTemporal(2)
	_ = small.AddEdge(0, 1, 1, 1)
	small.Build()
	if _, ok := small.ComputeTemporalStats(); ok {
		t.Fatal("single-edge graph must report not-ok")
	}
}

func TestBurstRatioDetectsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(burst bool) *Temporal {
		g := NewTemporal(50)
		for i := 0; i < 500; i++ {
			u, v := NodeID(rng.Intn(50)), NodeID(rng.Intn(50))
			if u == v {
				continue
			}
			tm := rng.Float64()
			if burst && rng.Float64() < 0.6 {
				tm = 0.9 + 0.1*rng.Float64()
			}
			_ = g.AddEdge(u, v, 1, tm)
		}
		g.Build()
		return g
	}
	su, _ := mk(false).ComputeTemporalStats()
	sb, _ := mk(true).ComputeTemporalStats()
	if sb.BurstRatio < 2*su.BurstRatio {
		t.Fatalf("burst %g vs uniform %g", sb.BurstRatio, su.BurstRatio)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewTemporal(4)
	_ = g.AddEdge(0, 1, 1, 1)
	_ = g.AddEdge(0, 2, 1, 2)
	g.Build() // degrees: 2,1,1,0
	h := g.DegreeHistogram()
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("histogram %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.NumNodes() {
		t.Fatal("histogram does not cover all nodes")
	}
}

func TestGiniDegree(t *testing.T) {
	// Regular ring: perfectly equal degrees → Gini 0.
	ring := NewTemporal(10)
	for i := 0; i < 10; i++ {
		_ = ring.AddEdge(NodeID(i), NodeID((i+1)%10), 1, float64(i))
	}
	ring.Build()
	if gi := ring.GiniDegree(); math.Abs(gi) > 1e-12 {
		t.Fatalf("ring Gini %g", gi)
	}
	// Star: one hub, many leaves → high inequality.
	star := NewTemporal(20)
	for i := 1; i < 20; i++ {
		_ = star.AddEdge(0, NodeID(i), 1, float64(i))
	}
	star.Build()
	if gi := star.GiniDegree(); gi < 0.4 {
		t.Fatalf("star Gini %g too low", gi)
	}
	empty := NewTemporal(3)
	empty.Build()
	if empty.GiniDegree() != 0 {
		t.Fatal("empty Gini must be 0")
	}
}

// Property: Snapshot(t) contains exactly the edges with Time ≤ t.
func TestPropertySnapshotFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := NewTemporal(n)
		for i := 0; i < 40; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			_ = g.AddEdge(u, v, 1, rng.Float64())
		}
		g.Build()
		cut := rng.Float64()
		snap := g.Snapshot(cut)
		want := 0
		for _, e := range g.Edges() {
			if e.Time <= cut {
				want++
			}
		}
		return snap.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: component labels are consistent with edge connectivity.
func TestPropertyComponentsRespectEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := NewTemporal(n)
		for i := 0; i < 20; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			_ = g.AddEdge(u, v, 1, rng.Float64())
		}
		g.Build()
		comp := g.ConnectedComponents()
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterEdgesAndWindow(t *testing.T) {
	g := tiny(t)
	// Drop everything involving node 1.
	filtered := g.FilterEdges(func(e Edge) bool { return e.U != 1 && e.V != 1 })
	if filtered.NumNodes() != g.NumNodes() {
		t.Fatal("node universe must be preserved")
	}
	for _, e := range filtered.Edges() {
		if e.U == 1 || e.V == 1 {
			t.Fatal("filtered edge survived")
		}
	}
	if filtered.Degree(1) != 0 {
		t.Fatal("node 1 should be isolated after filtering")
	}
	// Window keeps only mid-range years.
	win := g.Window(2013, 2016)
	for _, e := range win.Edges() {
		if e.Time < 2013 || e.Time > 2016 {
			t.Fatalf("edge at %g escaped window", e.Time)
		}
	}
	if win.NumEdges() != 5 {
		t.Fatalf("window edges %d want 5", win.NumEdges())
	}
}
