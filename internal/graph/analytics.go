package graph

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot returns the static graph of all edges with Time ≤ t as a new
// built Temporal graph (the snapshot view used by the segment-based
// dynamic embedding methods the paper compares against, Section II).
func (g *Temporal) Snapshot(t float64) *Temporal {
	g.mustBuilt()
	out := NewTemporal(g.n)
	for _, e := range g.edges {
		if e.Time > t {
			break // edges are time-sorted
		}
		out.edges = append(out.edges, e)
	}
	out.Build()
	return out
}

// Snapshots partitions the time span into k equal windows and returns the
// cumulative snapshot at the end of each window.
func (g *Temporal) Snapshots(k int) ([]*Temporal, error) {
	g.mustBuilt()
	if k < 1 {
		return nil, fmt.Errorf("graph: need ≥ 1 snapshot, got %d", k)
	}
	lo, hi, ok := g.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("graph: empty graph has no snapshots")
	}
	out := make([]*Temporal, k)
	for i := 1; i <= k; i++ {
		cut := lo + (hi-lo)*float64(i)/float64(k)
		out[i-1] = g.Snapshot(cut)
	}
	return out, nil
}

// ConnectedComponents labels every node with a component id (0-based,
// ordered by first appearance) ignoring edge times. Isolated nodes get
// their own components.
func (g *Temporal) ConnectedComponents() []int {
	g.mustBuilt()
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	stack := make([]NodeID, 0, 64)
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = next
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, he := range g.adj[u] {
				if comp[he.To] == -1 {
					comp[he.To] = next
					stack = append(stack, he.To)
				}
			}
		}
		next++
	}
	return comp
}

// NumComponents returns the number of connected components.
func (g *Temporal) NumComponents() int {
	comp := g.ConnectedComponents()
	max := -1
	for _, c := range comp {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// ClusteringCoefficient returns the local clustering coefficient of u:
// the fraction of pairs of distinct neighbors that are themselves linked.
// Parallel edges count once. Nodes with < 2 distinct neighbors return 0.
func (g *Temporal) ClusteringCoefficient(u NodeID) float64 {
	g.mustBuilt()
	seen := make(map[NodeID]bool)
	for _, he := range g.adj[u] {
		seen[he.To] = true
	}
	nbrs := make([]NodeID, 0, len(seen))
	for v := range seen {
		nbrs = append(nbrs, v)
	}
	if len(nbrs) < 2 {
		return 0
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	links := 0
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(len(nbrs)) * float64(len(nbrs)-1))
}

// TemporalStats summarizes the temporal texture of the network.
type TemporalStats struct {
	// MeanInterEvent is the average gap between consecutive events on the
	// same node, over nodes with ≥ 2 events.
	MeanInterEvent float64
	// MedianInterEvent is the median of the same gaps.
	MedianInterEvent float64
	// BurstRatio is the fraction of all edges falling in the busiest
	// tenth of the time span (≈ 0.1 for a uniform process; ≫ 0.1 for
	// bursty datasets like Tmall's shopping day).
	BurstRatio float64
	// RepeatEdgeFraction is the fraction of edges whose node pair already
	// interacted earlier.
	RepeatEdgeFraction float64
}

// ComputeTemporalStats computes TemporalStats; ok is false for graphs with
// fewer than 2 edges.
func (g *Temporal) ComputeTemporalStats() (TemporalStats, bool) {
	g.mustBuilt()
	if len(g.edges) < 2 {
		return TemporalStats{}, false
	}
	var gaps []float64
	for v := 0; v < g.n; v++ {
		adj := g.adj[v]
		for i := 1; i < len(adj); i++ {
			gaps = append(gaps, adj[i].Time-adj[i-1].Time)
		}
	}
	var st TemporalStats
	if len(gaps) > 0 {
		sort.Float64s(gaps)
		var sum float64
		for _, gp := range gaps {
			sum += gp
		}
		st.MeanInterEvent = sum / float64(len(gaps))
		st.MedianInterEvent = gaps[len(gaps)/2]
	}
	lo, hi, _ := g.TimeSpan()
	span := hi - lo
	if span == 0 {
		st.BurstRatio = 1
	} else {
		bins := make([]int, 10)
		for _, e := range g.edges {
			b := int((e.Time - lo) / span * 10)
			if b == 10 {
				b = 9
			}
			bins[b]++
		}
		busiest := 0
		for _, c := range bins {
			if c > busiest {
				busiest = c
			}
		}
		st.BurstRatio = float64(busiest) / float64(len(g.edges))
	}
	seen := make(map[uint64]bool, len(g.edges))
	repeats := 0
	for _, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			repeats++
		}
		seen[key] = true
	}
	st.RepeatEdgeFraction = float64(repeats) / float64(len(g.edges))
	return st, true
}

// DegreeHistogram returns counts[d] = number of nodes with exactly d
// incident temporal edges, up to the max degree.
func (g *Temporal) DegreeHistogram() []int {
	g.mustBuilt()
	max := 0
	for i := range g.adj {
		if len(g.adj[i]) > max {
			max = len(g.adj[i])
		}
	}
	counts := make([]int, max+1)
	for i := range g.adj {
		counts[len(g.adj[i])]++
	}
	return counts
}

// GiniDegree returns the Gini coefficient of the degree distribution, a
// scale-free-ness proxy in [0, 1).
func (g *Temporal) GiniDegree() float64 {
	g.mustBuilt()
	degs := make([]float64, g.n)
	var total float64
	for i := range g.adj {
		degs[i] = float64(len(g.adj[i]))
		total += degs[i]
	}
	if total == 0 || g.n < 2 {
		return 0
	}
	sort.Float64s(degs)
	var cum float64
	for i, d := range degs {
		cum += d * float64(2*(i+1)-g.n-1)
	}
	return math.Abs(cum) / (float64(g.n) * total)
}
