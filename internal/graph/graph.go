// Package graph implements the temporal network data structure of the EHNA
// paper (Definition 1): a graph whose every edge carries the timestamp of
// its formation. Adjacency lists are kept sorted by timestamp so historical
// neighborhoods ("edges formed before t") are binary-searchable.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// NodeID is a dense node identifier in [0, NumNodes).
type NodeID = uint32

// Edge is one temporal edge (u, v) formed at Time with weight Weight.
type Edge struct {
	U, V   NodeID
	Weight float64
	Time   float64
}

// HalfEdge is one directed adjacency entry: the neighbor, the edge weight
// and the formation timestamp.
type HalfEdge struct {
	To     NodeID
	Weight float64
	Time   float64
}

// Temporal is an undirected temporal network. Edges are stored twice (one
// HalfEdge per direction); per-node adjacency is sorted by ascending Time,
// ties broken by neighbor id for determinism.
type Temporal struct {
	n     int
	adj   [][]HalfEdge
	edges []Edge // sorted by (Time, U, V)
	built bool
}

// NewTemporal returns an empty temporal graph over n nodes.
func NewTemporal(n int) *Temporal {
	return &Temporal{n: n, adj: make([][]HalfEdge, n)}
}

// NumNodes returns the number of nodes.
func (g *Temporal) NumNodes() int { return g.n }

// NumEdges returns the number of (undirected) temporal edges.
func (g *Temporal) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected temporal edge. Self-loops are rejected.
// Parallel edges with distinct timestamps are allowed (e.g. repeated
// co-authorships). Call Build before querying.
func (g *Temporal) AddEdge(u, v NodeID, weight, time float64) error {
	if int(u) >= g.n || int(v) >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d rejected", u)
	}
	if weight <= 0 {
		return fmt.Errorf("graph: non-positive weight %g on edge (%d,%d)", weight, u, v)
	}
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: weight, Time: time})
	g.built = false
	return nil
}

// Build finalizes the graph: sorts the edge list chronologically and the
// adjacency lists by time. Must be called after the last AddEdge and before
// any query; queries on an unbuilt graph panic.
func (g *Temporal) Build() {
	sort.Slice(g.edges, func(i, j int) bool {
		a, b := g.edges[i], g.edges[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], HalfEdge{To: e.V, Weight: e.Weight, Time: e.Time})
		g.adj[e.V] = append(g.adj[e.V], HalfEdge{To: e.U, Weight: e.Weight, Time: e.Time})
	}
	for i := range g.adj {
		a := g.adj[i]
		sort.Slice(a, func(x, y int) bool {
			if a[x].Time != a[y].Time {
				return a[x].Time < a[y].Time
			}
			return a[x].To < a[y].To
		})
	}
	g.built = true
}

func (g *Temporal) mustBuilt() {
	if !g.built {
		panic("graph: query before Build()")
	}
}

// Neighbors returns the full time-sorted adjacency of u (shared slice; do
// not mutate).
func (g *Temporal) Neighbors(u NodeID) []HalfEdge {
	g.mustBuilt()
	return g.adj[u]
}

// NeighborsBefore returns the adjacency entries of u with Time ≤ t
// (historical neighborhood at time t). The returned slice aliases internal
// storage.
func (g *Temporal) NeighborsBefore(u NodeID, t float64) []HalfEdge {
	g.mustBuilt()
	a := g.adj[u]
	hi := sort.Search(len(a), func(i int) bool { return a[i].Time > t })
	return a[:hi]
}

// Degree returns the number of adjacency entries of u.
func (g *Temporal) Degree(u NodeID) int {
	g.mustBuilt()
	return len(g.adj[u])
}

// DegreeBefore returns the number of adjacency entries of u with Time ≤ t.
func (g *Temporal) DegreeBefore(u NodeID, t float64) int {
	return len(g.NeighborsBefore(u, t))
}

// HasEdge reports whether any temporal edge connects u and v.
func (g *Temporal) HasEdge(u, v NodeID) bool {
	g.mustBuilt()
	a, target := g.adj[u], v
	if len(g.adj[v]) < len(a) {
		a, target = g.adj[v], u
	}
	for _, he := range a {
		if he.To == target {
			return true
		}
	}
	return false
}

// HasEdgeBefore reports whether an edge between u and v exists with Time ≤ t.
func (g *Temporal) HasEdgeBefore(u, v NodeID, t float64) bool {
	for _, he := range g.NeighborsBefore(u, t) {
		if he.To == v {
			return true
		}
	}
	return false
}

// Edges returns the chronologically sorted edge list (shared slice; do not
// mutate).
func (g *Temporal) Edges() []Edge {
	g.mustBuilt()
	return g.edges
}

// TimeSpan returns the earliest and latest edge timestamps. ok is false for
// an empty graph.
func (g *Temporal) TimeSpan() (minT, maxT float64, ok bool) {
	g.mustBuilt()
	if len(g.edges) == 0 {
		return 0, 0, false
	}
	return g.edges[0].Time, g.edges[len(g.edges)-1].Time, true
}

// NormalizeTimes rescales all timestamps linearly onto [0, 1]. The temporal
// random walk's exponential decay kernel exp(−(t_target − t_edge)) is only
// meaningful on a bounded scale; the paper's datasets span years while e.g.
// UNIX timestamps span ~1e9 seconds, so a common rescaling is required.
func (g *Temporal) NormalizeTimes() {
	g.mustBuilt()
	lo, hi, ok := g.TimeSpan()
	if !ok || hi == lo {
		return
	}
	span := hi - lo
	for i := range g.edges {
		g.edges[i].Time = (g.edges[i].Time - lo) / span
	}
	for _, a := range g.adj {
		for i := range a {
			a[i].Time = (a[i].Time - lo) / span
		}
	}
}

// Clone returns a deep copy of the graph (built iff g is built).
func (g *Temporal) Clone() *Temporal {
	c := NewTemporal(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	if g.built {
		c.Build()
	}
	return c
}

// SplitByTime partitions the chronologically sorted edges into a training
// graph holding the earliest (1−testFrac) fraction and the held-out most
// recent edges — the link-prediction protocol of Section V-E ("we remove
// 20% of the most recent edges in a graph, and use them for prediction").
// The training graph is built; held-out edges are returned chronologically.
func (g *Temporal) SplitByTime(testFrac float64) (train *Temporal, heldOut []Edge, err error) {
	g.mustBuilt()
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("graph: testFrac %g outside (0,1)", testFrac)
	}
	cut := int(float64(len(g.edges)) * (1 - testFrac))
	if cut == 0 || cut == len(g.edges) {
		return nil, nil, fmt.Errorf("graph: split leaves an empty side (%d edges, frac %g)", len(g.edges), testFrac)
	}
	train = NewTemporal(g.n)
	train.edges = append([]Edge(nil), g.edges[:cut]...)
	train.Build()
	heldOut = append([]Edge(nil), g.edges[cut:]...)
	return train, heldOut, nil
}

// WriteTSV writes the edge list as "u\tv\tweight\ttime" lines.
func (g *Temporal) WriteTSV(w io.Writer) error {
	g.mustBuilt()
	bw := bufio.NewWriter(w)
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\t%g\n", e.U, e.V, e.Weight, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses an edge list of "u\tv\tweight\ttime" (or "u\tv\ttime",
// weight defaulting to 1) lines. Node ids must be dense; the graph is sized
// by the largest id seen. Blank lines and lines starting with '#' are
// skipped. The returned graph is built.
func ReadTSV(r io.Reader) (*Temporal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	type rawEdge struct {
		u, v NodeID
		w, t float64
	}
	var raw []rawEdge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("graph: line %d: want 3 or 4 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		ti := 2
		if len(fields) == 4 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			ti = 3
		}
		t, err := strconv.ParseFloat(fields[ti], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad timestamp %q: %v", lineNo, fields[ti], err)
		}
		raw = append(raw, rawEdge{u: NodeID(u), v: NodeID(v), w: w, t: t})
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	g := NewTemporal(maxID + 1)
	for i, e := range raw {
		if err := g.AddEdge(e.u, e.v, e.w, e.t); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %v", i, err)
		}
	}
	g.Build()
	return g, nil
}

// Stats summarizes a temporal graph for logging.
type Stats struct {
	Nodes, Edges     int
	MinTime, MaxTime float64
	MaxDegree        int
	MeanDegree       float64
}

// ComputeStats returns summary statistics of g.
func (g *Temporal) ComputeStats() Stats {
	g.mustBuilt()
	s := Stats{Nodes: g.n, Edges: len(g.edges)}
	s.MinTime, s.MaxTime, _ = g.TimeSpan()
	total := 0
	for i := range g.adj {
		d := len(g.adj[i])
		total += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if g.n > 0 {
		s.MeanDegree = float64(total) / float64(g.n)
	}
	return s
}

// FilterEdges returns a new built graph over the same node universe
// containing only the edges for which keep returns true. This supports
// networks with edge removal (e.g. routing tables) and sliding-window
// truncation of old history.
func (g *Temporal) FilterEdges(keep func(Edge) bool) *Temporal {
	g.mustBuilt()
	out := NewTemporal(g.n)
	for _, e := range g.edges {
		if keep(e) {
			out.edges = append(out.edges, e)
		}
	}
	out.Build()
	return out
}

// Window returns the subgraph of edges with lo ≤ Time ≤ hi, the sliding-
// window view used when old interactions should stop influencing walks.
func (g *Temporal) Window(lo, hi float64) *Temporal {
	return g.FilterEdges(func(e Edge) bool { return e.Time >= lo && e.Time <= hi })
}
