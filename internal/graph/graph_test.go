package graph

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// tiny builds the 8-node co-author network of the paper's Figure 1.
func tiny(t *testing.T) *Temporal {
	t.Helper()
	g := NewTemporal(9) // ids 0..8; node 0 unused so ids match the figure
	edges := []struct {
		u, v NodeID
		t    float64
	}{
		{1, 2, 2011}, {1, 3, 2011}, {2, 3, 2012}, {1, 3, 2012},
		{1, 4, 2013}, {4, 5, 2014}, {1, 5, 2015}, {5, 8, 2016},
		{1, 6, 2016}, {6, 7, 2017}, {8, 7, 2017}, {1, 7, 2018},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, 1, e.t); err != nil {
			t.Fatal(err)
		}
	}
	g.Build()
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewTemporal(3)
	if err := g.AddEdge(0, 3, 1, 0); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(1, 1, 1, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 1, 0, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.AddEdge(0, 1, -1, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, 1, 5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestQueryBeforeBuildPanics(t *testing.T) {
	g := NewTemporal(2)
	_ = g.AddEdge(0, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Neighbors(0)
}

func TestEdgesSortedChronologically(t *testing.T) {
	g := tiny(t)
	es := g.Edges()
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Time < es[j].Time }) {
		t.Fatal("edges not time-sorted")
	}
	if es[0].Time != 2011 || es[len(es)-1].Time != 2018 {
		t.Fatalf("span %g..%g", es[0].Time, es[len(es)-1].Time)
	}
}

func TestAdjacencySortedAndComplete(t *testing.T) {
	g := tiny(t)
	adj := g.Neighbors(1)
	if len(adj) != 7 { // node 1 has 7 incident temporal edges
		t.Fatalf("node 1 degree %d want 7", len(adj))
	}
	for i := 1; i < len(adj); i++ {
		if adj[i].Time < adj[i-1].Time {
			t.Fatal("adjacency not time-sorted")
		}
	}
}

func TestNeighborsBefore(t *testing.T) {
	g := tiny(t)
	// At time 2012, node 1 had interacted with nodes 2 and 3 only.
	hist := g.NeighborsBefore(1, 2012)
	seen := map[NodeID]bool{}
	for _, he := range hist {
		seen[he.To] = true
		if he.Time > 2012 {
			t.Fatalf("edge at %g leaked into history", he.Time)
		}
	}
	if !seen[2] || !seen[3] || len(seen) != 2 {
		t.Fatalf("history at 2012: %v", seen)
	}
	// Boundary inclusivity: time == t is included.
	if g.DegreeBefore(1, 2011) != 2 {
		t.Fatalf("DegreeBefore(1,2011) = %d want 2", g.DegreeBefore(1, 2011))
	}
	if g.DegreeBefore(1, 2010) != 0 {
		t.Fatal("no history expected before 2011")
	}
}

func TestHasEdge(t *testing.T) {
	g := tiny(t)
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{1, 2, true}, {2, 1, true}, {1, 8, false}, {5, 8, true}, {3, 7, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Fatalf("HasEdge(%d,%d) = %v want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestHasEdgeBefore(t *testing.T) {
	g := tiny(t)
	if g.HasEdgeBefore(1, 7, 2017) {
		t.Fatal("edge (1,7) formed in 2018")
	}
	if !g.HasEdgeBefore(1, 7, 2018) {
		t.Fatal("edge (1,7) exists at 2018")
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := tiny(t)
	// (1,3) appears at 2011 and 2012.
	count := 0
	for _, he := range g.Neighbors(1) {
		if he.To == 3 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("parallel (1,3) edges: %d want 2", count)
	}
}

func TestTimeSpanAndStats(t *testing.T) {
	g := tiny(t)
	lo, hi, ok := g.TimeSpan()
	if !ok || lo != 2011 || hi != 2018 {
		t.Fatalf("TimeSpan %g..%g ok=%v", lo, hi, ok)
	}
	s := g.ComputeStats()
	if s.Nodes != 9 || s.Edges != 12 || s.MaxDegree != 7 {
		t.Fatalf("stats %+v", s)
	}
	empty := NewTemporal(3)
	empty.Build()
	if _, _, ok := empty.TimeSpan(); ok {
		t.Fatal("empty graph must report no span")
	}
}

func TestNormalizeTimes(t *testing.T) {
	g := tiny(t)
	g.NormalizeTimes()
	lo, hi, _ := g.TimeSpan()
	if lo != 0 || hi != 1 {
		t.Fatalf("normalized span %g..%g", lo, hi)
	}
	// Adjacency must be rescaled consistently with the edge list.
	for _, he := range g.Neighbors(1) {
		if he.Time < 0 || he.Time > 1 {
			t.Fatalf("adjacency time %g outside [0,1]", he.Time)
		}
	}
	// Relative order preserved.
	es := g.Edges()
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Time < es[j].Time }) {
		t.Fatal("order broken by normalization")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := tiny(t)
	c := g.Clone()
	if c.NumEdges() != g.NumEdges() || c.NumNodes() != g.NumNodes() {
		t.Fatal("clone size mismatch")
	}
	_ = c.AddEdge(1, 8, 1, 2020)
	c.Build()
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares edge storage")
	}
}

func TestSplitByTime(t *testing.T) {
	g := tiny(t)
	train, held, err := g.SplitByTime(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumEdges() != 9 || len(held) != 3 {
		t.Fatalf("split sizes: train %d held %d", train.NumEdges(), len(held))
	}
	// Every held-out edge must be at least as recent as every training edge.
	maxTrain := train.Edges()[train.NumEdges()-1].Time
	for _, e := range held {
		if e.Time < maxTrain {
			t.Fatalf("held-out edge at %g predates training max %g", e.Time, maxTrain)
		}
	}
}

func TestSplitByTimeErrors(t *testing.T) {
	g := tiny(t)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := g.SplitByTime(frac); err == nil {
			t.Fatalf("frac %g accepted", frac)
		}
	}
	small := NewTemporal(2)
	_ = small.AddEdge(0, 1, 1, 0)
	small.Build()
	if _, _, err := small.SplitByTime(0.0001); err == nil {
		t.Fatal("degenerate split accepted")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := tiny(t)
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip edges %d want %d", g2.NumEdges(), g.NumEdges())
	}
	for i, e := range g2.Edges() {
		o := g.Edges()[i]
		if e != o {
			t.Fatalf("edge %d: %+v != %+v", i, e, o)
		}
	}
}

func TestReadTSVThreeColumn(t *testing.T) {
	g, err := ReadTSV(strings.NewReader("0 1 5.5\n# comment\n\n1 2 6.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("%d edges %d nodes", g.NumEdges(), g.NumNodes())
	}
	if g.Edges()[0].Weight != 1 {
		t.Fatal("default weight must be 1")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"0\n",         // too few fields
		"0 1 2 3 4\n", // too many fields
		"x 1 2\n",     // bad source
		"0 y 2\n",     // bad target
		"0 1 z\n",     // bad time
		"0 1 bad 2\n", // bad weight
		"0 0 1 2\n",   // self loop
		"0 1 -1 2\n",  // negative weight
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("disk on fire") }

func TestReadTSVIOError(t *testing.T) {
	if _, err := ReadTSV(io.Reader(failingReader{})); err == nil {
		t.Fatal("reader error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("quota exceeded") }

func TestWriteTSVIOError(t *testing.T) {
	g := tiny(t)
	if err := g.WriteTSV(failingWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

// Property: for random graphs, NeighborsBefore(u, t) returns exactly the
// adjacency entries with Time ≤ t, and degree equals edge incidence.
func TestPropertyNeighborsBefore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := NewTemporal(n)
		m := rng.Intn(60)
		type key struct {
			u, v NodeID
			t    float64
		}
		all := make([]key, 0, m)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			tm := rng.Float64() * 100
			if err := g.AddEdge(u, v, 1, tm); err != nil {
				return false
			}
			all = append(all, key{u, v, tm})
		}
		g.Build()
		cut := rng.Float64() * 100
		for node := 0; node < n; node++ {
			want := 0
			for _, k := range all {
				if (k.u == NodeID(node) || k.v == NodeID(node)) && k.t <= cut {
					want++
				}
			}
			if got := g.DegreeBefore(NodeID(node), cut); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitByTime partitions edges without loss or duplication.
func TestPropertySplitPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := NewTemporal(n)
		for i := 0; i < 30; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			_ = g.AddEdge(u, v, 1, rng.Float64())
		}
		g.Build()
		if g.NumEdges() < 4 {
			return true
		}
		train, held, err := g.SplitByTime(0.3)
		if err != nil {
			return false
		}
		return train.NumEdges()+len(held) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNeighborsBefore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	g := NewTemporal(n)
	for i := 0; i < 20000; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, 1, rng.Float64())
	}
	g.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NeighborsBefore(NodeID(i%n), 0.5)
	}
}
