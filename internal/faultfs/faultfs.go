// Package faultfs is an injectable filesystem seam for crash and
// fault-tolerance testing. Code that persists state (the WAL) takes a
// faultfs.FS instead of calling the os package directly; production
// wires in OS(), tests and chaos drills wire in an Injector that makes
// chosen operations fail — I/O errors, ENOSPC short writes, torn
// writes, slow fsyncs — on deterministic (after N calls, for M calls)
// or probabilistic (probability p, seeded) triggers.
//
// Injectors are configured either programmatically (New + Add) or from
// a compact spec string (Parse), so the daemon can accept a -fault
// flag and a shell-driven chaos drill can inject faults into a real
// process:
//
//	sync:after=100,count=3,err=eio     // fsyncs 101-103 fail with EIO
//	write:after=50,err=enospc          // every write after the 50th is ENOSPC
//	write:p=0.01,seed=7,err=eio,torn   // 1% of writes land half, then EIO
//	sync:sleep=250ms                   // every fsync stalls 250ms
//
// Multiple clauses are joined with ';'. A count-limited rule clears
// itself after firing count times — the "fault clears" half of a
// recovery drill.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names one class of filesystem operation a rule can match.
type Op string

const (
	OpOpen   Op = "open"   // OpenFile / Open
	OpRead   Op = "read"   // File.Read
	OpWrite  Op = "write"  // File.Write
	OpSync   Op = "sync"   // File.Sync (files and directories)
	OpRemove Op = "remove" // Remove
	OpMkdir  Op = "mkdir"  // MkdirAll
	OpRename Op = "rename" // Rename
)

// File is the subset of *os.File the WAL needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem surface the WAL persists through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
}

// osFS passes everything straight to the os package.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Rule describes one fault: which operations it matches and when it
// fires. Exactly one of the deterministic (After/Count) or
// probabilistic (P/Seed) triggers is active per rule; P > 0 selects
// probabilistic.
type Rule struct {
	// Op is the operation class the rule matches.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string
	// After skips the first After matching calls before the rule can fire.
	After uint64
	// Count limits how many times the rule fires before clearing itself;
	// 0 means it fires on every matching call forever.
	Count uint64
	// P, when > 0, fires the rule on each matching call with probability
	// P using a generator seeded with Seed (deterministic across runs).
	P    float64
	Seed int64
	// Err is the error injected when the rule fires (default EIO).
	Err error
	// Torn makes a fired write land half its bytes before returning Err,
	// simulating a torn write at a non-frame boundary.
	Torn bool
	// Sleep, when set, delays the operation instead of failing it (Err is
	// ignored); models a stalling disk rather than a broken one.
	Sleep time.Duration
}

// rule is a Rule plus firing state.
type rule struct {
	Rule
	calls uint64
	fired uint64
	rng   *rand.Rand
}

// Injector wraps a base FS and injects faults per its rules. Safe for
// concurrent use. Rules can be added and cleared at runtime, so an
// in-process drill can break the disk mid-stream and later heal it.
type Injector struct {
	base FS

	mu       sync.Mutex
	rules    []*rule
	injected uint64
}

// New returns an Injector over base (OS() when nil) with no rules.
func New(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{base: base}
}

// Add installs a rule.
func (in *Injector) Add(r Rule) {
	if r.Err == nil {
		r.Err = syscall.EIO
	}
	st := &rule{Rule: r}
	if r.P > 0 {
		st.rng = rand.New(rand.NewSource(r.Seed))
	}
	in.mu.Lock()
	in.rules = append(in.rules, st)
	in.mu.Unlock()
}

// Clear removes every rule: the fault is repaired.
func (in *Injector) Clear() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Injected reports how many operations have had a fault injected.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// check decides whether op on path should fault. It returns the
// matched rule when the fault fires.
func (in *Injector) check(op Op, path string) *rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.calls++
		if r.P > 0 {
			if r.rng.Float64() >= r.P {
				continue
			}
		} else {
			if r.calls <= r.After {
				continue
			}
			if r.Count > 0 && r.fired >= r.Count {
				continue
			}
		}
		r.fired++
		in.injected++
		return r
	}
	return nil
}

// fault applies a fired rule: sleep rules delay and pass, error rules
// return the injected error.
func fault(r *rule) error {
	if r == nil {
		return nil
	}
	if r.Sleep > 0 {
		time.Sleep(r.Sleep)
		return nil
	}
	return r.Err
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := fault(in.check(OpOpen, name)); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := fault(in.check(OpOpen, name)); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err := fault(in.check(OpRead, name)); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Remove(name string) error {
	if err := fault(in.check(OpRemove, name)); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.base.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := fault(in.check(OpMkdir, path)); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	// Matched against the destination: that's the name the atomic
	// tmp+rename publish pattern cares about.
	if err := fault(in.check(OpRename, newpath)); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return in.base.Rename(oldpath, newpath)
}

// injFile routes per-file operations back through the injector.
type injFile struct {
	f  File
	in *Injector
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := fault(f.in.check(OpRead, f.f.Name())); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if r := f.in.check(OpWrite, f.f.Name()); r != nil {
		if r.Sleep > 0 {
			time.Sleep(r.Sleep)
		} else if r.Torn && len(p) > 1 {
			n, werr := f.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, r.Err
		} else {
			return 0, r.Err
		}
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if err := fault(f.in.check(OpSync, f.f.Name())); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
func (f *injFile) Close() error           { return f.f.Close() }
func (f *injFile) Truncate(n int64) error { return f.f.Truncate(n) }
func (f *injFile) Name() string           { return f.f.Name() }

// Parse builds an Injector over base from a spec string: ';'-joined
// clauses of the form op:key=val,... (see the package comment for the
// grammar). An empty spec yields an injector with no rules.
func Parse(spec string, base FS) (*Injector, error) {
	in := New(base)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return in, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op, params, ok := strings.Cut(clause, ":")
		r := Rule{Op: Op(strings.TrimSpace(op))}
		switch r.Op {
		case OpOpen, OpRead, OpWrite, OpSync, OpRemove, OpMkdir, OpRename:
		default:
			return nil, fmt.Errorf("faultfs: unknown op %q in clause %q", op, clause)
		}
		if ok {
			for _, kv := range strings.Split(params, ",") {
				if err := applyParam(&r, strings.TrimSpace(kv)); err != nil {
					return nil, fmt.Errorf("faultfs: clause %q: %w", clause, err)
				}
			}
		}
		in.Add(r)
	}
	return in, nil
}

func applyParam(r *Rule, kv string) error {
	key, val, hasVal := strings.Cut(kv, "=")
	switch key {
	case "after":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("after=%q: %v", val, err)
		}
		r.After = n
	case "count":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("count=%q: %v", val, err)
		}
		r.Count = n
	case "p":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("p=%q: want a probability in [0,1]", val)
		}
		r.P = p
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("seed=%q: %v", val, err)
		}
		r.Seed = n
	case "err":
		switch strings.ToLower(val) {
		case "eio":
			r.Err = syscall.EIO
		case "enospc":
			r.Err = syscall.ENOSPC
		default:
			return fmt.Errorf("err=%q: want eio or enospc", val)
		}
	case "torn":
		if hasVal && val != "true" {
			return fmt.Errorf("torn takes no value")
		}
		r.Torn = true
	case "sleep":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("sleep=%q: want a positive duration", val)
		}
		r.Sleep = d
	case "path":
		r.Path = val
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// IsDiskFull reports whether err is an out-of-space condition.
func IsDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }
