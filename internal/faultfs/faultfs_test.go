package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func tmpFile(t *testing.T, fs FS) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDeterministicAfterCount(t *testing.T) {
	in := New(nil)
	in.Add(Rule{Op: OpSync, After: 2, Count: 3})
	f := tmpFile(t, in)
	var errs []bool
	for i := 0; i < 8; i++ {
		errs = append(errs, f.Sync() != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("sync %d: err=%v, want %v (full: %v)", i, errs[i], want[i], errs)
		}
	}
	if got := in.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
}

func TestENOSPCWrite(t *testing.T) {
	in := New(nil)
	in.Add(Rule{Op: OpWrite, After: 1, Err: syscall.ENOSPC})
	f := tmpFile(t, in)
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err := f.Write([]byte("boom"))
	if !IsDiskFull(err) {
		t.Fatalf("second write: err=%v, want ENOSPC", err)
	}
	// The injected error is persistent (count=0): every later write fails.
	if _, err := f.Write([]byte("still")); !IsDiskFull(err) {
		t.Fatalf("third write: err=%v, want ENOSPC", err)
	}
}

func TestTornWrite(t *testing.T) {
	in := New(nil)
	in.Add(Rule{Op: OpWrite, Torn: true})
	path := filepath.Join(t.TempDir(), "torn")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	f.Close()
	if werr == nil {
		t.Fatal("torn write returned no error")
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", n, len(payload)/2)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "01234" {
		t.Fatalf("file holds %q, want half the payload", got)
	}
}

func TestProbabilisticDeterministicAcrossRuns(t *testing.T) {
	run := func() []bool {
		in := New(nil)
		in.Add(Rule{Op: OpWrite, P: 0.3, Seed: 42})
		f := tmpFile(t, in)
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := f.Write([]byte("x"))
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at call %d: same seed must give same faults", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times; want some but not all", fired, len(a))
	}
}

func TestSlowSync(t *testing.T) {
	in := New(nil)
	in.Add(Rule{Op: OpSync, Sleep: 30 * time.Millisecond})
	f := tmpFile(t, in)
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("slow sync should succeed, got %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sync returned in %v, want ≥30ms stall", d)
	}
}

func TestPathFilterAndClear(t *testing.T) {
	in := New(nil)
	in.Add(Rule{Op: OpSync, Path: ".wal"})
	dir := t.TempDir()
	wal, err := in.OpenFile(filepath.Join(dir, "0001.wal"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer wal.Close()
	other, err := in.OpenFile(filepath.Join(dir, "store.gob"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer other.Close()
	if err := wal.Sync(); err == nil {
		t.Fatal("sync on .wal file should fault")
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("sync on non-matching file faulted: %v", err)
	}
	in.Clear()
	if err := wal.Sync(); err != nil {
		t.Fatalf("sync after Clear faulted: %v", err)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("sync:after=100,count=3,err=eio; write:p=0.01,seed=7,err=enospc,torn; sync:sleep=250ms,path=.wal", nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in.mu.Lock()
	rules := in.rules
	in.mu.Unlock()
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	r := rules[0].Rule
	if r.Op != OpSync || r.After != 100 || r.Count != 3 || !errors.Is(r.Err, syscall.EIO) {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1].Rule
	if r.Op != OpWrite || r.P != 0.01 || r.Seed != 7 || !r.Torn || !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = rules[2].Rule
	if r.Op != OpSync || r.Sleep != 250*time.Millisecond || r.Path != ".wal" {
		t.Fatalf("rule 2 = %+v", r)
	}

	for _, bad := range []string{"frobnicate:after=1", "sync:after=x", "sync:p=2", "sync:err=exdev", "sync:bogus=1"} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) accepted invalid spec", bad)
		}
	}
	if in, err := Parse("  ", nil); err != nil || in.Injected() != 0 {
		t.Errorf("empty spec should parse to a no-rule injector, got %v", err)
	}
}

func TestOSPassthrough(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(sub, "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Close()
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v, %d entries", err, len(ents))
	}
	rf, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := rf.Read(buf)
	rf.Close()
	if string(buf[:n]) != "hello" {
		t.Fatalf("read back %q", buf[:n])
	}
	if err := fs.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}
