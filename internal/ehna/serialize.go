package ehna

import (
	"encoding/gob"
	"fmt"
	"io"

	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// snapshot is the gob wire format of a trained model: the configuration,
// the embedding table, and every network parameter in registration order.
// Optimizer moments are not persisted; resumed training restarts Adam.
type snapshot struct {
	Version int
	Cfg     Config
	NumNode int
	Emb     matrixWire
	Params  []matrixWire
}

type matrixWire struct {
	Rows, Cols int
	Data       []float64
}

func toWire(m *tensor.Matrix) matrixWire {
	return matrixWire{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromWire(w matrixWire) (*tensor.Matrix, error) {
	if len(w.Data) != w.Rows*w.Cols {
		return nil, fmt.Errorf("ehna: corrupt matrix: %d values for %dx%d", len(w.Data), w.Rows, w.Cols)
	}
	return tensor.FromSlice(w.Rows, w.Cols, w.Data), nil
}

// snapshotVersion guards the wire format; bump on incompatible changes.
const snapshotVersion = 1

// Save serializes the trained model (config, embedding table, network
// parameters) to w. The training graph is NOT persisted — pass the same
// graph (or a compatible one with identical node count) to Load.
func (m *Model) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Cfg:     m.cfg,
		NumNode: m.g.NumNodes(),
		Emb:     toWire(m.emb.W),
	}
	for _, p := range m.params.List() {
		snap.Params = append(snap.Params, toWire(p.W))
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("ehna: save: %v", err)
	}
	return nil
}

// LoadEmbeddingTable reads only the node-embedding matrix (NumNodes×d)
// from a model snapshot written by Save, without requiring the training
// graph or reconstructing the network. This is the loader hook used by
// internal/embstore to bulk-load a serving store from a trained model.
//
// Note the snapshot stores the raw embedding table; the attention-
// aggregated embeddings of Model.InferAll require the graph and must be
// exported separately (e.g. via an embstore snapshot) when serving them.
func LoadEmbeddingTable(r io.Reader) (*tensor.Matrix, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ehna: load embeddings: %v", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("ehna: load embeddings: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	emb, err := fromWire(snap.Emb)
	if err != nil {
		return nil, err
	}
	if emb.Rows != snap.NumNode {
		return nil, fmt.Errorf("ehna: load embeddings: table has %d rows, snapshot claims %d nodes", emb.Rows, snap.NumNode)
	}
	return emb, nil
}

// Load reconstructs a model saved with Save, binding it to g. The graph
// must have the same node count as the one the model was trained on (the
// embedding table is positional).
func Load(g *graph.Temporal, r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ehna: load: %v", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("ehna: load: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if g.NumNodes() != snap.NumNode {
		return nil, fmt.Errorf("ehna: load: graph has %d nodes, model trained on %d", g.NumNodes(), snap.NumNode)
	}
	m, err := NewModel(g, snap.Cfg)
	if err != nil {
		return nil, err
	}
	emb, err := fromWire(snap.Emb)
	if err != nil {
		return nil, err
	}
	if emb.Rows != m.emb.W.Rows || emb.Cols != m.emb.W.Cols {
		return nil, fmt.Errorf("ehna: load: embedding table %dx%d, want %dx%d",
			emb.Rows, emb.Cols, m.emb.W.Rows, m.emb.W.Cols)
	}
	copy(m.emb.W.Data, emb.Data)
	params := m.params.List()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("ehna: load: %d parameters in snapshot, model has %d",
			len(snap.Params), len(params))
	}
	for i, pw := range snap.Params {
		w, err := fromWire(pw)
		if err != nil {
			return nil, err
		}
		if w.Rows != params[i].W.Rows || w.Cols != params[i].W.Cols {
			return nil, fmt.Errorf("ehna: load: parameter %s is %dx%d in snapshot, want %dx%d",
				params[i].Name, w.Rows, w.Cols, params[i].W.Rows, params[i].W.Cols)
		}
		copy(params[i].W.Data, w.Data)
	}
	return m, nil
}
