// Package ehna implements the paper's primary contribution: Embedding via
// Historical Neighborhoods Aggregation (Huang et al., ICDE 2020).
//
// For every edge formation (x, y, t) the model explains the event from the
// historical neighborhoods of both endpoints:
//
//  1. temporal random walks (internal/walk) collect the relevant nodes;
//  2. a node-level attention (Eq. 3) weights each node in a walk and a
//     stacked LSTM summarizes the walk into a vector h_r (Algorithm 1,
//     lines 1–4);
//  3. a walk-level attention (Eq. 4) weights the walk summaries and a
//     second stacked LSTM fuses them into H (lines 5–6);
//  4. the readout z = normalize(W·[H ‖ e_x]) (lines 7–8) feeds a
//     margin-based hinge loss over Euclidean distances with degree^0.75
//     negative sampling (Eqs. 5–7).
//
// The three ablations of Table VII are configuration switches:
// DisableAttention (EHNA-NA), Walk.Static (EHNA-RW) and SingleLevel
// (EHNA-SL).
package ehna

import (
	"fmt"
	"math/rand"
	"sync"

	"ehna/internal/ag"
	"ehna/internal/graph"
	"ehna/internal/nn"
	"ehna/internal/sample"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// Config collects every hyperparameter of the model and trainer.
type Config struct {
	Dim        int                 // embedding and hidden dimensionality d
	LSTMLayers int                 // stacked-LSTM depth (paper: 2)
	Walk       walk.TemporalConfig // temporal random walk parameters

	Margin        float64 // safety margin m of the hinge loss (paper: 5)
	Negatives     int     // Q negative samples per positive edge (paper: 5)
	Bidirectional bool    // Eq. 7: sample negatives on both endpoints

	LR        float64 // Adam learning rate for network parameters
	EmbLR     float64 // SGD learning rate for the embedding table
	Epochs    int     // passes over the chronological edge stream
	BatchSize int     // edges per optimizer step (paper: 512)
	ClipNorm  float64 // global gradient-norm clip; 0 disables
	Seed      int64   // master RNG seed

	// Ablation switches (Table VII).
	DisableAttention bool // EHNA-NA: uniform attention at both levels
	SingleLevel      bool // EHNA-SL: one single-layer LSTM, no two-level aggregation

	// CheapNegatives routes every negative sample through the GraphSAGE-
	// style neighborhood-mean fallback instead of the full walk
	// aggregation. This is markedly faster but unsound as a default: the
	// model can then separate the two aggregation *pathways* instead of
	// the nodes (positives cluster at one point, fallback readouts at the
	// antipode) and the loss collapses. Following the paper, the default
	// aggregates negatives through their historical neighborhoods whenever
	// they have one, falling back only for history-less nodes.
	CheapNegatives bool

	// FallbackSamples caps the 1-hop/2-hop neighbors drawn by the
	// GraphSAGE-style fallback aggregation.
	FallbackSamples int

	// Workers parallelizes training within each mini-batch: each worker
	// builds tapes against a shadow replica (shared weights, private
	// gradients) and the gradients are merged before the optimizer step,
	// so the update is identical in expectation to serial training and
	// free of data races. 0 or 1 trains serially.
	Workers int
}

// DefaultConfig returns laptop-scale defaults that keep the paper's
// structural choices (2 LSTM layers, m=5, Q=5, k=10, ℓ=10).
func DefaultConfig() Config {
	return Config{
		Dim:             32,
		LSTMLayers:      2,
		Walk:            walk.DefaultTemporalConfig(),
		Margin:          5,
		Negatives:       5,
		LR:              1e-3,
		EmbLR:           0.05,
		Epochs:          1,
		BatchSize:       32,
		ClipNorm:        5,
		Seed:            1,
		FallbackSamples: 10,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("ehna: Dim %d < 1", c.Dim)
	}
	if c.LSTMLayers < 1 {
		return fmt.Errorf("ehna: LSTMLayers %d < 1", c.LSTMLayers)
	}
	if err := c.Walk.Validate(); err != nil {
		return err
	}
	if c.Margin <= 0 {
		return fmt.Errorf("ehna: Margin %g must be positive", c.Margin)
	}
	if c.Negatives < 1 {
		return fmt.Errorf("ehna: Negatives %d < 1", c.Negatives)
	}
	if c.LR <= 0 || c.EmbLR <= 0 {
		return fmt.Errorf("ehna: learning rates must be positive (LR=%g EmbLR=%g)", c.LR, c.EmbLR)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("ehna: Epochs %d < 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("ehna: BatchSize %d < 1", c.BatchSize)
	}
	if c.FallbackSamples < 1 {
		return fmt.Errorf("ehna: FallbackSamples %d < 1", c.FallbackSamples)
	}
	return nil
}

// Model is a trained (or training) EHNA model bound to one temporal graph.
type Model struct {
	cfg    Config
	g      *graph.Temporal
	emb    *nn.Embedding
	node   *nn.StackedLSTM // node-level aggregator (first level)
	walkL  *nn.StackedLSTM // walk-level aggregator (second level); nil if SingleLevel
	nNorm  *nn.Norm
	wNorm  *nn.Norm
	proj   *nn.Param // W ∈ R^{2d×d}: z = [H ‖ e]·W
	params nn.Params
	walker *walk.TemporalWalker
	neg    *sample.Negative
	opt    *nn.Adam
	rng    *rand.Rand
}

// NewModel validates cfg and initializes an untrained model over g. The
// graph must be built; timestamps should be normalized (NormalizeTimes) so
// the decay kernel of Eq. 1 is well-scaled.
func NewModel(g *graph.Temporal, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("ehna: empty graph")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	walker, err := walk.NewTemporalWalker(g, cfg.Walk)
	if err != nil {
		return nil, err
	}
	neg, err := sample.NewNegative(g)
	if err != nil {
		return nil, err
	}
	d := cfg.Dim
	m := &Model{
		cfg:    cfg,
		g:      g,
		emb:    nn.NewEmbedding(g.NumNodes(), d, rng),
		walker: walker,
		neg:    neg,
		opt:    nn.NewAdam(cfg.LR),
		rng:    rng,
	}
	if cfg.SingleLevel {
		// EHNA-SL: a single-layer LSTM over the flattened walk sequence.
		m.node = nn.NewStackedLSTM("ehna.single", d, d, 1, rng)
		m.nNorm = nn.NewNorm("ehna.singleNorm", d)
	} else {
		m.node = nn.NewStackedLSTM("ehna.node", d, d, cfg.LSTMLayers, rng)
		m.walkL = nn.NewStackedLSTM("ehna.walk", d, d, cfg.LSTMLayers, rng)
		m.nNorm = nn.NewNorm("ehna.nodeNorm", d)
		m.wNorm = nn.NewNorm("ehna.walkNorm", d)
	}
	m.proj = nn.NewParam("ehna.W", nn.XavierInit(2*d, d, rng))
	m.node.Register(&m.params)
	m.nNorm.Register(&m.params)
	if m.walkL != nil {
		m.walkL.Register(&m.params)
		m.wNorm.Register(&m.params)
	}
	m.params.Add(m.proj)
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Graph returns the training graph.
func (m *Model) Graph() *graph.Temporal { return m.g }

// NumParams returns the number of trainable network scalars (excluding the
// embedding table).
func (m *Model) NumParams() int { return m.params.Count() }

// timeWeight is the stabilized reciprocal interaction-recency factor
// 1/(1+Σt) used by both attention levels. The +1 guards walks whose edges
// all carry normalized timestamp 0 and bounds the coefficient for very
// early edges; monotonicity in Σt — the quantity the paper's Eq. 3 relies
// on — is preserved.
func timeWeight(sumT float64) float64 { return 1 / (1 + sumT) }

// incidentTimeSumsInto writes, for each position i of the walk, the sum
// of timestamps of the walk's edges incident to the node occupying
// position i, aggregated over all occurrences of that node in the walk
// (the Σ_{(u,v) in r} t(u,v) term of Eq. 3). dst is reusable scratch;
// the result reuses its capacity. Walks are short (ℓ ≤ ~10), so the
// O(ℓ²) scan beats the map the previous implementation allocated per
// walk.
func incidentTimeSumsInto(dst []float64, w walk.Walk) []float64 {
	if cap(dst) < len(w.Nodes) {
		dst = make([]float64, len(w.Nodes))
	} else {
		dst = dst[:len(w.Nodes)]
	}
	for i, v := range w.Nodes {
		var s float64
		for j, t := range w.Times {
			if w.Nodes[j] == v || w.Nodes[j+1] == v {
				s += t
			}
		}
		dst[i] = s
	}
	return dst
}

// Aggregate builds the aggregated embedding z_x (Algorithm 1) for target
// node x at target time tTarget on the given tape. The returned node is a
// 1×Dim L2-normalized row. Gradients flow into the embedding table and all
// network parameters when the tape is run backward.
func (m *Model) Aggregate(tp *ag.Tape, x graph.NodeID, tTarget float64, rng *rand.Rand) *ag.Node {
	// Walk buffers are pooled: the walks are fully consumed (embedding
	// rows copied onto the tape, time sums reduced) before this
	// function returns, so the scratch can be recycled on exit.
	sc := walk.GetScratch()
	defer walk.PutScratch(sc)
	walks := m.walker.WalksScratch(sc, x, tTarget, rng)
	ex := m.emb.LookupOne(tp, int(x))
	if m.cfg.SingleLevel {
		return m.aggregateSingleLevel(tp, ex, walks)
	}

	// First level: node attention + LSTM per walk (lines 1–4).
	hs := make([]*ag.Node, len(walks))
	walkFactors := make([]float64, len(walks))
	var sums []float64 // per-walk scratch, reused across iterations
	for i, w := range walks {
		evs := m.emb.Lookup(tp, nodeInts(w.Nodes))
		sums = incidentTimeSumsInto(sums, w)
		var seq *ag.Node
		if m.cfg.DisableAttention || len(w.Nodes) == 1 {
			seq = evs
		} else {
			scores := make([]*ag.Node, len(w.Nodes))
			for j := range w.Nodes {
				d2 := tp.SqDist(ex, tp.Row(evs, j))
				scores[j] = tp.Scale(d2, -timeWeight(sums[j]))
			}
			alpha := tp.SoftmaxRow(tp.ConcatScalars(scores))
			seq = tp.RowScale(evs, alpha)
		}
		h := tp.ReLU(m.nNorm.Forward(tp, m.node.Forward(tp, seq)))
		hs[i] = h
		// Per-walk relevance factor of Eq. 4: (1/|r|)·Σ_v 1/(1+Σt).
		var f float64
		for _, s := range sums {
			f += timeWeight(s)
		}
		walkFactors[i] = f / float64(len(w.Nodes))
	}

	// Second level: walk attention + LSTM (lines 5–6).
	var stacked *ag.Node
	if m.cfg.DisableAttention || len(hs) == 1 {
		stacked = tp.StackRows(hs)
	} else {
		scores := make([]*ag.Node, len(hs))
		for i, h := range hs {
			d2 := tp.SqDist(ex, h)
			scores[i] = tp.Scale(d2, -walkFactors[i])
		}
		beta := tp.SoftmaxRow(tp.ConcatScalars(scores))
		stacked = tp.RowScale(tp.StackRows(hs), beta)
	}
	H := m.wNorm.Forward(tp, m.walkL.Forward(tp, stacked))
	return m.readout(tp, H, ex)
}

// aggregateSingleLevel implements the EHNA-SL ablation: all walks are
// flattened into one sequence consumed by a single single-layer LSTM, with
// no attention and no second aggregation stage.
func (m *Model) aggregateSingleLevel(tp *ag.Tape, ex *ag.Node, walks []walk.Walk) *ag.Node {
	var ids []int
	for _, w := range walks {
		ids = append(ids, nodeInts(w.Nodes)...)
	}
	if len(ids) == 0 {
		ids = []int{0}
	}
	seq := m.emb.Lookup(tp, ids)
	H := m.nNorm.Forward(tp, m.node.Forward(tp, seq))
	return m.readout(tp, H, ex)
}

// readout applies lines 7–8 of Algorithm 1: z = normalize(W·[H ‖ e_x]).
func (m *Model) readout(tp *ag.Tape, H, ex *ag.Node) *ag.Node {
	cat := tp.ConcatCols(H, ex)
	z := tp.MatMul(cat, m.proj.Node(tp))
	return tp.L2NormalizeRow(z)
}

// AggregateFallback is the GraphSAGE-style aggregation for nodes without a
// usable historical neighborhood (Section IV-D): the mean embedding of
// sampled 1-hop and 2-hop neighbors replaces the walk-derived H.
func (m *Model) AggregateFallback(tp *ag.Tape, u graph.NodeID, rng *rand.Rand) *ag.Node {
	eu := m.emb.LookupOne(tp, int(u))
	ids := m.sampleTwoHop(u, rng)
	var H *ag.Node
	if len(ids) == 0 {
		H = eu // isolated node: self-aggregation
	} else {
		H = tp.MeanRows(m.emb.Lookup(tp, ids))
	}
	return m.readout(tp, H, eu)
}

// sampleTwoHop draws up to FallbackSamples 1-hop and FallbackSamples 2-hop
// neighbors of u, uniformly with replacement.
func (m *Model) sampleTwoHop(u graph.NodeID, rng *rand.Rand) []int {
	adj := m.g.Neighbors(u)
	if len(adj) == 0 {
		return nil
	}
	k := m.cfg.FallbackSamples
	ids := make([]int, 0, 2*k)
	for i := 0; i < k; i++ {
		n1 := adj[rng.Intn(len(adj))].To
		ids = append(ids, int(n1))
		adj2 := m.g.Neighbors(n1)
		if len(adj2) > 0 {
			ids = append(ids, int(adj2[rng.Intn(len(adj2))].To))
		}
	}
	return ids
}

// negEmbedding returns z_u for a negative sample u: the full walk-based
// aggregation when u has history at tTarget (the paper's rule), otherwise
// — or always, under CheapNegatives — the neighborhood-mean fallback.
func (m *Model) negEmbedding(tp *ag.Tape, u graph.NodeID, tTarget float64, rng *rand.Rand) *ag.Node {
	if !m.cfg.CheapNegatives && m.g.DegreeBefore(u, tTarget) > 0 {
		return m.Aggregate(tp, u, tTarget, rng)
	}
	return m.AggregateFallback(tp, u, rng)
}

// EdgeLoss builds the hinge loss of Eq. 6 (or Eq. 7 when Bidirectional)
// for a single positive edge on the tape and returns the scalar node.
func (m *Model) EdgeLoss(tp *ag.Tape, e graph.Edge, rng *rand.Rand) *ag.Node {
	zx := m.Aggregate(tp, e.U, e.Time, rng)
	zy := m.Aggregate(tp, e.V, e.Time, rng)
	pos := tp.SqDist(zx, zy)
	var loss *ag.Node
	addHinge := func(anchor *ag.Node) {
		u := m.neg.Draw(rng, e.U, e.V)
		zu := m.negEmbedding(tp, u, e.Time, rng)
		h := tp.Hinge(m.cfg.Margin, pos, tp.SqDist(anchor, zu))
		if loss == nil {
			loss = h
		} else {
			loss = tp.Add(loss, h)
		}
	}
	for q := 0; q < m.cfg.Negatives; q++ {
		addHinge(zx)
	}
	if m.cfg.Bidirectional {
		for q := 0; q < m.cfg.Negatives; q++ {
			addHinge(zy)
		}
	}
	return loss
}

// shadow returns a worker replica of the model: layer weights and the
// embedding table are shared with m, gradients are private to the replica.
// The replica must only be used for Aggregate/EdgeLoss, never optimized.
func (m *Model) shadow() *Model {
	w := &Model{
		cfg:    m.cfg,
		g:      m.g,
		emb:    m.emb.Shadow(),
		node:   m.node.Shadow(),
		nNorm:  m.nNorm.Shadow(),
		proj:   m.proj.Shadow(),
		walker: m.walker,
		neg:    m.neg,
	}
	if m.walkL != nil {
		w.walkL = m.walkL.Shadow()
		w.wNorm = m.wNorm.Shadow()
	}
	// Register in the SAME order as NewModel so MergeGradsInto can match
	// parameters position-wise.
	w.node.Register(&w.params)
	w.nNorm.Register(&w.params)
	if w.walkL != nil {
		w.walkL.Register(&w.params)
		w.wNorm.Register(&w.params)
	}
	w.params.Add(w.proj)
	return w
}

// TrainEpoch performs one pass over the chronological edge stream in
// mini-batches and returns the mean per-edge loss. With cfg.Workers > 1
// each batch is processed by shadow replicas in parallel and their
// gradients merged before the optimizer step.
func (m *Model) TrainEpoch() float64 {
	edges := m.g.Edges()
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var replicas []*Model
	for i := 0; i < workers; i++ {
		replicas = append(replicas, m.shadow())
	}
	var total float64
	var count int
	batchNo := 0
	for lo := 0; lo < len(edges); lo += m.cfg.BatchSize {
		hi := lo + m.cfg.BatchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		batch := edges[lo:hi]
		m.params.ZeroGrad()
		m.emb.ZeroGrad()
		inv := 1 / float64(len(batch))

		if workers == 1 || len(batch) < 2*workers {
			for _, e := range batch {
				tp := ag.New()
				loss := m.EdgeLoss(tp, e, m.rng)
				tp.Backward(tp.Scale(loss, inv))
				total += ag.Value(loss)
				count++
			}
		} else {
			losses := make([]float64, workers)
			var wg sync.WaitGroup
			chunk := (len(batch) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				wlo := w * chunk
				whi := wlo + chunk
				if whi > len(batch) {
					whi = len(batch)
				}
				if wlo >= whi {
					continue
				}
				wg.Add(1)
				go func(w, wlo, whi int) {
					defer wg.Done()
					rep := replicas[w]
					rng := rand.New(rand.NewSource(m.cfg.Seed + int64(batchNo)*131 + int64(w)*7 + 3))
					for _, e := range batch[wlo:whi] {
						tp := ag.New()
						loss := rep.EdgeLoss(tp, e, rng)
						tp.Backward(tp.Scale(loss, inv))
						losses[w] += ag.Value(loss)
					}
				}(w, wlo, whi)
			}
			wg.Wait()
			for w, rep := range replicas {
				nn.MergeGradsInto(&m.params, &rep.params)
				rep.params.ZeroGrad()
				rep.emb.MergeGradsInto(m.emb)
				total += losses[w]
			}
			count += len(batch)
		}
		if m.cfg.ClipNorm > 0 {
			m.params.ClipGradNorm(m.cfg.ClipNorm)
		}
		m.opt.Step(&m.params)
		m.emb.Step(m.cfg.EmbLR)
		batchNo++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Train runs cfg.Epochs training epochs and returns the per-epoch losses.
func (m *Model) Train() []float64 {
	losses := make([]float64, m.cfg.Epochs)
	for i := range losses {
		losses[i] = m.TrainEpoch()
	}
	return losses
}

// InferAll runs the paper's final aggregation pass: each node is aggregated
// at the time of its most recent edge and the readout becomes its final
// embedding (e_x = z_x). Nodes without any edge fall back to the
// neighborhood-mean aggregation. The result is a NumNodes×Dim matrix.
func (m *Model) InferAll() *tensor.Matrix {
	out := tensor.New(m.g.NumNodes(), m.cfg.Dim)
	rng := rand.New(rand.NewSource(m.cfg.Seed + 7919))
	for v := 0; v < m.g.NumNodes(); v++ {
		id := graph.NodeID(v)
		tp := ag.New()
		var z *ag.Node
		if adj := m.g.Neighbors(id); len(adj) > 0 {
			tRecent := adj[len(adj)-1].Time
			z = m.Aggregate(tp, id, tRecent, rng)
		} else {
			z = m.AggregateFallback(tp, id, rng)
		}
		out.SetRow(v, z.Value.Data)
	}
	// Inference must not leave stray gradient state behind.
	m.emb.ZeroGrad()
	return out
}

// RawEmbeddings exposes the current embedding table (pre-readout), mainly
// for tests and diagnostics.
func (m *Model) RawEmbeddings() *tensor.Matrix { return m.emb.W }

func nodeInts(ns []graph.NodeID) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = int(n)
	}
	return out
}
