package ehna

import (
	"math"
	"math/rand"
	"testing"

	"ehna/internal/ag"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

// smallConfig returns a configuration sized for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 3, WalkLen: 4}
	cfg.BatchSize = 8
	cfg.FallbackSamples = 4
	return cfg
}

// twoCommunityGraph builds two dense temporal communities bridged by one
// edge: nodes 0..4 and 5..9, edges timestamped in [0,1].
func twoCommunityGraph(t *testing.T) *graph.Temporal {
	t.Helper()
	g := graph.NewTemporal(10)
	rng := rand.New(rand.NewSource(42))
	addClique := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				if err := g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique(0, 5)
	addClique(5, 10)
	if err := g.AddEdge(4, 5, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g.Build()
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.LSTMLayers = 0 },
		func(c *Config) { c.Walk.P = 0 },
		func(c *Config) { c.Margin = 0 },
		func(c *Config) { c.Negatives = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.EmbLR = -1 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.FallbackSamples = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestNewModelErrors(t *testing.T) {
	empty := graph.NewTemporal(3)
	empty.Build()
	if _, err := NewModel(empty, smallConfig()); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := twoCommunityGraph(t)
	bad := smallConfig()
	bad.Dim = -1
	if _, err := NewModel(g, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestModelAccessors(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph() != g {
		t.Fatal("Graph accessor")
	}
	if m.Config().Dim != 8 {
		t.Fatal("Config accessor")
	}
	if m.NumParams() == 0 {
		t.Fatal("no trainable parameters registered")
	}
	if m.RawEmbeddings().Rows != 10 || m.RawEmbeddings().Cols != 8 {
		t.Fatal("embedding table shape")
	}
}

func TestIncidentTimeSums(t *testing.T) {
	w := walk.Walk{
		Nodes: []graph.NodeID{1, 2, 1, 3},
		Times: []float64{0.5, 0.4, 0.3},
	}
	sums := incidentTimeSumsInto(nil, w)
	// Node 1 occurs at positions 0 and 2; incident edges: (1,2,0.5),
	// (2,1,0.4), (1,3,0.3) → 1.2. Node 2: 0.5+0.4 = 0.9. Node 3: 0.3.
	want := []float64{1.2, 0.9, 1.2, 0.3}
	for i, s := range sums {
		if math.Abs(s-want[i]) > 1e-12 {
			t.Fatalf("position %d: got %g want %g", i, s, want[i])
		}
	}
}

func TestTimeWeightMonotone(t *testing.T) {
	if timeWeight(0) != 1 {
		t.Fatal("timeWeight(0) must be 1")
	}
	if !(timeWeight(0.2) > timeWeight(0.8)) {
		t.Fatal("timeWeight must decrease in Σt")
	}
}

func TestAggregateShapeAndNorm(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tp := ag.New()
	z := m.Aggregate(tp, 0, 1.0, rng)
	if z.Value.Rows != 1 || z.Value.Cols != 8 {
		t.Fatalf("shape %dx%d", z.Value.Rows, z.Value.Cols)
	}
	if n := tensor.L2NormVec(z.Value.Data); math.Abs(n-1) > 1e-9 {
		t.Fatalf("readout not normalized: ‖z‖ = %g", n)
	}
	if !ag.IsFinite(z) {
		t.Fatal("non-finite readout")
	}
}

func TestAggregateDeterministicPerSeed(t *testing.T) {
	g := twoCommunityGraph(t)
	run := func() []float64 {
		m, err := NewModel(g, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		tp := ag.New()
		z := m.Aggregate(tp, 3, 0.9, rand.New(rand.NewSource(5)))
		return append([]float64(nil), z.Value.Data...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("aggregation not deterministic for fixed seeds")
		}
	}
}

func TestAggregateFallbackIsolatedNode(t *testing.T) {
	g := graph.NewTemporal(4)
	_ = g.AddEdge(0, 1, 1, 0.2)
	_ = g.AddEdge(1, 2, 1, 0.8)
	g.Build() // node 3 isolated
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	tp := ag.New()
	z := m.AggregateFallback(tp, 3, rng)
	if math.Abs(tensor.L2NormVec(z.Value.Data)-1) > 1e-9 {
		t.Fatal("fallback readout not normalized")
	}
}

func TestEdgeLossFiniteAndNonNegative(t *testing.T) {
	g := twoCommunityGraph(t)
	for _, variant := range []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.DisableAttention = true },
		func(c *Config) { c.SingleLevel = true },
		func(c *Config) { c.Walk.Static = true },
		func(c *Config) { c.Bidirectional = true },
		func(c *Config) { c.CheapNegatives = true },
	} {
		cfg := smallConfig()
		variant(&cfg)
		m, err := NewModel(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		tp := ag.New()
		loss := m.EdgeLoss(tp, g.Edges()[0], rng)
		v := ag.Value(loss)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("loss %g invalid", v)
		}
	}
}

func TestTrainEpochReducesLoss(t *testing.T) {
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.EmbLR = 0.1
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := m.TrainEpoch()
	var last float64
	for i := 0; i < 4; i++ {
		last = m.TrainEpoch()
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first %g last %g", first, last)
	}
	if math.IsNaN(last) {
		t.Fatal("training diverged to NaN")
	}
}

func TestTrainReturnsPerEpochLosses(t *testing.T) {
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses := m.Train()
	if len(losses) != 2 {
		t.Fatalf("got %d losses", len(losses))
	}
}

func TestInferAllShapeAndNormalization(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.TrainEpoch()
	emb := m.InferAll()
	if emb.Rows != 10 || emb.Cols != 8 {
		t.Fatalf("embedding shape %dx%d", emb.Rows, emb.Cols)
	}
	for i := 0; i < emb.Rows; i++ {
		if n := tensor.L2NormVec(emb.Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm %g", i, n)
		}
	}
}

func TestTrainingSeparatesCommunities(t *testing.T) {
	// The semantic end-to-end test: after training on two dense temporal
	// communities, intra-community embedding distances must be smaller
	// than inter-community distances on average.
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.Epochs = 6
	cfg.EmbLR = 0.15
	cfg.Bidirectional = true
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train()
	emb := m.InferAll()
	dist := func(a, b int) float64 { return tensor.SqDistVec(emb.Row(a), emb.Row(b)) }
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if (i < 5) == (j < 5) {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Fatalf("communities not separated: intra %g inter %g", intra, inter)
	}
}

func TestGradientsFlowToAllParams(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	m.params.ZeroGrad()
	tp := ag.New()
	loss := m.EdgeLoss(tp, g.Edges()[len(g.Edges())-1], rng)
	tp.Backward(loss)
	zero := 0
	for _, p := range m.params.List() {
		if p.G.Frobenius() == 0 {
			zero++
			t.Logf("param %s received zero gradient", p.Name)
		}
	}
	// The projection and at least the LSTMs must receive gradient. Norm
	// biases can legitimately cancel; allow a small number of zeros.
	if zero > 4 {
		t.Fatalf("%d of %d parameters received no gradient", zero, len(m.params.List()))
	}
	if m.emb.TouchedRows() == 0 {
		t.Fatal("embedding table received no gradient")
	}
}

func TestAggregateGradCheckThroughModel(t *testing.T) {
	// Finite-difference check of d(loss)/d(projection W) through the full
	// aggregation pipeline with frozen walks (fixed RNG seed per forward).
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.Walk.NumWalks = 2
	cfg.Walk.WalkLen = 3
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[10]
	forward := func() float64 {
		tp := ag.New()
		rng := rand.New(rand.NewSource(99)) // identical walks every call
		zx := m.Aggregate(tp, e.U, e.Time, rng)
		zy := m.Aggregate(tp, e.V, e.Time, rng)
		loss := tp.SqDist(zx, zy)
		tp.Backward(loss)
		return ag.Value(loss)
	}
	m.params.ZeroGrad()
	m.emb.ZeroGrad()
	forward()
	analytic := m.proj.G.Clone()
	const h = 1e-5
	for _, idx := range []int{0, 5, 17, 31} {
		orig := m.proj.W.Data[idx]
		m.proj.W.Data[idx] = orig + h
		m.params.ZeroGrad()
		m.emb.ZeroGrad()
		fp := forward()
		m.proj.W.Data[idx] = orig - h
		m.params.ZeroGrad()
		m.emb.ZeroGrad()
		fm := forward()
		m.proj.W.Data[idx] = orig
		num := (fp - fm) / (2 * h)
		got := analytic.Data[idx]
		scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
		if math.Abs(num-got)/scale > 1e-3 {
			t.Fatalf("proj[%d]: analytic %g numeric %g", idx, got, num)
		}
	}
}

func TestAblationVariantsTrain(t *testing.T) {
	g := twoCommunityGraph(t)
	variants := map[string]func(*Config){
		"EHNA-NA": func(c *Config) { c.DisableAttention = true },
		"EHNA-RW": func(c *Config) { c.Walk.Static = true },
		"EHNA-SL": func(c *Config) { c.SingleLevel = true },
	}
	for name, mut := range variants {
		cfg := smallConfig()
		mut(&cfg)
		m, err := NewModel(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loss := m.TrainEpoch()
		if math.IsNaN(loss) || loss < 0 {
			t.Fatalf("%s: bad loss %g", name, loss)
		}
		emb := m.InferAll()
		if emb.Rows != g.NumNodes() {
			t.Fatalf("%s: bad embedding matrix", name)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	g := graph.NewTemporal(500)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		u, v := graph.NodeID(rng.Intn(500)), graph.NodeID(rng.Intn(500))
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, 1, rng.Float64())
	}
	g.Build()
	cfg := DefaultConfig()
	cfg.Dim = 32
	m, err := NewModel(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ag.New()
		m.Aggregate(tp, graph.NodeID(i%500), 0.95, rng)
	}
}

func BenchmarkEdgeLossBackward(b *testing.B) {
	g := graph.NewTemporal(500)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		u, v := graph.NodeID(rng.Intn(500)), graph.NodeID(rng.Intn(500))
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, 1, rng.Float64())
	}
	g.Build()
	cfg := DefaultConfig()
	cfg.Dim = 32
	m, err := NewModel(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.params.ZeroGrad()
		m.emb.ZeroGrad()
		tp := ag.New()
		loss := m.EdgeLoss(tp, edges[i%len(edges)], rng)
		tp.Backward(loss)
	}
}

func TestParallelTrainingMatchesSerialShape(t *testing.T) {
	// Parallel training must produce a working model with comparable loss
	// trajectory (not bitwise identical: negative draws differ per worker).
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Epochs = 3
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses := m.Train()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("parallel training loss did not decrease: %v", losses)
	}
	emb := m.InferAll()
	for i := 0; i < emb.Rows; i++ {
		if n := tensor.L2NormVec(emb.Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm %g", i, n)
		}
	}
}

func TestParallelTrainingSeparatesCommunities(t *testing.T) {
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Epochs = 6
	cfg.EmbLR = 0.15
	cfg.Bidirectional = true
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train()
	emb := m.InferAll()
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			d := tensor.SqDistVec(emb.Row(i), emb.Row(j))
			if (i < 5) == (j < 5) {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatalf("parallel training failed to separate communities: intra %g inter %g",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestNearestNeighbors(t *testing.T) {
	emb := tensor.FromRows([][]float64{
		{0, 0}, {1, 0}, {0, 3}, {5, 5},
	})
	nbs, err := NearestNeighbors(emb, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 2 || nbs[0].ID != 1 || nbs[1].ID != 2 {
		t.Fatalf("neighbors %+v", nbs)
	}
	if nbs[0].SqDist != 1 || nbs[1].SqDist != 9 {
		t.Fatalf("distances %+v", nbs)
	}
	// k larger than candidates clamps.
	nbs, err = NearestNeighbors(emb, 0, 10)
	if err != nil || len(nbs) != 3 {
		t.Fatalf("clamp: %d err %v", len(nbs), err)
	}
	if _, err := NearestNeighbors(emb, 9, 1); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := NearestNeighbors(emb, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEvalLossDeterministicAndDecreases(t *testing.T) {
	g := twoCommunityGraph(t)
	train, held, err := g.SplitByTime(0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.EmbLR = 0.15
	m, err := NewModel(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := m.EvalLoss(held)
	if again := m.EvalLoss(held); again != before {
		t.Fatalf("EvalLoss not deterministic: %g vs %g", before, again)
	}
	for i := 0; i < 5; i++ {
		m.TrainEpoch()
	}
	after := m.EvalLoss(held)
	if !(after < before) {
		t.Fatalf("held-out loss did not improve: before %g after %g", before, after)
	}
	if m.EvalLoss(nil) != 0 {
		t.Fatal("empty edge list must give 0")
	}
}
