package ehna

import (
	"bytes"
	"strings"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.TrainEpoch()
	before := m.InferAll()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	after := loaded.InferAll()
	if !tensor.Equal(before, after, 1e-12) {
		t.Fatal("loaded model produces different embeddings")
	}
	// Loaded model must remain trainable.
	if loss := loaded.TrainEpoch(); loss < 0 {
		t.Fatalf("loaded model training loss %g", loss)
	}
}

func TestLoadRejectsWrongGraphSize(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := graph.NewTemporal(3)
	_ = other.AddEdge(0, 1, 1, 0.5)
	other.Build()
	if _, err := Load(other, &buf); err == nil {
		t.Fatal("mismatched graph accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g := twoCommunityGraph(t)
	if _, err := Load(g, strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(g, strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSaveLoadPreservesAblationConfig(t *testing.T) {
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.SingleLevel = true
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config().SingleLevel {
		t.Fatal("config not preserved")
	}
}
