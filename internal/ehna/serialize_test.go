package ehna

import (
	"bytes"
	"strings"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.TrainEpoch()
	before := m.InferAll()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	after := loaded.InferAll()
	if !tensor.Equal(before, after, 1e-12) {
		t.Fatal("loaded model produces different embeddings")
	}
	// Loaded model must remain trainable.
	if loss := loaded.TrainEpoch(); loss < 0 {
		t.Fatalf("loaded model training loss %g", loss)
	}
}

func TestLoadRejectsWrongGraphSize(t *testing.T) {
	g := twoCommunityGraph(t)
	m, err := NewModel(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := graph.NewTemporal(3)
	_ = other.AddEdge(0, 1, 1, 0.5)
	other.Build()
	if _, err := Load(other, &buf); err == nil {
		t.Fatal("mismatched graph accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g := twoCommunityGraph(t)
	if _, err := Load(g, strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(g, strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestSaveLoadProperty is the round-trip property the serving subsystem's
// bulk-load path (embstore.FromModelSnapshot) depends on: across varied
// configurations, save → load → save is byte-identical, the embedding
// table survives bit-for-bit, and the standalone LoadEmbeddingTable hook
// sees exactly the table the full Load binds.
func TestSaveLoadProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		cfg.Dim = 4 + int(seed)*2
		cfg.LSTMLayers = 1 + int(seed)%2
		g := twoCommunityGraph(t)
		m, err := NewModel(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.TrainEpoch()

		var buf1 bytes.Buffer
		if err := m.Save(&buf1); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(g, bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		if err := loaded.Save(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: save → load → save not byte-identical (%d vs %d bytes)",
				seed, buf1.Len(), buf2.Len())
		}
		if !tensor.Equal(m.RawEmbeddings(), loaded.RawEmbeddings(), 0) {
			t.Fatalf("seed %d: embedding table not bit-identical after round trip", seed)
		}
		table, err := LoadEmbeddingTable(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(table, m.RawEmbeddings(), 0) {
			t.Fatalf("seed %d: LoadEmbeddingTable differs from model table", seed)
		}
	}
}

func TestLoadEmbeddingTableRejectsGarbage(t *testing.T) {
	if _, err := LoadEmbeddingTable(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadPreservesAblationConfig(t *testing.T) {
	g := twoCommunityGraph(t)
	cfg := smallConfig()
	cfg.SingleLevel = true
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config().SingleLevel {
		t.Fatal("config not preserved")
	}
}
