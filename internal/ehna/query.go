package ehna

import (
	"fmt"
	"math/rand"
	"sort"

	"ehna/internal/ag"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// Neighbor is one nearest-neighbor query result.
type Neighbor struct {
	ID     graph.NodeID
	SqDist float64 // squared Euclidean distance in embedding space
}

// NearestNeighbors returns the k nodes closest to node id under squared
// Euclidean distance over the embedding matrix emb (one row per node).
func NearestNeighbors(emb *tensor.Matrix, id graph.NodeID, k int) ([]Neighbor, error) {
	if int(id) >= emb.Rows {
		return nil, fmt.Errorf("ehna: node %d outside embedding table of %d rows", id, emb.Rows)
	}
	if k < 1 {
		return nil, fmt.Errorf("ehna: k %d < 1", k)
	}
	anchor := emb.Row(int(id))
	out := make([]Neighbor, 0, emb.Rows-1)
	for v := 0; v < emb.Rows; v++ {
		if v == int(id) {
			continue
		}
		out = append(out, Neighbor{ID: graph.NodeID(v), SqDist: tensor.SqDistVec(anchor, emb.Row(v))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SqDist != out[j].SqDist {
			return out[i].SqDist < out[j].SqDist
		}
		return out[i].ID < out[j].ID
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k], nil
}

// EvalLoss computes the mean hinge loss over the given edges WITHOUT
// updating any parameters — a validation metric for held-out (future)
// edges. The walks and negative draws use a fixed seed so repeated calls
// are comparable.
func (m *Model) EvalLoss(edges []graph.Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 104729))
	var total float64
	for _, e := range edges {
		tp := ag.New()
		total += ag.Value(m.EdgeLoss(tp, e, rng))
	}
	// EdgeLoss builds leaves over the embedding table; no Backward was
	// called so no gradient accumulated, but clear defensively.
	m.emb.ZeroGrad()
	return total / float64(len(edges))
}
