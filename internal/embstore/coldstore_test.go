//go:build linux || darwin

package embstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/wal"
)

// openCold writes s as a v3 snapshot and reopens it mmap-backed.
func openCold(t testing.TB, s *Store, watermark uint64) (*Store, string) {
	t.Helper()
	path := writeV3(t, s, watermark)
	cold, wm, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if wm != watermark {
		t.Fatalf("watermark = %d, want %d", wm, watermark)
	}
	t.Cleanup(func() { cold.Close() })
	return cold, path
}

func TestColdStoreEqualsRAM(t *testing.T) {
	for _, prec := range []Precision{F64, F32, SQ8} {
		t.Run(prec.String(), func(t *testing.T) {
			ram, err := NewPrecision(8, 4, prec)
			if err != nil {
				t.Fatal(err)
			}
			fillRandom(t, ram, 400, 10)
			cold, _ := openCold(t, ram, 5)

			if !cold.Cold() {
				t.Fatal("Cold() = false for an mmap store")
			}
			if cold.MappedBytes() <= 0 || cold.MappedPayloadBytes() <= 0 {
				t.Fatalf("mapped bytes %d / payload %d", cold.MappedBytes(), cold.MappedPayloadBytes())
			}
			if !cold.Equal(ram) {
				t.Fatal("cold store differs from its RAM source")
			}
			if !ram.Equal(cold) {
				t.Fatal("Equal is not symmetric across backends")
			}
			// Get dequantizes identically through the base.
			for _, id := range ram.IDs()[:20] {
				want, _ := ram.Get(id)
				got, ok := cold.Get(id)
				if !ok || !slicesEq(want, got) {
					t.Fatalf("Get(%d) = %v, %v; want %v", id, got, ok, want)
				}
			}
		})
	}
}

func slicesEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColdOverlay exercises the mutation surface over a mapped base:
// upserts land in the overlay and shadow the base, deletes mask base
// rows, and Len/IDs/scans stay consistent throughout.
func TestColdOverlay(t *testing.T) {
	ram, err := NewPrecision(4, 3, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, ram, 100, 11)
	cold, _ := openCold(t, ram, 0)
	n := cold.Len()

	// Overwrite a base-resident id: Len unchanged, new value wins.
	target := ram.IDs()[7]
	if err := cold.Upsert(target, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if cold.Len() != n {
		t.Fatalf("Len = %d after overwrite, want %d", cold.Len(), n)
	}
	got, _ := cold.Get(target)
	ref, _ := NewPrecision(4, 1, SQ8)
	ref.Upsert(target, []float64{1, 2, 3, 4})
	want, _ := ref.Get(target)
	if !slicesEq(got, want) {
		t.Fatalf("overwritten vector = %v, want %v", got, want)
	}

	// Insert a brand-new id.
	if err := cold.Upsert(gid(9_999_999), []float64{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if cold.Len() != n+1 {
		t.Fatalf("Len = %d after insert, want %d", cold.Len(), n+1)
	}

	// Delete a base row, an overlay row, and a missing id.
	victim := ram.IDs()[3]
	if !cold.Delete(victim) {
		t.Fatal("Delete of base row = false")
	}
	if cold.Delete(victim) {
		t.Fatal("second Delete of same id = true")
	}
	if _, ok := cold.Get(victim); ok {
		t.Fatal("deleted base row still visible")
	}
	if !cold.Delete(gid(9_999_999)) {
		t.Fatal("Delete of overlay row = false")
	}
	if cold.Delete(gid(123_456_789)) {
		t.Fatal("Delete of missing id = true")
	}
	if cold.Len() != n-1 {
		t.Fatalf("Len = %d after deletes, want %d", cold.Len(), n-1)
	}

	vecs, bytes, masked := cold.OverlayStats()
	if vecs != 1 || masked != 2 || bytes <= 0 {
		t.Fatalf("OverlayStats = %d vectors, %d bytes, %d masked; want 1, >0, 2", vecs, bytes, masked)
	}

	// IDs: sorted, no duplicates, no deleted entries.
	ids := cold.IDs()
	if len(ids) != cold.Len() {
		t.Fatalf("IDs returned %d, Len = %d", len(ids), cold.Len())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not strictly ascending at %d", i)
		}
	}
	for _, id := range ids {
		if id == victim {
			t.Fatal("deleted id present in IDs")
		}
	}

	// RangeShard visits every live row exactly once.
	seen := map[graph.NodeID]int{}
	for i := 0; i < cold.NumShards(); i++ {
		cold.RangeShard(i, func(id graph.NodeID, v *VecView) bool {
			seen[id]++
			return true
		})
	}
	if len(seen) != cold.Len() {
		t.Fatalf("RangeShard visited %d ids, Len = %d", len(seen), cold.Len())
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("RangeShard visited %d %d times", id, c)
		}
	}

	// WithShard resolves overlay and base rows alike.
	some := ids[:10]
	byShard := map[int][]graph.NodeID{}
	for _, id := range some {
		byShard[cold.ShardOf(id)] = append(byShard[cold.ShardOf(id)], id)
	}
	hits := 0
	for si, group := range byShard {
		cold.WithShard(si, group, func(id graph.NodeID, v *VecView) { hits++ })
	}
	if hits != len(some) {
		t.Fatalf("WithShard hit %d of %d", hits, len(some))
	}
}

// TestColdFold takes a cold store through the rotation fold: mutate,
// write a fresh v3 base, Remap, and check the overlay is empty while
// the contents are unchanged.
func TestColdFold(t *testing.T) {
	ram, err := NewPrecision(6, 4, F32)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, ram, 200, 12)
	cold, _ := openCold(t, ram, 1)

	rng := rand.New(rand.NewSource(99))
	vec := make([]float64, 6)
	for i := 0; i < 50; i++ {
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		if err := cold.Upsert(gid(uint32(5000+i)), vec); err != nil {
			t.Fatal(err)
		}
	}
	cold.Delete(ram.IDs()[0])
	cold.Delete(ram.IDs()[1])

	// Reference copy of the pre-fold state.
	ref, _, err := LoadSnapshotV3(snapshotOf(t, cold, 2), 4)
	if err != nil {
		t.Fatal(err)
	}

	next := snapshotOf(t, cold, 2)
	if err := cold.Remap(next); err != nil {
		t.Fatal(err)
	}
	if vecs, _, masked := cold.OverlayStats(); vecs != 0 || masked != 0 {
		t.Fatalf("post-fold overlay: %d vectors, %d masked", vecs, masked)
	}
	if !cold.Equal(ref) {
		t.Fatal("fold changed contents")
	}
	if cold.MappedPath() != next {
		t.Fatalf("MappedPath = %q, want %q", cold.MappedPath(), next)
	}

	// The store keeps serving and mutating after the fold.
	if err := cold.Upsert(gid(1), vec); err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Get(gid(1)); !ok {
		t.Fatal("post-fold upsert not visible")
	}
}

// snapshotOf writes a v3 snapshot of s into a fresh temp file.
func snapshotOf(t testing.TB, s *Store, wm uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "next.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshotV3(f, wm); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestColdRemapMismatch: a fold target with different geometry is
// refused and the store keeps its old base.
func TestColdRemapMismatch(t *testing.T) {
	ram, _ := NewPrecision(4, 2, F64)
	fillRandom(t, ram, 50, 13)
	cold, _ := openCold(t, ram, 0)

	other, _ := NewPrecision(5, 2, F64)
	fillRandom(t, other, 10, 14)
	if err := cold.Remap(writeV3(t, other, 0)); err == nil {
		t.Fatal("Remap accepted a mismatched snapshot")
	}
	if !cold.Equal(ram) {
		t.Fatal("failed Remap corrupted the store")
	}

	ramStore, _ := NewPrecision(4, 2, F64)
	if err := ramStore.Remap("/nonexistent"); err == nil {
		t.Fatal("Remap of a RAM store succeeded")
	}
}

// TestColdSaveGob: the gob snapshot path (the /v1/export format) still
// works over a cold store — follower bootstrap doesn't care about the
// leader's store backend.
func TestColdSaveGob(t *testing.T) {
	ram, _ := NewPrecision(5, 3, SQ8)
	fillRandom(t, ram, 120, 15)
	cold, _ := openCold(t, ram, 0)
	cold.Upsert(gid(777_777), []float64{1, 1, 1, 1, 1})

	var buf bytes.Buffer
	if err := cold.SaveSnapshot(&buf, 8); err != nil {
		t.Fatal(err)
	}
	got, wm, err := LoadSnapshot(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 8 {
		t.Fatalf("watermark = %d", wm)
	}
	if !got.Equal(cold) {
		t.Fatal("gob round trip of cold store differs")
	}
}

// TestColdApplyWAL: WAL replay into the overlay, the boot path for
// records past the snapshot watermark.
func TestColdApplyWAL(t *testing.T) {
	ram, _ := NewPrecision(3, 2, F64)
	fillRandom(t, ram, 40, 16)
	cold, _ := openCold(t, ram, 0)

	if err := cold.ApplyWAL(wal.Record{Op: wal.OpUpsert, ID: gid(42), Vec: []float64{9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := cold.ApplyWAL(wal.Record{Op: wal.OpDelete, ID: ram.IDs()[2]}); err != nil {
		t.Fatal(err)
	}
	if got, _ := cold.Get(gid(42)); !slicesEq(got, []float64{9, 9, 9}) {
		t.Fatalf("replayed upsert = %v", got)
	}
	if _, ok := cold.Get(ram.IDs()[2]); ok {
		t.Fatal("replayed delete still visible")
	}
}

// TestColdZeroAllocReads pins the zero-alloc guarantee of the scan and
// batch-lookup paths over a mapped base — the property the re-rank
// stage depends on.
func TestColdZeroAllocReads(t *testing.T) {
	ram, _ := NewPrecision(8, 2, SQ8)
	fillRandom(t, ram, 100, 17)
	cold, _ := openCold(t, ram, 0)
	ids := cold.IDs()[:8]
	byShard := map[int][]graph.NodeID{}
	for _, id := range ids {
		byShard[cold.ShardOf(id)] = append(byShard[cold.ShardOf(id)], id)
	}

	if n := testing.AllocsPerRun(100, func() {
		for si, group := range byShard {
			cold.WithShard(si, group, func(id graph.NodeID, v *VecView) {})
		}
	}); n != 0 {
		t.Fatalf("WithShard over cold store allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		cold.RangeShard(0, func(id graph.NodeID, v *VecView) bool { return true })
	}); n != 0 {
		t.Fatalf("RangeShard over cold store allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		cold.With(ids[0], func(v *VecView) {})
	}); n != 0 {
		t.Fatalf("With over cold store allocates %.1f/op", n)
	}
}

// TestColdConcurrentChurn races readers against overlay writers and a
// mid-flight fold; run under -race this is the memory-safety check for
// the base swap.
func TestColdConcurrentChurn(t *testing.T) {
	ram, _ := NewPrecision(4, 4, F32)
	fillRandom(t, ram, 200, 18)
	cold, _ := openCold(t, ram, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			vec := make([]float64, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range vec {
					vec[j] = rng.NormFloat64()
				}
				id := gid(uint32(rng.Intn(400)))
				if rng.Intn(4) == 0 {
					cold.Delete(id)
				} else {
					cold.Upsert(id, vec)
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for si := 0; si < cold.NumShards(); si++ {
				cold.RangeShard(si, func(id graph.NodeID, v *VecView) bool {
					_ = v.Norm
					return true
				})
			}
			cold.Len()
		}
	}()
	// Two folds while the churn runs. Remap's contract wants quiesced
	// writers for *content* guarantees; memory safety must hold
	// regardless, which is what this exercises.
	for i := 0; i < 2; i++ {
		if err := cold.Remap(snapshotOf(t, cold, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestColdResidency(t *testing.T) {
	ram, _ := NewPrecision(16, 2, F64)
	fillRandom(t, ram, 500, 19)
	cold, _ := openCold(t, ram, 0)
	pg := int64(os.Getpagesize())
	mappedPages := (cold.MappedBytes() + pg - 1) / pg * pg
	if r := cold.MappedResidentBytes(); r < 0 || r > mappedPages {
		t.Fatalf("MappedResidentBytes = %d, mapped %d pages-rounded", r, mappedPages)
	}
	ramOnly, _ := NewPrecision(4, 1, F64)
	if r := ramOnly.MappedResidentBytes(); r != 0 {
		t.Fatalf("RAM store MappedResidentBytes = %d", r)
	}
}
