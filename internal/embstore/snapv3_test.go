package embstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ehna/internal/graph"
)

// gid abbreviates the NodeID conversions the v3 tests make constantly.
func gid(id uint32) graph.NodeID { return graph.NodeID(id) }

// fillRandom populates s with n random vectors under ids 0..n-1 (plus
// a few sparse high ids so shard occupancy is uneven) and returns the
// rng-seeded source for reproducibility.
func fillRandom(t testing.TB, s *Store, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vec := make([]float64, s.Dim())
	for i := 0; i < n; i++ {
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		id := uint32(i)
		if i%17 == 0 {
			id = uint32(1_000_000 + i) // sparse high ids
		}
		if err := s.Upsert(gid(id), vec); err != nil {
			t.Fatal(err)
		}
	}
}

func writeV3(t testing.TB, s *Store, watermark uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshotV3(f, watermark); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestV3RoundTrip(t *testing.T) {
	for _, prec := range []Precision{F64, F32, SQ8} {
		t.Run(prec.String(), func(t *testing.T) {
			s, err := NewPrecision(7, 5, prec)
			if err != nil {
				t.Fatal(err)
			}
			fillRandom(t, s, 300, 1)
			s.Delete(gid(5))
			s.Delete(gid(250))
			path := writeV3(t, s, 42)

			if !IsV3Snapshot(path) {
				t.Fatal("IsV3Snapshot = false for a v3 file")
			}

			// Reload at a different shard count: contents must match
			// bit for bit regardless of sharding.
			got, wm, err := LoadSnapshotV3(path, 9)
			if err != nil {
				t.Fatal(err)
			}
			if wm != 42 {
				t.Fatalf("watermark = %d, want 42", wm)
			}
			if !got.Equal(s) {
				t.Fatal("round-tripped store differs")
			}
		})
	}
}

func TestV3EmptyStore(t *testing.T) {
	s, err := NewPrecision(4, 3, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	path := writeV3(t, s, 7)
	got, wm, err := LoadSnapshotV3(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 7 || got.Len() != 0 {
		t.Fatalf("empty store round trip: wm=%d len=%d", wm, got.Len())
	}
}

func TestV3CrossPrecisionLoad(t *testing.T) {
	src, err := NewPrecision(6, 4, F64)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, src, 200, 2)
	path := writeV3(t, src, 0)

	for _, target := range []Precision{F32, SQ8} {
		got, _, err := LoadSnapshotV3At(path, 4, target)
		if err != nil {
			t.Fatal(err)
		}
		if got.Precision() != target || got.Len() != src.Len() {
			t.Fatalf("%s: prec=%s len=%d", target, got.Precision(), got.Len())
		}
		// The converted store must equal a direct conversion through
		// the upsert path.
		want, _ := NewPrecision(6, 4, target)
		for _, id := range src.IDs() {
			vec, _ := src.Get(id)
			if err := want.Upsert(id, vec); err != nil {
				t.Fatal(err)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("%s: cross-precision load differs from upsert conversion", target)
		}
	}
}

// TestV3GobParity checks the v3 copy loader and the gob loader
// materialize identical stores from the same source.
func TestV3GobParity(t *testing.T) {
	s, err := NewPrecision(5, 4, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, s, 150, 3)
	path := writeV3(t, s, 9)
	fromV3, wm3, err := LoadSnapshotV3(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	gobPath := filepath.Join(t.TempDir(), "store.gob")
	f, _ := os.Create(gobPath)
	if err := s.SaveSnapshot(f, 9); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, _ := os.Open(gobPath)
	fromGob, wmG, err := LoadSnapshot(g, 4)
	g.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wm3 != wmG {
		t.Fatalf("watermarks differ: v3=%d gob=%d", wm3, wmG)
	}
	if !fromV3.Equal(fromGob) {
		t.Fatal("v3 and gob loads differ")
	}
}

// corruptV3 flips one byte at off in a copy of the file and returns
// the copy's path.
func corruptV3(t *testing.T, path string, off int64) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	data[off] ^= 0x40
	out := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestV3CorruptionRejected walks the corruption matrix the issue
// demands: a bit flip in the header, the section table, and every
// section body must be rejected at open — by both loaders.
func TestV3CorruptionRejected(t *testing.T) {
	s, err := NewPrecision(4, 2, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, s, 64, 4)
	path := writeV3(t, s, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := parseV3(data)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]int64{
		"header-magic":     0,
		"header-dim":       12,
		"header-count":     24,
		"header-crc":       60,
		"table-entry":      int64(l.tableOff) + 8,
		"table-crc":        -1,
		"truncated-header": 0, // handled below
	}
	for i := range l.sections {
		sec := l.sections[i]
		if sec.length == 0 {
			continue
		}
		name := map[v3Kind]string{v3KindIDs: "ids", v3KindPayload: "payload", v3KindNorms: "norms", v3KindMeta: "meta"}[sec.kind]
		cases[name+"-sec"] = int64(sec.off)
		cases[name+"-sec-end"] = int64(sec.off + sec.length - 1)
	}

	for name, off := range cases {
		t.Run(name, func(t *testing.T) {
			var bad string
			if name == "truncated-header" {
				bad = filepath.Join(t.TempDir(), "trunc.snap")
				if err := os.WriteFile(bad, data[:40], 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				bad = corruptV3(t, path, off)
			}
			if _, _, err := LoadSnapshotV3(bad, 2); err == nil {
				t.Fatal("copy loader accepted corrupt snapshot")
			}
			if st, _, err := OpenMmap(bad); err == nil {
				st.Close()
				t.Fatal("mmap loader accepted corrupt snapshot")
			}
		})
	}

	// Truncated mid-file: the table offset points past EOF.
	trunc := filepath.Join(t.TempDir(), "trunc2.snap")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotV3(trunc, 2); err == nil {
		t.Fatal("copy loader accepted truncated snapshot")
	}
	if st, _, err := OpenMmap(trunc); err == nil {
		st.Close()
		t.Fatal("mmap loader accepted truncated snapshot")
	}
}

// FuzzV3Parse hammers the header/section-table decoder: arbitrary
// bytes must never panic, and anything parseV3 accepts must survive
// verifySections without faulting.
func FuzzV3Parse(f *testing.F) {
	s, err := NewPrecision(3, 2, SQ8)
	if err != nil {
		f.Fatal(err)
	}
	fillRandom(f, s, 20, 5)
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.snap")
	file, err := os.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.SaveSnapshotV3(file, 3); err != nil {
		f.Fatal(err)
	}
	file.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:v3HeaderSize])
	f.Add([]byte(v3Magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := parseV3(data)
		if err != nil {
			return
		}
		_ = l.verifySections(data)
	})
}

func BenchmarkV3Save(b *testing.B) {
	s, err := NewPrecision(64, 0, SQ8)
	if err != nil {
		b.Fatal(err)
	}
	fillRandom(b, s, 10_000, 6)
	path := filepath.Join(b.TempDir(), "bench.snap")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.SaveSnapshotV3(f, 0); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
