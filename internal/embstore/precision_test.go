package embstore

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

var allPrecisions = []Precision{F64, F32, SQ8}

// maxLaneErr is the acceptable |stored − original| per lane for a
// precision, given the vector it encodes.
func maxLaneErr(p Precision, v *VecView, orig []float64) float64 {
	switch p {
	case F64:
		return 0
	case F32:
		m := 0.0
		for _, x := range orig {
			m = math.Max(m, math.Abs(x))
		}
		return m * 1e-6
	default:
		return v.Scale/2 + 1e-9*(math.Abs(v.Offset)+256*v.Scale+1)
	}
}

// TestPrecisionRoundTrip: upsert → Get reconstructs within the
// precision's lane bound, norms carry the original value, deletes
// swap-remove correctly, for every layout.
func TestPrecisionRoundTrip(t *testing.T) {
	for _, p := range allPrecisions {
		t.Run(p.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			const dim, n = 9, 137
			s, err := NewPrecision(dim, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			if s.Precision() != p {
				t.Fatalf("Precision() = %v", s.Precision())
			}
			orig := make(map[graph.NodeID][]float64)
			for i := 0; i < n; i++ {
				vec := make([]float64, dim)
				for j := range vec {
					vec[j] = rng.NormFloat64() * 3
				}
				id := graph.NodeID(i)
				orig[id] = vec
				if err := s.Upsert(id, vec); err != nil {
					t.Fatal(err)
				}
			}
			for id, vec := range orig {
				got, ok := s.Get(id)
				if !ok {
					t.Fatalf("id %d missing", id)
				}
				var bound float64
				s.With(id, func(v *VecView) {
					bound = maxLaneErr(p, v, vec)
					if want := vecmath.Norm(vec); v.Norm != want {
						t.Fatalf("id %d: norm %g want %g", id, v.Norm, want)
					}
					if v.Dim() != dim {
						t.Fatalf("id %d: view dim %d", id, v.Dim())
					}
				})
				for j := range vec {
					if d := math.Abs(got[j] - vec[j]); d > bound {
						t.Fatalf("%s id %d lane %d: |%g − %g| = %g > %g", p, id, j, got[j], vec[j], d, bound)
					}
				}
			}
			// Delete half; the rest must survive intact.
			for i := 0; i < n; i += 2 {
				if !s.Delete(graph.NodeID(i)) {
					t.Fatalf("delete %d = false", i)
				}
			}
			if s.Len() != n/2 {
				t.Fatalf("len %d after deletes", s.Len())
			}
			for i := 1; i < n; i += 2 {
				got, ok := s.Get(graph.NodeID(i))
				if !ok {
					t.Fatalf("id %d gone after unrelated deletes", i)
				}
				vec := orig[graph.NodeID(i)]
				var bound float64
				s.With(graph.NodeID(i), func(v *VecView) { bound = maxLaneErr(p, v, vec) })
				for j := range vec {
					if d := math.Abs(got[j] - vec[j]); d > bound {
						t.Fatalf("%s id %d lane %d after deletes: err %g > %g", p, i, j, d, bound)
					}
				}
			}
		})
	}
}

// TestPrecisionSnapshotRoundTrip: Save → Load at the same precision is
// lossless (Equal: bit-identical slab representations), for every
// layout — and survives a second cycle without drift.
func TestPrecisionSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	emb := tensor.Randn(100, 8, 1, rng)
	for _, p := range allPrecisions {
		t.Run(p.String(), func(t *testing.T) {
			s, err := FromMatrixPrecision(emb, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()), 7) // different shard count on purpose
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Precision() != p {
				t.Fatalf("native load precision %v, want %v", loaded.Precision(), p)
			}
			if !s.Equal(loaded) {
				t.Fatal("loaded store differs from saved store")
			}
			// Second cycle: quantized representations must not drift.
			var buf2 bytes.Buffer
			if err := loaded.Save(&buf2); err != nil {
				t.Fatal(err)
			}
			again, err := Load(bytes.NewReader(buf2.Bytes()), 3)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Equal(again) {
				t.Fatal("second save/load cycle drifted")
			}
		})
	}
}

// TestCrossPrecisionLoad: a snapshot written at any precision loads
// into a store of any other precision, reconstructing within the
// coarser precision's bound and preserving original norms.
func TestCrossPrecisionLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	emb := tensor.Randn(60, 6, 1, rng)
	for _, from := range allPrecisions {
		for _, to := range allPrecisions {
			t.Run(from.String()+"->"+to.String(), func(t *testing.T) {
				src, err := FromMatrixPrecision(emb, 4, from)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := src.SaveSnapshot(&buf, 99); err != nil {
					t.Fatal(err)
				}
				dst, wm, err := LoadSnapshotAt(bytes.NewReader(buf.Bytes()), 4, to)
				if err != nil {
					t.Fatal(err)
				}
				if wm != 99 {
					t.Fatalf("watermark %d", wm)
				}
				if dst.Precision() != to {
					t.Fatalf("precision %v want %v", dst.Precision(), to)
				}
				if dst.Len() != src.Len() {
					t.Fatalf("len %d want %d", dst.Len(), src.Len())
				}
				// Each vector must reconstruct within the sum of both
				// precisions' lane bounds, and norms must survive the trip
				// bit-exact (they ride the wire, not the codes).
				for i := 0; i < emb.Rows; i++ {
					id := graph.NodeID(i)
					orig := emb.Row(i)
					got, ok := dst.Get(id)
					if !ok {
						t.Fatalf("id %d missing", id)
					}
					var bound float64
					src.With(id, func(v *VecView) { bound += maxLaneErr(from, v, orig) })
					dst.With(id, func(v *VecView) {
						bound += maxLaneErr(to, v, orig)
						var srcNorm float64
						src.With(id, func(sv *VecView) { srcNorm = sv.Norm })
						if v.Norm != srcNorm {
							t.Fatalf("id %d: norm %g want %g", id, v.Norm, srcNorm)
						}
					})
					for j := range orig {
						if d := math.Abs(got[j] - orig[j]); d > bound {
							t.Fatalf("id %d lane %d: err %g > %g", id, j, d, bound)
						}
					}
				}
			})
		}
	}
}

// wireMirror mirrors storeWire field-for-field so tests can synthesize
// legacy and corrupt snapshots through gob (gob matches struct fields
// by name, not type identity).
type wireMirror struct {
	Version   int
	Dim       int
	Watermark uint64
	IDs       []graph.NodeID
	Data      []float64
	Precision int
	Data32    []float32
	Codes     []int8
	Scales    []float64
	Offsets   []float64
	Norms     []float64
}

// TestLegacyV1SnapshotLoads: a version-1 snapshot (float64 only, no
// precision/sidecar fields — the pre-compression wire format) loads
// natively as f64 and upconverts into sq8 on request.
func TestLegacyV1SnapshotLoads(t *testing.T) {
	type wireV1 struct {
		Version   int
		Dim       int
		Watermark uint64
		IDs       []graph.NodeID
		Data      []float64
	}
	w := wireV1{
		Version:   1,
		Dim:       3,
		Watermark: 7,
		IDs:       []graph.NodeID{1, 2, 5},
		Data:      []float64{1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	s, wm, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 7 || s.Precision() != F64 || s.Len() != 3 {
		t.Fatalf("v1 load: wm %d prec %v len %d", wm, s.Precision(), s.Len())
	}
	if v, _ := s.Get(5); v[2] != 9 {
		t.Fatalf("v1 load: Get(5) = %v", v)
	}
	// Upconvert on boot: same bytes, sq8 target.
	q, _, err := LoadSnapshotAt(bytes.NewReader(buf.Bytes()), 2, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Precision() != SQ8 || q.Len() != 3 {
		t.Fatalf("v1→sq8: prec %v len %d", q.Precision(), q.Len())
	}
	got, _ := q.Get(2)
	var bound float64
	q.With(2, func(v *VecView) { bound = maxLaneErr(SQ8, v, []float64{4, 5, 6}) })
	for j, want := range []float64{4, 5, 6} {
		if d := math.Abs(got[j] - want); d > bound {
			t.Fatalf("v1→sq8 lane %d: err %g > %g", j, d, bound)
		}
	}
}

// TestCorruptSnapshotRejected: truncated or inconsistent payloads and
// sidecars must fail loudly, never load as garbage.
func TestCorruptSnapshotRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	emb := tensor.Randn(20, 4, 1, rng)
	src, err := FromMatrixPrecision(emb, 2, SQ8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var w wireMirror
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&w); err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mut func(*wireMirror), wantSub string) {
		t.Helper()
		c := w
		mut(&c)
		var cb bytes.Buffer
		if err := gob.NewEncoder(&cb).Encode(c); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadSnapshot(bytes.NewReader(cb.Bytes()), 2)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, wantSub)
		}
	}
	corrupt("truncated scales sidecar", func(c *wireMirror) { c.Scales = c.Scales[:len(c.Scales)-1] }, "sidecars")
	corrupt("truncated norms sidecar", func(c *wireMirror) { c.Norms = nil }, "sidecars")
	corrupt("truncated codes", func(c *wireMirror) { c.Codes = c.Codes[:len(c.Codes)-3] }, "codes")
	corrupt("future version", func(c *wireMirror) { c.Version = 99 }, "version")
	corrupt("unknown precision", func(c *wireMirror) { c.Precision = 7 }, "precision")
	corrupt("bad dim", func(c *wireMirror) { c.Dim = 0 }, "dim")

	// Truncated byte stream (mid-gob): must surface a load error.
	if _, _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), 2); err == nil {
		t.Fatal("truncated stream loaded cleanly")
	}
}

// TestBytesPerVector documents the footprint the compressed plane is
// buying at the README's reference dimension.
func TestBytesPerVector(t *testing.T) {
	if got := F64.BytesPerVector(128); got != 1032 {
		t.Fatalf("f64: %d", got)
	}
	if got := F32.BytesPerVector(128); got != 520 {
		t.Fatalf("f32: %d", got)
	}
	if got := SQ8.BytesPerVector(128); got != 160 {
		t.Fatalf("sq8: %d", got)
	}
}

// TestParsePrecision covers the flag spellings.
func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{"f64": F64, "f32": F32, "sq8": SQ8, "float32": F32, "int8": SQ8, "": F64} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision(f16) succeeded")
	}
}

// TestEqualAcrossPrecisions: stores of different precisions are never
// Equal, even with identical contents.
func TestEqualAcrossPrecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	emb := tensor.Randn(10, 4, 1, rng)
	a, _ := FromMatrixPrecision(emb, 2, F64)
	b, _ := FromMatrixPrecision(emb, 2, F32)
	if a.Equal(b) {
		t.Fatal("f64 store Equal f32 store")
	}
}
