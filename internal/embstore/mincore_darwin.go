//go:build darwin

package embstore

import "syscall"

func mincore(b, vec []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Mincore(b, vec)
}
