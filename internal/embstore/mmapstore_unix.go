//go:build linux || darwin

// Cold-mode store backend: OpenMmap maps a v3 snapshot read-only and
// serves the base tier straight out of the page cache, so boot cost is
// one integrity pass over the file (no heap materialization) and the
// resident set tracks the access pattern instead of the dataset. WAL
// applies land in the per-shard heap overlay; Remap folds the overlay
// away when the rotation path writes a fresh base.
package embstore

import (
	"fmt"
	"os"
	"syscall"

	"ehna/internal/graph"
)

// OpenMmap opens the v3 snapshot at path as a cold store, returning the
// store and the WAL watermark the snapshot was stamped with. The file
// is mapped read-only and every section CRC is verified before any
// vector is served (a sequential pass; the faulted pages are dropped
// again afterwards so the post-boot resident set starts near zero).
// Vector-slab sections are advised MADV_RANDOM: re-rank touches
// arbitrary rows and sequential readahead would just evict hotter
// pages.
func OpenMmap(path string) (*Store, uint64, error) {
	if !hostLittleEndian {
		return nil, 0, fmt.Errorf("embstore: v3 snapshots require a little-endian host")
	}
	l, data, err := mapV3(path)
	if err != nil {
		return nil, 0, err
	}
	s, err := NewPrecision(l.dim, l.shards, l.prec)
	if err != nil {
		syscall.Munmap(data)
		return nil, 0, err
	}
	s.attachColdBase(l, data)
	s.cold.Store(&coldInfo{path: path, data: data, payloadBytes: l.payloadBytes()})
	return s, l.watermark, nil
}

// mapV3 maps, parses and integrity-checks a v3 snapshot. On success the
// caller owns the mapping.
func mapV3(path string) (*v3Layout, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("embstore: mmap open: %v", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("embstore: mmap open: %v", err)
	}
	size := fi.Size()
	if size < v3HeaderSize {
		return nil, nil, fmt.Errorf("embstore: mmap open %s: %d bytes, not a v3 snapshot", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("embstore: mmap %s: %v", path, err)
	}
	l, err := parseV3(data)
	if err == nil {
		// The CRC pass reads the whole image once; advise sequential so
		// readahead batches the faults, then drop the pages so "just
		// booted" RSS reflects the mapping's laziness, not the check.
		madvise(data, syscall.MADV_SEQUENTIAL)
		err = l.verifySections(data)
		madvise(data, syscall.MADV_DONTNEED)
	}
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	for i := range l.sections {
		if sec := &l.sections[i]; sec.kind == v3KindPayload && sec.length > 0 {
			madvise(data[sec.off:sec.off+sec.length], syscall.MADV_RANDOM)
		}
	}
	return l, data, nil
}

// madvise is advisory twice over: alignment of a section inside the
// mapping is 4096, which may undershoot the system page size (16k
// arm64 kernels), so EINVAL here is expected and harmless.
func madvise(b []byte, advice int) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, advice)
}

// Remap replaces a cold store's base with the v3 snapshot at path and
// clears the overlays: the rotation fold. The caller must have written
// path from this store (same dim/precision/shards) and must hold off
// writers for the whole call — the daemon runs it under its applier
// lock, right after SaveSnapshotV3, so the new base is exactly the
// pre-fold contents. Readers keep working throughout: each shard flips
// under its write lock, and the old mapping is released only after
// every shard has let go of it.
func (s *Store) Remap(path string) error {
	old := s.cold.Load()
	if old == nil {
		return fmt.Errorf("embstore: remap of a non-mmap store")
	}
	l, data, err := mapV3(path)
	if err != nil {
		return err
	}
	if l.dim != s.dim || l.prec != s.prec || l.shards != len(s.shards) {
		syscall.Munmap(data)
		return fmt.Errorf("embstore: remap %s: dim/precision/shards %d/%s/%d, store has %d/%s/%d",
			path, l.dim, l.prec, l.shards, s.dim, s.prec, len(s.shards))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		idsSec, paySec, extraSec := l.shardSections(i)
		b := &baseSection{ids: castSlice[graph.NodeID](data[idsSec.off : idsSec.off+idsSec.length])}
		pay := data[paySec.off : paySec.off+paySec.length]
		extra := data[extraSec.off : extraSec.off+extraSec.length]
		switch s.prec {
		case F64:
			b.vecs = castSlice[float64](pay)
			b.norms = castSlice[float64](extra)
		case F32:
			b.vecs32 = castSlice[float32](pay)
			b.norms = castSlice[float64](extra)
		case SQ8:
			b.codes = castSlice[int8](pay)
			b.meta = castSlice[sq8Meta](extra)
		}
		sh.base = b
		clear(sh.slot)
		sh.ids = sh.ids[:0]
		sh.vecs = sh.vecs[:0]
		sh.vecs32 = sh.vecs32[:0]
		sh.codes = sh.codes[:0]
		sh.norms = sh.norms[:0]
		sh.meta = sh.meta[:0]
		sh.mu.Unlock()
	}
	s.cold.Store(&coldInfo{path: path, data: data, payloadBytes: l.payloadBytes()})
	// Every shard has cycled through its write lock above, so no reader
	// still holds a view into the old mapping (views never outlive the
	// shard lock that produced them).
	return syscall.Munmap(old.data)
}

// Close releases a cold store's mapping. The store must be quiesced:
// any view into the base after Close is a fault. RAM stores need no
// close; this is a no-op for them.
func (s *Store) Close() error {
	old := s.cold.Swap(nil)
	if old == nil {
		return nil
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.base = nil
		sh.mu.Unlock()
	}
	return syscall.Munmap(old.data)
}

// MappedResidentBytes reports how much of the snapshot mapping is
// currently page-cache resident (mincore), the honest numerator of the
// cold tier's memory story: RSS alone can't distinguish "mapped" from
// "touched". Returns 0 for RAM stores, -1 when the kernel won't say.
func (s *Store) MappedResidentBytes() int64 {
	c := s.cold.Load()
	if c == nil || len(c.data) == 0 {
		return 0
	}
	pg := os.Getpagesize()
	vec := make([]byte, (len(c.data)+pg-1)/pg)
	if err := mincore(c.data, vec); err != nil {
		return -1
	}
	var resident int64
	for _, v := range vec {
		if v&1 != 0 {
			resident++
		}
	}
	return resident * int64(pg)
}
