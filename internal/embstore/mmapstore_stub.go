//go:build !linux && !darwin

package embstore

import "fmt"

var errNoMmap = fmt.Errorf("embstore: mmap-backed stores are only supported on linux and darwin")

// OpenMmap is unavailable on this platform; use LoadSnapshotV3 (RAM
// mode) instead.
func OpenMmap(path string) (*Store, uint64, error) { return nil, 0, errNoMmap }

// Remap is unavailable on this platform.
func (s *Store) Remap(path string) error { return errNoMmap }

// Close is a no-op: only mmap-backed stores hold a mapping.
func (s *Store) Close() error { return nil }

// MappedResidentBytes reports 0: no mapping exists on this platform.
func (s *Store) MappedResidentBytes() int64 { return 0 }
