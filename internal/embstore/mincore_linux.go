//go:build linux

package embstore

import (
	"syscall"
	"unsafe"
)

// mincore fills vec with one byte per page of b, bit 0 set when the
// page is resident. The linux syscall package has no wrapper, so this
// issues the raw syscall (x/sys/unix would, but the module is
// dependency-free by design).
func mincore(b, vec []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return errno
	}
	return nil
}
