package embstore

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/testutil"
	"ehna/internal/wal"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("dim 0 accepted")
	}
	s, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != DefaultShards {
		t.Fatalf("shards = %d, want default %d", s.NumShards(), DefaultShards)
	}
}

func TestUpsertGetDelete(t *testing.T) {
	s, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Upsert(7, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Upsert(7, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after double upsert", s.Len())
	}
	v, ok := s.Get(7)
	if !ok || v[0] != 4 || v[2] != 6 {
		t.Fatalf("Get(7) = %v, %v", v, ok)
	}
	// Get must return a copy.
	v[0] = 99
	v2, _ := s.Get(7)
	if v2[0] != 4 {
		t.Fatal("Get returned a view, not a copy")
	}
	if err := s.Upsert(8, []float64{1, 2}); err == nil {
		t.Fatal("wrong-dim upsert accepted")
	}
	if !s.Delete(7) {
		t.Fatal("Delete(7) = false for present id")
	}
	if s.Delete(7) {
		t.Fatal("Delete(7) = true for absent id")
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("Get(7) after delete")
	}
}

func TestBulkLoadCoversAllRowsAndShards(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	emb := tensor.Randn(257, 5, 1, rng)
	s, err := FromMatrix(emb, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 257 {
		t.Fatalf("Len = %d, want 257", s.Len())
	}
	for i := 0; i < emb.Rows; i++ {
		v, ok := s.Get(graph.NodeID(i))
		if !ok {
			t.Fatalf("node %d missing", i)
		}
		for j, x := range v {
			if x != emb.At(i, j) {
				t.Fatalf("node %d dim %d: %g != %g", i, j, x, emb.At(i, j))
			}
		}
	}
	// Every shard should hold something at 257 ids over 8 shards, unless
	// the hash is badly broken.
	for sh := 0; sh < s.NumShards(); sh++ {
		n := 0
		s.RangeShard(sh, func(graph.NodeID, *VecView) bool { n++; return true })
		if n == 0 {
			t.Fatalf("shard %d empty after bulk load of 257 ids", sh)
		}
	}
}

func TestWithReportsMaintainedNorm(t *testing.T) {
	s, _ := New(3, 2)
	_ = s.Upsert(4, []float64{3, 4, 0})
	var norm float64
	if !s.With(4, func(v *VecView) { norm = v.Norm }) {
		t.Fatal("With(4) = false")
	}
	if norm != 5 {
		t.Fatalf("norm = %g, want 5", norm)
	}
	_ = s.Upsert(4, []float64{0, 0, 2})
	s.With(4, func(v *VecView) { norm = v.Norm })
	if norm != 2 {
		t.Fatalf("norm after re-upsert = %g, want 2", norm)
	}
}

func TestIDsSorted(t *testing.T) {
	s, _ := New(1, 4)
	for _, id := range []graph.NodeID{42, 7, 19, 3} {
		_ = s.Upsert(id, []float64{1})
	}
	ids := s.IDs()
	want := []graph.NodeID{3, 7, 19, 42}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	emb := tensor.Randn(50, 4, 1, rng)
	s, err := FromMatrix(emb, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Delete(13)
	_ = s.Upsert(1000, []float64{1, 2, 3, 4})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), 7) // different shard count
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() || loaded.Dim() != s.Dim() {
		t.Fatalf("loaded %d×%d, want %d×%d", loaded.Len(), loaded.Dim(), s.Len(), s.Dim())
	}
	for _, id := range s.IDs() {
		a, _ := s.Get(id)
		b, ok := loaded.Get(id)
		if !ok {
			t.Fatalf("node %d missing after load", id)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d differs after round trip", id)
			}
		}
	}
	// Identical contents must serialize to identical bytes.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot bytes differ across save/load/save")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot"), 4); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromModelSnapshot(t *testing.T) {
	g := testutil.TwoCommunities(8, 0.6, 3)
	cfg := ehna.DefaultConfig()
	cfg.Dim = 6
	cfg.Epochs = 1
	cfg.Walk.NumWalks = 2
	cfg.Walk.WalkLen = 3
	m, err := ehna.NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := FromModelSnapshot(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != g.NumNodes() || s.Dim() != cfg.Dim {
		t.Fatalf("store %d×%d, want %d×%d", s.Len(), s.Dim(), g.NumNodes(), cfg.Dim)
	}
	raw := m.RawEmbeddings()
	v, _ := s.Get(0)
	for j := range v {
		if v[j] != raw.At(0, j) {
			t.Fatal("store row 0 differs from raw embedding table")
		}
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	s, _ := New(8, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			vec := make([]float64, 8)
			for i := 0; i < 500; i++ {
				id := graph.NodeID(rng.Intn(256))
				switch rng.Intn(4) {
				case 0:
					vec[0] = float64(i)
					_ = s.Upsert(id, vec)
				case 1:
					_, _ = s.Get(id)
				case 2:
					_ = s.Delete(id)
				default:
					s.RangeShard(rng.Intn(8), func(graph.NodeID, *VecView) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestWithShardBatchLookup(t *testing.T) {
	s, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Upsert(graph.NodeID(i), []float64{float64(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Group all IDs by shard, then look each group up in one batch.
	groups := make([][]graph.NodeID, s.NumShards())
	for i := 0; i < 100; i++ {
		id := graph.NodeID(i)
		groups[s.ShardOf(id)] = append(groups[s.ShardOf(id)], id)
	}
	seen := make(map[graph.NodeID]float64)
	for si, ids := range groups {
		// Include a missing ID: it must be skipped, not panic.
		s.WithShard(si, append(ids, graph.NodeID(10_000+si)), func(id graph.NodeID, v *VecView) {
			seen[id] = v.F64[0]
			if v.Norm != v.F64[0] {
				t.Errorf("id %d: norm %g want %g", id, v.Norm, v.F64[0])
			}
		})
	}
	if len(seen) != 100 {
		t.Fatalf("batch lookup found %d of 100", len(seen))
	}
	for id, v := range seen {
		if v != float64(id) {
			t.Fatalf("id %d: vec[0] %g", id, v)
		}
	}
}

// TestSnapshotWatermarkRoundTrip: SaveSnapshot stamps a watermark,
// LoadSnapshot returns it, and the plain Save path stays at 0 (and
// therefore byte-compatible with pre-watermark snapshots).
func TestSnapshotWatermarkRoundTrip(t *testing.T) {
	s, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Upsert(1, []float64{1, 2})
	_ = s.Upsert(9, []float64{3, 4})

	var buf bytes.Buffer
	if err := s.SaveSnapshot(&buf, 12345); err != nil {
		t.Fatal(err)
	}
	loaded, wm, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 12345 {
		t.Fatalf("watermark %d, want 12345", wm)
	}
	if !loaded.Equal(s) {
		t.Fatal("contents changed across watermarked round trip")
	}

	buf.Reset()
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, wm, err = LoadSnapshot(bytes.NewReader(buf.Bytes()), 2); err != nil || wm != 0 {
		t.Fatalf("plain Save produced watermark %d (err %v), want 0", wm, err)
	}
}

// TestApplyWAL drives the store through WAL records and checks the
// result matches direct mutation, including replay idempotence over a
// store that already contains a suffix of the log.
func TestApplyWAL(t *testing.T) {
	recs := []wal.Record{
		{Seq: 1, Op: wal.OpUpsert, ID: 1, Vec: []float64{1, 1}},
		{Seq: 2, Op: wal.OpUpsert, ID: 2, Vec: []float64{2, 2}},
		{Seq: 3, Op: wal.OpDelete, ID: 1},
		{Seq: 4, Op: wal.OpUpsert, ID: 2, Vec: []float64{5, 5}},
		{Seq: 5, Op: wal.OpDelete, ID: 99}, // delete of absent id is a no-op
	}
	apply := func(s *Store, from int) {
		t.Helper()
		for _, r := range recs[from:] {
			if err := s.ApplyWAL(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, _ := New(2, 4)
	_ = want.Upsert(2, []float64{5, 5})

	once, _ := New(2, 4)
	apply(once, 0)
	if !once.Equal(want) {
		t.Fatal("ApplyWAL diverged from direct mutation")
	}
	// A store already holding records 1-2 reconverges when the full log
	// replays over it (snapshot bleed-in case).
	bled, _ := New(2, 3)
	apply(bled, 0)
	apply(bled, 0)
	if !bled.Equal(want) {
		t.Fatal("double replay diverged")
	}
	if err := once.ApplyWAL(wal.Record{Seq: 6, Op: 77, ID: 1}); err == nil {
		t.Fatal("unknown op applied cleanly")
	}
}

// TestStoreEqual covers the comparison helper the crash-recovery
// harness relies on.
func TestStoreEqual(t *testing.T) {
	a, _ := New(2, 4)
	b, _ := New(2, 7) // shard count must not matter
	for i := graph.NodeID(0); i < 20; i++ {
		v := []float64{float64(i), -float64(i)}
		_ = a.Upsert(i, v)
		_ = b.Upsert(i, v)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("identical stores compare unequal")
	}
	_ = b.Upsert(3, []float64{0.5, 0.5})
	if a.Equal(b) {
		t.Fatal("differing vector undetected")
	}
	_ = b.Upsert(3, []float64{3, -3})
	if !a.Equal(b) {
		t.Fatal("repaired store compares unequal")
	}
	_ = b.Delete(19)
	if a.Equal(b) {
		t.Fatal("missing id undetected")
	}
	c, _ := New(3, 4)
	if a.Equal(c) {
		t.Fatal("dimension mismatch undetected")
	}
}
