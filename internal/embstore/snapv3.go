// v3 snapshot format ("EHNASNP3"): the flat, page-aligned successor to
// the gob storeWire encoding, designed so the same file serves two
// loaders. The copy loader (RAM mode) reads it once and materializes
// slabs, like the gob path but without decoder allocation churn; the
// mmap loader (cold mode, mmapstore_unix.go) maps it read-only and
// serves VecViews straight out of the mapping, so boot cost is a page
// table — not a heap — and the resident set is whatever the access
// pattern actually touches.
//
// Layout (all integers little-endian; the format is defined LE and the
// casting loaders refuse to run on big-endian hosts):
//
//	header (64 B, CRC32C-terminated)
//	  [0:8)   magic "EHNASNP3"
//	  [8:12)  version u32 = 3
//	  [12:16) dim u32
//	  [16:20) precision u32 (Precision enum)
//	  [20:24) shard count u32
//	  [24:32) vector count u64
//	  [32:40) WAL watermark u64
//	  [40:44) section alignment u32 = 4096
//	  [44:48) section count u32 (= 3 × shards)
//	  [48:56) section table offset u64
//	  [56:60) reserved u32 = 0
//	  [60:64) CRC32C of bytes [0:60)
//	sections, each padded to the section alignment:
//	  per shard, in shard order: ids | payload | norms (f64/f32) or
//	  sq8 sidecar (sq8)
//	section table: sectionCount × 40 B entries, then CRC32C of the
//	  entry bytes
//	  entry: kind u32 | shard u32 | rows u64 | offset u64 | length u64 |
//	         CRC32C u32 | reserved u32
//
// Sections hold the slab representations verbatim: ids are ascending
// uint32 per shard (so the mmap loader resolves membership by binary
// search instead of materializing an id→slot map), payload is the
// native-precision row data, norms are float64, and the sq8 sidecar is
// the 32-byte sq8Meta record. 4096-byte alignment makes every cast
// pointer alignment-safe and lets madvise target vector slabs
// precisely. Every section carries its own CRC32C so a single flipped
// bit anywhere in the file is rejected at open, not served as a
// garbage vector.
package embstore

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"

	"ehna/internal/graph"
	"ehna/internal/vecmath"
)

const (
	v3Magic        = "EHNASNP3"
	v3Version      = 3
	v3HeaderSize   = 64
	v3SectionAlign = 4096
	v3EntrySize    = 40
)

type v3Kind uint32

const (
	v3KindIDs     v3Kind = 1
	v3KindPayload v3Kind = 2
	v3KindNorms   v3Kind = 3
	v3KindMeta    v3Kind = 4
)

var v3CRC = crc32.MakeTable(crc32.Castagnoli)

// The casting loaders and writer reinterpret slab memory as raw bytes,
// so the on-disk format inherits the host byte order; it is defined as
// little-endian and refused elsewhere (the gob format remains the
// portable interchange).
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// The sq8 sidecar section is the in-memory sq8Meta record written
// verbatim; these asserts pin the layout the format depends on.
var (
	_ [unsafe.Sizeof(sq8Meta{})]byte           = [32]byte{}
	_ [unsafe.Offsetof(sq8Meta{}.offset)]byte  = [8]byte{}
	_ [unsafe.Offsetof(sq8Meta{}.norm)]byte    = [16]byte{}
	_ [unsafe.Offsetof(sq8Meta{}.codeSum)]byte = [24]byte{}
	_ [unsafe.Sizeof(graph.NodeID(0))]byte     = [4]byte{}
)

// sliceBytes reinterprets a slice's backing array as raw bytes.
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// castSlice reinterprets raw bytes as a []T. b must be a whole number
// of elements and aligned for T (section alignment guarantees both).
func castSlice[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(*new(T))))
}

// v3PayloadRow returns the payload bytes one row occupies at prec.
func v3PayloadRow(prec Precision, dim int) int {
	switch prec {
	case F32:
		return 4 * dim
	case SQ8:
		return dim
	default:
		return 8 * dim
	}
}

// v3RowBytes returns the expected section length for rows rows of kind k.
func v3RowBytes(k v3Kind, prec Precision, dim int, rows uint64) (uint64, bool) {
	var per uint64
	switch k {
	case v3KindIDs:
		per = 4
	case v3KindPayload:
		per = uint64(v3PayloadRow(prec, dim))
	case v3KindNorms:
		if prec == SQ8 {
			return 0, false
		}
		per = 8
	case v3KindMeta:
		if prec != SQ8 {
			return 0, false
		}
		per = 32
	default:
		return 0, false
	}
	return rows * per, true
}

type v3Section struct {
	kind   v3Kind
	shard  uint32
	rows   uint64
	off    uint64
	length uint64
	crc    uint32
}

type v3Layout struct {
	dim       int
	prec      Precision
	shards    int
	count     uint64
	watermark uint64
	tableOff  uint64
	sections  []v3Section
}

// shardSections groups a shard's sections by kind: [ids, payload,
// norms-or-meta].
func (l *v3Layout) shardSections(shard int) (ids, payload, extra *v3Section) {
	for i := range l.sections {
		sec := &l.sections[i]
		if int(sec.shard) != shard {
			continue
		}
		switch sec.kind {
		case v3KindIDs:
			ids = sec
		case v3KindPayload:
			payload = sec
		case v3KindNorms, v3KindMeta:
			extra = sec
		}
	}
	return ids, payload, extra
}

func le32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}
func le64(b []byte, off int) uint64 {
	return uint64(le32(b, off)) | uint64(le32(b, off+4))<<32
}
func putLE32(b []byte, off int, v uint32) {
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putLE64(b []byte, off int, v uint64) {
	putLE32(b, off, uint32(v))
	putLE32(b, off+4, uint32(v>>32))
}

// parseV3 validates the header and section table of a v3 snapshot image
// and returns its layout. It checks structure and the header/table CRCs
// only — touching O(table) bytes, so an mmap open faults in a handful
// of pages — and leaves per-section payload CRCs to verifySections.
// Every field is bounds- and overflow-checked before use: this is the
// surface FuzzV3Parse hammers.
func parseV3(data []byte) (*v3Layout, error) {
	fail := func(format string, args ...any) (*v3Layout, error) {
		return nil, fmt.Errorf("embstore: v3 snapshot: "+format, args...)
	}
	if len(data) < v3HeaderSize {
		return fail("%d bytes, want at least the %d-byte header", len(data), v3HeaderSize)
	}
	if string(data[:8]) != v3Magic {
		return fail("bad magic %q", data[:8])
	}
	if got := crc32.Checksum(data[:60], v3CRC); got != le32(data, 60) {
		return fail("header CRC mismatch (got %08x, stored %08x)", got, le32(data, 60))
	}
	if v := le32(data, 8); v != v3Version {
		return fail("version %d, want %d", v, v3Version)
	}
	l := &v3Layout{
		dim:       int(le32(data, 12)),
		prec:      Precision(le32(data, 16)),
		shards:    int(le32(data, 20)),
		count:     le64(data, 24),
		watermark: le64(data, 32),
		tableOff:  le64(data, 48),
	}
	if l.dim < 1 || l.dim > 1<<20 {
		return fail("dim %d out of range", l.dim)
	}
	if l.prec != F64 && l.prec != F32 && l.prec != SQ8 {
		return fail("unknown precision %d", int(l.prec))
	}
	if l.shards < 1 || l.shards > 1<<16 {
		return fail("shard count %d out of range", l.shards)
	}
	if a := le32(data, 40); a != v3SectionAlign {
		return fail("section alignment %d, want %d", a, v3SectionAlign)
	}
	secCount := le32(data, 44)
	if secCount != uint32(3*l.shards) {
		return fail("%d sections for %d shards, want %d", secCount, l.shards, 3*l.shards)
	}
	tableLen := uint64(secCount)*v3EntrySize + 4
	if l.tableOff < v3HeaderSize || l.tableOff%8 != 0 ||
		l.tableOff > uint64(len(data)) || tableLen > uint64(len(data))-l.tableOff {
		return fail("section table [%d, +%d) outside %d-byte file", l.tableOff, tableLen, len(data))
	}
	table := data[l.tableOff : l.tableOff+tableLen]
	entries := table[:len(table)-4]
	if got := crc32.Checksum(entries, v3CRC); got != le32(table, len(entries)) {
		return fail("section table CRC mismatch")
	}
	l.sections = make([]v3Section, secCount)
	// seen[shard] bit-tracks which kinds that shard has contributed; a
	// valid file has exactly ids+payload+extra per shard.
	seen := make([]uint8, l.shards)
	var total uint64
	var rowsPerShard = make([]uint64, l.shards)
	for i := range l.sections {
		e := entries[i*v3EntrySize:]
		sec := v3Section{
			kind:   v3Kind(le32(e, 0)),
			shard:  le32(e, 4),
			rows:   le64(e, 8),
			off:    le64(e, 16),
			length: le64(e, 24),
			crc:    le32(e, 32),
		}
		if int(sec.shard) >= l.shards {
			return fail("section %d: shard %d out of range", i, sec.shard)
		}
		want, ok := v3RowBytes(sec.kind, l.prec, l.dim, sec.rows)
		if !ok || sec.rows > 1<<40 {
			return fail("section %d: kind %d invalid for precision %s", i, sec.kind, l.prec)
		}
		if sec.length != want {
			return fail("section %d: %d bytes for %d rows, want %d", i, sec.length, sec.rows, want)
		}
		if sec.off < v3HeaderSize || sec.off%8 != 0 ||
			sec.off > l.tableOff || sec.length > l.tableOff-sec.off {
			return fail("section %d: [%d, +%d) outside data region", i, sec.off, sec.length)
		}
		var bit uint8
		switch sec.kind {
		case v3KindIDs:
			bit = 1
		case v3KindPayload:
			bit = 2
		default:
			bit = 4
		}
		if seen[sec.shard]&bit != 0 {
			return fail("section %d: duplicate kind %d for shard %d", i, sec.kind, sec.shard)
		}
		seen[sec.shard] |= bit
		if sec.kind == v3KindIDs {
			rowsPerShard[sec.shard] = sec.rows
			total += sec.rows
		}
		l.sections[i] = sec
	}
	for sh, bits := range seen {
		if bits != 7 {
			return fail("shard %d is missing sections (have mask %03b)", sh, bits)
		}
	}
	for i := range l.sections {
		if sec := &l.sections[i]; sec.rows != rowsPerShard[sec.shard] {
			return fail("section %d: %d rows, ids section has %d", i, sec.rows, rowsPerShard[sec.shard])
		}
	}
	if total != l.count {
		return fail("header count %d, sections hold %d", l.count, total)
	}
	return l, nil
}

// verifySections checks every section's CRC32C against the image and
// that each shard's id section is strictly ascending (the mmap loader
// binary-searches them). O(file) reads — callers on an mmap image
// should advise sequential first and drop the pages after.
func (l *v3Layout) verifySections(data []byte) error {
	for i := range l.sections {
		sec := &l.sections[i]
		b := data[sec.off : sec.off+sec.length]
		if got := crc32.Checksum(b, v3CRC); got != sec.crc {
			return fmt.Errorf("embstore: v3 snapshot: section %d (kind %d, shard %d) CRC mismatch (got %08x, stored %08x)",
				i, sec.kind, sec.shard, got, sec.crc)
		}
		if sec.kind == v3KindIDs {
			ids := castSlice[graph.NodeID](b)
			for r := 1; r < len(ids); r++ {
				if ids[r] <= ids[r-1] {
					return fmt.Errorf("embstore: v3 snapshot: shard %d ids not strictly ascending at row %d", sec.shard, r)
				}
			}
		}
	}
	return nil
}

// rowRef locates one live row of a shard for the snapshot writer.
type rowRef struct {
	id     graph.NodeID
	slot   int32
	inBase bool
}

// sortedRowsLocked returns every live row of the shard in ascending id
// order — the merge of the (sorted copy of the) overlay and the base's
// unmasked rows. The mask invariant (an overlay id is never live in
// the base) makes this a strict two-way merge. Caller holds sh.mu.
func (sh *shard) sortedRowsLocked(dst []rowRef) []rowRef {
	dst = dst[:0]
	ov := make([]graph.NodeID, len(sh.ids))
	copy(ov, sh.ids)
	slices.Sort(ov)
	var base []graph.NodeID
	if sh.base != nil {
		base = sh.base.ids
	}
	bi := 0
	appendBase := func(limit graph.NodeID, all bool) {
		for bi < len(base) && (all || base[bi] < limit) {
			id := base[bi]
			if !sh.base.maskedBase(id) {
				dst = append(dst, rowRef{id: id, slot: int32(bi), inBase: true})
			}
			bi++
		}
	}
	for _, id := range ov {
		appendBase(id, false)
		dst = append(dst, rowRef{id: id, slot: int32(sh.slot[id])})
	}
	appendBase(0, true)
	return dst
}

// v3Writer tracks the write offset and per-section CRC over a buffered
// writer, sticky-erroring so call sites stay linear.
type v3Writer struct {
	w   *bufio.Writer
	off uint64
	crc uint32
	err error
}

func (vw *v3Writer) write(b []byte) {
	if vw.err != nil {
		return
	}
	n, err := vw.w.Write(b)
	vw.off += uint64(n)
	vw.crc = crc32.Update(vw.crc, v3CRC, b[:n])
	vw.err = err
}

var v3Zeros [v3SectionAlign]byte

// pad advances to the next section-alignment boundary. Padding is
// outside sections: not CRC'd, never read back.
func (vw *v3Writer) pad() {
	if rem := vw.off % v3SectionAlign; rem != 0 {
		crc := vw.crc
		vw.write(v3Zeros[:v3SectionAlign-rem])
		vw.crc = crc
	}
}

// SaveSnapshotV3 writes a v3 snapshot of the store to ws, stamped with
// a WAL watermark (same contract as SaveSnapshot). The header lands
// last — a zero placeholder goes out first and is patched by seeking
// back once every section CRC is known — so a torn write is never
// parseable. Each shard is serialized under one acquisition of its
// read lock: per-shard-consistent, like the gob writer's per-vector
// atomicity, and cold stores fold their overlay over the mapped base
// as they serialize.
func (s *Store) SaveSnapshotV3(ws io.WriteSeeker, watermark uint64) error {
	if !hostLittleEndian {
		return fmt.Errorf("embstore: v3 snapshots require a little-endian host (use the gob format)")
	}
	vw := &v3Writer{w: bufio.NewWriterSize(ws, 1<<16)}
	vw.write(make([]byte, v3HeaderSize))
	vw.pad()

	sections := make([]v3Section, 0, 3*len(s.shards))
	var total uint64
	var rows []rowRef
	var norms []float64
	var metas []sq8Meta
	begin := func(kind v3Kind, shard, n int) *v3Section {
		vw.crc = 0
		sections = append(sections, v3Section{kind: kind, shard: uint32(shard), rows: uint64(n), off: vw.off})
		return &sections[len(sections)-1]
	}
	end := func(sec *v3Section) {
		sec.length = vw.off - sec.off
		sec.crc = vw.crc
		vw.pad()
	}
	dim := s.dim
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		rows = sh.sortedRowsLocked(rows)
		n := len(rows)
		total += uint64(n)

		sec := begin(v3KindIDs, i, n)
		for _, r := range rows {
			var idb [4]byte
			putLE32(idb[:], 0, uint32(r.id))
			vw.write(idb[:])
		}
		end(sec)

		sec = begin(v3KindPayload, i, n)
		for _, r := range rows {
			slot := int(r.slot)
			switch s.prec {
			case F32:
				src := sh.vecs32
				if r.inBase {
					src = sh.base.vecs32
				}
				vw.write(sliceBytes(src[slot*dim : (slot+1)*dim]))
			case SQ8:
				src := sh.codes
				if r.inBase {
					src = sh.base.codes
				}
				vw.write(sliceBytes(src[slot*dim : (slot+1)*dim]))
			default:
				src := sh.vecs
				if r.inBase {
					src = sh.base.vecs
				}
				vw.write(sliceBytes(src[slot*dim : (slot+1)*dim]))
			}
		}
		end(sec)

		if s.prec == SQ8 {
			metas = metas[:0]
			for _, r := range rows {
				if r.inBase {
					metas = append(metas, sh.base.meta[r.slot])
				} else {
					metas = append(metas, sh.meta[r.slot])
				}
			}
			sec = begin(v3KindMeta, i, n)
			vw.write(sliceBytes(metas))
			end(sec)
		} else {
			norms = norms[:0]
			for _, r := range rows {
				if r.inBase {
					norms = append(norms, sh.base.norms[r.slot])
				} else {
					norms = append(norms, sh.norms[r.slot])
				}
			}
			sec = begin(v3KindNorms, i, n)
			vw.write(sliceBytes(norms))
			end(sec)
		}
		sh.mu.RUnlock()
	}

	tableOff := vw.off
	table := make([]byte, len(sections)*v3EntrySize+4)
	for i, sec := range sections {
		e := table[i*v3EntrySize:]
		putLE32(e, 0, uint32(sec.kind))
		putLE32(e, 4, sec.shard)
		putLE64(e, 8, sec.rows)
		putLE64(e, 16, sec.off)
		putLE64(e, 24, sec.length)
		putLE32(e, 32, sec.crc)
	}
	putLE32(table, len(table)-4, crc32.Checksum(table[:len(table)-4], v3CRC))
	vw.write(table)
	if vw.err == nil {
		vw.err = vw.w.Flush()
	}
	if vw.err != nil {
		return fmt.Errorf("embstore: v3 save: %v", vw.err)
	}

	hdr := make([]byte, v3HeaderSize)
	copy(hdr, v3Magic)
	putLE32(hdr, 8, v3Version)
	putLE32(hdr, 12, uint32(s.dim))
	putLE32(hdr, 16, uint32(s.prec))
	putLE32(hdr, 20, uint32(len(s.shards)))
	putLE64(hdr, 24, total)
	putLE64(hdr, 32, watermark)
	putLE32(hdr, 40, v3SectionAlign)
	putLE32(hdr, 44, uint32(len(sections)))
	putLE64(hdr, 48, tableOff)
	putLE32(hdr, 60, crc32.Checksum(hdr[:60], v3CRC))
	if _, err := ws.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("embstore: v3 save: %v", err)
	}
	if _, err := ws.Write(hdr); err != nil {
		return fmt.Errorf("embstore: v3 save: %v", err)
	}
	return nil
}

// IsV3Snapshot reports whether the file at path starts with the v3
// magic — the format sniff boot uses to route a -snapshot argument to
// the right loader.
func IsV3Snapshot(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == v3Magic
}

// LoadSnapshotV3 reads a v3 snapshot into a heap-resident store at the
// snapshot's native precision — the RAM-mode replacement for the gob
// decode — returning the WAL watermark it was stamped with.
func LoadSnapshotV3(path string, shards int) (*Store, uint64, error) {
	return loadSnapshotV3(path, shards, nil)
}

// LoadSnapshotV3At is LoadSnapshotV3 at an explicit target precision;
// cross-precision loads dequantize and re-encode row by row, like
// LoadSnapshotAt.
func LoadSnapshotV3At(path string, shards int, prec Precision) (*Store, uint64, error) {
	return loadSnapshotV3(path, shards, &prec)
}

func loadSnapshotV3(path string, shards int, prec *Precision) (*Store, uint64, error) {
	if !hostLittleEndian {
		return nil, 0, fmt.Errorf("embstore: v3 snapshots require a little-endian host")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("embstore: v3 load: %v", err)
	}
	l, err := parseV3(data)
	if err != nil {
		return nil, 0, err
	}
	if err := l.verifySections(data); err != nil {
		return nil, 0, err
	}
	target := l.prec
	if prec != nil {
		target = *prec
	}
	s, err := NewPrecision(l.dim, shards, target)
	if err != nil {
		return nil, 0, err
	}
	dim := l.dim
	var buf []float64
	if target != l.prec {
		buf = make([]float64, dim)
	}
	for shard := 0; shard < l.shards; shard++ {
		idsSec, paySec, extraSec := l.shardSections(shard)
		ids := castSlice[graph.NodeID](data[idsSec.off : idsSec.off+idsSec.length])
		pay := data[paySec.off : paySec.off+paySec.length]
		extra := data[extraSec.off : extraSec.off+extraSec.length]
		rowB := v3PayloadRow(l.prec, dim)
		for r, id := range ids {
			row := pay[r*rowB : (r+1)*rowB]
			if target == l.prec {
				// Lossless path: move the disk representation straight into
				// the slabs, like the gob loader's same-precision path.
				sh := s.shardFor(id)
				sh.mu.Lock()
				slot := sh.ensureSlot(s, id)
				switch l.prec {
				case F64:
					copy(sh.vecs[slot*dim:(slot+1)*dim], castSlice[float64](row))
					sh.norms[slot] = castSlice[float64](extra)[r]
				case F32:
					copy(sh.vecs32[slot*dim:(slot+1)*dim], castSlice[float32](row))
					sh.norms[slot] = castSlice[float64](extra)[r]
				case SQ8:
					copy(sh.codes[slot*dim:(slot+1)*dim], castSlice[int8](row))
					sh.meta[slot] = castSlice[sq8Meta](extra)[r]
				}
				sh.mu.Unlock()
				continue
			}
			var norm float64
			switch l.prec {
			case F64:
				copy(buf, castSlice[float64](row))
				norm = castSlice[float64](extra)[r]
			case F32:
				vecmath.F32To64(buf, castSlice[float32](row))
				norm = castSlice[float64](extra)[r]
			case SQ8:
				m := castSlice[sq8Meta](extra)[r]
				vecmath.DecodeSQ8(buf, castSlice[int8](row), m.scale, m.offset)
				norm = m.norm
			}
			if err := s.upsertNorm(id, buf, norm); err != nil {
				return nil, 0, err
			}
		}
	}
	if s.Len() != int(l.count) && l.count <= math.MaxInt {
		return nil, 0, fmt.Errorf("embstore: v3 load: %d rows materialized, header says %d", s.Len(), l.count)
	}
	return s, l.watermark, nil
}

// attachColdBase points every shard's base at the mapped image and
// resets the overlays: the structural half of an mmap open or a
// rotation fold, shared by OpenMmap (no contention possible yet) and
// Remap (which wraps it in the shard locks). The caller owns locking
// and the lifetime of data.
func (s *Store) attachColdBase(l *v3Layout, data []byte) {
	for i := range s.shards {
		sh := &s.shards[i]
		idsSec, paySec, extraSec := l.shardSections(i)
		b := &baseSection{
			ids: castSlice[graph.NodeID](data[idsSec.off : idsSec.off+idsSec.length]),
		}
		pay := data[paySec.off : paySec.off+paySec.length]
		extra := data[extraSec.off : extraSec.off+extraSec.length]
		switch s.prec {
		case F64:
			b.vecs = castSlice[float64](pay)
			b.norms = castSlice[float64](extra)
		case F32:
			b.vecs32 = castSlice[float32](pay)
			b.norms = castSlice[float64](extra)
		case SQ8:
			b.codes = castSlice[int8](pay)
			b.meta = castSlice[sq8Meta](extra)
		}
		sh.base = b
		if len(sh.slot) > 0 {
			clear(sh.slot)
		}
		sh.ids = sh.ids[:0]
		sh.vecs = sh.vecs[:0]
		sh.vecs32 = sh.vecs32[:0]
		sh.codes = sh.codes[:0]
		sh.norms = sh.norms[:0]
		sh.meta = sh.meta[:0]
	}
}

// payloadBytes sums the vector-slab section lengths — the bytes
// madvise(MADV_RANDOM) covers and the denominator of the cold tier's
// residency ratio.
func (l *v3Layout) payloadBytes() int64 {
	var n int64
	for i := range l.sections {
		if l.sections[i].kind == v3KindPayload {
			n += int64(l.sections[i].length)
		}
	}
	return n
}
