// Package embstore is a sharded, concurrency-safe in-memory embedding
// store: the online half of the train → serialize → serve pipeline. A
// trained embedding matrix (from ehna or any baseline — they all emit a
// NumNodes×d tensor.Matrix) is bulk-loaded once, then served under
// concurrent reads with incremental upserts and deletes. Node IDs are
// hashed across N independently-locked shards so readers on different
// shards never contend, and snapshot save/load lets a daemon restart
// without retraining.
package embstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
)

// entry is one stored vector with its L2 norm, maintained on write so
// cosine scoring never recomputes norms on the query path.
type entry struct {
	vec  []float64
	norm float64
}

// shard is one lock domain of the store.
type shard struct {
	mu   sync.RWMutex
	vecs map[graph.NodeID]entry
}

// Store is a sharded in-memory map from node ID to embedding vector.
// All vectors share one dimensionality, fixed at construction. Methods
// are safe for concurrent use.
type Store struct {
	dim    int
	shards []shard
}

// DefaultShards is the shard count used when a non-positive count is
// requested. 16 keeps per-shard maps small without measurable overhead
// at single-digit shard occupancy.
const DefaultShards = 16

// New returns an empty store for dim-dimensional vectors with the given
// shard count (DefaultShards when shards <= 0).
func New(dim, shards int) (*Store, error) {
	if dim < 1 {
		return nil, fmt.Errorf("embstore: dimension %d < 1", dim)
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	s := &Store{dim: dim, shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].vecs = make(map[graph.NodeID]entry)
	}
	return s, nil
}

// FromMatrix builds a store from an embedding matrix, assigning row i to
// node ID i — the layout produced by Model.InferAll and every baseline.
func FromMatrix(emb *tensor.Matrix, shards int) (*Store, error) {
	s, err := New(emb.Cols, shards)
	if err != nil {
		return nil, err
	}
	s.BulkLoad(emb)
	return s, nil
}

// FromModelSnapshot builds a store holding the raw embedding table of an
// ehna model snapshot (see ehna.LoadEmbeddingTable).
func FromModelSnapshot(r io.Reader, shards int) (*Store, error) {
	emb, err := ehna.LoadEmbeddingTable(r)
	if err != nil {
		return nil, err
	}
	return FromMatrix(emb, shards)
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardIndex hashes id onto a shard index. The multiply-xorshift mix
// (splitmix-style finalizer) decorrelates the low bits so sequential
// node IDs spread evenly.
func (s *Store) shardIndex(id graph.NodeID) int {
	x := uint32(id)
	x ^= x >> 16
	x *= 0x45d9f3b
	x ^= x >> 16
	// Reduce in uint32: int(x) is negative for half of all hashes on
	// 32-bit platforms, and Go's % would preserve the sign.
	return int(x % uint32(len(s.shards)))
}

func (s *Store) shardFor(id graph.NodeID) *shard {
	return &s.shards[s.shardIndex(id)]
}

// Len returns the number of stored vectors.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.vecs)
		sh.mu.RUnlock()
	}
	return n
}

// BulkLoad upserts row i of emb as node ID i for every row. It panics on
// dimension mismatch (programmer error, matching tensor conventions).
// Rows are copied; the caller keeps ownership of emb.
func (s *Store) BulkLoad(emb *tensor.Matrix) {
	if emb.Cols != s.dim {
		panic(fmt.Sprintf("embstore: bulk load of %d-dim rows into %d-dim store", emb.Cols, s.dim))
	}
	// Group rows per shard first so each shard's lock is taken once.
	groups := make([][]graph.NodeID, len(s.shards))
	for i := 0; i < emb.Rows; i++ {
		id := graph.NodeID(i)
		idx := s.shardIndex(id)
		groups[idx] = append(groups[idx], id)
	}
	var wg sync.WaitGroup
	for idx := range groups {
		if len(groups[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, ids []graph.NodeID) {
			defer wg.Done()
			sh.mu.Lock()
			for _, id := range ids {
				v := make([]float64, s.dim)
				copy(v, emb.Row(int(id)))
				sh.vecs[id] = entry{vec: v, norm: tensor.L2NormVec(v)}
			}
			sh.mu.Unlock()
		}(&s.shards[idx], groups[idx])
	}
	wg.Wait()
}

// Upsert inserts or replaces the vector for id. The vector is copied.
func (s *Store) Upsert(id graph.NodeID, vec []float64) error {
	if len(vec) != s.dim {
		return fmt.Errorf("embstore: upsert of %d-dim vector into %d-dim store", len(vec), s.dim)
	}
	v := make([]float64, s.dim)
	copy(v, vec)
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.vecs[id] = entry{vec: v, norm: tensor.L2NormVec(v)}
	sh.mu.Unlock()
	return nil
}

// Delete removes id, reporting whether it was present.
func (s *Store) Delete(id graph.NodeID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.vecs[id]
	delete(sh.vecs, id)
	sh.mu.Unlock()
	return ok
}

// Get returns a copy of the vector for id.
func (s *Store) Get(id graph.NodeID) ([]float64, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.vecs[id]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	out := make([]float64, len(e.vec))
	copy(out, e.vec)
	sh.mu.RUnlock()
	return out, true
}

// With runs fn on the stored vector for id under the shard read lock,
// avoiding the copy Get makes. norm is the vector's L2 norm, maintained
// on write. fn must not retain the slice or call any mutating Store
// method (the shard lock is held). Reports presence.
func (s *Store) With(id graph.NodeID, fn func(vec []float64, norm float64)) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.vecs[id]
	if ok {
		fn(e.vec, e.norm)
	}
	sh.mu.RUnlock()
	return ok
}

// RangeShard iterates shard i under its read lock, stopping when fn
// returns false. norm is each vector's L2 norm, maintained on write.
// The vector passed to fn is a view: fn must not retain it or call any
// mutating Store method. Iterating shards from separate goroutines is
// how ann parallelizes exact search.
func (s *Store) RangeShard(i int, fn func(id graph.NodeID, vec []float64, norm float64) bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for id, e := range sh.vecs {
		if !fn(id, e.vec, e.norm) {
			return
		}
	}
}

// IDs returns all stored node IDs in ascending order.
func (s *Store) IDs() []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.vecs {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// storeWire is the gob wire format of a snapshot: IDs ascending, vectors
// concatenated in the same order, so identical contents always produce
// identical bytes.
type storeWire struct {
	Version int
	Dim     int
	IDs     []graph.NodeID
	Data    []float64
}

// storeSnapshotVersion guards the wire format; bump on incompatible changes.
const storeSnapshotVersion = 1

// Save writes a snapshot of the store to w. Concurrent upserts during
// Save are each either fully included or fully absent (per-vector
// atomicity via the shard locks); for a point-in-time image, quiesce
// writers first.
func (s *Store) Save(w io.Writer) error {
	ids := s.IDs()
	wire := storeWire{
		Version: storeSnapshotVersion,
		Dim:     s.dim,
		IDs:     make([]graph.NodeID, 0, len(ids)),
		Data:    make([]float64, 0, len(ids)*s.dim),
	}
	for _, id := range ids {
		// IDs and Data are appended together under the same read lock, so
		// an ID deleted between IDs() and here is omitted entirely rather
		// than resurrected as a zero row.
		s.With(id, func(vec []float64, _ float64) {
			wire.IDs = append(wire.IDs, id)
			wire.Data = append(wire.Data, vec...)
		})
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("embstore: save: %v", err)
	}
	return nil
}

// Load reconstructs a store from a snapshot written by Save.
func Load(r io.Reader, shards int) (*Store, error) {
	var wire storeWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("embstore: load: %v", err)
	}
	if wire.Version != storeSnapshotVersion {
		return nil, fmt.Errorf("embstore: load: snapshot version %d, want %d", wire.Version, storeSnapshotVersion)
	}
	if len(wire.Data) != len(wire.IDs)*wire.Dim {
		return nil, fmt.Errorf("embstore: load: corrupt snapshot: %d values for %d vectors of dim %d",
			len(wire.Data), len(wire.IDs), wire.Dim)
	}
	s, err := New(wire.Dim, shards)
	if err != nil {
		return nil, err
	}
	for i, id := range wire.IDs {
		if err := s.Upsert(id, wire.Data[i*wire.Dim:(i+1)*wire.Dim]); err != nil {
			return nil, err
		}
	}
	return s, nil
}
