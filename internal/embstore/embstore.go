// Package embstore is a sharded, concurrency-safe in-memory embedding
// store: the online half of the train → serialize → serve pipeline. A
// trained embedding matrix (from ehna or any baseline — they all emit a
// NumNodes×d tensor.Matrix) is bulk-loaded once, then served under
// concurrent reads with incremental upserts and deletes. Node IDs are
// hashed across N independently-locked shards so readers on different
// shards never contend, and snapshot save/load lets a daemon restart
// without retraining.
//
// Each shard stores its vectors in one dense structure-of-arrays slab
// (ids, contiguous vector rows, norms) plus an id→slot map. Scans walk
// the slab linearly — cache-friendly and allocation-free — instead of
// iterating a map of per-vector heap allocations, and bulk loads
// allocate one slab per shard rather than one slice per vector.
package embstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
	"ehna/internal/wal"
)

// shard is one lock domain of the store: a dense slab of vectors with
// an id→slot index. Deletes swap-remove so the slab stays dense.
type shard struct {
	mu    sync.RWMutex
	slot  map[graph.NodeID]int
	ids   []graph.NodeID
	vecs  []float64 // len(ids)*dim; row i is vecs[i*dim:(i+1)*dim]
	norms []float64 // L2 norms, maintained on write
}

// Store is a sharded in-memory map from node ID to embedding vector.
// All vectors share one dimensionality, fixed at construction. Methods
// are safe for concurrent use.
type Store struct {
	dim    int
	shards []shard
}

// DefaultShards is the shard count used when a non-positive count is
// requested. 16 keeps per-shard maps small without measurable overhead
// at single-digit shard occupancy.
const DefaultShards = 16

// New returns an empty store for dim-dimensional vectors with the given
// shard count (DefaultShards when shards <= 0).
func New(dim, shards int) (*Store, error) {
	if dim < 1 {
		return nil, fmt.Errorf("embstore: dimension %d < 1", dim)
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	s := &Store{dim: dim, shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].slot = make(map[graph.NodeID]int)
	}
	return s, nil
}

// FromMatrix builds a store from an embedding matrix, assigning row i to
// node ID i — the layout produced by Model.InferAll and every baseline.
func FromMatrix(emb *tensor.Matrix, shards int) (*Store, error) {
	s, err := New(emb.Cols, shards)
	if err != nil {
		return nil, err
	}
	s.BulkLoad(emb)
	return s, nil
}

// FromModelSnapshot builds a store holding the raw embedding table of an
// ehna model snapshot (see ehna.LoadEmbeddingTable).
func FromModelSnapshot(r io.Reader, shards int) (*Store, error) {
	emb, err := ehna.LoadEmbeddingTable(r)
	if err != nil {
		return nil, err
	}
	return FromMatrix(emb, shards)
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard holding id. Batch consumers
// (e.g. LSH re-ranking) group IDs by shard so each shard's lock is
// taken once per batch instead of once per vector.
func (s *Store) ShardOf(id graph.NodeID) int { return s.shardIndex(id) }

// shardIndex hashes id onto a shard index. The multiply-xorshift mix
// (splitmix-style finalizer) decorrelates the low bits so sequential
// node IDs spread evenly.
func (s *Store) shardIndex(id graph.NodeID) int {
	x := uint32(id)
	x ^= x >> 16
	x *= 0x45d9f3b
	x ^= x >> 16
	// Reduce in uint32: int(x) is negative for half of all hashes on
	// 32-bit platforms, and Go's % would preserve the sign.
	return int(x % uint32(len(s.shards)))
}

func (s *Store) shardFor(id graph.NodeID) *shard {
	return &s.shards[s.shardIndex(id)]
}

// Len returns the number of stored vectors.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.ids)
		sh.mu.RUnlock()
	}
	return n
}

// row returns the slot'th vector of the shard. Caller holds the lock.
func (sh *shard) row(slot, dim int) []float64 {
	return sh.vecs[slot*dim : (slot+1)*dim]
}

// upsertLocked inserts or replaces id's vector. Caller holds sh.mu.
func (sh *shard) upsertLocked(id graph.NodeID, vec []float64, dim int) {
	if slot, ok := sh.slot[id]; ok {
		copy(sh.row(slot, dim), vec)
		sh.norms[slot] = vecmath.Norm(vec)
		return
	}
	sh.slot[id] = len(sh.ids)
	sh.ids = append(sh.ids, id)
	sh.vecs = append(sh.vecs, vec...)
	sh.norms = append(sh.norms, vecmath.Norm(vec))
}

// BulkLoad upserts row i of emb as node ID i for every row. It panics on
// dimension mismatch (programmer error, matching tensor conventions).
// Rows are copied; the caller keeps ownership of emb. Each shard's slab
// is grown once, so the load performs O(shards) allocations rather than
// one per vector.
func (s *Store) BulkLoad(emb *tensor.Matrix) {
	if emb.Cols != s.dim {
		panic(fmt.Sprintf("embstore: bulk load of %d-dim rows into %d-dim store", emb.Cols, s.dim))
	}
	// Group rows per shard first so each shard's lock is taken once.
	groups := make([][]graph.NodeID, len(s.shards))
	for i := 0; i < emb.Rows; i++ {
		id := graph.NodeID(i)
		idx := s.shardIndex(id)
		groups[idx] = append(groups[idx], id)
	}
	var wg sync.WaitGroup
	for idx := range groups {
		if len(groups[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, ids []graph.NodeID) {
			defer wg.Done()
			sh.mu.Lock()
			if extra := len(ids); cap(sh.vecs)-len(sh.vecs) < extra*s.dim {
				sh.vecs = append(make([]float64, 0, (len(sh.ids)+extra)*s.dim), sh.vecs...)
				sh.ids = append(make([]graph.NodeID, 0, len(sh.ids)+extra), sh.ids...)
				sh.norms = append(make([]float64, 0, len(sh.norms)+extra), sh.norms...)
			}
			for _, id := range ids {
				sh.upsertLocked(id, emb.Row(int(id)), s.dim)
			}
			sh.mu.Unlock()
		}(&s.shards[idx], groups[idx])
	}
	wg.Wait()
}

// Upsert inserts or replaces the vector for id. The vector is copied.
func (s *Store) Upsert(id graph.NodeID, vec []float64) error {
	if len(vec) != s.dim {
		return fmt.Errorf("embstore: upsert of %d-dim vector into %d-dim store", len(vec), s.dim)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.upsertLocked(id, vec, s.dim)
	sh.mu.Unlock()
	return nil
}

// Delete removes id, reporting whether it was present. The last vector
// of the shard's slab is swapped into the vacated slot so scans stay
// dense.
func (s *Store) Delete(id graph.NodeID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slot[id]
	if !ok {
		return false
	}
	last := len(sh.ids) - 1
	if slot != last {
		movedID := sh.ids[last]
		sh.ids[slot] = movedID
		copy(sh.row(slot, s.dim), sh.row(last, s.dim))
		sh.norms[slot] = sh.norms[last]
		sh.slot[movedID] = slot
	}
	sh.ids = sh.ids[:last]
	sh.vecs = sh.vecs[:last*s.dim]
	sh.norms = sh.norms[:last]
	delete(sh.slot, id)
	return true
}

// Get returns a copy of the vector for id.
func (s *Store) Get(id graph.NodeID) ([]float64, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	slot, ok := sh.slot[id]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	out := make([]float64, s.dim)
	copy(out, sh.row(slot, s.dim))
	sh.mu.RUnlock()
	return out, true
}

// With runs fn on the stored vector for id under the shard read lock,
// avoiding the copy Get makes. norm is the vector's L2 norm, maintained
// on write. fn must not retain the slice or call any mutating Store
// method (the shard lock is held). Reports presence.
func (s *Store) With(id graph.NodeID, fn func(vec []float64, norm float64)) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	slot, ok := sh.slot[id]
	if ok {
		fn(sh.row(slot, s.dim), sh.norms[slot])
	}
	sh.mu.RUnlock()
	return ok
}

// RangeShard iterates shard i under its read lock, stopping when fn
// returns false. norm is each vector's L2 norm, maintained on write.
// The vector passed to fn is a view: fn must not retain it or call any
// mutating Store method. Iterating shards from separate goroutines is
// how ann parallelizes exact search. Iteration order is the dense slab
// order (insertion order, perturbed by swap-remove deletes).
func (s *Store) RangeShard(i int, fn func(id graph.NodeID, vec []float64, norm float64) bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	dim := s.dim
	vecs := sh.vecs
	for slot, id := range sh.ids {
		if !fn(id, vecs[slot*dim:(slot+1)*dim], sh.norms[slot]) {
			return
		}
	}
}

// WithShard looks up each of ids (all of which must hash to shard i —
// see ShardOf) under a single acquisition of the shard's read lock,
// invoking fn for every ID that is present. The batch analogue of
// With for consumers that score many candidates per query.
func (s *Store) WithShard(i int, ids []graph.NodeID, fn func(id graph.NodeID, vec []float64, norm float64)) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, id := range ids {
		if slot, ok := sh.slot[id]; ok {
			fn(id, sh.row(slot, s.dim), sh.norms[slot])
		}
	}
}

// IDs returns all stored node IDs in ascending order.
func (s *Store) IDs() []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out = append(out, sh.ids...)
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyWAL applies one write-ahead-log record to the store: the replay
// hook crash recovery and reference-state tests drive. Replaying a log
// suffix in sequence order over any state at-or-before that suffix
// reconverges, because upsert/delete are last-writer-wins.
func (s *Store) ApplyWAL(r wal.Record) error {
	switch r.Op {
	case wal.OpUpsert:
		return s.Upsert(r.ID, r.Vec)
	case wal.OpDelete:
		s.Delete(r.ID)
		return nil
	default:
		return fmt.Errorf("embstore: apply of unknown wal op %d", r.Op)
	}
}

// Equal reports whether two stores hold identical contents (same IDs,
// bit-identical vectors), regardless of shard count. It takes read
// locks shard by shard; quiesce writers for a meaningful answer.
func (s *Store) Equal(o *Store) bool {
	if s.dim != o.dim || s.Len() != o.Len() {
		return false
	}
	equal := true
	for i := range s.shards {
		s.RangeShard(i, func(id graph.NodeID, vec []float64, _ float64) bool {
			ok := o.With(id, func(ovec []float64, _ float64) {
				for j := range vec {
					if vec[j] != ovec[j] {
						equal = false
						return
					}
				}
			})
			if !ok {
				equal = false
			}
			return equal
		})
		if !equal {
			return false
		}
	}
	return true
}

// storeWire is the gob wire format of a snapshot: IDs ascending, vectors
// concatenated in the same order, so identical contents always produce
// identical bytes. Watermark carries the WAL sequence number the
// snapshot covers (0 for snapshots taken outside a WAL pipeline; gob
// omits zero fields, so pre-watermark snapshots load unchanged).
type storeWire struct {
	Version   int
	Dim       int
	Watermark uint64
	IDs       []graph.NodeID
	Data      []float64
}

// storeSnapshotVersion guards the wire format; bump on incompatible changes.
const storeSnapshotVersion = 1

// Save writes a snapshot of the store to w. Concurrent upserts during
// Save are each either fully included or fully absent (per-vector
// atomicity via the shard locks); for a point-in-time image, quiesce
// writers first.
func (s *Store) Save(w io.Writer) error { return s.SaveSnapshot(w, 0) }

// SaveSnapshot is Save stamping the snapshot with a WAL watermark: the
// sequence number through which the image is known complete. On boot,
// LoadSnapshot hands the watermark back so replay can skip everything
// the snapshot already contains. The caller must guarantee all records
// ≤ watermark were applied before SaveSnapshot starts; records applied
// concurrently (seq > watermark) may bleed into the image, which
// replay-idempotence makes harmless.
func (s *Store) SaveSnapshot(w io.Writer, watermark uint64) error {
	ids := s.IDs()
	wire := storeWire{
		Version:   storeSnapshotVersion,
		Dim:       s.dim,
		Watermark: watermark,
		IDs:       make([]graph.NodeID, 0, len(ids)),
		Data:      make([]float64, 0, len(ids)*s.dim),
	}
	for _, id := range ids {
		// IDs and Data are appended together under the same read lock, so
		// an ID deleted between IDs() and here is omitted entirely rather
		// than resurrected as a zero row.
		s.With(id, func(vec []float64, _ float64) {
			wire.IDs = append(wire.IDs, id)
			wire.Data = append(wire.Data, vec...)
		})
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("embstore: save: %v", err)
	}
	return nil
}

// Load reconstructs a store from a snapshot written by Save.
func Load(r io.Reader, shards int) (*Store, error) {
	s, _, err := LoadSnapshot(r, shards)
	return s, err
}

// LoadSnapshot reconstructs a store and returns the WAL watermark it
// was stamped with (0 for pre-WAL snapshots): replay resumes from the
// record after the watermark.
func LoadSnapshot(r io.Reader, shards int) (*Store, uint64, error) {
	var wire storeWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, 0, fmt.Errorf("embstore: load: %v", err)
	}
	if wire.Version != storeSnapshotVersion {
		return nil, 0, fmt.Errorf("embstore: load: snapshot version %d, want %d", wire.Version, storeSnapshotVersion)
	}
	if len(wire.Data) != len(wire.IDs)*wire.Dim {
		return nil, 0, fmt.Errorf("embstore: load: corrupt snapshot: %d values for %d vectors of dim %d",
			len(wire.Data), len(wire.IDs), wire.Dim)
	}
	s, err := New(wire.Dim, shards)
	if err != nil {
		return nil, 0, err
	}
	for i, id := range wire.IDs {
		if err := s.Upsert(id, wire.Data[i*wire.Dim:(i+1)*wire.Dim]); err != nil {
			return nil, 0, err
		}
	}
	return s, wire.Watermark, nil
}
